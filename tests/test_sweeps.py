"""Unit tests for the parameter-sweep harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandits.policies import OptimalPolicy, RandomPolicy
from repro.exceptions import ExperimentError
from repro.experiments.sweeps import (
    PAPER_POLICY_SET,
    default_policies,
    run_parameter_sweep,
)
from repro.sim.config import SimulationConfig

CONFIG = SimulationConfig(num_sellers=12, num_selected=3, num_pois=3,
                          num_rounds=60, seed=1)


class TestDefaultPolicies:
    def test_names_match_paper_set(self):
        policies = default_policies(np.linspace(0.1, 0.9, 12))
        assert tuple(p.name for p in policies) == PAPER_POLICY_SET

    def test_fresh_instances_each_call(self):
        qualities = np.linspace(0.1, 0.9, 12)
        first = default_policies(qualities)
        second = default_policies(qualities)
        assert all(a is not b for a, b in zip(first, second))


class TestRunParameterSweep:
    def test_rejects_empty_values(self):
        with pytest.raises(ExperimentError, match="non-empty"):
            run_parameter_sweep(CONFIG, "num_rounds", [])

    def test_rejects_unknown_parameter(self):
        with pytest.raises(ExperimentError, match="no parameter"):
            run_parameter_sweep(CONFIG, "does_not_exist", [1, 2])

    def test_one_point_per_value(self):
        points = run_parameter_sweep(CONFIG, "num_rounds", [30, 60])
        assert [p.value for p in points] == [30.0, 60.0]
        for point in points:
            assert set(point.comparison.runs) == set(PAPER_POLICY_SET)

    def test_custom_policy_factory(self):
        def factory(qualities):
            return [OptimalPolicy(qualities), RandomPolicy()]

        points = run_parameter_sweep(CONFIG, "num_rounds", [30],
                                     policy_factory=factory)
        assert set(points[0].comparison.runs) == {"optimal", "random"}

    def test_num_rounds_points_share_population(self):
        # Same seed, same num_sellers: identical instance across points.
        points = run_parameter_sweep(CONFIG, "num_rounds", [30, 60])
        a = points[0].comparison["optimal"]
        b = points[1].comparison["optimal"]
        # Same optimal per-round revenue on the shared prefix.
        np.testing.assert_allclose(a.expected_revenue[:30],
                                   b.expected_revenue[:30])

    def test_num_sellers_sweep_changes_instance(self):
        points = run_parameter_sweep(CONFIG, "num_sellers", [12, 20])
        first = points[0].comparison["optimal"].total_expected_revenue
        second = points[1].comparison["optimal"].total_expected_revenue
        assert first != second
