"""Unit tests for the worker watchdog and shutdown signals."""

from __future__ import annotations

import signal

import pytest

from repro.exceptions import ConfigurationError
from repro.resilience import (
    NEVER_STOP,
    NO_WATCHDOG,
    GracefulShutdown,
    ScheduledAbort,
    WatchdogConfig,
    WorkerWatchdog,
)
from repro.resilience.watchdog import (
    REASON_HEARTBEAT_LOST,
    REASON_TASK_DEADLINE,
)


class TestWatchdogConfig:
    def test_default_disabled(self):
        assert not NO_WATCHDOG.enabled

    def test_either_detector_arms(self):
        assert WatchdogConfig(task_timeout_s=1.0).enabled
        assert WatchdogConfig(heartbeat_timeout_s=2.0).enabled

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="task_timeout_s"):
            WatchdogConfig(task_timeout_s=0.0)
        with pytest.raises(ConfigurationError, match="heartbeat_interval_s"):
            WatchdogConfig(heartbeat_interval_s=-1.0)
        with pytest.raises(ConfigurationError,
                           match="must exceed heartbeat_interval_s"):
            WatchdogConfig(heartbeat_interval_s=1.0,
                           heartbeat_timeout_s=0.5)


class TestWorkerWatchdog:
    """The watchdog is a pure clock-injected state machine — no threads,
    no real clocks — so every scenario here is exact."""

    def _watchdog(self, **kwargs) -> WorkerWatchdog:
        return WorkerWatchdog(WatchdogConfig(**kwargs))

    def test_quiet_when_nothing_violates(self):
        watchdog = self._watchdog(task_timeout_s=10.0,
                                  heartbeat_timeout_s=5.0)
        watchdog.worker_started(0, now=0.0)
        watchdog.task_started(0, task_id=7, now=1.0)
        watchdog.heartbeat(0, now=4.0)
        assert watchdog.poll(now=6.0) == []

    def test_task_deadline_verdict(self):
        watchdog = self._watchdog(task_timeout_s=2.0)
        watchdog.worker_started(0, now=0.0)
        watchdog.task_started(0, task_id=7, now=1.0)
        assert watchdog.poll(now=2.9) == []
        verdicts = watchdog.poll(now=3.1)
        assert len(verdicts) == 1
        verdict = verdicts[0]
        assert verdict.worker_id == 0
        assert verdict.reason == REASON_TASK_DEADLINE
        assert verdict.task_id == 7
        assert verdict.elapsed_s == pytest.approx(2.1)
        assert verdict.limit_s == 2.0

    def test_task_finish_clears_the_deadline(self):
        watchdog = self._watchdog(task_timeout_s=2.0)
        watchdog.worker_started(0, now=0.0)
        watchdog.task_started(0, task_id=7, now=1.0)
        watchdog.task_finished(0)
        assert watchdog.poll(now=100.0) == []

    def test_heartbeat_loss_verdict_even_when_idle(self):
        watchdog = self._watchdog(heartbeat_timeout_s=3.0)
        watchdog.worker_started(0, now=0.0)
        watchdog.heartbeat(0, now=1.0)
        verdicts = watchdog.poll(now=4.5)
        assert len(verdicts) == 1
        assert verdicts[0].reason == REASON_HEARTBEAT_LOST
        assert verdicts[0].task_id is None  # idle worker

    def test_task_deadline_diagnosed_before_heartbeat_loss(self):
        # Both violated: the per-task deadline is the more precise
        # diagnosis and must win.
        watchdog = self._watchdog(task_timeout_s=1.0,
                                  heartbeat_timeout_s=2.0)
        watchdog.worker_started(0, now=0.0)
        watchdog.task_started(0, task_id=3, now=0.0)
        verdicts = watchdog.poll(now=10.0)
        assert [v.reason for v in verdicts] == [REASON_TASK_DEADLINE]

    def test_one_stall_yields_one_verdict(self):
        watchdog = self._watchdog(task_timeout_s=1.0)
        watchdog.worker_started(0, now=0.0)
        watchdog.task_started(0, task_id=3, now=0.0)
        assert len(watchdog.poll(now=5.0)) == 1
        # Diagnosed workers leave tracking until respawned.
        assert watchdog.poll(now=50.0) == []

    def test_worker_gone_stops_tracking(self):
        watchdog = self._watchdog(task_timeout_s=1.0)
        watchdog.worker_started(0, now=0.0)
        watchdog.task_started(0, task_id=3, now=0.0)
        watchdog.worker_gone(0)
        assert watchdog.poll(now=50.0) == []

    def test_running_task_reports_current_assignment(self):
        watchdog = self._watchdog(task_timeout_s=10.0)
        watchdog.worker_started(0, now=0.0)
        assert watchdog.running_task(0) is None
        watchdog.task_started(0, task_id=9, now=0.0)
        assert watchdog.running_task(0) == 9


class TestShutdownSignals:
    def test_never_stop_never_stops(self):
        assert not NEVER_STOP.should_stop(0)
        assert not NEVER_STOP.should_stop(10**9)

    def test_scheduled_abort_trips_only_at_its_rounds(self):
        abort = ScheduledAbort([3, 7])
        assert abort.rounds == frozenset({3, 7})
        assert not abort.should_stop(2)
        assert abort.should_stop(3)
        assert not abort.should_stop(4)
        assert abort.should_stop(7)

    def test_graceful_shutdown_flag_lifecycle(self):
        stop = GracefulShutdown()
        assert not stop.should_stop(0)
        stop.request(signal.SIGTERM)
        assert stop.should_stop(0)
        assert stop.requested
        assert stop.signum == signal.SIGTERM

    def test_install_and_uninstall_restore_handlers(self):
        previous = {s: signal.getsignal(s)
                    for s in GracefulShutdown.SIGNALS}
        with GracefulShutdown() as stop:
            for signum in GracefulShutdown.SIGNALS:
                assert signal.getsignal(signum) == stop._handle
        for signum, handler in previous.items():
            assert signal.getsignal(signum) == handler

    def test_real_signal_sets_the_flag(self):
        with GracefulShutdown() as stop:
            signal.raise_signal(signal.SIGTERM)
            assert stop.requested
            assert stop.signum == signal.SIGTERM
            # The flag stays a flag — no exception until the runtime
            # reaches its next safe boundary.
            assert stop.should_stop(5)

    def test_second_sigint_raises_keyboard_interrupt(self):
        with GracefulShutdown() as stop:
            stop.request(signal.SIGINT)
            with pytest.raises(KeyboardInterrupt):
                stop._handle(signal.SIGINT, None)
