"""Structural tests for the fast extension-experiment runners.

The slow ones (ext-drift, ext-replication at full size) are exercised by
the benchmark suite; here the cheap runners are checked end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import Scale, list_experiments, run_experiment


class TestRegistryIncludesExtensions:
    def test_all_extension_ids_registered(self):
        ids = {experiment_id for experiment_id, __ in list_experiments()}
        assert {"ext-drift", "ext-market", "ext-coverage", "ext-poa",
                "ext-replication"} <= ids

    def test_extension_titles_marked(self):
        titles = dict(list_experiments())
        for experiment_id in ("ext-drift", "ext-market", "ext-coverage",
                              "ext-poa", "ext-replication"):
            assert titles[experiment_id].startswith("EXTENSION"), (
                experiment_id
            )


class TestExtPoa:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-poa", Scale.SMALL)

    def test_panels(self, result):
        assert set(result.panels) == {
            "welfare", "price_of_anarchy", "total_sensing_time",
        }

    def test_poa_at_least_one(self, result):
        poa = result.series("price_of_anarchy", "optimal / SE").y
        assert np.all(poa >= 1.0 - 1e-9)
        assert np.all(poa < 1.2)  # the mechanism is quite efficient

    def test_se_underprovides_time(self, result):
        se = result.series("total_sensing_time", "SE").y
        optimum = result.series("total_sensing_time", "social optimum").y
        assert np.all(optimum > se)


class TestExtMarket:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-market", Scale.SMALL)

    def test_three_strategies(self, result):
        welfare = result.series("welfare", "total welfare")
        assert welfare.y.size == 3

    def test_consumer_ordering_by_omega(self, result):
        series = result.panel("consumer_profit")
        # omega 1400 consumer earns most under every strategy.
        top = next(s for s in series if "1400" in s.label)
        bottom = next(s for s in series if "600" in s.label)
        assert np.all(top.y > bottom.y)


class TestExtCoverage:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-coverage", Scale.SMALL)

    def test_coverage_aware_always_fully_covers(self, result):
        aware = result.series("mean_poi_coverage", "coverage-ucb").y
        assert np.all(aware > 0.99)

    def test_blind_coverage_improves_with_density(self, result):
        blind = result.series("mean_poi_coverage", "top-K UCB").y
        assert np.all(np.diff(blind) >= -1e-9)
        assert blind[0] < 0.9

    def test_revenue_gap_shrinks_with_density(self, result):
        blind = result.series("coverage_revenue", "top-K UCB").y
        aware = result.series("coverage_revenue", "coverage-ucb").y
        relative_gap = aware / blind - 1.0
        assert relative_gap[0] > relative_gap[-1]
