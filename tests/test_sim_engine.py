"""Unit and integration tests for the trading-simulation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandits.policies import (
    EpsilonFirstPolicy,
    OptimalPolicy,
    RandomPolicy,
    UCBPolicy,
)
from repro.core.mechanism import CMABHSMechanism
from repro.entities.consumer import Consumer
from repro.entities.job import Job
from repro.entities.platform import Platform
from repro.entities.seller import SellerPopulation
from repro.exceptions import ConfigurationError
from repro.quality.distributions import TruncatedGaussianQuality
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator


@pytest.fixture
def simulator(tiny_config) -> TradingSimulator:
    return TradingSimulator(tiny_config)


class TestConstruction:
    def test_population_size_must_match(self, tiny_config, rng):
        population = SellerPopulation.random(3, rng)
        with pytest.raises(ConfigurationError, match="population has 3"):
            TradingSimulator(tiny_config, population=population)

    def test_quality_model_size_must_match(self, tiny_config, rng):
        model = TruncatedGaussianQuality(np.array([0.5, 0.5]))
        with pytest.raises(ConfigurationError, match="different number"):
            TradingSimulator(tiny_config, quality_model=model)

    def test_population_sampled_from_config_ranges(self, simulator):
        population = simulator.population
        cfg = simulator.config
        assert np.all(population.cost_a >= cfg.a_range[0])
        assert np.all(population.cost_a <= cfg.a_range[1])

    def test_same_seed_same_population(self, tiny_config):
        a = TradingSimulator(tiny_config)
        b = TradingSimulator(tiny_config)
        np.testing.assert_array_equal(a.population.expected_qualities,
                                      b.population.expected_qualities)


class TestRunMetrics:
    def test_series_lengths(self, simulator, tiny_config):
        run = simulator.run(RandomPolicy())
        assert run.num_rounds == tiny_config.num_rounds
        assert run.consumer_profit.shape == (tiny_config.num_rounds,)
        assert run.selection_counts.shape == (tiny_config.num_sellers,)

    def test_optimal_policy_zero_regret(self, simulator):
        run = simulator.run(
            OptimalPolicy(simulator.population.expected_qualities)
        )
        assert run.final_regret == 0.0

    def test_regret_history_monotone(self, simulator):
        run = simulator.run(RandomPolicy())
        assert np.all(np.diff(run.regret) >= -1e-9)

    def test_ucb_initial_round_selects_everyone(self, simulator):
        run = simulator.run(UCBPolicy())
        assert np.all(run.selection_counts >= 1)

    def test_ucb_initial_round_break_even_platform(self, simulator):
        run = simulator.run(UCBPolicy())
        assert run.platform_profit[0] == pytest.approx(0.0, abs=1e-9)

    def test_collection_price_max_in_explore_round(self, simulator,
                                                   tiny_config):
        run = simulator.run(UCBPolicy())
        assert run.collection_price[0] == pytest.approx(
            tiny_config.collection_price_bounds[1]
        )

    def test_prices_within_bounds(self, simulator, tiny_config):
        run = simulator.run(UCBPolicy())
        lo, hi = tiny_config.service_price_bounds
        assert np.all(run.service_price >= lo - 1e-9)
        assert np.all(run.service_price <= hi + 1e-9)
        lo, hi = tiny_config.collection_price_bounds
        assert np.all(run.collection_price >= lo - 1e-9)
        assert np.all(run.collection_price <= hi + 1e-9)

    def test_sensing_times_nonnegative(self, simulator):
        run = simulator.run(UCBPolicy())
        assert np.all(run.total_sensing_time >= 0.0)

    def test_k_equals_m_corner_uses_exploration_pricing(self):
        # With K == M every policy selects everyone in round 0; the
        # engine must apply Algorithm 1's break-even pricing there, not
        # play the game on unseen estimates.
        config = SimulationConfig(num_sellers=6, num_selected=6,
                                  num_pois=3, num_rounds=20, seed=5,
                                  collection_price_bounds=(0.0, 5.0))
        run = TradingSimulator(config).run(UCBPolicy())
        assert run.collection_price[0] == pytest.approx(5.0)
        assert run.platform_profit[0] == pytest.approx(0.0, abs=1e-9)

    def test_estimation_error_shrinks_for_ucb(self, tiny_config):
        config = tiny_config.derive(num_rounds=600)
        run = TradingSimulator(config).run(UCBPolicy())
        # Quality estimates converge: the tail error is well below the
        # error right after the first exploration round.
        assert run.estimation_error[-1] < 0.5 * run.estimation_error[0]
        assert run.final_estimation_error == run.estimation_error[-1]

    def test_estimation_error_nonnegative(self, simulator):
        run = simulator.run(RandomPolicy())
        assert np.all(run.estimation_error >= 0.0)

    def test_run_reproducible(self, tiny_config):
        a = TradingSimulator(tiny_config).run(UCBPolicy())
        b = TradingSimulator(tiny_config).run(UCBPolicy())
        np.testing.assert_array_equal(a.realized_revenue,
                                      b.realized_revenue)
        np.testing.assert_array_equal(a.consumer_profit, b.consumer_profit)

    def test_num_rounds_override(self, simulator):
        run = simulator.run(RandomPolicy(), num_rounds=17)
        assert run.num_rounds == 17

    def test_rejects_nonpositive_override(self, simulator):
        with pytest.raises(ConfigurationError, match="num_rounds"):
            simulator.run(RandomPolicy(), num_rounds=0)


class TestCompare:
    def test_expected_policy_ordering(self, tiny_config):
        config = tiny_config.derive(num_rounds=800)
        simulator = TradingSimulator(config)
        policies = [
            OptimalPolicy(simulator.population.expected_qualities),
            UCBPolicy(),
            EpsilonFirstPolicy(0.1),
            RandomPolicy(),
        ]
        comparison = simulator.compare(policies)
        optimal = comparison["optimal"].total_expected_revenue
        ucb = comparison["CMAB-HS"].total_expected_revenue
        random = comparison["random"].total_expected_revenue
        assert optimal >= ucb >= random

    def test_delta_profits_positive_for_random(self, tiny_config):
        config = tiny_config.derive(num_rounds=800)
        simulator = TradingSimulator(config)
        comparison = simulator.compare([
            OptimalPolicy(simulator.population.expected_qualities),
            RandomPolicy(),
        ])
        deltas = comparison.delta_profits("random")
        assert deltas["delta_poc"] > 0.0

    def test_duplicate_policy_rejected(self, simulator):
        with pytest.raises(ConfigurationError, match="duplicate"):
            simulator.compare([RandomPolicy(), RandomPolicy()])


class TestAgreementWithMechanism:
    def test_engine_matches_mechanism_round_for_round(self):
        """The engine driving a UCBPolicy replays Algorithm 1 exactly.

        Under a noise-free quality model both implementations see
        identical observation streams, so every selection, price, and
        profit must coincide round for round.
        """
        from repro.quality.distributions import DeterministicQuality

        seed = 21
        num_rounds = 60
        config = SimulationConfig(
            num_sellers=12, num_selected=3, num_pois=5,
            num_rounds=num_rounds, seed=seed,
            collection_price_bounds=(0.0, 5.0),
        )
        base = TradingSimulator(config)
        model = DeterministicQuality(base.population.expected_qualities)
        simulator = TradingSimulator(config, population=base.population,
                                     quality_model=model)
        run = simulator.run(UCBPolicy())

        job = Job.simple(num_pois=5, num_rounds=num_rounds)
        mechanism = CMABHSMechanism(
            base.population, job,
            Platform.default(theta=config.theta, lam=config.lam,
                             price_max=5.0),
            Consumer.default(omega=config.omega),
            k=3,
            quality_model=model,
            seed=seed,
        )
        result = mechanism.run()
        for t in range(num_rounds):
            outcome = result.rounds[t]
            assert run.collection_price[t] == pytest.approx(
                outcome.collection_price
            ), f"round {t}"
            assert run.service_price[t] == pytest.approx(
                outcome.service_price
            ), f"round {t}"
            assert run.consumer_profit[t] == pytest.approx(
                outcome.consumer_profit
            ), f"round {t}"
            assert run.total_sensing_time[t] == pytest.approx(
                outcome.total_sensing_time
            ), f"round {t}"
