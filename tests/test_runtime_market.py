"""The event-hosted market (:mod:`repro.runtime.market`).

The determinism contract, end to end: a static-population runtime is
bit-identical to the batch :class:`~repro.sim.engine.TradingSimulator`;
a churning runtime reproduces the same trade ledger from the same seed,
including across a checkpoint/restore boundary; and mid-round
departures settle through the dropout fault path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandits.policies import EpsilonGreedyPolicy, UCBPolicy
from repro.exceptions import (
    ConfigurationError,
    GracefulShutdownInterrupt,
    PersistenceError,
)
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.resilience import ScheduledAbort
from repro.runtime import ChurnSpec, MarketRuntime, TradeLedger, TradeRecord
from repro.sim import SimulationConfig, TradingSimulator

#: Every RunMetrics array compared bit-for-bit in the equivalence tests.
METRIC_FIELDS = (
    "realized_revenue", "expected_revenue", "regret", "consumer_profit",
    "platform_profit", "seller_profit_mean", "service_price",
    "collection_price", "total_sensing_time", "selection_counts",
    "estimation_error",
)

CHURN = ChurnSpec(arrival_rate=0.3, departure_rate=0.15, min_online=2)


def _config(num_rounds: int = 40, seed: int = 7) -> SimulationConfig:
    return SimulationConfig(num_sellers=12, num_selected=3, num_pois=4,
                            num_rounds=num_rounds, seed=seed)


def _record(round_index: int, *slots: int,
            prices: tuple[float, float, float, float] = (1.0, 2.0, 3.0, 4.0),
            ) -> TradeRecord:
    return TradeRecord(
        round_index=round_index,
        participants=np.array(slots, dtype=np.int64),
        service_price=prices[0], collection_price=prices[1],
        tau_total=prices[2], realized=prices[3],
    )


class TestBatchEquivalence:
    def test_static_runtime_matches_batch_engine_bit_for_bit(self):
        config = _config()
        batch = TradingSimulator(config).run(UCBPolicy())
        live = MarketRuntime(config, UCBPolicy()).run()
        assert live.policy_name == batch.policy_name
        for field in METRIC_FIELDS:
            assert np.array_equal(getattr(live, field),
                                  getattr(batch, field)), field

    def test_equivalence_holds_for_other_policies(self):
        config = _config(num_rounds=25, seed=3)
        batch = TradingSimulator(config).run(EpsilonGreedyPolicy())
        live = MarketRuntime(config, EpsilonGreedyPolicy()).run()
        for field in METRIC_FIELDS:
            assert np.array_equal(getattr(live, field),
                                  getattr(batch, field)), field

    def test_disabled_churn_spec_keeps_the_static_path(self):
        config = _config(num_rounds=20)
        batch = TradingSimulator(config).run(UCBPolicy())
        live = MarketRuntime(config, UCBPolicy(), churn=ChurnSpec()).run()
        assert np.array_equal(live.realized_revenue, batch.realized_revenue)

    def test_ledger_mirrors_the_metrics_series(self):
        config = _config(num_rounds=30)
        runtime = MarketRuntime(config, UCBPolicy())
        metrics = runtime.run()
        records = runtime.ledger.records
        assert len(records) == config.num_rounds
        # Round 0 explores the full population; later rounds trade K.
        assert records[0].participants.size == config.num_sellers
        assert all(r.participants.size == config.num_selected
                   for r in records[1:])
        for t, record in enumerate(records):
            assert record.round_index == t
            assert record.realized == metrics.realized_revenue[t]
            assert record.service_price == metrics.service_price[t]
            assert record.collection_price == metrics.collection_price[t]
            assert record.tau_total == metrics.total_sensing_time[t]


class TestChurnDeterminism:
    def test_same_seed_same_churn_same_ledger(self):
        config = _config(num_rounds=60)
        a = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        b = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        metrics_a, metrics_b = a.run(), b.run()
        assert a.ledger.digest() == b.ledger.digest()
        assert a.sessions_opened == b.sessions_opened
        assert a.sessions_closed == b.sessions_closed
        for field in METRIC_FIELDS:
            assert np.array_equal(getattr(metrics_a, field),
                                  getattr(metrics_b, field)), field

    def test_departures_settle_through_the_dropout_path(self):
        config = _config(num_rounds=60)
        runtime = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        runtime.run()
        # Mid-round departures drop their collect messages...
        assert runtime.kernel.messages_dropped > 0
        # ...and the settlement records them as missing participants.
        short = [r for r in runtime.ledger.records
                 if 0 < r.round_index
                 and r.participants.size < config.num_selected]
        assert short
        assert runtime.sessions_closed > 0

    def test_churn_respects_the_min_online_floor(self):
        spec = ChurnSpec(arrival_rate=0.05, departure_rate=0.9,
                         min_online=4)
        runtime = MarketRuntime(_config(num_rounds=50), UCBPolicy(),
                                churn=spec)
        for _ in range(50):
            runtime.play_round()
            assert runtime.num_online >= 4

    def test_consumer_sees_one_trade_per_round(self):
        runtime = MarketRuntime(_config(num_rounds=15), UCBPolicy(),
                                churn=CHURN)
        runtime.run()
        consumer = runtime.kernel.agent("consumer")
        assert consumer.trades_seen == 15
        assert consumer.last_trade["round"] == 14


class TestSessions:
    def test_open_session_claims_the_lowest_free_slot(self):
        runtime = MarketRuntime(_config(), start_online=False)
        session0, slot0 = runtime.open_session()
        session1, slot1 = runtime.open_session()
        assert (slot0, slot1) == (0, 1)
        assert session0 != session1
        assert runtime.session_slot(session1) == 1
        assert runtime.num_online == 2

    def test_close_session_frees_the_slot(self):
        runtime = MarketRuntime(_config(), start_online=False)
        session, slot = runtime.open_session()
        summary = runtime.close_session(session)
        assert summary["slot"] == slot
        assert summary["trades"] == 0
        assert runtime.num_online == 0
        with pytest.raises(ConfigurationError, match="no open session"):
            runtime.close_session(session)

    def test_cannot_double_book_a_slot(self):
        runtime = MarketRuntime(_config(), start_online=False)
        runtime.open_session(3)
        with pytest.raises(ConfigurationError, match="already online"):
            runtime.open_session(3)
        with pytest.raises(ConfigurationError, match="slot must be"):
            runtime.open_session(99)

    def test_full_population_rejects_registration(self):
        runtime = MarketRuntime(_config())  # start_online=True
        with pytest.raises(ConfigurationError, match="all 12"):
            runtime.open_session()

    def test_no_online_sellers_cannot_trade(self):
        runtime = MarketRuntime(_config(), start_online=False)
        with pytest.raises(ConfigurationError, match="no seller is online"):
            runtime.play_round()

    def test_closed_slot_is_never_selected_afterwards(self):
        runtime = MarketRuntime(_config(num_rounds=30))
        runtime.advance(5)
        slot = 2
        frozen = int(runtime.metrics().selection_counts[slot])
        runtime.close_session(int(runtime._slot_session[slot]))
        runtime.advance(None)
        assert int(runtime.metrics().selection_counts[slot]) == frozen

    def test_session_events_are_traced(self):
        ring = RingBufferSink()
        runtime = MarketRuntime(_config(), start_online=False,
                                tracer=Tracer(ring))
        session, slot = runtime.open_session()
        runtime.open_session()
        runtime.close_session(session)
        opens = ring.of_kind("session_open")
        assert [e.payload["slot"] for e in opens] == [0, 1]
        closes = ring.of_kind("session_close")
        assert closes[0].payload == {"session": session, "slot": slot,
                                     "rounds_online": 0, "trades": 0}


class TestRunControl:
    def test_advance_and_partial_metrics(self):
        runtime = MarketRuntime(_config(num_rounds=40))
        assert runtime.advance(10) == 10
        partial = runtime.metrics()
        assert partial.realized_revenue.shape == (10,)
        assert runtime.next_round == 10
        assert runtime.advance(None) == 30
        assert runtime.metrics().realized_revenue.shape == (40,)

    def test_playing_past_the_end_raises(self):
        runtime = MarketRuntime(_config(num_rounds=5))
        runtime.run()
        with pytest.raises(ConfigurationError, match="complete"):
            runtime.play_round()

    def test_run_emits_lifecycle_and_round_events(self):
        ring = RingBufferSink()
        runtime = MarketRuntime(_config(num_rounds=8),
                                tracer=Tracer(ring))
        runtime.run()
        assert len(ring.of_kind("run_start")) == 1
        assert ring.of_kind("run_start")[0].payload["churn"] is False
        assert len(ring.of_kind("round_start")) == 8
        assert len(ring.of_kind("round_end")) == 8
        assert ring.of_kind("run_end")[0].payload["rounds_played"] == 8

    def test_metrics_registry_sees_runtime_counters(self):
        registry = MetricsRegistry()
        runtime = MarketRuntime(_config(num_rounds=12), metrics=registry)
        metrics = runtime.run()
        snapshot = metrics.telemetry
        assert snapshot is not None
        assert snapshot["counters"]["rounds"] == 12


class TestCheckpointResume:
    def test_resume_is_bit_identical_to_an_uninterrupted_run(self, tmp_path):
        config = _config(num_rounds=60)
        straight = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        straight_metrics = straight.run()

        path = tmp_path / "runtime.npz"
        first = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        first.advance(25)
        first.save(path)

        resumed = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        assert resumed.restore(path) == 25
        resumed_metrics = resumed.run()

        assert resumed.ledger.digest() == straight.ledger.digest()
        # Traffic counters resume too, so status output is identical.
        assert (resumed.kernel.messages_delivered
                == straight.kernel.messages_delivered)
        assert (resumed.kernel.messages_dropped
                == straight.kernel.messages_dropped)
        for field in METRIC_FIELDS:
            assert np.array_equal(getattr(resumed_metrics, field),
                                  getattr(straight_metrics, field)), field

    def test_run_resume_after_a_graceful_interrupt(self, tmp_path):
        config = _config(num_rounds=50)
        path = tmp_path / "runtime.npz"
        straight = MarketRuntime(config, UCBPolicy(), churn=CHURN).run()

        interrupted = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        with pytest.raises(GracefulShutdownInterrupt) as excinfo:
            interrupted.run(shutdown=ScheduledAbort([20]),
                            checkpoint_path=path)
        assert excinfo.value.checkpoint_path == str(path)
        assert path.exists()

        resumed = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        metrics = resumed.run(checkpoint_path=path, resume=True)
        assert np.array_equal(metrics.realized_revenue,
                              straight.realized_revenue)
        assert np.array_equal(metrics.regret, straight.regret)

    def test_restore_rejects_a_mismatched_fingerprint(self, tmp_path):
        path = tmp_path / "runtime.npz"
        runtime = MarketRuntime(_config(seed=7), UCBPolicy(), churn=CHURN)
        runtime.advance(5)
        runtime.save(path)
        other_seed = MarketRuntime(_config(seed=8), UCBPolicy(),
                                   churn=CHURN)
        with pytest.raises(PersistenceError, match="seed"):
            other_seed.restore(path)
        no_churn = MarketRuntime(_config(seed=7), UCBPolicy())
        with pytest.raises(PersistenceError, match="churn_spec"):
            no_churn.restore(path)

    def test_restore_reconciles_the_agent_roster(self, tmp_path):
        config = _config(num_rounds=40)
        path = tmp_path / "runtime.npz"
        source = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        source.advance(20)
        source.save(path)
        target = MarketRuntime(config, UCBPolicy(), churn=CHURN)
        target.restore(path)
        assert np.array_equal(target.online_mask, source.online_mask)
        for slot in np.flatnonzero(source.online_mask):
            assert target.kernel.has_agent(f"seller-{slot}")
        for slot in np.flatnonzero(~source.online_mask):
            assert not target.kernel.has_agent(f"seller-{slot}")

    def test_graceful_shutdown_without_checkpoint_path(self):
        runtime = MarketRuntime(_config(num_rounds=30))
        with pytest.raises(GracefulShutdownInterrupt) as excinfo:
            runtime.run(shutdown=ScheduledAbort([10]))
        assert excinfo.value.checkpoint_path is None
        assert runtime.next_round == 10


class TestTradeLedger:
    def test_rounds_must_be_strictly_increasing(self):
        ledger = TradeLedger()
        ledger.append(_record(0, 1, 2))
        ledger.append(_record(1, 3))
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            ledger.append(_record(1, 4))

    def test_digest_is_sensitive_to_every_field(self):
        def digest_of(record: TradeRecord) -> str:
            ledger = TradeLedger()
            ledger.append(record)
            return ledger.digest()

        base = _record(0, 1, 2)
        assert digest_of(base) == digest_of(_record(0, 1, 2))
        variants = [
            _record(1, 1, 2),
            _record(0, 1, 3),
            _record(0, 1),
            _record(0, 1, 2, prices=(1.0, 2.0, 3.0, 5.0)),
        ]
        assert len({digest_of(v) for v in [base, *variants]}) == 5

    def test_to_arrays_round_trips(self):
        ledger = TradeLedger()
        ledger.append(_record(0, 4, 7, 9))
        ledger.append(_record(1))  # a no-trade round
        ledger.append(_record(5, 2, prices=(0.5, 0.25, 8.0, -1.0)))
        restored = TradeLedger()
        restored.restore_arrays(ledger.to_arrays())
        assert restored.digest() == ledger.digest()
        assert [r.round_index for r in restored.records] == [0, 1, 5]
        assert restored.records[1].participants.size == 0

    def test_restore_rejects_inconsistent_arrays(self):
        arrays = TradeLedger().to_arrays()
        arrays["offsets"] = np.array([0, 0], dtype=np.int64)
        with pytest.raises(PersistenceError, match="inconsistent"):
            TradeLedger().restore_arrays(arrays)

    def test_empty_ledger_digest_is_stable(self):
        assert TradeLedger().digest() == TradeLedger().digest()
        assert len(TradeLedger()) == 0
