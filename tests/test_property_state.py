"""Property-based tests (hypothesis) for learning state, selection, regret."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regret import RegretTracker, gap_statistics, theorem19_bound
from repro.core.selection import top_k_indices
from repro.core.state import LearningState

quality_vectors = st.lists(
    st.floats(0.0, 1.0), min_size=3, max_size=30
).map(np.array)


@st.composite
def update_sequences(draw):
    """A random sequence of (sellers, per-observation means) updates."""
    m = draw(st.integers(3, 10))
    num_updates = draw(st.integers(1, 15))
    num_obs = draw(st.integers(1, 8))
    updates = []
    for __ in range(num_updates):
        k = draw(st.integers(1, m))
        sellers = draw(
            st.permutations(list(range(m))).map(lambda p: sorted(p[:k]))
        )
        means = draw(
            st.lists(st.floats(0.0, 1.0), min_size=len(sellers),
                     max_size=len(sellers))
        )
        updates.append((np.array(sellers), np.array(means) * num_obs))
    return m, num_obs, updates


class TestLearningStateProperties:
    @given(data=update_sequences())
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_batch(self, data):
        m, num_obs, updates = data
        state = LearningState(m)
        sums = np.zeros(m)
        counts = np.zeros(m)
        for sellers, obs_sums in updates:
            state.update(sellers, obs_sums, num_obs)
            sums[sellers] += obs_sums
            counts[sellers] += num_obs
        seen = counts > 0
        np.testing.assert_allclose(state.means[seen], sums[seen] / counts[seen])
        np.testing.assert_array_equal(state.counts, counts.astype(int))

    @given(data=update_sequences())
    @settings(max_examples=40, deadline=None)
    def test_means_stay_in_unit_interval(self, data):
        m, num_obs, updates = data
        state = LearningState(m)
        for sellers, obs_sums in updates:
            state.update(sellers, obs_sums, num_obs)
        assert np.all(state.means >= 0.0)
        assert np.all(state.means <= 1.0 + 1e-12)

    @given(data=update_sequences(),
           coefficient=st.floats(0.1, 20.0))
    @settings(max_examples=40, deadline=None)
    def test_ucb_dominates_mean(self, data, coefficient):
        m, num_obs, updates = data
        state = LearningState(m)
        for sellers, obs_sums in updates:
            state.update(sellers, obs_sums, num_obs)
        assert np.all(state.ucb_values(coefficient) >= state.means)

    @given(data=update_sequences())
    @settings(max_examples=40, deadline=None)
    def test_snapshot_restore_identity(self, data):
        m, num_obs, updates = data
        state = LearningState(m)
        for sellers, obs_sums in updates[: len(updates) // 2]:
            state.update(sellers, obs_sums, num_obs)
        snapshot = state.snapshot()
        means_before = state.means.copy()
        for sellers, obs_sums in updates[len(updates) // 2:]:
            state.update(sellers, obs_sums, num_obs)
        state.restore(snapshot)
        np.testing.assert_array_equal(state.means, means_before)


class TestSelectionProperties:
    @given(scores=st.lists(st.floats(-10.0, 10.0), min_size=1,
                           max_size=40).map(np.array),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_top_k_selects_a_maximiser_set(self, scores, data):
        k = data.draw(st.integers(1, scores.size))
        chosen = top_k_indices(scores, k)
        assert chosen.size == k
        assert np.unique(chosen).size == k
        # No unchosen score exceeds any chosen score.
        unchosen = np.setdiff1d(np.arange(scores.size), chosen)
        if unchosen.size:
            assert scores[unchosen].max() <= scores[chosen].min() + 1e-12


class TestRegretProperties:
    @given(qualities=quality_vectors, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_regret_nonnegative_and_monotone(self, qualities, data):
        k = data.draw(st.integers(1, qualities.size))
        tracker = RegretTracker(qualities, k=k, num_pois=3)
        rng = np.random.default_rng(data.draw(st.integers(0, 1_000)))
        for __ in range(10):
            selected = np.sort(
                rng.choice(qualities.size, size=k, replace=False)
            )
            tracker.record(selected)
        history = tracker.history
        assert np.all(history >= 0.0)
        assert np.all(np.diff(history) >= -1e-12)

    @given(qualities=quality_vectors, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_optimal_selection_is_zero_increment(self, qualities, data):
        k = data.draw(st.integers(1, qualities.size))
        tracker = RegretTracker(qualities, k=k, num_pois=2)
        gaps = (gap_statistics(qualities, k)
                if k < qualities.size else None)
        optimal = (gaps.optimal_set if gaps is not None
                   else np.arange(qualities.size))
        assert tracker.record(optimal) == 0.0

    @given(qualities=quality_vectors, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_bound_positive_when_gap_positive(self, qualities, data):
        k = data.draw(st.integers(1, qualities.size - 1))
        gaps = gap_statistics(qualities, k)
        bound = theorem19_bound(qualities.size, k, 5, 1_000,
                                gaps.delta_min, gaps.delta_max)
        assert bound >= 0.0
        # The bound scales as 1/delta_min^2, so it is representable in a
        # double only for non-degenerate gaps.
        if gaps.delta_min > 1e-6:
            assert np.isfinite(bound)

    @given(qualities=quality_vectors, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_delta_max_dominates_delta_min(self, qualities, data):
        k = data.draw(st.integers(1, qualities.size - 1))
        gaps = gap_statistics(qualities, k)
        assert gaps.delta_max >= gaps.delta_min - 1e-12
