"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import logging
import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    EVENT_KINDS,
    JsonlSink,
    LoggingSink,
    MetricsRegistry,
    NullTracer,
    QuantileReservoir,
    RingBufferSink,
    TraceEvent,
    Tracer,
    configure_logging,
    get_logger,
    read_trace,
    summarize_trace,
    timed,
)
from repro.obs.metrics import Timer
from repro.obs.tracer import NULL_TRACER


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        counter = reg.counter("rounds")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_rejects_negative_increment(self):
        with pytest.raises(ConfigurationError, match="only increase"):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        gauge = MetricsRegistry().gauge("price")
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25

    def test_coerces_numpy_scalars(self):
        gauge = MetricsRegistry().gauge("regret")
        gauge.set(np.float64(2.5))
        assert isinstance(gauge.value, float)


class TestTimer:
    def test_summary_statistics(self):
        timer = MetricsRegistry().timer("solve")
        for seconds in (0.2, 0.1, 0.3):
            timer.observe(seconds)
        assert timer.count == 3
        assert timer.total == pytest.approx(0.6)
        assert timer.minimum == pytest.approx(0.1)
        assert timer.maximum == pytest.approx(0.3)
        assert timer.mean == pytest.approx(0.2)

    def test_mean_zero_before_observations(self):
        assert MetricsRegistry().timer("idle").mean == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError, match="negative"):
            MetricsRegistry().timer("x").observe(-0.1)

    def test_time_context_manager_observes(self):
        reg = MetricsRegistry()
        with reg.time("block"):
            pass
        assert reg.timer("block").count == 1
        assert reg.timer("block").total >= 0.0


class TestRegistrySnapshot:
    def test_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("rounds").inc(7)
        reg.gauge("regret").set(1.5)
        reg.timer("solve").observe(0.25)
        snapshot = reg.snapshot()
        # The snapshot is plain JSON.
        json.dumps(snapshot)
        other = MetricsRegistry()
        other.restore(snapshot)
        assert other.counters == {"rounds": 7}
        assert other.gauges == {"regret": 1.5}
        assert other.timer("solve").count == 1
        assert other.timer("solve").minimum == pytest.approx(0.25)

    def test_unobserved_timer_min_is_none_in_snapshot(self):
        reg = MetricsRegistry()
        reg.timer("never")
        snapshot = reg.snapshot()
        assert snapshot["timers"]["never"]["min"] is None
        other = MetricsRegistry()
        other.restore(snapshot)
        assert other.timer("never").minimum == math.inf

    def test_restore_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="snapshot"):
            MetricsRegistry().restore("not a dict")
        with pytest.raises(ConfigurationError, match="malformed"):
            MetricsRegistry().restore({"timers": {"x": {"count": 1}}})

    def test_merge_adds_counters_and_folds_timers(self):
        reg = MetricsRegistry()
        reg.counter("rounds").inc(3)
        reg.timer("solve").observe(0.2)
        other = MetricsRegistry()
        other.counter("rounds").inc(4)
        other.counter("faults").inc()
        other.timer("solve").observe(0.1)
        other.timer("solve").observe(0.5)
        reg.merge(other.snapshot())
        assert reg.counters == {"rounds": 7, "faults": 1}
        assert reg.timer("solve").count == 3
        assert reg.timer("solve").total == pytest.approx(0.8)
        assert reg.timer("solve").minimum == pytest.approx(0.1)
        assert reg.timer("solve").maximum == pytest.approx(0.5)

    def test_merge_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("regret").set(9.0)
        other = MetricsRegistry()
        other.gauge("regret").set(1.5)
        reg.merge(other.snapshot())
        assert reg.gauges == {"regret": 1.5}

    def test_merge_skips_unobserved_timers(self):
        reg = MetricsRegistry()
        reg.timer("solve").observe(0.2)
        other = MetricsRegistry()
        other.timer("solve")  # never observed: count 0, min None
        reg.merge(other.snapshot())
        assert reg.timer("solve").count == 1
        assert reg.timer("solve").minimum == pytest.approx(0.2)

    def test_merge_is_associative_with_snapshot(self):
        # Merging two worker snapshots in either order yields the same
        # registry state — the coordinator's merge order is completion
        # order, which crashes make nondeterministic.
        workers = []
        for observations in ([0.1, 0.3], [0.2]):
            worker = MetricsRegistry()
            for duration in observations:
                worker.timer("task").observe(duration)
                worker.counter("done").inc()
            workers.append(worker.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snapshot in workers:
            forward.merge(snapshot)
        for snapshot in reversed(workers):
            backward.merge(snapshot)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="snapshot"):
            MetricsRegistry().merge("not a dict")
        with pytest.raises(ConfigurationError, match="malformed"):
            MetricsRegistry().merge({"timers": {"x": {"count": 1}}})

    def test_to_table_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("rounds").inc()
        reg.gauge("price").set(2.0)
        reg.timer("solve").observe(0.1)
        table = reg.to_table()
        assert "rounds" in table
        assert "price" in table
        assert "solve" in table


class TestQuantileReservoir:
    def test_exact_quantiles_before_decimation(self):
        reservoir = QuantileReservoir()
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
            reservoir.add(value)
        assert reservoir.quantile(0.50) == pytest.approx(3.0)
        assert reservoir.quantile(0.95) == pytest.approx(5.0)
        assert reservoir.quantile(0.0) == pytest.approx(1.0)
        assert reservoir.quantile(1.0) == pytest.approx(5.0)

    def test_empty_reservoir_has_no_quantiles(self):
        assert QuantileReservoir().quantile(0.5) is None

    def test_decimation_bounds_memory_and_keeps_shape(self):
        reservoir = QuantileReservoir()
        for i in range(10_000):
            reservoir.add(float(i))
        assert len(reservoir) < 512
        # Strided subsample still spans the distribution.
        assert reservoir.quantile(0.5) == pytest.approx(5_000, rel=0.05)
        assert reservoir.quantile(0.95) == pytest.approx(9_500, rel=0.05)

    def test_absorb_is_order_independent_below_cap(self):
        # Worker snapshots merged in any completion order yield the
        # same retained multiset (exactly identical until decimation
        # kicks in; beyond the cap only the distribution shape is
        # preserved).
        chunks = [[float(i) for i in range(start, start + 150)]
                  for start in (0, 150, 300)]
        forward, backward = QuantileReservoir(), QuantileReservoir()
        for chunk in chunks:
            forward.absorb(chunk)
        for chunk in reversed(chunks):
            backward.absorb(chunk)
        assert forward.sorted_samples() == backward.sorted_samples()

    def test_restore_round_trips(self):
        original = QuantileReservoir()
        for i in range(100):
            original.add(float(i))
        clone = QuantileReservoir()
        clone.restore(original.sorted_samples(), 100)
        assert clone.sorted_samples() == original.sorted_samples()
        assert clone.quantile(0.5) == original.quantile(0.5)


class TestTimerQuantiles:
    def test_none_before_observations(self):
        timer = Timer()
        assert timer.p50 is None
        assert timer.p95 is None

    def test_small_sample_quantiles_are_exact(self):
        timer = Timer()
        for ms in [0.001, 0.002, 0.003, 0.004, 0.100]:
            timer.observe(ms)
        assert timer.p50 == pytest.approx(0.003)
        assert timer.p95 == pytest.approx(0.100)

    def test_snapshot_carries_quantile_state(self):
        registry = MetricsRegistry()
        for ms in [0.010, 0.020, 0.030]:
            registry.timer("engine.round").observe(ms)
        summary = json.loads(json.dumps(
            registry.snapshot()
        ))["timers"]["engine.round"]
        assert summary["p50"] == pytest.approx(0.020)
        assert summary["p95"] == pytest.approx(0.030)
        assert summary["samples"] == [0.010, 0.020, 0.030]

    def test_restore_accepts_pre_quantile_snapshot(self):
        # Snapshots written before quantiles existed carry no
        # p50/p95/samples keys; restore must still work.
        registry = MetricsRegistry()
        registry.restore({
            "counters": {}, "gauges": {},
            "timers": {"engine.round": {
                "count": 5, "total": 0.5, "min": 0.05, "max": 0.2,
            }},
        })
        timer = registry.timers["engine.round"]
        assert timer.count == 5
        assert timer.p50 is None

    def test_merge_accepts_pre_quantile_snapshot(self):
        registry = MetricsRegistry()
        registry.timer("engine.round").observe(0.1)
        registry.merge({
            "counters": {}, "gauges": {},
            "timers": {"engine.round": {
                "count": 3, "total": 0.3, "min": 0.05, "max": 0.15,
            }},
        })
        timer = registry.timers["engine.round"]
        assert timer.count == 4
        assert timer.total == pytest.approx(0.4)
        # Only the locally observed sample remains in the reservoir.
        assert timer.reservoir.sorted_samples() == [0.1]

    def test_merged_quantiles_cover_both_workers(self):
        local, worker = MetricsRegistry(), MetricsRegistry()
        for ms in [0.001, 0.002]:
            local.timer("parallel.task").observe(ms)
        for ms in [0.100, 0.200]:
            worker.timer("parallel.task").observe(ms)
        local.merge(worker.snapshot())
        timer = local.timers["parallel.task"]
        assert timer.reservoir.sorted_samples() == [
            0.001, 0.002, 0.100, 0.200,
        ]
        assert timer.p95 == pytest.approx(0.200)

    def test_to_table_shows_quantiles(self):
        registry = MetricsRegistry()
        for ms in [0.010, 0.020, 0.030]:
            registry.timer("engine.round").observe(ms)
        table = registry.to_table()
        assert "p50=20.000ms" in table
        assert "p95=30.000ms" in table


class TestTimedDecorator:
    def test_noop_without_registry(self):
        @timed("f")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3

    def test_times_with_registry(self):
        @timed("f")
        def add(a, b):
            return a + b

        reg = MetricsRegistry()
        assert add(1, 2, metrics=reg) == 3
        assert reg.timer("f").count == 1


class TestTracer:
    def test_fans_out_to_all_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = Tracer(a, b)
        tracer.emit("round_start", round_index=3)
        assert len(a.events) == len(b.events) == 1
        assert a.events[0].kind == "round_start"
        assert a.events[0].round_index == 3
        assert tracer.num_events == 1

    def test_null_tracer_is_disabled_noop(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("round_start", round_index=0)
        assert NULL_TRACER.num_events == 0
        assert isinstance(NULL_TRACER, NullTracer)

    def test_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit("run_start", policy="UCB")
        assert path.read_text().strip()


class TestRingBufferSink:
    def test_evicts_oldest_beyond_capacity(self):
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sink)
        for t in range(4):
            tracer.emit("round_start", round_index=t)
        assert [e.round_index for e in sink.events] == [2, 3]
        assert sink.capacity == 2

    def test_of_kind_filters(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        tracer.emit("round_start", round_index=0)
        tracer.emit("fault", round_index=0, fault="dropout", seller=2)
        assert len(sink.of_kind("fault")) == 1
        sink.clear()
        assert sink.events == ()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            RingBufferSink(capacity=0)


def _sample_events():
    """One representative event of every kind the runtime emits."""
    return [
        TraceEvent("run_start", payload={
            "policy": "CMAB-HS", "num_rounds": 10, "seed": 0,
        }),
        TraceEvent("round_start", 4),
        TraceEvent("selection", 4, {
            "selected": np.array([1, 3]),
            "ucb": np.array([np.inf, 0.75]),
            "explore": False, "duration_s": 1e-4,
        }),
        TraceEvent("equilibrium", 4, {
            "service_price": 2.5, "collection_price": 1.0,
            "tau_total": np.float64(3.75), "explore": False,
            "duration_s": 2e-4,
        }),
        TraceEvent("profits", 4, {
            "consumer": 10.0, "platform": 4.0, "sellers_mean": 0.5,
            "realized": 7.0,
        }),
        TraceEvent("fault", 4, {
            "fault": "corruption", "seller": 3, "value": float("nan"),
        }),
        TraceEvent("checkpoint", 4, {
            "action": "saved", "path": "ckpt.npz", "next_round": 5,
            "duration_s": 3e-3,
        }),
        TraceEvent("round_end", 4, {"duration_s": 5e-3}),
        TraceEvent("run_end", payload={
            "policy": "CMAB-HS", "rounds_played": 10,
            "total_revenue": 99.0, "final_regret": 1.25,
            "duration_s": 0.05,
        }),
        TraceEvent("seed_start", payload={"seed": 3}),
        TraceEvent("seed_end", payload={"seed": 3, "duration_s": 0.5}),
        TraceEvent("invariant_violation", payload={
            "invariant": "lemma18_counter_bound", "seller": 2,
            "observations": 999, "bound": 100.0, "gap": 0.2,
        }),
        TraceEvent("worker_started", payload={"worker": 0, "pid": 4242}),
        TraceEvent("worker_task_done", payload={
            "worker": 0, "task": 3, "duration_s": 0.12, "attempts": 1,
        }),
        TraceEvent("worker_crashed", payload={
            "worker": 0, "exitcode": 23, "lost_tasks": [3, 4],
        }),
        TraceEvent("retry_attempt", payload={
            "op": "engine.checkpoint_write", "attempt": 1,
            "max_attempts": 3, "delay_s": 0.05, "error": "OSError: disk",
        }),
        TraceEvent("watchdog_kill", payload={
            "worker": 0, "reason": "heartbeat_lost", "task": 3,
            "elapsed_s": 2.5, "limit_s": 2.0,
        }),
        TraceEvent("task_deadline_exceeded", payload={
            "worker": 0, "reason": "task_deadline_exceeded", "task": 3,
            "elapsed_s": 2.5, "limit_s": 1.5,
        }),
        TraceEvent("agent_spawn", payload={
            "agent": "seller-3", "agent_kind": "seller", "slot": 3,
        }),
        TraceEvent("agent_depart", payload={
            "agent": "seller-3", "agent_kind": "seller", "slot": 3,
        }),
        TraceEvent("message_delivered", payload={
            "topic": "collect", "sender": "platform", "receiver": "seller-3",
            "time": 4.0,
        }),
        TraceEvent("session_open", payload={"session": 7, "slot": 3}),
        TraceEvent("session_close", payload={
            "session": 7, "slot": 3, "rounds_online": 12, "trades": 5,
        }),
        TraceEvent("checkpoint_quarantined", payload={
            "path": "ckpt.npz", "quarantined_to": "ckpt.quarantine/ckpt.npz",
            "what": "checkpoint", "error": "checksum mismatch",
        }),
        TraceEvent("graceful_shutdown", 4, {
            "policy": "CMAB-HS", "rounds_completed": 4,
            "checkpoint_path": "ckpt.npz",
        }),
    ]


class TestJsonlRoundTrip:
    def test_every_event_kind_round_trips(self, tmp_path):
        events = _sample_events()
        assert {e.kind for e in events} == set(EVENT_KINDS)
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        for event in events:
            tracer.emit(event.kind, event.round_index, **event.payload)
        tracer.close()
        loaded = list(read_trace(path))
        assert [e.kind for e in loaded] == [e.kind for e in events]
        assert [e.round_index for e in loaded] == [
            e.round_index for e in events
        ]
        # Payloads survive with numpy coerced to plain types.
        selection = next(e for e in loaded if e.kind == "selection")
        assert selection.payload["selected"] == [1, 3]
        assert selection.payload["ucb"][0] == math.inf
        fault = next(e for e in loaded if e.kind == "fault")
        assert math.isnan(fault.payload["value"])

    def test_unwritable_path_fails_with_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot open"):
            JsonlSink(tmp_path / "no" / "such" / "dir" / "t.jsonl")

    def test_write_after_close_fails_cleanly(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ConfigurationError, match="closed"):
            sink.handle(TraceEvent("round_start", 0))

    def test_from_dict_rejects_malformed_records(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            TraceEvent.from_dict([1, 2])
        with pytest.raises(ConfigurationError, match="kind"):
            TraceEvent.from_dict({"round": 3})
        with pytest.raises(ConfigurationError, match="round"):
            TraceEvent.from_dict({"kind": "round_start", "round": "x"})


class TestReadTrace:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            list(read_trace(tmp_path / "absent.jsonl"))

    def test_malformed_json_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"round_start","round":0}\n{oops\n')
        with pytest.raises(ConfigurationError, match="line 2"):
            list(read_trace(path))

    def test_non_event_json_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"round": 7}\n')
        with pytest.raises(ConfigurationError, match="line 1"):
            list(read_trace(path))

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('\n{"kind":"round_start","round":0}\n\n')
        assert len(list(read_trace(path))) == 1

    def test_on_malformed_skips_and_reports(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"round_start","round":0}\n'
                        '{"kind":"round_end","rou\n'
                        '{"round": 7}\n'
                        '{"kind":"run_end"}\n')
        skipped = []
        events = list(read_trace(
            path,
            on_malformed=lambda number, line, error:
                skipped.append((number, line)),
        ))
        assert [event.kind for event in events] == ["round_start",
                                                    "run_end"]
        assert [number for number, __ in skipped] == [2, 3]
        assert skipped[0][1].startswith('{"kind":"round_end"')

    def test_on_malformed_still_raises_on_unreadable_file(self,
                                                          tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            list(read_trace(tmp_path / "absent.jsonl",
                            on_malformed=lambda *a: None))


class TestSummarize:
    def test_rollup_counts_phases_and_faults(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(path))
        for event in _sample_events():
            tracer.emit(event.kind, event.round_index, **event.payload)
        tracer.close()
        summary = summarize_trace(path)
        assert summary.num_events == len(_sample_events())
        assert summary.num_rounds == 5  # max round index 4
        assert summary.events_by_kind["fault"] == 1
        assert summary.faults_by_kind == {"corruption": 1}
        assert summary.policies == ["CMAB-HS"]
        assert summary.phase_timings["equilibrium solve"].count == 1
        text = summary.to_text()
        assert "event counts" in text
        assert "per-phase timing" in text
        assert "corruption" in text
        assert "p50" in text and "p95" in text

    def test_truncated_tail_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"round_start","round":0}\n'
                        '{"kind":"round_end","round":0,"duration_s":0.5}\n'
                        '{"kind":"round_end","round":1,"durat\n')
        summary = summarize_trace(path)
        assert summary.skipped_lines == 1
        assert summary.num_events == 2
        assert "skipped 1 malformed line" in summary.to_text()

    def test_clean_trace_reports_no_skips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"round_start","round":0}\n')
        summary = summarize_trace(path)
        assert summary.skipped_lines == 0
        assert "skipped" not in summary.to_text()


class TestLoggingSink:
    def test_forwards_to_logger(self, caplog):
        logger = logging.getLogger("repro.trace.test")
        sink = LoggingSink(logger, level=logging.INFO)
        with caplog.at_level(logging.INFO, logger="repro.trace.test"):
            Tracer(sink).emit("selection", round_index=2, selected=[0, 1])
        assert len(caplog.records) == 1
        assert "selection" in caplog.records[0].message or (
            "selection" in caplog.records[0].getMessage()
        )
        assert '"selected":[0,1]' in caplog.records[0].getMessage()

    def test_skips_work_when_level_disabled(self):
        logger = logging.getLogger("repro.trace.silent")
        logger.setLevel(logging.CRITICAL)
        sink = LoggingSink(logger, level=logging.DEBUG)
        sink.handle(TraceEvent("round_start", 0))  # must not raise


class TestConfigureLogging:
    def test_installs_single_handler_idempotently(self):
        logger = configure_logging("info")
        before = len(logger.handlers)
        logger = configure_logging("debug")
        assert len(logger.handlers) == before
        assert logger.level == logging.DEBUG
        # Clean up the handler so other tests see pristine logging.
        configure_logging("warning")

    def test_rejects_unknown_level(self):
        with pytest.raises(ConfigurationError, match="unknown log level"):
            configure_logging("loud")

    def test_get_logger_namespaces(self):
        assert get_logger().name == "repro"
        assert get_logger("repro.core.state").name == "repro.core.state"
        assert get_logger("custom").name == "repro.custom"
