"""The checked-in goldens must pass unchanged under ``backend="vector"``.

The strongest statement of the kernels equivalence contract: the exact
JSON traces blessed from the *scalar* engine — three canonical engine
runs plus the churning runtime case — are reproduced bit-for-bit by the
vector backend, with no ``--update-goldens``.  Any vectorization shortcut
that changes even one ulp of one settled price in one round shows up
here as a concrete series drift or a ledger-digest mismatch.
"""

from __future__ import annotations

import json

import pytest

from repro.sim.persistence import denormalize_json_value
from repro.verify.golden import GOLDEN_CASES, compute_golden, golden_path
from repro.verify.runtime import (
    RUNTIME_GOLDEN_CASE,
    _golden_path,
    compute_runtime_golden,
)


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return denormalize_json_value(json.load(handle))


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=lambda c: c.name)
def test_engine_golden_bit_identical_under_vector_backend(case):
    stored = _load(golden_path(case))
    fresh = compute_golden(case, backend="vector")
    # Exact equality, not the verify tolerance: the vector backend must
    # reproduce the scalar-blessed trace to the last bit.
    assert fresh["case"] == stored["case"]
    assert fresh["policy"] == stored["policy"]
    assert fresh["summary"] == stored["summary"]
    for field, series in stored["series"].items():
        assert fresh["series"][field] == series, (
            f"{case.name}: series {field} drifted under backend='vector'"
        )


def test_runtime_churn_golden_bit_identical_under_vector_backend():
    stored = _load(_golden_path())
    fresh = compute_runtime_golden(RUNTIME_GOLDEN_CASE, backend="vector")
    assert fresh["ledger_digest"] == stored["ledger_digest"]
    assert fresh["summary"] == stored["summary"]
    for key in ("sessions_opened", "sessions_closed",
                "messages_delivered", "messages_dropped"):
        assert fresh[key] == stored[key]
