"""Unit tests for the platform and consumer entities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.entities.consumer import Consumer
from repro.entities.costs import LogValuation, QuadraticAggregationCost
from repro.entities.platform import Platform
from repro.exceptions import ConfigurationError


class TestPlatform:
    def test_default_has_paper_parameters(self):
        platform = Platform.default()
        assert platform.aggregation_cost.theta == pytest.approx(0.1)
        assert platform.aggregation_cost.lam == pytest.approx(1.0)

    def test_profit_matches_equation_7(self):
        platform = Platform.default(theta=0.2, lam=0.5)
        taus = np.array([1.0, 2.0])
        p_j, p = 5.0, 2.0
        total = 3.0
        expected = (p_j - p) * total - (0.2 * total**2 + 0.5 * total)
        assert platform.profit(p_j, p, taus) == pytest.approx(expected)

    def test_profit_accepts_scalar_total(self):
        platform = Platform.default()
        assert platform.profit(5.0, 2.0, 3.0) == pytest.approx(
            platform.profit(5.0, 2.0, np.array([1.0, 2.0]))
        )

    def test_clip_price(self):
        platform = Platform.default(price_min=1.0, price_max=4.0)
        assert platform.clip_price(0.5) == 1.0
        assert platform.clip_price(9.0) == 4.0
        assert platform.clip_price(2.5) == 2.5

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError, match="exceed"):
            Platform(QuadraticAggregationCost(0.1, 1.0),
                     price_min=5.0, price_max=2.0)

    def test_rejects_negative_min(self):
        with pytest.raises(ConfigurationError, match="price_min"):
            Platform(QuadraticAggregationCost(0.1, 1.0),
                     price_min=-1.0, price_max=2.0)

    def test_rejects_infinite_bounds(self):
        with pytest.raises(ConfigurationError, match="finite"):
            Platform(QuadraticAggregationCost(0.1, 1.0),
                     price_min=0.0, price_max=float("inf"))

    def test_zero_sensing_time_zero_profit(self):
        platform = Platform.default()
        assert platform.profit(5.0, 2.0, 0.0) == 0.0


class TestConsumer:
    def test_default_has_paper_omega(self):
        assert Consumer.default().valuation.omega == pytest.approx(1_000.0)

    def test_profit_matches_equation_9(self):
        consumer = Consumer.default(omega=200.0)
        taus = np.array([1.0, 2.0])
        p_j, q_bar = 3.0, 0.6
        expected = 200.0 * np.log(1.0 + 0.6 * 3.0) - 3.0 * 3.0
        assert consumer.profit(p_j, taus, q_bar) == pytest.approx(expected)

    def test_profit_zero_time(self):
        consumer = Consumer.default()
        assert consumer.profit(5.0, 0.0, 0.7) == 0.0

    def test_clip_price(self):
        consumer = Consumer.default(price_min=2.0, price_max=8.0)
        assert consumer.clip_price(1.0) == 2.0
        assert consumer.clip_price(10.0) == 8.0
        assert consumer.clip_price(5.0) == 5.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError, match="exceed"):
            Consumer(LogValuation(100.0), price_min=5.0, price_max=2.0)

    def test_rejects_negative_min(self):
        with pytest.raises(ConfigurationError, match="price_min"):
            Consumer(LogValuation(100.0), price_min=-0.1, price_max=2.0)

    def test_profit_decreases_in_price_for_fixed_times(self):
        consumer = Consumer.default()
        taus = np.array([1.0, 1.0])
        assert consumer.profit(2.0, taus, 0.5) > consumer.profit(
            4.0, taus, 0.5
        )
