"""Integration tests: observability wired through the trading runtime.

The load-bearing guarantee is *zero observational interference*: a
seeded run with full JSONL tracing produces bit-identical results —
series, checkpoint files — to the same run with the NullTracer default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultSpec
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator


def _config(**overrides):
    defaults = dict(num_sellers=10, num_selected=3, num_pois=5,
                    num_rounds=12, seed=7)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _ucb():
    from repro.bandits import UCBPolicy

    return UCBPolicy()


def _series_equal(a, b):
    for name in ("realized_revenue", "expected_revenue", "regret",
                 "consumer_profit", "platform_profit", "seller_profit_mean",
                 "service_price", "collection_price", "total_sensing_time",
                 "selection_counts", "estimation_error"):
        if not np.array_equal(getattr(a, name), getattr(b, name)):
            return False
    return True


class TestDeterminismGuard:
    def test_traced_run_bit_identical_to_untraced(self, tmp_path):
        config = _config()
        baseline = TradingSimulator(config).run(_ucb())
        traced = TradingSimulator(config).run(
            _ucb(),
            tracer=Tracer(JsonlSink(tmp_path / "run.jsonl"),
                          RingBufferSink()),
            metrics=MetricsRegistry(),
        )
        assert _series_equal(baseline, traced)

    def test_traced_faulty_run_bit_identical(self, tmp_path):
        config = _config()
        spec = FaultSpec(dropout_rate=0.25, corruption_rate=0.15,
                         stall_rate=0.1)
        baseline_sim = TradingSimulator(config)
        baseline = baseline_sim.run(
            _ucb(), fault_model=baseline_sim.fault_model(spec)
        )
        traced_sim = TradingSimulator(config)
        traced = traced_sim.run(
            _ucb(), fault_model=traced_sim.fault_model(spec),
            tracer=Tracer(JsonlSink(tmp_path / "run.jsonl")),
            metrics=MetricsRegistry(),
        )
        assert _series_equal(baseline, traced)

    def test_traced_checkpoint_files_byte_identical(self, tmp_path):
        """Tracing must not leak into the persisted artefacts.

        Metrics snapshots only enter checkpoint meta when the caller
        supplies a registry, so a plain traced run's checkpoints match
        an untraced run's byte for byte.
        """
        config = _config()
        plain = tmp_path / "plain.npz"
        traced = tmp_path / "traced.npz"
        TradingSimulator(config).run(
            _ucb(), checkpoint_path=plain, checkpoint_every=5,
        )
        TradingSimulator(config).run(
            _ucb(), checkpoint_path=traced, checkpoint_every=5,
            tracer=Tracer(JsonlSink(tmp_path / "run.jsonl")),
        )
        assert plain.read_bytes() == traced.read_bytes()

    def test_mechanism_traced_run_identical(self):
        from repro import (
            CMABHSMechanism,
            Consumer,
            Job,
            Platform,
            SellerPopulation,
        )

        rng = np.random.default_rng(5)
        population = SellerPopulation.random(num_sellers=8, rng=rng)
        job = Job.simple(num_pois=4, num_rounds=8)

        def build():
            return CMABHSMechanism(
                population, job, Platform.default(), Consumer.default(),
                k=3, seed=2,
            )

        baseline = build().run()
        ring = RingBufferSink()
        traced = build().run(tracer=Tracer(ring), metrics=MetricsRegistry())
        assert baseline.realized_revenue == traced.realized_revenue
        assert np.array_equal(baseline.regret_history,
                              traced.regret_history)
        assert np.array_equal(baseline.final_means, traced.final_means)
        assert len(ring.events) > 0


class TestTraceCompleteness:
    def test_every_round_has_selection_equilibrium_and_brackets(self):
        ring = RingBufferSink()
        config = _config()
        TradingSimulator(config).run(_ucb(), tracer=Tracer(ring))
        n = config.num_rounds
        assert len(ring.of_kind("run_start")) == 1
        assert len(ring.of_kind("run_end")) == 1
        assert len(ring.of_kind("round_start")) == n
        assert len(ring.of_kind("round_end")) == n
        assert len(ring.of_kind("selection")) == n
        assert len(ring.of_kind("equilibrium")) == n
        assert len(ring.of_kind("profits")) == n
        rounds = [e.round_index for e in ring.of_kind("round_start")]
        assert rounds == list(range(n))

    def test_selection_events_expose_ucb_indices(self):
        ring = RingBufferSink()
        config = _config()
        TradingSimulator(config).run(_ucb(), tracer=Tracer(ring))
        selections = ring.of_kind("selection")
        # Exploit-phase selections of a UCB policy carry the selected
        # sellers' Eq.-19 indices.
        exploit = [e for e in selections if not e.payload.get("explore")]
        assert exploit, "expected at least one exploit-phase selection"
        for event in exploit:
            ucb = event.payload["ucb"]
            assert ucb is not None
            assert len(ucb) == config.num_selected

    def test_equilibrium_events_carry_strategy_profile(self):
        ring = RingBufferSink()
        TradingSimulator(_config()).run(_ucb(), tracer=Tracer(ring))
        for event in ring.of_kind("equilibrium"):
            assert set(event.payload) >= {
                "service_price", "collection_price", "tau_total",
            }

    def test_fault_events_cover_injections_and_reactions(self):
        ring = RingBufferSink()
        config = _config(num_rounds=20)
        simulator = TradingSimulator(config)
        model = simulator.fault_model(
            FaultSpec(dropout_rate=0.3, corruption_rate=0.2)
        )
        simulator.run(_ucb(), fault_model=model, tracer=Tracer(ring))
        kinds = {e.payload["fault"] for e in ring.of_kind("fault")}
        assert "dropout" in kinds
        assert "corruption" in kinds
        assert "quarantine" in kinds

    def test_checkpoint_events_emitted(self, tmp_path):
        ring = RingBufferSink()
        TradingSimulator(_config()).run(
            _ucb(), checkpoint_path=tmp_path / "c.npz", checkpoint_every=4,
            tracer=Tracer(ring),
        )
        saves = ring.of_kind("checkpoint")
        assert saves
        assert all(e.payload["action"] == "saved" for e in saves)


class TestMetricsThroughRuntime:
    def test_engine_counters_and_timers(self):
        reg = MetricsRegistry()
        config = _config()
        metrics = TradingSimulator(config).run(_ucb(), metrics=reg)
        assert reg.counters["rounds"] == config.num_rounds
        assert reg.timer("engine.round").count == config.num_rounds
        assert reg.timer("engine.selection").count == config.num_rounds
        assert reg.timer("engine.solve").count == config.num_rounds
        assert "cumulative_regret" in reg.gauges
        # Per-seller gauges materialise at run end.
        assert f"seller.{config.num_sellers - 1}.n" in reg.gauges
        # The run's telemetry snapshot rides on the metrics object.
        assert metrics.telemetry is not None
        assert metrics.telemetry["counters"]["rounds"] == config.num_rounds

    def test_telemetry_absent_without_registry(self):
        assert TradingSimulator(_config()).run(_ucb()).telemetry is None

    def test_fault_counters(self):
        reg = MetricsRegistry()
        config = _config(num_rounds=20)
        simulator = TradingSimulator(config)
        model = simulator.fault_model(
            FaultSpec(dropout_rate=0.3, corruption_rate=0.2)
        )
        simulator.run(_ucb(), fault_model=model, metrics=reg)
        assert reg.counters["fault_events"] > 0
        assert reg.counters["quarantined_reports"] > 0

    def test_checkpoint_resume_carries_metrics_forward(self, tmp_path):
        """A resumed run restores the snapshot a checkpoint embedded."""
        config = _config(num_rounds=10)
        path = tmp_path / "c.npz"

        class Interrupt(Exception):
            pass

        from repro.sim import engine as engine_module

        # Run the first half, then crash (checkpoint at round 5 exists).
        reg1 = MetricsRegistry()
        original = engine_module.TradingSimulator._play_clean_round

        calls = {"n": 0}

        def crashing(self, *args, **kwargs):
            if calls["n"] == 7:
                raise Interrupt()
            calls["n"] += 1
            return original(self, *args, **kwargs)

        engine_module.TradingSimulator._play_clean_round = crashing
        try:
            with pytest.raises(Interrupt):
                TradingSimulator(config).run(
                    _ucb(), checkpoint_path=path, checkpoint_every=5,
                    metrics=reg1,
                )
        finally:
            engine_module.TradingSimulator._play_clean_round = original

        # Resume with a fresh registry: the embedded snapshot restores,
        # so the final rounds counter covers the whole horizon (the
        # checkpointed 5 rounds + the 5 replayed after resume).
        reg2 = MetricsRegistry()
        metrics = TradingSimulator(config).run(
            _ucb(), checkpoint_path=path, checkpoint_every=5,
            resume=True, metrics=reg2,
        )
        assert reg2.counters["rounds"] == config.num_rounds
        assert metrics.telemetry["counters"]["rounds"] == config.num_rounds
        # The restore itself was traced as a counter too.
        assert reg2.counters["checkpoint_writes"] >= 1

    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        config = _config(num_rounds=10)
        baseline = TradingSimulator(config).run(_ucb())
        path = tmp_path / "c.npz"
        TradingSimulator(config).run(
            _ucb(), num_rounds=None, checkpoint_path=path,
            checkpoint_every=4, metrics=MetricsRegistry(),
        )
        resumed = TradingSimulator(config).run(
            _ucb(), checkpoint_path=path, checkpoint_every=4, resume=True,
            metrics=MetricsRegistry(),
        )
        assert _series_equal(baseline, resumed)


class TestReplicationObservability:
    def test_seed_brackets_and_counters(self):
        from repro.bandits import RandomPolicy, UCBPolicy
        from repro.sim.replication import replicate_comparison

        ring = RingBufferSink()
        reg = MetricsRegistry()
        config = _config(num_rounds=8)
        replicate_comparison(
            config,
            lambda qualities: [UCBPolicy(), RandomPolicy()],
            num_seeds=2,
            tracer=Tracer(ring),
            metrics=reg,
        )
        assert len(ring.of_kind("seed_start")) == 2
        assert len(ring.of_kind("seed_end")) == 2
        # 2 seeds x 2 policies worth of run brackets flow through too.
        assert len(ring.of_kind("run_start")) == 4
        assert reg.counters["seeds_completed"] == 2
        assert reg.timer("replication.seed").count == 2

    def test_traced_sweep_identical_to_untraced(self):
        from repro.bandits import RandomPolicy, UCBPolicy
        from repro.sim.replication import replicate_comparison

        config = _config(num_rounds=8)

        def factory(qualities):
            return [UCBPolicy(), RandomPolicy()]

        baseline = replicate_comparison(config, factory, num_seeds=2)
        traced = replicate_comparison(
            config, factory, num_seeds=2,
            tracer=Tracer(RingBufferSink()), metrics=MetricsRegistry(),
        )
        for policy in baseline.policy_names():
            for key in ("total_revenue", "regret"):
                assert (baseline.metric(policy, key).mean
                        == traced.metric(policy, key).mean)


class TestDiagnosticsTracing:
    def test_lemma18_violation_emits_event(self):
        from repro.core.diagnostics import counter_report

        qualities = np.array([0.9, 0.7, 0.5, 0.3, 0.1])
        counts = np.array([10, 10, 10, 10, 10**7])
        ring = RingBufferSink()
        report = counter_report(qualities, counts, k=2, num_pois=4,
                                num_rounds=100, tracer=Tracer(ring))
        assert not report.all_within_bounds
        events = ring.of_kind("invariant_violation")
        assert len(events) == 1
        assert events[0].payload["seller"] == 4
        assert events[0].payload["invariant"] == "lemma18_counter_bound"

    def test_clean_run_emits_no_violation(self):
        from repro.core.diagnostics import counter_report

        qualities = np.array([0.9, 0.7, 0.5, 0.3, 0.1])
        ring = RingBufferSink()
        counter_report(qualities, np.array([50, 50, 2, 2, 2]), k=2,
                       num_pois=4, num_rounds=100, tracer=Tracer(ring))
        assert ring.of_kind("invariant_violation") == ()
