"""Mutation meta-tests for the whole-program flow rules RL101-RL105.

Each test copies the clean fixture project from
``tests/lint_fixtures/flow/<rule>/`` into a temp directory, applies a
small realistic source mutation (the defect class the rule exists
for), and asserts the rule reports it — proving detection *power*, not
just silence on good code.  A first pass on the unmutated copy pins
the clean baseline every time.
"""

import os
import shutil

import pytest

from repro.lint.framework import LintSession
from repro.lint.flow import run_flow

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures", "flow")


def flow_findings(paths):
    return run_flow(LintSession(paths)).findings


@pytest.fixture
def project(tmp_path):
    """Copy one fixture project; return (root, mutate, findings)."""

    state = {}

    def load(sub):
        dst = tmp_path / sub
        shutil.copytree(os.path.join(FIXTURES, sub), dst)
        state["root"] = str(dst)
        assert flow_findings([str(dst)]) == [], "fixture must start clean"
        return str(dst)

    def mutate(fname, old, new):
        target = os.path.join(state["root"], fname)
        with open(target, encoding="utf-8") as handle:
            source = handle.read()
        assert old in source, f"mutation anchor {old!r} missing in {fname}"
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(source.replace(old, new))

    def findings(rule=None):
        found = flow_findings([state["root"]])
        if rule is not None:
            found = [f for f in found if f.rule == rule]
        return found

    return load, mutate, findings


class TestRL101RngTaint:
    def test_local_alias_launders_past_single_file_rule(self, project):
        load, mutate, findings = project
        load("rl101")
        # the aliased call is exactly what RL001's direct-call pattern
        # cannot see — RL101's env resolution must still catch it
        mutate("launder.py", "return invoke(str, seed)",
               "ctor = np.random.default_rng\n    return ctor(seed)")
        (finding,) = findings("RL101")
        assert "raw constructor" in finding.message
        assert finding.path.endswith("launder.py")

    def test_constructor_passed_to_invoking_helper(self, project):
        load, mutate, findings = project
        load("rl101")
        mutate("launder.py", "return invoke(str, seed)",
               "return invoke(np.random.default_rng, seed)")
        (finding,) = findings("RL101")
        assert "parameter 'factory'" in finding.message
        assert "repro.quality.launder.invoke" in finding.message


class TestRL102KernelPurity:
    def test_mutating_non_out_parameter(self, project):
        load, mutate, findings = project
        load("rl102")
        mutate("kernels.py", "np.multiply(values, _SCALE, out=out)",
               "values[:] = values * _SCALE")
        found = findings("RL102")
        messages = " | ".join(f.message for f in found)
        assert "mutates parameter 'values'" in messages
        # the caller forwarding its own parameter into the mutator is
        # flagged too — the summary propagated bottom-up
        assert "passes parameter 'values'" in messages

    def test_module_state_write_propagates_to_callers(self, project):
        load, mutate, findings = project
        load("rl102")
        mutate("kernels.py", "_SCALE = 2.0", "_SCALE = 2.0\n_HISTORY = []")
        mutate("kernels.py", "    np.multiply(values, _SCALE, out=out)",
               "    _HISTORY.append(float(values[0]))\n"
               "    np.multiply(values, _SCALE, out=out)")
        found = findings("RL102")
        messages = " | ".join(f.message for f in found)
        assert "writes module-level state '_HISTORY'" in messages
        assert "calls impure repro.kernels.fixture.scale_into" in messages


class TestRL103EventKinds:
    def test_invalid_kind_through_wrapper(self, project):
        load, mutate, findings = project
        load("rl103")
        mutate("emitters.py", '"round_end"', '"round_endd"')
        messages = " | ".join(f.message for f in findings("RL103"))
        assert ("event kind 'round_endd' reaches Tracer.emit through "
                "repro.sim.emitters.forward") in messages
        # the typo also orphans the real kind
        assert "'round_end' is declared in EVENT_KINDS" in messages

    def test_dead_kind_detected_at_schema_site(self, project):
        load, mutate, findings = project
        load("rl103")
        mutate("events.py", '"trade_settled",',
               '"trade_settled",\n    "never_emitted",')
        (finding,) = findings("RL103")
        assert "dead kind" in finding.message
        assert finding.path.endswith("events.py")

    def test_invalid_trace_event_construction(self, project):
        load, mutate, findings = project
        load("rl103")
        mutate("emitters.py", 'TraceEvent("trade_settled")',
               'TraceEvent("trade_setled")')
        messages = " | ".join(f.message for f in findings("RL103"))
        assert "TraceEvent constructed with kind 'trade_setled'" in messages


class TestRL104SchemaSymmetry:
    def test_written_key_never_read(self, project):
        load, mutate, findings = project
        load("rl104")
        mutate("persist.py", '"version": _schema_version(),',
               '"version": _schema_version(),\n        "extra": 0,')
        (finding,) = findings("RL104")
        assert "key 'extra' written by save_state is never read" \
            in finding.message

    def test_required_key_never_written(self, project):
        load, mutate, findings = project
        load("rl104")
        mutate("persist.py", 'counts = payload["counts"]',
               'counts = payload["counts"]\n    ghost = payload["ghost"]')
        (finding,) = findings("RL104")
        assert "requires key 'ghost'" in finding.message

    def test_defaulted_read_is_not_required(self, project):
        load, mutate, findings = project
        load("rl104")
        # dropping the saver's "version" key is fine: the loader
        # defaults it via .get(..., 0)
        mutate("persist.py", '        "version": _schema_version(),\n', "")
        assert findings("RL104") == []


class TestRL105BackendParity:
    def test_missing_twin_pragma(self, project):
        load, mutate, findings = project
        load("rl105")
        mutate("kernels_pkg.py",
               "# repro-lint: twin=repro.core.reference.slow_scores\n", "")
        (finding,) = findings("RL105")
        assert "declares no scalar twin" in finding.message

    def test_unresolvable_twin(self, project):
        load, mutate, findings = project
        load("rl105")
        mutate("kernels_pkg.py", "twin=repro.core.reference.slow_scores",
               "twin=repro.core.reference.gone_scores")
        (finding,) = findings("RL105")
        assert "does not resolve" in finding.message

    def test_twin_parameter_order_drift(self, project):
        load, mutate, findings = project
        load("rl105")
        mutate("reference.py",
               "def slow_scores(counts, means, coefficient):",
               "def slow_scores(means, counts, coefficient):")
        (finding,) = findings("RL105")
        assert "relative order of shared parameters" in finding.message

    def test_harness_coverage_loss(self, project):
        load, mutate, findings = project
        load("rl105")
        mutate("harness.py", "from repro.kernels import fast_scores\n", "")
        mutate("harness.py", "fast = fast_scores(counts, means, coefficient)",
               "fast = slow_scores(counts, means, coefficient)")
        (finding,) = findings("RL105")
        assert "not referenced by the differential harness" \
            in finding.message

    def test_phantom_export(self, project):
        load, mutate, findings = project
        load("rl105")
        mutate("kernels_pkg.py", '__all__ = ["fast_scores"]',
               '__all__ = ["fast_scores", "phantom_kernel"]')
        (finding,) = findings("RL105")
        assert "'phantom_kernel'" in finding.message
        assert "does not resolve" in finding.message


class TestSuppression:
    def test_flow_finding_suppressed_by_pragma(self, project):
        load, mutate, findings = project
        load("rl101")
        mutate("launder.py", "return invoke(str, seed)",
               "ctor = np.random.default_rng\n"
               "    return ctor(seed)  # repro-lint: disable=RL101")
        assert findings("RL101") == []
