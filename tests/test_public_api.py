"""Sanity checks on the public API surface.

Every name exported from a package's ``__all__`` must resolve and carry
a docstring — the contract a downstream user relies on.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.entities",
    "repro.game",
    "repro.bandits",
    "repro.quality",
    "repro.data",
    "repro.sim",
    "repro.market",
    "repro.extensions",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_has_docstring(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, package_name


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name}: missing docstrings on {undocumented}"
    )


def test_version_is_exposed():
    import repro

    assert repro.__version__
    major = int(repro.__version__.split(".")[0])
    assert major >= 1


def test_exception_hierarchy():
    from repro import exceptions

    assert issubclass(exceptions.ConfigurationError, exceptions.ReproError)
    assert issubclass(exceptions.GameError, exceptions.ReproError)
    assert issubclass(exceptions.InfeasibleStrategyError,
                      exceptions.GameError)
    assert issubclass(exceptions.EquilibriumViolationError,
                      exceptions.GameError)
    assert issubclass(exceptions.SelectionError, exceptions.ReproError)
    assert issubclass(exceptions.DataTraceError, exceptions.ReproError)
    assert issubclass(exceptions.ExperimentError, exceptions.ReproError)


def test_library_errors_catchable_with_one_except():
    import numpy as np

    from repro import ReproError, SellerPopulation
    from repro.sim import SimulationConfig

    with pytest.raises(ReproError):
        SimulationConfig(num_sellers=0)
    with pytest.raises(ReproError):
        SellerPopulation.random(0, np.random.default_rng(0))


def test_package_docstring_quickstart_executes():
    """The quickstart code in ``repro.__doc__`` must stay runnable."""
    import re

    import repro

    match = re.search(r"Quickstart::\n\n((?:    .*\n|\n)+)", repro.__doc__)
    assert match, "package docstring lost its Quickstart block"
    code = "\n".join(
        line[4:] if line.startswith("    ") else line
        for line in match.group(1).splitlines()
    )
    namespace: dict = {}
    exec(compile(code, "<docstring-quickstart>", "exec"), namespace)
    assert namespace["result"].num_rounds == 500


def test_top_level_reexports_cover_core_workflow():
    # The quickstart in the README must work from top-level imports only.
    import repro

    for name in ("CMABHSMechanism", "Consumer", "Platform", "Job",
                 "SellerPopulation", "SimulationConfig",
                 "TradingSimulator", "UCBPolicy", "verify_equilibrium",
                 "theorem19_bound"):
        assert hasattr(repro, name), name
