"""End-to-end tests for ``repro lint --flow``: CLI surface, baseline
workflow, SARIF emission, ``--jobs`` determinism, ``--strict-pragmas``,
and the git ``--diff`` fast path (impact restriction + identical
findings for the changed region).
"""

import json
import os
import subprocess

import pytest

from repro.cli import main
from repro.lint.framework import LintSession
from repro.lint.flow import run_flow

CLEAN_MODULE = "# repro-lint: package=pkg.m{i}\ndef f{i}(x):\n    return x\n"

TAINTED = (
    "# repro-lint: package=pkg.tainted\n"
    "import numpy as np\n"
    "def helper(factory, seed):\n"
    "    return factory(seed)\n"
    "def stream(seed):\n"
    "    return helper(np.random.default_rng, seed)\n"
)


def write_project(root, files):
    for name, source in files.items():
        (root / name).write_text(source)


class TestCliFlow:
    def test_flow_flag_runs_whole_program_rules(self, tmp_path, capsys):
        write_project(tmp_path, {"tainted.py": TAINTED})
        assert main(["lint", "--flow", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL101" in out

    def test_selecting_flow_rule_implies_flow(self, tmp_path, capsys):
        write_project(tmp_path, {"tainted.py": TAINTED})
        assert main(["lint", "--select", "RL101", str(tmp_path)]) == 1
        assert "RL101" in capsys.readouterr().out
        # a disjoint flow selection stays quiet
        assert main(["lint", "--select", "RL104", str(tmp_path)]) == 0

    def test_sarif_format(self, tmp_path, capsys):
        write_project(tmp_path, {"tainted.py": TAINTED})
        report_path = tmp_path / "out.sarif"
        assert main(["lint", "--flow", "--format", "sarif",
                     "--report", str(report_path), str(tmp_path)]) == 1
        stdout_sarif = json.loads(capsys.readouterr().out)
        file_sarif = json.loads(report_path.read_text())
        assert stdout_sarif == file_sarif
        assert file_sarif["version"] == "2.1.0"
        (run,) = file_sarif["runs"]
        assert {r["ruleId"] for r in run["results"]} == {"RL101"}
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        # flow runs list the full combined policy
        assert {"RL001", "RL101", "RL105", "RL007"} <= rule_ids

    def test_baseline_accept_then_gate(self, tmp_path, capsys):
        write_project(tmp_path, {"tainted.py": TAINTED})
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--flow", str(tmp_path),
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        # baselined finding no longer gates
        assert main(["lint", "--flow", str(tmp_path),
                     "--baseline", str(baseline)]) == 0
        assert "baselined finding(s) suppressed" in capsys.readouterr().out
        # a new finding still does
        write_project(tmp_path, {"fresh.py": TAINTED.replace(
            "pkg.tainted", "pkg.fresh")})
        assert main(["lint", "--flow", str(tmp_path),
                     "--baseline", str(baseline)]) == 1

    def test_jobs_output_matches_serial(self, tmp_path, capsys):
        files = {f"m{i}.py": CLEAN_MODULE.format(i=i) for i in range(6)}
        files["bad.py"] = ("import numpy as np\n"
                           "rng = np.random.default_rng()\n")
        write_project(tmp_path, files)
        assert main(["lint", str(tmp_path)]) == 1
        serial_out = capsys.readouterr().out
        assert main(["lint", "--jobs", "4", str(tmp_path)]) == 1
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out

    def test_strict_pragmas_gates_orphans(self, tmp_path, capsys):
        write_project(tmp_path, {
            "mod.py": "x = 1  # repro-lint: disable=RL004\n",
        })
        assert main(["lint", str(tmp_path)]) == 0
        assert "RL007" in capsys.readouterr().out
        assert main(["lint", "--strict-pragmas", str(tmp_path)]) == 1

    def test_list_rules_includes_flow_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL007", "RL101", "RL105"):
            assert rule_id in out

    def test_unknown_flow_rule_is_a_cli_error(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--select", "RL999"]) == 1
        assert "unknown lint rule" in capsys.readouterr().err


def git(repo, *args):
    subprocess.run(["git", "-C", str(repo), *args], check=True,
                   capture_output=True,
                   env={**os.environ,
                        "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                        "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL":
                        "t@t"})


@pytest.fixture
def git_project(tmp_path):
    """A committed 12-module project; returns its root."""
    files = {f"m{i:02d}.py": CLEAN_MODULE.format(i=f"{i:02d}")
             for i in range(10)}
    files["helper.py"] = (
        "# repro-lint: package=pkg.helper\n"
        "def apply(factory, seed):\n"
        "    return factory(seed)\n"
    )
    files["caller.py"] = (
        "# repro-lint: package=pkg.caller\n"
        "import numpy as np\n"
        "from pkg.helper import apply\n"
        "def run(seed):\n"
        "    return apply(str, seed)\n"
    )
    write_project(tmp_path, files)
    git(tmp_path, "init", "-q")
    git(tmp_path, "add", ".")
    git(tmp_path, "commit", "-qm", "seed")
    return tmp_path


class TestDiffMode:
    def test_single_function_change_analyzes_under_20_percent(
            self, git_project):
        root = git_project
        source = (root / "caller.py").read_text()
        (root / "caller.py").write_text(source.replace(
            "return apply(str, seed)",
            "return apply(np.random.default_rng, seed)"))

        full = run_flow(LintSession([str(root)]))
        diff = run_flow(LintSession([str(root)]), diff_rev="HEAD",
                        repo_root=str(root))

        assert diff.total_files == 12
        assert len(diff.analyzed_files) / diff.total_files < 0.20
        assert diff.changed_functions == ["pkg.caller.run"]

        # the changed region's findings are identical to a full run
        region = [f.to_dict() for f in full.findings
                  if f.path in set(diff.analyzed_files)]
        assert [f.to_dict() for f in diff.findings] == region
        assert {f.rule for f in diff.findings} == {"RL101"}

    def test_callers_of_a_changed_function_are_in_the_impact_set(
            self, git_project):
        root = git_project
        source = (root / "helper.py").read_text()
        (root / "helper.py").write_text(source.replace(
            "    return factory(seed)\n",
            "    return factory(seed + 0)\n"))
        diff = run_flow(LintSession([str(root)]), diff_rev="HEAD",
                        repo_root=str(root))
        assert diff.changed_functions == ["pkg.helper.apply"]
        # reverse call graph pulls the caller's file back in
        analyzed = {os.path.basename(p) for p in diff.analyzed_files}
        assert {"helper.py", "caller.py"} <= analyzed
        assert len(diff.analyzed_files) < diff.total_files

    def test_untouched_tree_analyzes_nothing(self, git_project):
        diff = run_flow(LintSession([str(git_project)]), diff_rev="HEAD",
                        repo_root=str(git_project))
        assert diff.analyzed_files == []
        assert diff.findings == []

    def test_cli_diff_flag(self, git_project, capsys, monkeypatch):
        monkeypatch.chdir(git_project)
        source = (git_project / "caller.py").read_text()
        (git_project / "caller.py").write_text(source.replace(
            "return apply(str, seed)",
            "return apply(np.random.default_rng, seed)"))
        assert main(["lint", "--flow", "--diff", "HEAD", "."]) == 1
        assert "RL101" in capsys.readouterr().out
