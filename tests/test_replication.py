"""Unit tests for the multi-seed replication harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandits.policies import OptimalPolicy, RandomPolicy, UCBPolicy
from repro.exceptions import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.replication import (
    MetricSummary,
    replicate_comparison,
)

CONFIG = SimulationConfig(num_sellers=15, num_selected=4, num_pois=4,
                          num_rounds=150, seed=0)


def factory(qualities: np.ndarray):
    return [OptimalPolicy(qualities), UCBPolicy(), RandomPolicy()]


class TestMetricSummary:
    def test_from_samples(self):
        summary = MetricSummary.from_samples([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.num_seeds == 3

    def test_single_sample_zero_std(self):
        assert MetricSummary.from_samples([5.0]).std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="zero samples"):
            MetricSummary.from_samples([])

    def test_format(self):
        text = MetricSummary.from_samples([1.0, 3.0]).format()
        assert "+/-" in text

    def test_stderr_is_std_over_sqrt_n(self):
        summary = MetricSummary.from_samples([1.0, 2.0, 3.0, 4.0])
        assert summary.stderr == pytest.approx(summary.std / 2.0)

    def test_single_sample_stderr_is_nan(self):
        # One seed cannot estimate its own spread; nan (rendered n/a)
        # instead of a silently-exact-looking 0.
        summary = MetricSummary.from_samples([5.0])
        assert np.isnan(summary.stderr)
        assert "n/a" in summary.format_stderr()

    def test_format_stderr(self):
        text = MetricSummary.from_samples([1.0, 3.0]).format_stderr()
        assert "+/-" in text
        assert "n/a" not in text


class TestReplicateComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return replicate_comparison(CONFIG, factory, num_seeds=3)

    def test_all_policies_summarised(self, result):
        assert set(result.policy_names()) == {"optimal", "CMAB-HS",
                                              "random"}

    def test_seeds_recorded(self, result):
        assert result.seeds == [0, 1, 2]

    def test_each_metric_has_num_seeds_samples(self, result):
        summary = result.metric("CMAB-HS", "total_revenue")
        assert summary.num_seeds == 3

    def test_optimal_regret_zero_across_seeds(self, result):
        summary = result.metric("optimal", "regret")
        assert summary.mean == 0.0
        assert summary.std == 0.0

    def test_ordering_separation(self, result):
        # Optimal beats random on revenue robustly across seeds.
        separation = result.separation("optimal", "random",
                                       "total_revenue")
        assert separation > 1.0

    def test_unknown_policy_raises(self, result):
        with pytest.raises(ConfigurationError, match="no replicated"):
            result.metric("nonexistent", "regret")

    def test_unknown_metric_raises(self, result):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            result.metric("random", "nonexistent")

    def test_table_renders(self, result):
        table = result.to_table()
        assert "policy" in table
        assert "CMAB-HS" in table

    def test_table_names_its_uncertainty(self, result):
        assert "standard error" in result.to_table()

    def test_single_seed_table_is_visibly_unreliable(self):
        result = replicate_comparison(CONFIG, factory, num_seeds=1)
        assert "n/a" in result.to_table()

    def test_seed_durations_recorded(self, result):
        assert sorted(result.seed_durations) == result.seeds
        assert all(duration > 0
                   for duration in result.seed_durations.values())
        assert result.cumulative_seed_time == pytest.approx(
            sum(result.seed_durations.values())
        )

    def test_rejects_nonpositive_seeds(self):
        with pytest.raises(ConfigurationError, match="num_seeds"):
            replicate_comparison(CONFIG, factory, num_seeds=0)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            replicate_comparison(CONFIG, factory, num_seeds=2, workers=0)

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ConfigurationError, match="checkpoint_path"):
            replicate_comparison(CONFIG, factory, num_seeds=2, resume=True)

    def test_first_seed_offset(self):
        result = replicate_comparison(CONFIG, factory, num_seeds=2,
                                      first_seed=10)
        assert result.seeds == [10, 11]
