"""Property-based end-to-end tests of the CMAB-HS mechanism.

For randomly drawn small instances, a full Algorithm-1 run must satisfy
the paper's guarantees: finite profits, non-negative monotone regret
below the Theorem-19 bound, Stackelberg Equilibrium in sampled rounds,
and exact bookkeeping identities.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equilibrium import verify_equilibrium
from repro.core.incentive import ClosedFormStackelbergSolver
from repro.core.mechanism import CMABHSMechanism
from repro.core.regret import gap_statistics, theorem19_bound
from repro.entities.consumer import Consumer
from repro.entities.job import Job
from repro.entities.platform import Platform
from repro.entities.seller import SellerPopulation


@st.composite
def instances(draw):
    """A random small CDT instance plus a mechanism over it."""
    m = draw(st.integers(4, 10))
    k = draw(st.integers(1, m - 1))
    num_pois = draw(st.integers(1, 6))
    num_rounds = draw(st.integers(5, 40))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    population = SellerPopulation.random(m, rng)
    job = Job.simple(num_pois=num_pois, num_rounds=num_rounds)
    mechanism = CMABHSMechanism(
        population, job,
        Platform.default(theta=draw(st.floats(0.05, 1.0)),
                         lam=draw(st.floats(0.0, 2.0)),
                         price_max=5.0),
        Consumer.default(omega=draw(st.floats(100.0, 2_000.0))),
        k=k, seed=seed,
    )
    return population, job, mechanism, k


class TestMechanismProperties:
    @given(data=instances())
    @settings(max_examples=25, deadline=None)
    def test_run_invariants(self, data):
        population, job, mechanism, k = data
        result = mechanism.run()

        # Bookkeeping: one outcome per round, selections of the right size.
        assert result.num_rounds == job.num_rounds
        assert result.rounds[0].selected.size == len(population)
        for outcome in result.rounds[1:]:
            assert outcome.selected.size == k

        # All profits and strategies finite.
        for outcome in result.rounds:
            assert np.isfinite(outcome.consumer_profit)
            assert np.isfinite(outcome.platform_profit)
            assert np.all(np.isfinite(outcome.seller_profits))
            assert np.isfinite(outcome.service_price)
            assert outcome.collection_price <= 5.0 + 1e-9
            assert np.all(outcome.sensing_times >= 0.0)

        # Regret: non-negative, monotone, below Theorem 19.
        history = result.regret_history
        assert np.all(history >= 0.0)
        assert np.all(np.diff(history) >= -1e-9)
        gaps = gap_statistics(population.expected_qualities, k)
        bound = theorem19_bound(
            len(population), k, job.num_pois, job.num_rounds,
            gaps.delta_min, gaps.delta_max,
        )
        assert result.cumulative_regret <= bound

        # Counters: every seller observed at least L times (round 0).
        assert np.all(result.final_counts >= job.num_pois)

    @given(data=instances())
    @settings(max_examples=10, deadline=None)
    def test_sampled_round_is_equilibrium(self, data):
        __, job, mechanism, k = data
        result = mechanism.run()
        outcome = result.rounds[min(3, result.num_rounds - 1)]
        if outcome.selected.size != k:
            return  # round 0 (explore-all) uses fixed pricing, not the game
        game = mechanism.build_game(outcome.selected,
                                    outcome.estimated_qualities)
        solver = ClosedFormStackelbergSolver()
        report = verify_equilibrium(
            game, outcome.strategy, solver.cascade,
            num_points=150, tolerance=1.0,
        )
        assert report.is_equilibrium, report.describe()
