"""The ``repro verify`` subcommand and verification runner."""

from __future__ import annotations

import json

import pytest

import repro.sim.rounds as rounds_module
from repro.cli import build_parser, main
from repro.exceptions import ConfigurationError
from repro.verify import run_verification


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.seed == 0
        assert args.oracle_cases == 12
        assert args.strict_rounds == 60
        assert args.goldens_dir is None
        assert args.only is None
        assert args.update_goldens is False
        assert args.report is None

    def test_only_is_repeatable(self):
        args = build_parser().parse_args(
            ["verify", "--only", "strict", "--only", "goldens"])
        assert args.only == ["strict", "goldens"]

    def test_only_rejects_unknown_section(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--only", "bogus"])

    def test_quickstart_strict_flag(self):
        assert build_parser().parse_args(["quickstart"]).strict is False
        assert build_parser().parse_args(
            ["quickstart", "--strict"]).strict is True


class TestRunner:
    def test_rejects_unknown_section(self):
        with pytest.raises(ConfigurationError, match="unknown verification"):
            run_verification(sections=("bogus",))

    def test_section_subset_leaves_others_unset(self):
        report = run_verification(sections=("strict",), strict_rounds=15)
        assert report.oracles is None
        assert report.goldens is None
        assert report.strict is not None
        assert report.passed == report.strict.passed

    def test_report_to_text_has_verdict_line(self):
        report = run_verification(sections=("strict",), strict_rounds=15)
        text = report.to_text()
        assert text.splitlines()[-1].startswith("verification:")


class TestVerifyCommand:
    def test_strict_section_passes(self, capsys):
        assert main(["verify", "--only", "strict",
                     "--strict-rounds", "20"]) == 0
        out = capsys.readouterr().out
        assert "strict: PASS" in out
        assert "verification: PASS" in out

    def test_goldens_against_checked_in_store(self, capsys):
        assert main(["verify", "--only", "goldens"]) == 0
        out = capsys.readouterr().out
        assert "goldens: PASS (3 cases, 0 drifted)" in out

    def test_update_then_verify_round_trips(self, tmp_path, capsys):
        assert main(["verify", "--update-goldens",
                     "--goldens-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        # Three engine goldens plus the runtime churn golden.
        assert out.count("wrote ") == 4
        assert main(["verify", "--only", "goldens",
                     "--goldens-dir", str(tmp_path)]) == 0
        assert main(["verify", "--only", "runtime",
                     "--goldens-dir", str(tmp_path)]) == 0

    def test_missing_goldens_fail(self, tmp_path, capsys):
        assert main(["verify", "--only", "goldens",
                     "--goldens-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "goldens: FAIL" in out
        assert "--update-goldens" in out

    def test_unwritable_report_path_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "no-such-dir" / "report.json"
        assert main(["verify", "--only", "strict", "--strict-rounds", "15",
                     "--report", str(path)]) == 1
        err = capsys.readouterr().err
        assert "cannot write verification report" in err

    def test_report_artifact_written(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["verify", "--only", "strict", "--strict-rounds", "15",
                     "--report", str(path)]) == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["passed"] is True
        assert payload["strict"]["passed"] is True
        assert "oracles" not in payload


class TestMutationSmoke:
    """A deliberately perturbed closed form must fail ``repro verify``."""

    @pytest.fixture
    def perturbed_solver(self, monkeypatch):
        true_solve = rounds_module.solve_round_fast

        def perturbed(*args, **kwargs):
            p_j, p, taus = true_solve(*args, **kwargs)
            # A 1% price error: far below anything eyeballing revenue
            # curves would catch.
            return p_j, p * 1.01, taus

        monkeypatch.setattr(rounds_module, "solve_round_fast", perturbed)

    def test_goldens_catch_perturbed_solver(self, perturbed_solver, capsys):
        assert main(["verify", "--only", "goldens"]) == 1
        out = capsys.readouterr().out
        assert "goldens: FAIL" in out
        assert "verification: FAIL" in out

    def test_strict_catches_perturbed_solver(self, perturbed_solver, capsys):
        assert main(["verify", "--only", "strict",
                     "--strict-rounds", "20"]) == 1
        out = capsys.readouterr().out
        assert "strict: FAIL" in out
        assert "violated an invariant" in out

    def test_oracles_catch_perturbed_closed_form(self, monkeypatch, capsys):
        import repro.verify.oracles as oracles

        true_price = oracles.optimal_collection_price
        monkeypatch.setattr(
            oracles, "optimal_collection_price",
            lambda game, pj: true_price(game, pj) * 1.05 + 0.02)
        # Edge cases only (--oracle-cases 0) keep the mutated suite fast;
        # the Stage-2 differential oracle still fails by construction.
        assert main(["verify", "--only", "oracles",
                     "--oracle-cases", "0"]) == 1
        out = capsys.readouterr().out
        assert "oracles: FAIL" in out
        assert "verification: FAIL" in out
