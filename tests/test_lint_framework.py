"""Tests for the repro.lint framework: suppressions, reporters, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.lint import (
    all_rules,
    findings_to_json,
    get_rule,
    lint_paths,
    lint_source,
    render_findings,
)
from repro.lint.framework import Finding, _infer_package
from repro.lint.reporters import JSON_REPORT_VERSION

RNG_LINE = "import numpy as np\nrng = np.random.default_rng()\n"


class TestRegistry:
    def test_all_six_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [f"RL00{i}" for i in range(1, 7)]

    def test_rules_have_title_and_rationale(self):
        for rule in all_rules():
            assert rule.title
            assert rule.rationale

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("rl001").rule_id == "RL001"

    def test_get_rule_unknown_id(self):
        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            get_rule("RL999")

    def test_select_validates_before_running(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            lint_source("x = 1\n", select=["NOPE"])


class TestPackageInference:
    @pytest.mark.parametrize("path,package", [
        ("src/repro/sim/engine.py", "repro.sim.engine"),
        ("src/repro/sim/__init__.py", "repro.sim"),
        ("src/repro/__init__.py", "repro"),
        ("tests/lint_fixtures/rl001_bad.py", ""),
    ])
    def test_infer_package(self, path, package):
        assert _infer_package(path) == package

    def test_package_pragma_overrides_inference(self):
        source = (
            "# repro-lint: package=repro.game.fake\n"
            "ok = 1.0 == 2.0\n"
        )
        findings = lint_source(source, path="anywhere.py")
        assert [f.rule for f in findings] == ["RL004"]


class TestSuppressions:
    def test_line_pragma_suppresses_one_rule(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=RL001\n"
        )
        assert lint_source(source) == []

    def test_line_pragma_for_other_rule_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=RL002\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RL001"]

    def test_disable_all_on_line(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=all\n"
        )
        assert lint_source(source) == []

    def test_file_pragma_suppresses_everywhere(self):
        source = "# repro-lint: disable-file=RL001\n" + RNG_LINE
        assert lint_source(source) == []

    def test_pragma_inside_string_literal_is_ignored(self):
        source = (
            "s = '# repro-lint: disable-file=RL001'\n" + RNG_LINE
        )
        assert [f.rule for f in lint_source(source)] == ["RL001"]

    def test_syntax_error_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="cannot lint"):
            lint_source("def broken(:\n", path="broken.py")


class TestReporters:
    def _findings(self):
        return lint_source(RNG_LINE, path="demo.py")

    def test_human_report_lists_location_and_summary(self):
        report = render_findings(self._findings(), files_checked=1)
        assert "demo.py:2:7: RL001" in report
        assert report.endswith("1 finding (RL001=1)")

    def test_human_report_clean(self):
        report = render_findings([], files_checked=3)
        assert report == "clean in 3 files: no lint findings"

    def test_json_report_schema(self):
        report = findings_to_json(self._findings(), files_checked=1)
        assert report["version"] == JSON_REPORT_VERSION
        assert report["tool"] == "repro-lint"
        assert report["files_checked"] == 1
        assert report["counts"] == {"RL001": 1}
        (item,) = report["findings"]
        assert set(item) == {
            "path", "line", "column", "rule", "message", "snippet",
            "severity",
        }
        assert item["severity"] == "error"
        assert item["rule"] == "RL001"
        assert item["snippet"] == "rng = np.random.default_rng()"
        assert set(report["rules"]) == {f"RL00{i}" for i in range(1, 7)}
        json.dumps(report)  # must be serialisable as-is

    def test_finding_format_includes_snippet(self):
        finding = Finding(path="p.py", line=3, column=4, rule="RL001",
                          message="msg", snippet="code here")
        assert finding.format() == "p.py:3:5: RL001 msg\n    code here"


class TestLintPaths:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such file"):
            lint_paths([str(tmp_path / "nope.py")])

    def test_counts_files_and_sorts_findings(self, tmp_path):
        (tmp_path / "b.py").write_text(RNG_LINE)
        (tmp_path / "a.py").write_text(RNG_LINE)
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "c.py").write_text(RNG_LINE)
        findings, checked = lint_paths([str(tmp_path)])
        assert checked == 2  # __pycache__ skipped
        assert [f.path for f in findings] == [
            str(tmp_path / "a.py"), str(tmp_path / "b.py"),
        ]


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0
        assert "no lint findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(RNG_LINE)
        assert main(["lint", str(target)]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_select_restricts_rules(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(RNG_LINE)
        assert main(["lint", str(target), "--select", "RL002,RL003"]) == 0

    def test_json_format_and_report_file(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(RNG_LINE)
        report_path = tmp_path / "report.json"
        assert main(["lint", str(target), "--format", "json",
                     "--report", str(report_path)]) == 1
        stdout_report = json.loads(capsys.readouterr().out)
        file_report = json.loads(report_path.read_text())
        assert stdout_report == file_report
        assert file_report["counts"] == {"RL001": 1}

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 7):
            assert f"RL00{i}" in out

    def test_unknown_rule_is_a_cli_error(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--select", "RL999"]) == 1
        assert "unknown lint rule" in capsys.readouterr().err
