"""Unit tests for the selection-only CMAB environment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandits.environment import CMABEnvironment
from repro.bandits.policies import (
    OptimalPolicy,
    RandomPolicy,
    UCBPolicy,
)
from repro.exceptions import ConfigurationError
from repro.quality.distributions import (
    DeterministicQuality,
    TruncatedGaussianQuality,
)

MEANS = np.array([0.9, 0.7, 0.5, 0.3, 0.1])


def make_environment(model=None, num_rounds=200, k=2, seed=0):
    if model is None:
        model = TruncatedGaussianQuality(MEANS)
    return CMABEnvironment(model, num_pois=4, k=k, num_rounds=num_rounds,
                           seed=seed)


class TestConstruction:
    def test_rejects_oversized_k(self):
        with pytest.raises(ConfigurationError, match="k must be"):
            make_environment(k=6)

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ConfigurationError, match="num_rounds"):
            make_environment(num_rounds=0)


class TestRun:
    def test_optimal_policy_zero_regret(self):
        env = make_environment()
        result = env.run(OptimalPolicy(MEANS))
        assert result.cumulative_regret == 0.0
        assert result.policy_name == "optimal"

    def test_random_policy_linear_regret(self):
        env = make_environment(num_rounds=400)
        result = env.run(RandomPolicy())
        history = result.regret_history
        # Regret per round roughly constant: halves differ by < 40%.
        first = history[199] / 200.0
        second = (history[-1] - history[199]) / 200.0
        assert second > 0.6 * first

    def test_ucb_regret_below_random(self):
        env = make_environment(num_rounds=600)
        ucb = env.run(UCBPolicy())
        rnd = env.run(RandomPolicy())
        assert ucb.cumulative_regret < rnd.cumulative_regret

    def test_ucb_learns_true_means(self):
        env = make_environment(num_rounds=600)
        result = env.run(UCBPolicy())
        np.testing.assert_allclose(result.final_means, MEANS, atol=0.08)

    def test_selection_counts_sum(self):
        env = make_environment(num_rounds=100, k=2)
        result = env.run(RandomPolicy())
        # 99 rounds of K=2 plus whatever round 0 selected (also 2 here).
        assert result.selection_counts.sum() == 200

    def test_ucb_initial_round_counts_everyone(self):
        env = make_environment(num_rounds=50, k=2)
        result = env.run(UCBPolicy())
        assert np.all(result.selection_counts >= 1)
        assert result.selection_counts.sum() == 5 + 49 * 2

    def test_realized_close_to_expected_for_deterministic(self):
        env = make_environment(model=DeterministicQuality(MEANS),
                               num_rounds=100)
        result = env.run(OptimalPolicy(MEANS))
        assert result.realized_revenue == pytest.approx(
            result.expected_revenue
        )

    def test_same_seed_reproducible(self):
        a = make_environment(seed=3).run(UCBPolicy())
        b = make_environment(seed=3).run(UCBPolicy())
        assert a.realized_revenue == b.realized_revenue
        np.testing.assert_array_equal(a.selection_counts,
                                      b.selection_counts)

    def test_different_seeds_differ(self):
        a = make_environment(seed=3).run(RandomPolicy())
        b = make_environment(seed=4).run(RandomPolicy())
        assert not np.array_equal(a.selection_counts, b.selection_counts)
