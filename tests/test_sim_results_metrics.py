"""Unit tests for result containers and metric helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.metrics import (
    delta_profit_series,
    moving_average,
    regret_growth_rate,
    revenue_share,
)
from repro.sim.results import PolicyComparison, RunMetrics


def make_run(name="test", n=10, revenue=1.0, poc=5.0, pop=2.0,
             pos=0.5, regret_rate=0.0) -> RunMetrics:
    ones = np.ones(n)
    return RunMetrics(
        policy_name=name,
        realized_revenue=revenue * ones,
        expected_revenue=revenue * ones,
        regret=np.cumsum(regret_rate * ones),
        consumer_profit=poc * ones,
        platform_profit=pop * ones,
        seller_profit_mean=pos * ones,
        service_price=3.0 * ones,
        collection_price=1.0 * ones,
        total_sensing_time=2.0 * ones,
        selection_counts=np.array([n, n]),
        estimation_error=0.1 * ones,
    )


class TestRunMetrics:
    def test_rejects_misaligned_series(self):
        with pytest.raises(ConfigurationError, match="length"):
            RunMetrics(
                policy_name="bad",
                realized_revenue=np.ones(5),
                expected_revenue=np.ones(4),
                regret=np.ones(5),
                consumer_profit=np.ones(5),
                platform_profit=np.ones(5),
                seller_profit_mean=np.ones(5),
                service_price=np.ones(5),
                collection_price=np.ones(5),
                total_sensing_time=np.ones(5),
                selection_counts=np.ones(2),
                estimation_error=np.ones(5),
            )

    def test_aggregates(self):
        run = make_run(n=10, revenue=2.0, poc=5.0)
        assert run.total_realized_revenue == pytest.approx(20.0)
        assert run.mean_consumer_profit == pytest.approx(5.0)
        assert run.num_rounds == 10

    def test_final_regret(self):
        run = make_run(n=10, regret_rate=3.0)
        assert run.final_regret == pytest.approx(30.0)

    def test_summary_keys(self):
        summary = make_run().summary()
        assert set(summary) == {
            "total_revenue", "expected_revenue", "regret",
            "mean_poc", "mean_pop", "mean_pos",
        }


class TestPolicyComparison:
    def test_add_and_lookup(self):
        comparison = PolicyComparison()
        comparison.add(make_run("optimal"))
        comparison.add(make_run("random"))
        assert "random" in comparison
        assert comparison["random"].policy_name == "random"

    def test_duplicate_rejected(self):
        comparison = PolicyComparison()
        comparison.add(make_run("x"))
        with pytest.raises(ConfigurationError, match="duplicate"):
            comparison.add(make_run("x"))

    def test_optimal_required_for_deltas(self):
        comparison = PolicyComparison()
        comparison.add(make_run("random"))
        with pytest.raises(ConfigurationError, match="optimal"):
            comparison.delta_profits("random")

    def test_delta_profits_signs(self):
        comparison = PolicyComparison()
        comparison.add(make_run("optimal", poc=10.0, pop=4.0, pos=1.0))
        comparison.add(make_run("random", poc=7.0, pop=3.0, pos=0.5))
        deltas = comparison.delta_profits("random")
        assert deltas["delta_poc"] == pytest.approx(3.0)
        assert deltas["delta_pop"] == pytest.approx(1.0)
        assert deltas["delta_pos"] == pytest.approx(0.5)

    def test_revenue_table_order(self):
        comparison = PolicyComparison()
        comparison.add(make_run("optimal"))
        comparison.add(make_run("random"))
        names = [row[0] for row in comparison.revenue_table()]
        assert names == ["optimal", "random"]


class TestDeltaProfitSeries:
    def test_converges_to_scalar_delta(self):
        comparison = PolicyComparison()
        comparison.add(make_run("optimal", n=20, poc=10.0))
        comparison.add(make_run("random", n=20, poc=7.0))
        series = delta_profit_series(comparison, "random")
        assert series["delta_poc"][-1] == pytest.approx(
            comparison.delta_profits("random")["delta_poc"]
        )

    def test_shapes(self):
        comparison = PolicyComparison()
        comparison.add(make_run("optimal", n=15))
        comparison.add(make_run("random", n=15))
        series = delta_profit_series(comparison, "random")
        for values in series.values():
            assert values.shape == (15,)


class TestMovingAverage:
    def test_constant_series(self):
        out = moving_average(np.full(10, 3.0), window=4)
        np.testing.assert_allclose(out, 3.0)

    def test_window_one_is_identity(self):
        series = np.array([1.0, 5.0, 2.0])
        np.testing.assert_allclose(moving_average(series, 1), series)

    def test_known_values(self):
        series = np.array([1.0, 2.0, 3.0, 4.0])
        out = moving_average(series, window=2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError, match="window"):
            moving_average(np.ones(3), 0)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError, match="1-D"):
            moving_average(np.ones((2, 2)), 1)


class TestRegretGrowthRate:
    def test_linear_regret_constant_rate(self):
        run = make_run(n=100, regret_rate=2.0)
        assert regret_growth_rate(run) == pytest.approx(2.0)

    def test_zero_regret_zero_rate(self):
        run = make_run(n=100, regret_rate=0.0)
        assert regret_growth_rate(run) == 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError, match="tail_fraction"):
            regret_growth_rate(make_run(), tail_fraction=0.0)


class TestRevenueShare:
    def test_equal_runs_share_one(self):
        comparison = PolicyComparison()
        comparison.add(make_run("optimal", revenue=2.0))
        comparison.add(make_run("random", revenue=2.0))
        assert revenue_share(comparison, "random") == pytest.approx(1.0)

    def test_half_revenue(self):
        comparison = PolicyComparison()
        comparison.add(make_run("optimal", revenue=2.0))
        comparison.add(make_run("random", revenue=1.0))
        assert revenue_share(comparison, "random") == pytest.approx(0.5)
