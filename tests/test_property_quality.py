"""Property-based tests (hypothesis) for quality models and cost functions."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entities.costs import (
    LogValuation,
    QuadraticAggregationCost,
    QuadraticSellerCost,
)
from repro.quality.distributions import (
    BernoulliQuality,
    BetaQuality,
    TruncatedGaussianQuality,
    UniformQuality,
)

mean_vectors = st.lists(st.floats(0.0, 1.0), min_size=1,
                        max_size=20).map(np.array)


class TestObservationRangeProperty:
    @given(means=mean_vectors, seed=st.integers(0, 10_000),
           num_pois=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_all_models_emit_unit_interval(self, means, seed, num_pois):
        rng = np.random.default_rng(seed)
        sellers = np.arange(means.size)
        for model in (
            TruncatedGaussianQuality(means, sigma=0.3),
            BernoulliQuality(means),
            BetaQuality(means),
            UniformQuality(means, width=0.5),
        ):
            out = model.observe(rng, sellers, num_pois)
            assert out.shape == (means.size, num_pois)
            assert np.all(out >= 0.0)
            assert np.all(out <= 1.0)


class TestSellerCostProperties:
    @given(a=st.floats(0.01, 5.0), b=st.floats(0.0, 5.0),
           quality=st.floats(0.01, 1.0),
           tau1=st.floats(0.0, 10.0), tau2=st.floats(0.0, 10.0))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_time(self, a, b, quality, tau1, tau2):
        cost = QuadraticSellerCost(a=a, b=b)
        lo, hi = sorted((tau1, tau2))
        assert cost(lo, quality) <= cost(hi, quality) + 1e-12

    @given(a=st.floats(0.01, 5.0), b=st.floats(0.0, 5.0),
           quality=st.floats(0.01, 1.0),
           tau1=st.floats(0.0, 10.0), tau2=st.floats(0.0, 10.0))
    @settings(max_examples=80, deadline=None)
    def test_convex_in_time(self, a, b, quality, tau1, tau2):
        cost = QuadraticSellerCost(a=a, b=b)
        midpoint = (tau1 + tau2) / 2.0
        chord = (cost(tau1, quality) + cost(tau2, quality)) / 2.0
        assert cost(midpoint, quality) <= chord + 1e-9

    @given(a=st.floats(0.01, 5.0), b=st.floats(0.0, 5.0),
           quality=st.floats(0.01, 1.0), price=st.floats(0.0, 20.0))
    @settings(max_examples=80, deadline=None)
    def test_optimal_time_is_global_max(self, a, b, quality, price):
        cost = QuadraticSellerCost(a=a, b=b)
        tau_star = cost.optimal_sensing_time(price, quality)
        best = price * tau_star - cost(tau_star, quality)
        for tau in np.linspace(0.0, max(2.0 * tau_star, 1.0), 25):
            assert price * tau - cost(tau, quality) <= best + 1e-8


class TestValuationProperties:
    @given(omega=st.floats(1.01, 5_000.0), quality=st.floats(0.0, 1.0),
           t1=st.floats(0.0, 100.0), t2=st.floats(0.0, 100.0))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_time(self, omega, quality, t1, t2):
        valuation = LogValuation(omega=omega)
        lo, hi = sorted((t1, t2))
        assert valuation(lo, quality) <= valuation(hi, quality) + 1e-9

    @given(omega=st.floats(1.01, 5_000.0), quality=st.floats(0.01, 1.0),
           t1=st.floats(0.0, 100.0), t2=st.floats(0.0, 100.0))
    @settings(max_examples=80, deadline=None)
    def test_concave_in_time(self, omega, quality, t1, t2):
        valuation = LogValuation(omega=omega)
        midpoint = (t1 + t2) / 2.0
        chord = (valuation(t1, quality) + valuation(t2, quality)) / 2.0
        assert valuation(midpoint, quality) >= chord - 1e-8

    @given(omega=st.floats(1.01, 5_000.0), total=st.floats(0.0, 100.0),
           q1=st.floats(0.0, 1.0), q2=st.floats(0.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_quality(self, omega, total, q1, q2):
        valuation = LogValuation(omega=omega)
        lo, hi = sorted((q1, q2))
        assert valuation(total, lo) <= valuation(total, hi) + 1e-9


class TestAggregationCostProperties:
    @given(theta=st.floats(0.01, 2.0), lam=st.floats(0.0, 5.0),
           t1=st.floats(0.0, 50.0), t2=st.floats(0.0, 50.0))
    @settings(max_examples=80, deadline=None)
    def test_superadditive(self, theta, lam, t1, t2):
        # Quadratic aggregation cost is superadditive: merging two loads
        # costs at least as much as handling them separately.
        cost = QuadraticAggregationCost(theta=theta, lam=lam)
        assert cost(t1 + t2) >= cost(t1) + cost(t2) - 1e-9
