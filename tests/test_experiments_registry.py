"""Unit tests for the experiment registry and result containers."""

from __future__ import annotations

import numpy as np
import pytest

import repro.experiments  # noqa: F401 - registers everything
from repro.exceptions import ExperimentError
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    get_experiment,
    list_experiments,
    run_experiment,
)

EXPECTED_IDS = {
    "table2", "example",
    "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        registered = {experiment_id for experiment_id, __ in list_experiments()}
        assert EXPECTED_IDS <= registered

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("fig99")

    def test_list_sorted(self):
        ids = [experiment_id for experiment_id, __ in list_experiments()]
        assert ids == sorted(ids)


class TestScale:
    def test_environment_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert Scale.from_environment() is Scale.SMALL

    @pytest.mark.parametrize("value", ["1", "true", "paper", "FULL"])
    def test_environment_truthy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_FULL_SCALE", value)
        assert Scale.from_environment() is Scale.PAPER

    def test_environment_falsy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "0")
        assert Scale.from_environment() is Scale.SMALL


class TestSeries:
    def test_rejects_misaligned(self):
        with pytest.raises(ExperimentError, match="aligned"):
            Series("x", np.array([1.0, 2.0]), np.array([1.0]))


class TestExperimentResult:
    def make_result(self) -> ExperimentResult:
        result = ExperimentResult("figX", "demo", "n")
        result.add_series("panel", Series("a", np.array([1.0, 2.0]),
                                          np.array([3.0, 4.0])))
        result.add_series("panel", Series("b", np.array([1.0, 2.0]),
                                          np.array([5.0, 6.0])))
        return result

    def test_panel_lookup(self):
        result = self.make_result()
        assert len(result.panel("panel")) == 2

    def test_unknown_panel_raises(self):
        with pytest.raises(ExperimentError, match="no panel"):
            self.make_result().panel("missing")

    def test_series_lookup(self):
        series = self.make_result().series("panel", "b")
        np.testing.assert_array_equal(series.y, [5.0, 6.0])

    def test_unknown_series_raises(self):
        with pytest.raises(ExperimentError, match="no series"):
            self.make_result().series("panel", "zzz")

    def test_to_text_contains_values(self):
        text = self.make_result().to_text()
        assert "figX" in text
        assert "panel" in text
        assert "5" in text

    def test_to_text_empty_panel(self):
        result = ExperimentResult("figY", "t", "x", panels={"empty": []})
        assert "(empty panel)" in result.to_text()


class TestRunExperiment:
    def test_table2_runs_and_matches(self):
        result = run_experiment("table2", Scale.SMALL)
        assert any("all defaults match" in note for note in result.notes)

    def test_example_runs(self):
        result = run_experiment("example", Scale.SMALL)
        assert "strategies" in result.panels
        assert "selections" in result.panels
