"""Unit tests for the numerical backward-induction solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.game.profits import GameInstance, StrategyProfile
from repro.game.stackelberg import (
    NumericalStackelbergSolver,
    SolvedGame,
    solve_stage1_numeric,
    solve_stage2_numeric,
    solve_stage3_numeric,
)


@pytest.fixture
def game(rng) -> GameInstance:
    return GameInstance(
        qualities=rng.uniform(0.3, 1.0, 4),
        cost_a=rng.uniform(0.1, 0.5, 4),
        cost_b=rng.uniform(0.1, 1.0, 4),
        theta=0.1,
        lam=1.0,
        omega=500.0,
        service_price_bounds=(0.0, 10_000.0),
        collection_price_bounds=(0.0, 10_000.0),
    )


class TestStage3:
    def test_matches_closed_form_interior(self, game):
        price = 3.0
        numeric = solve_stage3_numeric(game, price)
        closed = game.seller_best_responses(price)
        np.testing.assert_allclose(numeric, closed, atol=1e-5)

    def test_zero_price_zero_times(self, game):
        np.testing.assert_allclose(
            solve_stage3_numeric(game, 0.0), 0.0, atol=1e-6
        )

    def test_respects_round_duration(self, rng):
        capped = GameInstance(
            qualities=np.array([0.5]), cost_a=np.array([0.2]),
            cost_b=np.array([0.1]), theta=0.1, lam=1.0, omega=100.0,
            max_sensing_time=0.5,
        )
        taus = solve_stage3_numeric(capped, 100.0)
        assert taus[0] == pytest.approx(0.5, abs=1e-6)


class TestStage2:
    def test_first_order_condition(self, game):
        service_price = 12.0
        price = solve_stage2_numeric(game, service_price)

        def profit(p: float) -> float:
            return game.platform_profit(
                service_price, p, solve_stage3_numeric(game, p)
            )

        h = 1e-4
        derivative = (profit(price + h) - profit(price - h)) / (2 * h)
        assert abs(derivative) < 0.05

    def test_never_exceeds_service_price(self, game):
        price = solve_stage2_numeric(game, 2.0)
        assert price <= 2.0 + 1e-9

    def test_respects_lower_bound(self, rng):
        game = GameInstance(
            qualities=np.array([0.5]), cost_a=np.array([0.2]),
            cost_b=np.array([0.1]), theta=0.1, lam=1.0, omega=100.0,
            collection_price_bounds=(1.5, 100.0),
        )
        assert solve_stage2_numeric(game, 2.0) >= 1.5


class TestStage1:
    def test_interior_maximum(self, game):
        price = solve_stage1_numeric(game, coarse_points=61)

        def profit(p_j: float) -> float:
            collection = solve_stage2_numeric(game, p_j,
                                              coarse_points=201)
            return game.consumer_profit(
                p_j, solve_stage3_numeric(game, collection)
            )

        # No nearby price does meaningfully better.
        best = profit(price)
        for delta in (-0.5, -0.1, 0.1, 0.5):
            assert profit(price + delta) <= best + 1e-3


class TestSolver:
    def test_solve_returns_consistent_profits(self, game):
        solved = NumericalStackelbergSolver().solve(game)
        profile = solved.profile
        assert solved.consumer_profit == pytest.approx(
            game.consumer_profit(profile.service_price,
                                 profile.sensing_times)
        )
        assert solved.platform_profit == pytest.approx(
            game.platform_profit(profile.service_price,
                                 profile.collection_price,
                                 profile.sensing_times)
        )

    def test_solution_is_feasible(self, game):
        solved = NumericalStackelbergSolver().solve(game)
        game.require_feasible(solved.profile)

    def test_all_parties_profit_nonnegative(self, game):
        # At the SE of this parameterisation everyone participates
        # willingly: profits are non-negative.
        solved = NumericalStackelbergSolver().solve(game)
        assert solved.consumer_profit >= 0.0
        assert solved.platform_profit >= 0.0
        assert np.all(solved.seller_profits >= -1e-9)

    def test_cascade_matches_stagewise_calls(self, game):
        solver = NumericalStackelbergSolver()
        price, taus = solver.cascade(game, 10.0)
        assert price == pytest.approx(solve_stage2_numeric(game, 10.0))
        np.testing.assert_allclose(
            taus, solve_stage3_numeric(game, price)
        )


class TestSolvedGame:
    def test_from_profile(self, game):
        profile = StrategyProfile(10.0, 2.0, np.array([1.0] * 4))
        solved = SolvedGame.from_profile(game, profile)
        assert solved.profile is profile
        assert solved.seller_profits.shape == (4,)

    def test_aggregates(self, game):
        profile = StrategyProfile(10.0, 2.0, np.array([1.0] * 4))
        solved = SolvedGame.from_profile(game, profile)
        assert solved.total_seller_profit == pytest.approx(
            float(solved.seller_profits.sum())
        )
        assert solved.mean_seller_profit == pytest.approx(
            float(solved.seller_profits.mean())
        )
