"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "fig13", "fig14", "--paper-scale", "--seed", "7"]
        )
        assert args.experiments == ["fig13", "fig14"]
        assert args.paper_scale is True
        assert args.seed == 7

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.sellers == 50
        assert args.rounds == 1_000

    def test_workers_flags(self):
        args = build_parser().parse_args(["replicate", "--workers", "4"])
        assert args.workers == 4
        args = build_parser().parse_args(["run", "fig7", "--workers", "2"])
        assert args.workers == 2

    def test_workers_default_serial(self):
        assert build_parser().parse_args(["replicate"]).workers == 1
        assert build_parser().parse_args(["run", "fig7"]).workers == 1

    def test_version_flag(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro-cdt" in out
        assert __version__ in out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "table2" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "number of rounds N" in out

    def test_run_example(self, capsys):
        assert main(["run", "example"]) == 0
        out = capsys.readouterr().out
        assert "selection order" in out

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 1
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_run_multiple(self, capsys):
        assert main(["run", "fig14", "fig17"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out
        assert "fig17" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart", "--sellers", "12", "--selected", "3",
                     "--rounds", "60", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "CMAB-HS" in out
        assert "optimal" in out
        assert "random" in out

    def test_run_with_charts(self, capsys):
        assert main(["run", "fig14", "--charts"]) == 0
        out = capsys.readouterr().out
        assert "(chart)" in out
        assert "|" in out

    def test_run_with_save_dir(self, capsys, tmp_path):
        save_dir = str(tmp_path / "results")
        assert main(["run", "table2", "--save-dir", save_dir]) == 0
        out = capsys.readouterr().out
        assert "saved" in out
        assert (tmp_path / "results" / "table2.json").exists()

    def test_saved_result_loads_back(self, tmp_path):
        from repro.sim.persistence import load_experiment_result

        save_dir = str(tmp_path)
        assert main(["run", "fig14", "--save-dir", save_dir]) == 0
        loaded = load_experiment_result(tmp_path / "fig14.json")
        assert loaded.experiment_id == "fig14"

    def test_replicate(self, capsys):
        assert main(["replicate", "--sellers", "12", "--selected", "3",
                     "--rounds", "80", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "+/-" in out
        assert "separation" in out

    def test_replicate_workers_matches_serial(self, capsys):
        base = ["replicate", "--sellers", "12", "--selected", "3",
                "--rounds", "60", "--seeds", "2"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # Identical metrics; only the header mentions the worker count.
        assert parallel.replace(", workers=2", "") == serial

    def test_run_workers_matches_serial(self, capsys, tmp_path):
        import json

        serial_dir, parallel_dir = str(tmp_path / "s"), str(tmp_path / "p")
        base = ["run", "fig14", "fig17"]
        assert main(base + ["--save-dir", serial_dir]) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--workers", "2",
                            "--save-dir", parallel_dir]) == 0
        parallel = capsys.readouterr().out
        assert (parallel.replace(parallel_dir, serial_dir) == serial)
        for name in ("fig14.json", "fig17.json"):
            serial_payload = json.loads(
                (tmp_path / "s" / name).read_text())
            parallel_payload = json.loads(
                (tmp_path / "p" / name).read_text())
            assert parallel_payload == serial_payload

    def test_list_includes_extensions(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ext-drift" in out
        assert "ext-market" in out

    def test_trace(self, capsys, tmp_path):
        out_file = str(tmp_path / "trace.csv")
        assert main(["trace", "--trips", "1500", "--taxis", "40",
                     "--pois", "5", "--sellers", "10", "--seed", "3",
                     "--out", out_file]) == 0
        out = capsys.readouterr().out
        assert "generated 1500 trips" in out
        assert "extracted 5 PoIs" in out
        assert "derived 10 sellers" in out
        # The saved CSV loads back through the library loader.
        from repro.data import load_trace

        assert len(load_trace(out_file)) == 1_500

    def test_trace_fails_cleanly_on_impossible_demand(self, capsys):
        assert main(["trace", "--trips", "300", "--taxis", "5",
                     "--pois", "4", "--sellers", "500"]) == 1
        err = capsys.readouterr().err
        assert "qualify" in err


class TestObservabilityCommands:
    def test_quickstart_trace_then_summarize(self, capsys, tmp_path):
        trace_path = str(tmp_path / "run.jsonl")
        assert main(["quickstart", "--sellers", "10", "--selected", "3",
                     "--rounds", "30", "--seed", "1",
                     "--trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        assert "counters:" in out
        assert main(["trace", "summarize", trace_path]) == 0
        out = capsys.readouterr().out
        assert "event counts:" in out
        assert "selection" in out
        assert "equilibrium" in out
        assert "per-phase timing:" in out

    def test_traced_quickstart_matches_untraced(self, capsys, tmp_path):
        base = ["quickstart", "--sellers", "10", "--selected", "3",
                "--rounds", "30", "--seed", "4"]
        assert main(base) == 0
        untraced = capsys.readouterr().out
        assert main(base + ["--trace", str(tmp_path / "t.jsonl")]) == 0
        traced = capsys.readouterr().out
        # The results table (everything before the trace footer) is
        # identical: tracing never perturbs the run.
        assert traced.startswith(untraced.rstrip("\n"))

    def test_trace_to_unwritable_path_fails_cleanly(self, capsys, tmp_path):
        assert main(["quickstart", "--sellers", "10", "--selected", "3",
                     "--rounds", "10",
                     "--trace", str(tmp_path / "no" / "dir" / "t.jsonl")
                     ]) == 1
        err = capsys.readouterr().err
        assert "cannot open trace file" in err

    def test_summarize_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["trace", "summarize",
                     str(tmp_path / "absent.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "cannot read trace file" in err

    def test_summarize_malformed_line_skipped_and_counted(self, capsys,
                                                          tmp_path):
        # A crash mid-write leaves a truncated tail record; the summary
        # reports it honestly instead of refusing the whole trace.
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"round_start","round":0}\nnot json\n')
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "skipped 1 malformed line" in out
        assert "round_start" in out

    def test_summarize_unreadable_file_fails_cleanly(self, capsys,
                                                     tmp_path):
        assert main(["trace", "summarize",
                     str(tmp_path / "missing.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "cannot read trace file" in err

    def test_rejects_unknown_log_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--log-level", "loud"])

    def test_replicate_with_trace(self, capsys, tmp_path):
        trace_path = str(tmp_path / "sweep.jsonl")
        assert main(["replicate", "--sellers", "10", "--selected", "3",
                     "--rounds", "30", "--seeds", "2",
                     "--trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        assert main(["trace", "summarize", trace_path]) == 0
        out = capsys.readouterr().out
        assert "seed_end" in out
