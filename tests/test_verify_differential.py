"""Differential sweeps over the paper's parameter grid.

Each point of an ``(M, theta, lam, omega)`` grid builds a game instance
and cross-checks the closed-form solvers against the independent
numerical references; selection sweeps cover every ``(M, K)`` shape
including ``K = M`` and the single-seller market.  The expensive
Stage-1 backward induction runs on a small deterministic subset; the
cheap Stage-2/3 oracles cover every grid point.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.incentive import optimal_service_price
from repro.game.profits import GameInstance
from repro.verify import (
    check_selection_oracle,
    check_stage1_oracle,
    check_stage2_oracle,
    check_stage3_oracle,
)

SELLERS = (1, 3, 8)
THETAS = (0.1, 0.4)
LAMS = (0.0, 1.5)
OMEGAS = (300.0, 1_500.0)

GRID = sorted(itertools.product(SELLERS, THETAS, LAMS, OMEGAS))


def grid_game(num_sellers: int, theta: float, lam: float,
              omega: float) -> GameInstance:
    """A deterministic Table-II-range game for one grid point."""
    rng = np.random.default_rng(abs(hash((num_sellers, theta, lam, omega)))
                                % 2**32)
    return GameInstance(
        qualities=rng.uniform(0.2, 1.0, num_sellers),
        cost_a=rng.uniform(0.1, 0.5, num_sellers),
        cost_b=rng.uniform(0.0, 1.0, num_sellers),
        theta=theta, lam=lam, omega=omega,
    )


@pytest.mark.parametrize("num_sellers,theta,lam,omega", GRID)
def test_stage23_oracles_across_grid(num_sellers, theta, lam, omega):
    game = grid_game(num_sellers, theta, lam, omega)
    label = f"M={num_sellers},theta={theta},lam={lam},omega={omega}"
    price = optimal_service_price(game)
    stage2 = check_stage2_oracle(game, price, label)
    assert stage2.passed, stage2.describe()
    stage3 = check_stage3_oracle(game, price * 0.25, label)
    assert stage3.passed, stage3.describe()


@pytest.mark.parametrize("num_sellers", SELLERS)
def test_stage1_oracle_across_market_sizes(num_sellers):
    # One full backward induction per market size (several seconds
    # each); the grid above already exercises theta/lam/omega.
    game = grid_game(num_sellers, 0.1, 1.0, 800.0)
    check = check_stage1_oracle(game, f"M={num_sellers}")
    assert check.passed, check.describe()


class TestSelectionSweep:
    @pytest.mark.parametrize("num_sellers", (1, 4, 9, 25))
    def test_every_k_including_k_equals_m(self, num_sellers):
        rng = np.random.default_rng(num_sellers)
        scores = rng.normal(size=num_sellers)
        for k in range(1, num_sellers + 1):
            check = check_selection_oracle(scores, k,
                                           f"M={num_sellers},K={k}")
            assert check.passed, check.describe()

    @pytest.mark.parametrize("k", (1, 3, 6))
    def test_tied_scores(self, k):
        scores = np.array([0.5, 0.5, 0.5, 0.2, 0.5, 0.9])
        check = check_selection_oracle(scores, k, f"ties,K={k}")
        assert check.passed, check.describe()

    def test_single_seller_market(self):
        check = check_selection_oracle(np.array([0.7]), 1, "M=1,K=1")
        assert check.passed, check.describe()


def test_degenerate_lam_zero_keeps_oracles_agreeing():
    # lam = 0 removes the data-loss term from the platform profit; the
    # closed form's `constant` flips sign for many draws, a classic
    # algebra-slip site.
    game = grid_game(4, 0.25, 0.0, 600.0)
    price = optimal_service_price(game)
    check = check_stage2_oracle(game, price, "lam=0")
    assert check.passed, check.describe()
