"""Unit tests for trace generation, PoI extraction, and seller derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import TraceSpec, generate_trace
from repro.data.poi import extract_pois, trip_endpoints
from repro.data.trace_sellers import qualified_taxis, sellers_from_trace
from repro.exceptions import DataTraceError

SMALL_SPEC = TraceSpec(num_trips=1_500, num_taxis=40, num_hotspots=12,
                       seed=5)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SMALL_SPEC)


class TestTraceSpec:
    def test_rejects_nonpositive_trips(self):
        with pytest.raises(DataTraceError, match="num_trips"):
            TraceSpec(num_trips=0)

    def test_rejects_too_few_hotspots(self):
        with pytest.raises(DataTraceError, match="hotspots"):
            TraceSpec(num_hotspots=1)

    def test_rejects_nonpositive_days(self):
        with pytest.raises(DataTraceError, match="days"):
            TraceSpec(days=0)


class TestGenerateTrace:
    def test_record_count(self, trace):
        assert len(trace) == SMALL_SPEC.num_trips

    def test_taxi_ids_in_range(self, trace):
        ids = {r.taxi_id for r in trace}
        assert max(ids) < SMALL_SPEC.num_taxis
        assert min(ids) >= 0

    def test_sorted_by_timestamp(self, trace):
        stamps = [r.timestamp for r in trace]
        assert stamps == sorted(stamps)

    def test_timestamps_within_window(self, trace):
        window = SMALL_SPEC.days * 86_400.0
        assert all(0.0 <= r.timestamp < window for r in trace)

    def test_coordinates_near_city(self, trace):
        lat0, lon0 = SMALL_SPEC.city_center
        for record in trace[:200]:
            assert abs(record.pickup_latitude - lat0) < 0.5
            assert abs(record.pickup_longitude - lon0) < 0.5

    def test_miles_consistent_with_distance(self, trace):
        # Trip miles exceed straight-line distance (routing factor >= 1).
        for record in trace[:200]:
            straight = np.hypot(
                record.dropoff_latitude - record.pickup_latitude,
                record.dropoff_longitude - record.pickup_longitude,
            ) * 69.0
            assert record.trip_miles >= straight - 1e-9

    def test_deterministic_given_seed(self):
        again = generate_trace(SMALL_SPEC)
        first = generate_trace(SMALL_SPEC)
        assert first[0] == again[0]
        assert first[-1] == again[-1]

    def test_default_spec_is_paper_scale(self):
        spec = TraceSpec()
        assert spec.num_trips == 27_465
        assert spec.num_taxis == 300


class TestExtractPois:
    def test_extracts_requested_count(self, trace):
        pois = extract_pois(trace, num_pois=8)
        assert len(pois) == 8
        assert [p.poi_id for p in pois] == list(range(8))

    def test_weights_descending(self, trace):
        pois = extract_pois(trace, num_pois=8)
        weights = [p.weight for p in pois]
        assert weights == sorted(weights, reverse=True)

    def test_busiest_cell_has_many_events(self, trace):
        pois = extract_pois(trace, num_pois=3)
        assert pois[0].weight > 2.0 * len(trace) * 2 / 144  # above uniform

    def test_rejects_empty_trace(self):
        with pytest.raises(DataTraceError, match="empty"):
            extract_pois([], num_pois=3)

    def test_rejects_too_many_pois(self, trace):
        with pytest.raises(DataTraceError, match="cannot extract"):
            extract_pois(trace[:3], num_pois=100)

    def test_endpoints_shape(self, trace):
        points = trip_endpoints(trace[:50])
        assert points.shape == (100, 2)


class TestSellersFromTrace:
    def test_qualified_taxis_sorted_by_coverage(self, trace):
        pois = extract_pois(trace, num_pois=6)
        qualified = qualified_taxis(trace, pois, radius_degrees=0.02)
        coverages = list(qualified.values())
        assert coverages == sorted(coverages, reverse=True)

    def test_qualified_respects_min_coverage(self, trace):
        pois = extract_pois(trace, num_pois=6)
        strict = qualified_taxis(trace, pois, radius_degrees=0.02,
                                 min_poi_coverage=3)
        loose = qualified_taxis(trace, pois, radius_degrees=0.02,
                                min_poi_coverage=1)
        assert set(strict) <= set(loose)
        assert all(c >= 3 for c in strict.values())

    def test_sellers_from_trace_population(self, trace, rng):
        pois = extract_pois(trace, num_pois=6)
        derived = sellers_from_trace(trace, pois, num_sellers=10, rng=rng,
                                     radius_degrees=0.02)
        assert len(derived.population) == 10
        assert derived.taxi_ids.shape == (10,)
        assert np.unique(derived.taxi_ids).size == 10
        assert np.all(derived.poi_coverage >= 1)

    def test_sellers_respect_paper_cost_ranges(self, trace, rng):
        pois = extract_pois(trace, num_pois=6)
        derived = sellers_from_trace(trace, pois, num_sellers=10, rng=rng,
                                     radius_degrees=0.02)
        assert np.all(derived.population.cost_a >= 0.1)
        assert np.all(derived.population.cost_a <= 0.5)

    def test_rejects_when_too_few_qualify(self, trace, rng):
        pois = extract_pois(trace, num_pois=6)
        with pytest.raises(DataTraceError, match="qualify"):
            sellers_from_trace(trace, pois, num_sellers=1_000, rng=rng,
                               radius_degrees=0.001)

    def test_rejects_empty_trace(self, rng):
        with pytest.raises(DataTraceError, match="empty"):
            qualified_taxis([], [], radius_degrees=0.01)
