"""Tests for the per-PoI heterogeneous quality model (Def.-3 remark)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.quality.distributions import PoiHeterogeneousQuality

MEANS = np.array([0.3, 0.5, 0.7])
L = 6


def make_model(**kwargs) -> PoiHeterogeneousQuality:
    defaults = dict(means=MEANS, num_pois=L, poi_sigma=0.15, sigma=0.02,
                    offset_seed=1)
    defaults.update(kwargs)
    return PoiHeterogeneousQuality(**defaults)


class TestConstruction:
    def test_rejects_bad_num_pois(self):
        with pytest.raises(ConfigurationError, match="num_pois"):
            make_model(num_pois=0)

    def test_rejects_bad_sigmas(self):
        with pytest.raises(ConfigurationError, match="sigma"):
            make_model(sigma=0.0)
        with pytest.raises(ConfigurationError, match="sigma"):
            make_model(poi_sigma=-0.1)

    def test_offsets_centred_per_seller(self):
        model = make_model()
        np.testing.assert_allclose(
            model.poi_offsets.mean(axis=1), 0.0, atol=1e-12
        )

    def test_offsets_deterministic_by_seed(self):
        a = make_model(offset_seed=5)
        b = make_model(offset_seed=5)
        np.testing.assert_array_equal(a.poi_offsets, b.poi_offsets)
        c = make_model(offset_seed=6)
        assert not np.array_equal(a.poi_offsets, c.poi_offsets)


class TestObserve:
    def test_shape_and_range(self, rng):
        model = make_model()
        out = model.observe(rng, np.array([0, 2]), num_pois=L)
        assert out.shape == (2, L)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_rejects_mismatched_num_pois(self, rng):
        model = make_model()
        with pytest.raises(ConfigurationError, match="materialised"):
            model.observe(rng, np.array([0]), num_pois=L + 1)

    def test_per_poi_means_differ(self):
        # The remark: q_{i,l'} may not equal q_{i,l}.
        model = make_model(poi_sigma=0.2)
        per_poi = model.poi_means(1)
        assert per_poi.std() > 0.01

    def test_per_seller_mean_stays_at_q(self, rng):
        # Centred offsets: averaging over PoIs recovers q_i (up to the
        # [0,1] clipping of observations).
        model = make_model(poi_sigma=0.08, sigma=0.01)
        out = model.observe(np.random.default_rng(0),
                            np.repeat(np.arange(3), 400), num_pois=L)
        seller_means = out.reshape(3, 400, L).mean(axis=(1, 2))
        np.testing.assert_allclose(seller_means, MEANS, atol=0.02)

    def test_learning_still_converges(self):
        # CMAB-HS's per-seller learning remains well-posed under PoI
        # heterogeneity: estimates converge to q_i.
        from repro.bandits.environment import CMABEnvironment
        from repro.bandits.policies import UCBPolicy

        qualities = np.array([0.85, 0.6, 0.35, 0.15])
        model = PoiHeterogeneousQuality(qualities, num_pois=5,
                                        poi_sigma=0.1, sigma=0.05,
                                        offset_seed=2)
        environment = CMABEnvironment(model, num_pois=5, k=2,
                                      num_rounds=800, seed=4)
        result = environment.run(UCBPolicy())
        np.testing.assert_allclose(result.final_means, qualities,
                                   atol=0.08)
