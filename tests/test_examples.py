"""Smoke tests: every example script must run cleanly end to end."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).resolve().parents[1] / "src"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["CMAB-HS quickstart", "Theorem-19 regret bound"],
    "illustrative_example.py": ["Section III-D", "selection matrix"],
    "taxi_trace_trading.py": ["extracted PoIs", "CMAB-HS"],
    "policy_comparison.py": ["stationary qualities",
                             "drifting qualities"],
    "equilibrium_exploration.py": ["SE verification", "closed form"],
    "multi_consumer_market.py": ["multi-consumer", "richest-first"],
    "reproduce_figures.py": ["saved", "reloaded"],
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS), (
        "update EXPECTED_SNIPPETS when adding/removing examples"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script, tmp_path):
    # The subprocess must see the in-repo package regardless of how the
    # test process itself found it (installed vs PYTHONPATH).
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC_DIR) if not existing
        else os.pathsep.join([str(SRC_DIR), existing])
    )
    process = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # examples writing files must not pollute the repo
        env=env,
    )
    assert process.returncode == 0, process.stderr[-2_000:]
    for snippet in EXPECTED_SNIPPETS[script]:
        assert snippet in process.stdout, (
            f"{script}: expected {snippet!r} in output"
        )
