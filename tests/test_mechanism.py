"""Unit tests for the CMAB-HS mechanism (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incentive import FormulaVariant
from repro.core.mechanism import CMABHSMechanism
from repro.entities.consumer import Consumer
from repro.entities.job import Job
from repro.entities.platform import Platform
from repro.entities.seller import SellerPopulation
from repro.exceptions import ConfigurationError
from repro.quality.distributions import DeterministicQuality


def make_mechanism(population=None, num_rounds=30, k=3, seed=0,
                   quality_model=None, **kwargs) -> CMABHSMechanism:
    if population is None:
        population = SellerPopulation.random(
            8, np.random.default_rng(1)
        )
    job = Job.simple(num_pois=4, num_rounds=num_rounds)
    return CMABHSMechanism(
        population, job, Platform.default(price_max=5.0),
        Consumer.default(), k=k, seed=seed,
        quality_model=quality_model, **kwargs,
    )


class TestConstruction:
    def test_rejects_oversized_k(self):
        with pytest.raises(ConfigurationError, match="k must be"):
            make_mechanism(k=9)

    def test_rejects_nonpositive_tau0(self):
        with pytest.raises(ConfigurationError, match="initial_sensing_time"):
            make_mechanism(initial_sensing_time=0.0)

    def test_rejects_tau0_beyond_round_duration(self):
        population = SellerPopulation.random(8, np.random.default_rng(1))
        job = Job.simple(num_pois=4, num_rounds=10, round_duration=0.5)
        with pytest.raises(ConfigurationError, match="round duration"):
            CMABHSMechanism(population, job, Platform.default(price_max=5.0),
                            Consumer.default(), k=3,
                            initial_sensing_time=1.0)

    def test_rejects_mismatched_quality_model(self):
        model = DeterministicQuality(np.array([0.5, 0.5]))
        with pytest.raises(ConfigurationError, match="different number"):
            make_mechanism(quality_model=model)

    def test_default_exploration_coefficient_is_k_plus_one(self):
        mechanism = make_mechanism(k=3)
        assert mechanism.exploration_coefficient == 4.0

    def test_coefficient_override(self):
        mechanism = make_mechanism(exploration_coefficient=0.5)
        assert mechanism.exploration_coefficient == 0.5


class TestAlgorithmStructure:
    def test_round_zero_selects_all(self):
        result = make_mechanism().run()
        assert result.rounds[0].selected.size == 8

    def test_later_rounds_select_k(self):
        result = make_mechanism(k=3).run()
        for outcome in result.rounds[1:]:
            assert outcome.selected.size == 3

    def test_round_zero_uses_max_collection_price(self):
        result = make_mechanism().run()
        assert result.rounds[0].collection_price == pytest.approx(5.0)

    def test_round_zero_break_even_platform(self):
        result = make_mechanism().run()
        assert result.rounds[0].platform_profit == pytest.approx(0.0,
                                                                 abs=1e-9)

    def test_counts_advance_by_l_per_selection(self):
        result = make_mechanism(num_rounds=10).run()
        # Each selection adds L=4 observations; round 0 counts everyone.
        chi = result.selection_matrix
        expected = chi.sum(axis=0) * 4
        np.testing.assert_array_equal(result.final_counts, expected)

    def test_selection_matrix_shape_and_kind(self):
        result = make_mechanism(num_rounds=12, k=3).run()
        chi = result.selection_matrix
        assert chi.shape == (12, 8)
        assert set(np.unique(chi)) <= {0, 1}
        np.testing.assert_array_equal(chi[0], np.ones(8))
        np.testing.assert_array_equal(chi[1:].sum(axis=1), np.full(11, 3))

    def test_num_rounds_override(self):
        mechanism = make_mechanism(num_rounds=30)
        result = mechanism.run(num_rounds=7)
        assert result.num_rounds == 7

    def test_rejects_nonpositive_round_override(self):
        with pytest.raises(ConfigurationError, match="num_rounds"):
            make_mechanism().run(num_rounds=0)


class TestLearning:
    def test_estimates_converge_with_deterministic_observations(self):
        population = SellerPopulation.random(6, np.random.default_rng(2))
        model = DeterministicQuality(population.expected_qualities)
        mechanism = make_mechanism(population=population, k=2,
                                   quality_model=model, num_rounds=5)
        result = mechanism.run()
        # Every seller was observed in round 0 with zero noise.
        np.testing.assert_allclose(result.final_means,
                                   population.expected_qualities)

    def test_deterministic_model_converges_to_optimal_selection(self):
        # Well-separated qualities so the UCB bonus stops dominating
        # within the test horizon.
        population = SellerPopulation.from_arrays(
            qualities=np.array([0.95, 0.75, 0.5, 0.3, 0.15, 0.05]),
            a=np.full(6, 0.3),
            b=np.full(6, 0.2),
        )
        model = DeterministicQuality(population.expected_qualities)
        mechanism = make_mechanism(population=population, k=2,
                                   quality_model=model, num_rounds=2_000)
        result = mechanism.run()
        optimal = set(population.top_k_by_quality(2).tolist())
        # The tail rounds must mostly select the truly best sellers.
        tail_selections = [set(r.selected.tolist())
                           for r in result.rounds[-50:]]
        matches = sum(sel == optimal for sel in tail_selections)
        assert matches >= 40

    def test_regret_sublinear_under_noise(self):
        mechanism = make_mechanism(num_rounds=400, k=3)
        result = mechanism.run()
        history = result.regret_history
        first_half_rate = history[199] / 200.0
        second_half_rate = (history[-1] - history[199]) / 200.0
        assert second_half_rate < first_half_rate

    def test_same_seed_reproduces_run(self):
        result_a = make_mechanism(seed=5).run()
        result_b = make_mechanism(seed=5).run()
        np.testing.assert_array_equal(result_a.selection_matrix,
                                      result_b.selection_matrix)
        assert result_a.realized_revenue == result_b.realized_revenue

    def test_different_seeds_differ(self):
        result_a = make_mechanism(seed=5, num_rounds=50).run()
        result_b = make_mechanism(seed=6, num_rounds=50).run()
        assert not np.array_equal(result_a.selection_matrix,
                                  result_b.selection_matrix)


class TestAccessors:
    def test_profit_series_lengths(self):
        result = make_mechanism(num_rounds=15).run()
        profits = result.profits()
        for series in profits.values():
            assert series.shape == (15,)

    def test_strategy_series_lengths(self):
        result = make_mechanism(num_rounds=15).run()
        strategies = result.strategies()
        for series in strategies.values():
            assert series.shape == (15,)

    def test_round_outcome_strategy_profile(self):
        result = make_mechanism(num_rounds=5).run()
        outcome = result.rounds[2]
        profile = outcome.strategy
        assert profile.service_price == outcome.service_price
        assert profile.total_sensing_time == pytest.approx(
            outcome.total_sensing_time
        )

    def test_build_game_reflects_round(self):
        mechanism = make_mechanism(num_rounds=5)
        result = mechanism.run()
        outcome = result.rounds[3]
        game = mechanism.build_game(
            outcome.selected,
            np.full(outcome.selected.size, 0.6),
        )
        assert game.num_sellers == outcome.selected.size

    def test_round_profits_sum_to_social_welfare(self):
        # Prices are transfers: PoC + PoP + sum(PoS) must equal the
        # social welfare of the round's sensing profile, evaluated at
        # the estimates the game was played with.
        from repro.game.welfare import social_welfare

        mechanism = make_mechanism(num_rounds=25, seed=7)
        result = mechanism.run()
        for outcome in result.rounds[1:]:
            game = mechanism.build_game(outcome.selected,
                                        outcome.estimated_qualities)
            welfare = social_welfare(game, outcome.sensing_times)
            total_profit = (
                outcome.consumer_profit + outcome.platform_profit
                + float(outcome.seller_profits.sum())
            )
            assert total_profit == pytest.approx(welfare, rel=1e-9), (
                outcome.round_index
            )

    def test_paper_variant_changes_prices(self):
        derived = make_mechanism(num_rounds=20, seed=3).run()
        paper = make_mechanism(num_rounds=20, seed=3,
                               formula_variant=FormulaVariant.PAPER).run()
        assert derived.rounds[5].service_price != pytest.approx(
            paper.rounds[5].service_price
        )
