"""Unit tests for the round-level quality sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.quality.distributions import (
    DeterministicQuality,
    DriftingQuality,
    TruncatedGaussianQuality,
)
from repro.quality.sampler import QualitySampler

MEANS = np.array([0.3, 0.6, 0.9])


def make_sampler(model=None, num_pois=4, seed=0):
    if model is None:
        model = DeterministicQuality(MEANS)
    return QualitySampler(model, num_pois, np.random.default_rng(seed))


class TestQualitySampler:
    def test_rejects_nonpositive_pois(self):
        with pytest.raises(ConfigurationError, match="num_pois"):
            QualitySampler(DeterministicQuality(MEANS), 0,
                           np.random.default_rng(0))

    def test_sample_round_shapes(self):
        sampler = make_sampler()
        obs = sampler.sample_round(np.array([0, 2]))
        assert obs.per_poi.shape == (2, 4)
        assert obs.sums.shape == (2,)
        assert obs.num_pois == 4

    def test_sums_match_per_poi(self):
        sampler = make_sampler(TruncatedGaussianQuality(MEANS), seed=3)
        obs = sampler.sample_round(np.array([0, 1, 2]))
        np.testing.assert_allclose(obs.sums, obs.per_poi.sum(axis=1))

    def test_deterministic_sums(self):
        sampler = make_sampler(num_pois=5)
        obs = sampler.sample_round(np.array([1]))
        assert obs.sums[0] == pytest.approx(0.6 * 5)

    def test_total_is_grand_sum(self):
        sampler = make_sampler(num_pois=5)
        obs = sampler.sample_round(np.array([0, 1, 2]))
        assert obs.total == pytest.approx(float(MEANS.sum() * 5))

    def test_per_seller_means(self):
        sampler = make_sampler(num_pois=8)
        obs = sampler.sample_round(np.array([0, 2]))
        np.testing.assert_allclose(obs.per_seller_means, [0.3, 0.9])

    def test_round_index_forwarded_to_drifting_model(self):
        model = DriftingQuality(np.array([0.5]), amplitude=0.4,
                                period=10.0, sigma=1e-9)
        sampler = QualitySampler(model, 1, np.random.default_rng(0))
        first = sampler.sample_round(np.array([0]), round_index=0).total
        later = sampler.sample_round(np.array([0]), round_index=5).total
        assert abs(first - later) > 0.05

    def test_round_index_ignored_for_stationary_model(self):
        model = DeterministicQuality(MEANS)
        sampler = QualitySampler(model, 2, np.random.default_rng(0))
        a = sampler.sample_round(np.array([0]), round_index=0).total
        b = sampler.sample_round(np.array([0]), round_index=99).total
        assert a == b

    def test_sampler_advances_its_stream(self):
        sampler = make_sampler(TruncatedGaussianQuality(MEANS), seed=1)
        first = sampler.sample_round(np.array([0]))
        second = sampler.sample_round(np.array([0]))
        assert not np.array_equal(first.per_poi, second.per_poi)

    def test_same_seed_reproduces(self):
        obs_a = make_sampler(TruncatedGaussianQuality(MEANS),
                             seed=7).sample_round(np.array([0, 1]))
        obs_b = make_sampler(TruncatedGaussianQuality(MEANS),
                             seed=7).sample_round(np.array([0, 1]))
        np.testing.assert_array_equal(obs_a.per_poi, obs_b.per_poi)
