"""Tolerance-aware comparison utilities (repro.verify.compare)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.verify import Mismatch, ToleranceSpec, diff_values, values_close


class TestToleranceSpec:
    def test_defaults(self):
        spec = ToleranceSpec()
        assert spec.rtol == 1e-9
        assert spec.atol == 1e-12
        assert spec.nan_equal is True

    def test_rejects_negative_tolerances(self):
        with pytest.raises(ConfigurationError):
            ToleranceSpec(rtol=-1e-9)
        with pytest.raises(ConfigurationError):
            ToleranceSpec(atol=-1.0)


class TestValuesClose:
    def test_exact_equality(self):
        assert values_close(1.5, 1.5)
        assert values_close(0.0, 0.0)

    def test_within_relative_tolerance(self):
        spec = ToleranceSpec(rtol=1e-6, atol=0.0)
        assert values_close(1_000.0, 1_000.0005, spec)
        assert not values_close(1_000.0, 1_000.5, spec)

    def test_within_absolute_tolerance(self):
        spec = ToleranceSpec(rtol=0.0, atol=1e-3)
        assert values_close(0.0, 5e-4, spec)
        assert not values_close(0.0, 5e-3, spec)

    def test_symmetric(self):
        spec = ToleranceSpec(rtol=1e-6, atol=0.0)
        assert values_close(1_000.0, 1_000.0009, spec) == values_close(
            1_000.0009, 1_000.0, spec
        )

    def test_nan_semantics(self):
        nan = float("nan")
        assert values_close(nan, nan)
        assert not values_close(nan, 1.0)
        assert not values_close(1.0, nan)
        strict = ToleranceSpec(nan_equal=False)
        assert not values_close(nan, nan, strict)

    def test_infinity_requires_matching_sign(self):
        inf = float("inf")
        assert values_close(inf, inf)
        assert values_close(-inf, -inf)
        assert not values_close(inf, -inf)
        assert not values_close(inf, 1e300)

    def test_int_float_mix(self):
        assert values_close(3, 3.0)


class TestDiffValues:
    def test_equal_nested_payloads(self):
        payload = {
            "summary": {"regret": 12.5, "rounds": 100},
            "series": [[1.0, 2.0], [3.0, float("nan")]],
            "policy": "CMAB-HS",
        }
        assert diff_values(payload, payload) == []

    def test_numeric_drift_reports_path(self):
        expected = {"summary": {"regret": 12.5}, "series": [1.0, 2.0, 3.0]}
        actual = {"summary": {"regret": 12.5}, "series": [1.0, 2.5, 3.0]}
        mismatches = diff_values(expected, actual)
        assert len(mismatches) == 1
        assert mismatches[0].path == "series[1]"
        assert "2.0" in mismatches[0].detail

    def test_missing_and_unexpected_keys(self):
        mismatches = diff_values({"a": 1, "b": 2}, {"a": 1, "c": 3})
        paths = {m.path for m in mismatches}
        assert paths == {"b", "c"}
        details = {m.path: m.detail for m in mismatches}
        assert "missing" in details["b"]
        assert "unexpected" in details["c"]

    def test_length_mismatch(self):
        mismatches = diff_values([1, 2, 3], [1, 2])
        assert len(mismatches) == 1
        assert "length" in mismatches[0].detail

    def test_type_mismatch(self):
        assert len(diff_values({"a": 1}, [1])) == 1
        assert len(diff_values([1], 1.0)) == 1

    def test_string_mismatch(self):
        mismatches = diff_values({"policy": "CMAB-HS"}, {"policy": "random"})
        assert len(mismatches) == 1
        assert mismatches[0].path == "policy"

    def test_numpy_arrays_accepted(self):
        assert diff_values(np.array([1.0, 2.0]), [1.0, 2.0]) == []
        assert diff_values({"x": np.float64(1.5)}, {"x": 1.5}) == []

    def test_nan_in_series_agrees(self):
        assert diff_values([1.0, float("nan")], [1.0, float("nan")]) == []
        mismatches = diff_values([float("nan")], [1.0])
        assert len(mismatches) == 1

    def test_tolerance_is_honoured(self):
        loose = ToleranceSpec(rtol=1e-2, atol=0.0)
        assert diff_values([100.0], [100.5], loose) == []
        assert len(diff_values([100.0], [100.5])) == 1

    def test_collects_every_mismatch(self):
        expected = {"a": [1.0, 2.0], "b": {"c": 3.0}}
        actual = {"a": [1.5, 2.5], "b": {"c": 3.5}}
        assert len(diff_values(expected, actual)) == 3

    def test_mismatch_describe(self):
        mismatch = Mismatch("summary.regret", 1.0, 2.0, "1.0 != 2.0")
        assert "summary.regret" in mismatch.describe()
        assert Mismatch("", 1, 2, "d").describe().startswith("<root>")

    def test_non_finite_round_trip_values(self):
        inf = float("inf")
        assert diff_values({"x": inf}, {"x": inf}) == []
        assert len(diff_values({"x": inf}, {"x": -inf})) == 1
        assert len(diff_values({"x": inf}, {"x": math.pi})) == 1
