"""Property-based tests for the verification subsystem."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.incentive import (
    optimal_collection_price,
    optimal_sensing_times,
    optimal_service_price,
)
from repro.core.selection import top_k_indices
from repro.game.profits import GameInstance
from repro.verify import brute_force_top_k, diff_values, values_close
from repro.verify.invariants import (
    leader_foc_residuals,
    stage3_stationarity_violation,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          width=64)
any_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)

json_scalars = st.one_of(any_floats, st.integers(-10**9, 10**9),
                         st.text(max_size=8), st.booleans(), st.none())
json_payloads = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)


class TestCompareProperties:
    @given(a=any_floats, b=any_floats)
    def test_values_close_is_symmetric(self, a, b):
        assert values_close(a, b) == values_close(b, a)

    @given(a=any_floats)
    def test_values_close_is_reflexive(self, a):
        assert values_close(a, a)

    @given(payload=json_payloads)
    def test_diff_of_payload_with_itself_is_empty(self, payload):
        assert diff_values(payload, payload) == []

    @given(payload=json_payloads)
    def test_diff_round_trips_through_numpy(self, payload):
        # Wrapping list-of-float leaves in numpy arrays must not create
        # spurious mismatches (golden series are stored as lists but
        # computed as arrays).
        if isinstance(payload, list) and payload and all(
                isinstance(item, float) and not isinstance(item, bool)
                for item in payload):
            assert diff_values(np.array(payload), payload) == []


class TestSelectionProperties:
    @given(
        scores=st.lists(
            st.one_of(finite_floats,
                      st.integers(-3, 3).map(float),
                      st.just(float("inf"))),
            min_size=1, max_size=30),
        data=st.data(),
    )
    def test_top_k_matches_brute_force(self, scores, data):
        k = data.draw(st.integers(1, len(scores)))
        fast = top_k_indices(np.array(scores), k)
        reference = brute_force_top_k(np.array(scores), k)
        np.testing.assert_array_equal(fast, reference)


def game_from(draw_qualities, draw_a, draw_b, theta, lam, omega):
    return GameInstance(
        qualities=np.array(draw_qualities),
        cost_a=np.array(draw_a),
        cost_b=np.array(draw_b),
        theta=theta, lam=lam, omega=omega,
    )


game_strategy = st.integers(1, 6).flatmap(
    lambda m: st.tuples(
        st.lists(st.floats(0.05, 1.0), min_size=m, max_size=m),
        st.lists(st.floats(0.1, 0.5), min_size=m, max_size=m),
        st.lists(st.floats(0.0, 1.0), min_size=m, max_size=m),
        st.floats(0.05, 0.5),
        st.floats(0.0, 2.0),
        st.floats(100.0, 2_000.0),
    )
).map(lambda args: game_from(*args))


class TestEquilibriumProperties:
    @given(game=game_strategy, price=st.floats(0.0, 5.0))
    @settings(max_examples=60)
    def test_stage3_best_response_is_stationary(self, game, price):
        taus = optimal_sensing_times(game, price)
        violation = stage3_stationarity_violation(
            game.qualities, game.cost_a, game.cost_b, price, taus,
            game.max_sensing_time,
        )
        assert np.all(violation <= 1e-8 * max(1.0, price))

    @given(game=game_strategy)
    @settings(max_examples=40)
    def test_interior_equilibria_satisfy_leader_focs(self, game):
        p_j = optimal_service_price(game)
        p = optimal_collection_price(game, p_j)
        taus = optimal_sensing_times(game, p)
        svc_lo, svc_hi = game.service_price_bounds
        col_lo, col_hi = game.collection_price_bounds
        assume(svc_lo + 1e-6 < p_j < svc_hi - 1e-6)
        assume(col_lo + 1e-6 < p < col_hi - 1e-6)
        assume(bool(np.all(taus > 1e-9)))
        stage1, stage2 = leader_foc_residuals(
            game.qualities, game.cost_a, game.cost_b, game.theta,
            game.lam, game.omega, p_j, p, taus,
        )
        assert stage1 < 1e-6
        assert stage2 < 1e-6

    @given(game=game_strategy, price=st.floats(0.0, 5.0))
    @settings(max_examples=60)
    def test_best_response_profits_are_individually_rational(self, game,
                                                             price):
        taus = optimal_sensing_times(game, price)
        profits = (price * taus
                   - (game.cost_a * taus**2 + game.cost_b * taus)
                   * game.qualities)
        assert np.all(profits >= -1e-9 * max(1.0, price))
