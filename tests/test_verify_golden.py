"""Golden-trace regression store (repro.verify.golden)."""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import PersistenceError
from repro.verify import (
    GOLDEN_CASES,
    GoldenCase,
    compute_golden,
    golden_directory,
    golden_path,
    update_goldens,
    verify_goldens,
)

#: The cheapest canonical case, used where one run suffices.
SMALL_CASE = GoldenCase("tiny", num_sellers=8, num_selected=2, num_pois=3,
                        num_rounds=30, seed=5)


class TestGoldenCase:
    def test_config_round_trip(self):
        config = SMALL_CASE.config()
        assert config.num_sellers == 8
        assert config.num_rounds == 30
        assert config.seed == 5

    def test_clean_case_has_no_fault_spec(self):
        assert SMALL_CASE.fault_spec() is None

    def test_faulty_case_builds_spec(self):
        case = GoldenCase("f", num_sellers=8, num_selected=2, num_pois=3,
                          num_rounds=30, seed=5, dropout_rate=0.2)
        spec = case.fault_spec()
        assert spec is not None
        assert spec.dropout_rate == 0.2


class TestCheckedInGoldens:
    def test_files_exist_for_every_case(self):
        for case in GOLDEN_CASES:
            assert os.path.exists(golden_path(case)), case.name

    def test_no_drift_against_checked_in_goldens(self):
        results = verify_goldens()
        drifted = {name: [m.describe() for m in mismatches]
                   for name, mismatches in results.items() if mismatches}
        assert drifted == {}

    def test_goldens_cover_distinct_regimes(self):
        names = {case.name for case in GOLDEN_CASES}
        assert any(case.num_selected == case.num_sellers
                   for case in GOLDEN_CASES), "K = M corner missing"
        assert any(case.fault_spec() is not None
                   for case in GOLDEN_CASES), "fault-injected case missing"
        assert len(names) == len(GOLDEN_CASES)


class TestGoldenStore:
    CASES = (SMALL_CASE,)

    def test_update_then_verify_round_trips(self, tmp_path):
        paths = update_goldens(str(tmp_path), self.CASES)
        assert paths == [str(tmp_path / "tiny.json")]
        results = verify_goldens(str(tmp_path), self.CASES)
        assert results == {"tiny": []}

    def test_tampered_series_value_is_reported(self, tmp_path):
        update_goldens(str(tmp_path), self.CASES)
        path = golden_path(SMALL_CASE, str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["series"]["regret"][10] += 1.0
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        results = verify_goldens(str(tmp_path), self.CASES)
        assert len(results["tiny"]) == 1
        mismatch = results["tiny"][0]
        assert mismatch.path == "series.regret[10]"

    def test_edited_case_parameters_are_detected_drift(self, tmp_path):
        # The payload embeds the case: changing GOLDEN_CASES without
        # regenerating the files must not verify silently.
        update_goldens(str(tmp_path), self.CASES)
        edited = GoldenCase("tiny", num_sellers=8, num_selected=2,
                            num_pois=3, num_rounds=30, seed=6)
        results = verify_goldens(str(tmp_path), (edited,))
        assert any("case.seed" in m.path for m in results["tiny"])

    def test_missing_file_points_at_update_command(self, tmp_path):
        results = verify_goldens(str(tmp_path), self.CASES)
        assert len(results["tiny"]) == 1
        assert "--update-goldens" in results["tiny"][0].detail

    def test_corrupt_file_raises_persistence_error(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(PersistenceError, match="corrupt"):
            verify_goldens(str(tmp_path), self.CASES)

    def test_missing_file_does_not_mask_other_cases(self, tmp_path):
        other = GoldenCase("tiny2", num_sellers=8, num_selected=2,
                           num_pois=3, num_rounds=30, seed=7)
        update_goldens(str(tmp_path), (other,))
        results = verify_goldens(str(tmp_path), (SMALL_CASE, other))
        assert results["tiny"] and not results["tiny2"]


class TestComputeGolden:
    def test_payload_shape(self):
        payload = compute_golden(SMALL_CASE)
        assert payload["case"]["name"] == "tiny"
        assert payload["policy"]
        assert set(payload["series"]) >= {"regret", "realized_revenue",
                                          "selection_counts"}
        assert len(payload["series"]["regret"]) == SMALL_CASE.num_rounds

    def test_strict_mode_produces_identical_golden(self):
        # The invariant monitor must be purely observational: computing
        # a golden under strict mode cannot change a single number.
        assert compute_golden(SMALL_CASE, strict=True) == \
            compute_golden(SMALL_CASE)


def test_golden_directory_is_packaged():
    directory = golden_directory()
    assert os.path.basename(directory) == "goldens"
    assert os.path.dirname(directory).endswith(os.path.join("repro",
                                                            "verify"))
