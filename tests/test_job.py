"""Unit tests for jobs and PoIs (Definition 1)."""

from __future__ import annotations

import pytest

from repro.entities.job import Job, PoI
from repro.exceptions import ConfigurationError


class TestPoI:
    def test_basic_construction(self):
        poi = PoI(poi_id=3, latitude=41.9, longitude=-87.6, weight=12.0)
        assert poi.poi_id == 3
        assert poi.weight == 12.0

    def test_rejects_nonfinite_coordinates(self):
        with pytest.raises(ConfigurationError, match="finite"):
            PoI(poi_id=0, latitude=float("nan"))

    def test_rejects_negative_weight(self):
        with pytest.raises(ConfigurationError, match="weight"):
            PoI(poi_id=0, weight=-1.0)


class TestJob:
    def test_simple_builder(self):
        job = Job.simple(num_pois=4, num_rounds=10)
        assert job.num_pois == 4
        assert job.num_rounds == 10
        assert [p.poi_id for p in job.pois] == [0, 1, 2, 3]

    def test_rejects_no_pois(self):
        with pytest.raises(ConfigurationError, match="at least one PoI"):
            Job(pois=(), num_rounds=5)

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ConfigurationError, match="num_rounds"):
            Job.simple(num_pois=2, num_rounds=0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError, match="round_duration"):
            Job.simple(num_pois=2, num_rounds=5, round_duration=0.0)

    def test_rejects_duplicate_poi_ids(self):
        pois = (PoI(poi_id=1), PoI(poi_id=1))
        with pytest.raises(ConfigurationError, match="unique"):
            Job(pois=pois, num_rounds=5)

    def test_total_duration(self):
        job = Job.simple(num_pois=1, num_rounds=10, round_duration=2.5)
        assert job.total_duration == pytest.approx(25.0)

    def test_default_duration_unbounded(self):
        job = Job.simple(num_pois=1, num_rounds=10)
        assert job.round_duration == float("inf")

    def test_clip_sensing_time(self):
        job = Job.simple(num_pois=1, num_rounds=1, round_duration=3.0)
        assert job.clip_sensing_time(-1.0) == 0.0
        assert job.clip_sensing_time(5.0) == 3.0
        assert job.clip_sensing_time(2.0) == 2.0

    def test_rejects_nonpositive_poi_count(self):
        with pytest.raises(ConfigurationError, match="num_pois"):
            Job.simple(num_pois=0, num_rounds=5)
