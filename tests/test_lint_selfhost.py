"""Self-hosting gate: the shipped source tree must lint clean.

Plus the mutation meta-test the linter exists for: injecting an
unseeded RNG construction into a copy of the engine must produce
exactly one RL001 finding — proving the gate would catch the exact
regression class it was built against, not just stay quiet on today's
clean tree.
"""

from __future__ import annotations

import os

from repro.lint import lint_paths

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)
SRC = os.path.join(REPO_ROOT, "src")
ENGINE = os.path.join(SRC, "repro", "sim", "engine.py")


def test_source_tree_lints_clean():
    findings, checked = lint_paths([SRC])
    assert checked > 90  # the whole package, not an accidental subset
    assert findings == [], "\n".join(f.format() for f in findings)


def test_source_tree_flow_lints_clean():
    """The whole-program rules (RL101-RL105) self-host clean too —
    including an empty orphan-pragma audit over the combined run."""
    from repro.lint.framework import LintSession
    from repro.lint.flow import run_flow
    from repro.lint.rules_flow import all_flow_rules

    session = LintSession([SRC])
    classic = session.run_classic()
    result = run_flow(session)
    assert classic == []
    assert result.findings == [], \
        "\n".join(f.format() for f in result.findings)
    executed = list(session.rule_ids) \
        + [rule.rule_id for rule in all_flow_rules()]
    orphans = session.orphan_findings(executed)
    assert orphans == [], "\n".join(f.format() for f in orphans)


def test_rng_module_is_the_only_construction_site():
    """The factory module itself constructs RNGs — and is exempt."""
    rng_path = os.path.join(SRC, "repro", "sim", "rng.py")
    source = open(rng_path, encoding="utf-8").read()
    assert "default_rng" in source  # it really does construct them
    findings, __ = lint_paths([rng_path])
    assert findings == []


class TestMutationMetaTest:
    """Copy engine.py, break it, and watch the linter notice."""

    def _engine_copy(self, tmp_path, extra: str = "") -> str:
        source = open(ENGINE, encoding="utf-8").read()
        target = tmp_path / "engine.py"
        target.write_text(source + extra)
        return str(target)

    def test_unmutated_copy_is_clean(self, tmp_path):
        findings, __ = lint_paths([self._engine_copy(tmp_path)],
                                  select=["RL001"])
        assert findings == []

    def test_injected_unseeded_rng_yields_exactly_one_rl001(self, tmp_path):
        mutation = "\n_rogue_rng = np.random.default_rng()\n"
        path = self._engine_copy(tmp_path, extra=mutation)
        findings, __ = lint_paths([path], select=["RL001"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "RL001"
        assert finding.snippet == "_rogue_rng = np.random.default_rng()"
        # The finding points at the injected line, not somewhere nearby.
        original_lines = open(ENGINE, encoding="utf-8").read().count("\n")
        assert finding.line == original_lines + 2

    def test_injected_wall_clock_needs_the_package_pragma(self, tmp_path):
        """RL002 is package-scoped: a stray copy outside repro.* is out
        of scope until the pragma pulls it back in."""
        mutation = "\nimport time\n_t0 = time.time()\n"
        unpragmaed = self._engine_copy(tmp_path, extra=mutation)
        findings, __ = lint_paths([unpragmaed], select=["RL002"])
        assert findings == []

        pragma = "# repro-lint: package=repro.sim.engine\n"
        source = open(ENGINE, encoding="utf-8").read()
        target = tmp_path / "engine_scoped.py"
        target.write_text(pragma + source + mutation)
        findings, __ = lint_paths([str(target)], select=["RL002"])
        assert [f.rule for f in findings] == ["RL002"]
