"""End-to-end integration tests across packages."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CMABHSMechanism,
    Consumer,
    Job,
    Platform,
    SellerPopulation,
    UCBPolicy,
    gap_statistics,
    theorem19_bound,
    verify_equilibrium,
)
from repro.bandits.policies import OptimalPolicy, RandomPolicy
from repro.core.incentive import ClosedFormStackelbergSolver
from repro.data import TraceSpec, extract_pois, generate_trace, sellers_from_trace
from repro.sim import SimulationConfig, TradingSimulator


class TestTracePipelineToSimulation:
    """The paper's full pipeline: trace -> PoIs -> sellers -> trading."""

    @pytest.fixture(scope="class")
    def derived(self):
        trace = generate_trace(
            TraceSpec(num_trips=1_200, num_taxis=30, num_hotspots=10,
                      seed=2)
        )
        pois = extract_pois(trace, num_pois=5)
        return trace, pois, sellers_from_trace(
            trace, pois, num_sellers=12,
            rng=np.random.default_rng(2), radius_degrees=0.03,
        )

    def test_simulation_on_trace_sellers(self, derived):
        __, pois, sellers = derived
        config = SimulationConfig(
            num_sellers=12, num_selected=4, num_pois=len(pois),
            num_rounds=300, seed=2,
        )
        simulator = TradingSimulator(
            config, population=sellers.population,
        )
        comparison = simulator.compare([
            OptimalPolicy(sellers.population.expected_qualities),
            UCBPolicy(),
            RandomPolicy(),
        ])
        optimal = comparison["optimal"].total_expected_revenue
        assert comparison["CMAB-HS"].total_expected_revenue <= optimal
        assert (comparison["CMAB-HS"].total_expected_revenue
                > comparison["random"].total_expected_revenue)

    def test_mechanism_on_trace_sellers(self, derived):
        __, pois, sellers = derived
        job = Job.simple(num_pois=len(pois), num_rounds=150)
        mechanism = CMABHSMechanism(
            sellers.population, job, Platform.default(price_max=5.0),
            Consumer.default(), k=4, seed=3,
        )
        result = mechanism.run()
        assert result.num_rounds == 150
        assert result.cumulative_regret >= 0.0


class TestMechanismEquilibriumCertification:
    """Every strategy the mechanism outputs must satisfy Definition 13."""

    def test_random_rounds_are_equilibria(self):
        population = SellerPopulation.random(10, np.random.default_rng(4))
        job = Job.simple(num_pois=5, num_rounds=40)
        mechanism = CMABHSMechanism(
            population, job, Platform.default(price_max=5.0),
            Consumer.default(), k=3, seed=4,
        )
        result = mechanism.run()
        solver = ClosedFormStackelbergSolver()
        for t in (5, 20, 39):
            outcome = result.rounds[t]
            # Rebuild the exact game the mechanism solved that round from
            # the estimates it recorded.
            game = mechanism.build_game(
                outcome.selected, outcome.estimated_qualities
            )
            report = verify_equilibrium(
                game, outcome.strategy, solver.cascade,
                num_points=300, tolerance=0.05,
            )
            assert report.is_equilibrium, (t, report.describe())


class TestRegretBoundHolds:
    def test_measured_regret_below_theorem_19(self):
        population = SellerPopulation.random(12, np.random.default_rng(6))
        job = Job.simple(num_pois=5, num_rounds=500)
        mechanism = CMABHSMechanism(
            population, job, Platform.default(price_max=5.0),
            Consumer.default(), k=3, seed=6,
        )
        result = mechanism.run()
        gaps = gap_statistics(population.expected_qualities, k=3)
        bound = theorem19_bound(
            num_sellers=12, k=3, num_pois=5, num_rounds=500,
            delta_min=gaps.delta_min, delta_max=gaps.delta_max,
        )
        assert result.cumulative_regret <= bound


class TestCrossSeedStability:
    def test_policy_ordering_stable_across_seeds(self):
        for seed in (0, 1, 2):
            config = SimulationConfig(
                num_sellers=30, num_selected=5, num_pois=5,
                num_rounds=600, seed=seed,
            )
            simulator = TradingSimulator(config)
            comparison = simulator.compare([
                OptimalPolicy(simulator.population.expected_qualities),
                UCBPolicy(),
                RandomPolicy(),
            ])
            optimal = comparison["optimal"].total_expected_revenue
            ucb = comparison["CMAB-HS"].total_expected_revenue
            random = comparison["random"].total_expected_revenue
            assert optimal >= ucb > random, f"seed {seed}"
