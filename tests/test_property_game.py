"""Property-based tests (hypothesis) for the Stackelberg game layer.

These check the paper's structural claims on randomly generated game
instances: concavity of the stage objectives, correctness of the
closed-form best responses, and the Stackelberg Equilibrium conditions
(Definition 13) under random unilateral deviations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.incentive import (
    ClosedFormStackelbergSolver,
    StageCoefficients,
    optimal_collection_price,
    optimal_service_price,
)
from repro.game.profits import GameInstance

# -- strategies ----------------------------------------------------------------


@st.composite
def game_instances(draw, max_sellers: int = 8) -> GameInstance:
    """Random paper-range game instances."""
    k = draw(st.integers(min_value=1, max_value=max_sellers))
    qualities = draw(
        st.lists(st.floats(0.05, 1.0), min_size=k, max_size=k)
    )
    cost_a = draw(st.lists(st.floats(0.1, 0.5), min_size=k, max_size=k))
    cost_b = draw(st.lists(st.floats(0.0, 1.0), min_size=k, max_size=k))
    theta = draw(st.floats(0.05, 1.0))
    lam = draw(st.floats(0.0, 2.0))
    omega = draw(st.floats(100.0, 2_000.0))
    return GameInstance(
        qualities=np.array(qualities),
        cost_a=np.array(cost_a),
        cost_b=np.array(cost_b),
        theta=theta,
        lam=lam,
        omega=omega,
        service_price_bounds=(0.0, 100_000.0),
        collection_price_bounds=(0.0, 100_000.0),
    )


prices = st.floats(min_value=0.1, max_value=50.0)


# -- structural properties ------------------------------------------------------


class TestStage3Properties:
    @given(game=game_instances(), price=prices)
    @settings(max_examples=60, deadline=None)
    def test_best_response_beats_random_deviations(self, game, price):
        taus = game.seller_best_responses(price)
        base = game.seller_profits(price, taus)
        for factor in (0.0, 0.5, 1.5, 3.0):
            deviated = game.seller_profits(price, taus * factor)
            assert np.all(deviated <= base + 1e-8)

    @given(game=game_instances(), price=prices)
    @settings(max_examples=60, deadline=None)
    def test_total_time_linear_in_price_when_interior(self, game, price):
        taus = game.seller_best_responses(price)
        assume(bool(np.all(taus > 0.0)))
        expected = price * game.coefficient_a - game.coefficient_b
        assert float(taus.sum()) == pytest.approx(expected, rel=1e-9)

    @given(game=game_instances())
    @settings(max_examples=40, deadline=None)
    def test_best_response_monotone_in_price(self, game):
        low = game.seller_best_responses(1.0)
        high = game.seller_best_responses(2.0)
        assert np.all(high >= low - 1e-12)


class TestStage2Properties:
    @given(game=game_instances(), service_price=prices)
    @settings(max_examples=50, deadline=None)
    def test_closed_form_is_local_maximum(self, game, service_price):
        price = optimal_collection_price(game, service_price)
        assume(0.01 < price < 90_000.0)

        def profit(p: float) -> float:
            return game.platform_profit(
                service_price, p, game.seller_best_responses(p)
            )

        base = profit(price)
        # Only meaningful where Stage 3 stays interior around the optimum.
        taus = game.seller_best_responses(price)
        assume(bool(np.all(taus > 1e-9)))
        h = max(price * 1e-4, 1e-6)
        assert profit(price + h) <= base + 1e-7
        assert profit(price - h) <= base + 1e-7

    @given(game=game_instances())
    @settings(max_examples=40, deadline=None)
    def test_platform_profit_concave_in_price(self, game):
        # Grid entirely above the opt-out threshold, so every Stage-3
        # response is interior by construction (no filtering needed).
        start = game.opt_out_price + 0.1
        service_price = start + 20.0
        grid = np.linspace(start, service_price - 1.0, 41)
        values = np.array([
            game.platform_profit(service_price, p,
                                 game.seller_best_responses(p))
            for p in grid
        ])
        second_diff = np.diff(values, 2)
        # Tolerance scales with the profit magnitude: second differences
        # of ~1e7-sized values carry ~1e-2 of float-cancellation noise.
        tolerance = 1e-9 * max(float(np.abs(values).max()), 1.0) + 1e-7
        assert np.all(second_diff <= tolerance)


class TestStage1Properties:
    @given(game=game_instances())
    @settings(max_examples=40, deadline=None)
    def test_equilibrium_satisfies_definition_13(self, game):
        solver = ClosedFormStackelbergSolver()
        solved = solver.solve(game)
        profile = solved.profile
        assume(bool(np.all(profile.sensing_times > 1e-9)))

        # Eq. (16): no seller gains by deviating.
        base_sellers = game.seller_profits(profile.collection_price,
                                           profile.sensing_times)
        for factor in (0.3, 0.8, 1.2, 2.0):
            deviated = game.seller_profits(
                profile.collection_price, profile.sensing_times * factor
            )
            assert np.all(deviated <= base_sellers + 1e-7)

        # Eq. (15): no platform deviation (sellers re-respond) gains.
        base_platform = solved.platform_profit
        for factor in (0.5, 0.9, 1.1, 1.5):
            price = profile.collection_price * factor
            taus = game.seller_best_responses(price)
            assert game.platform_profit(
                profile.service_price, price, taus
            ) <= base_platform + max(1e-6, abs(base_platform) * 1e-9)

        # Eq. (14): no consumer deviation (everyone re-responds) gains.
        base_consumer = solved.consumer_profit
        for factor in (0.5, 0.9, 1.1, 1.5):
            service = profile.service_price * factor
            collection, taus = solver.cascade(game, service)
            assert game.consumer_profit(service, taus) <= (
                base_consumer + max(1e-6, abs(base_consumer) * 1e-9)
            )

    @given(game=game_instances(), omega_scale=st.floats(1.1, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_service_price_monotone_in_omega(self, game, omega_scale):
        richer = GameInstance(
            qualities=game.qualities, cost_a=game.cost_a,
            cost_b=game.cost_b, theta=game.theta, lam=game.lam,
            omega=game.omega * omega_scale,
            service_price_bounds=game.service_price_bounds,
            collection_price_bounds=game.collection_price_bounds,
        )
        assert optimal_service_price(richer) > optimal_service_price(game)


class TestCoefficientProperties:
    @given(game=game_instances())
    @settings(max_examples=60, deadline=None)
    def test_coefficients_positive(self, game):
        coeffs = StageCoefficients.from_game(game)
        assert coeffs.a_sum > 0.0
        assert coeffs.b_sum >= 0.0
        assert coeffs.theta_coef > 0.0

    @given(game=game_instances())
    @settings(max_examples=60, deadline=None)
    def test_profits_finite_at_equilibrium(self, game):
        solved = ClosedFormStackelbergSolver().solve(game)
        assert np.isfinite(solved.consumer_profit)
        assert np.isfinite(solved.platform_profit)
        assert np.all(np.isfinite(solved.seller_profits))
