"""Unit tests for the coverage-aware selection extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandits.policies import UCBPolicy
from repro.core.state import LearningState
from repro.exceptions import ConfigurationError
from repro.extensions.coverage import (
    CoverageAwareUCBPolicy,
    CoverageMatrix,
    run_coverage_simulation,
)

M, L, K = 12, 6, 4


@pytest.fixture
def coverage(rng) -> CoverageMatrix:
    return CoverageMatrix.random(M, L, rng, density=0.3)


class TestCoverageMatrix:
    def test_random_is_feasible(self, coverage):
        assert coverage.matrix.any(axis=0).all()
        assert coverage.matrix.any(axis=1).all()
        assert coverage.num_sellers == M
        assert coverage.num_pois == L

    def test_rejects_uncovered_poi(self):
        matrix = np.ones((3, 2), dtype=bool)
        matrix[:, 1] = False
        with pytest.raises(ConfigurationError, match="covered by no"):
            CoverageMatrix(matrix)

    def test_rejects_useless_seller(self):
        matrix = np.ones((3, 2), dtype=bool)
        matrix[1, :] = False
        with pytest.raises(ConfigurationError, match="cover no PoI"):
            CoverageMatrix(matrix)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            CoverageMatrix(np.ones((0, 0), dtype=bool))

    def test_covered_pois(self):
        matrix = np.array([[True, False], [False, True]])
        coverage = CoverageMatrix(matrix)
        np.testing.assert_array_equal(
            coverage.covered_pois(np.array([0])), [True, False]
        )
        assert coverage.coverage_fraction(np.array([0, 1])) == 1.0

    def test_random_density_extremes(self, rng):
        dense = CoverageMatrix.random(5, 4, rng, density=1.0)
        assert dense.matrix.all()
        with pytest.raises(ConfigurationError, match="density"):
            CoverageMatrix.random(5, 4, rng, density=0.0)


class TestCoverageAwareUCBPolicy:
    def warmed_state(self, means) -> LearningState:
        state = LearningState(M)
        state.update(np.arange(M), np.asarray(means) * 4.0, 4)
        return state

    def test_round_zero_selects_all(self, coverage, rng):
        policy = CoverageAwareUCBPolicy(coverage)
        policy.reset(M, K, 100)
        np.testing.assert_array_equal(
            policy.select(0, LearningState(M), rng), np.arange(M)
        )

    def test_selects_k_distinct(self, coverage, rng):
        policy = CoverageAwareUCBPolicy(coverage)
        policy.reset(M, K, 100)
        state = self.warmed_state(np.linspace(0.2, 0.9, M))
        selected = policy.select(3, state, rng)
        assert selected.size == K
        assert np.unique(selected).size == K

    def test_covers_when_feasible(self, rng):
        # Build a matrix where full coverage needs specific picks: seller
        # 0 is the only one covering PoI 0.
        matrix = np.zeros((M, L), dtype=bool)
        matrix[0, 0] = True
        matrix[:, 1:] = True
        coverage = CoverageMatrix(matrix)
        policy = CoverageAwareUCBPolicy(coverage)
        policy.reset(M, K, 100)
        # Seller 0 has the worst quality, so blind top-K would skip it.
        state = self.warmed_state(np.linspace(0.05, 0.9, M))
        selected = policy.select(3, state, rng)
        assert 0 in selected
        assert coverage.coverage_fraction(selected) == 1.0

    def test_coverage_mismatch_rejected(self, coverage):
        policy = CoverageAwareUCBPolicy(coverage)
        with pytest.raises(ConfigurationError, match="coverage matrix"):
            policy.reset(M + 1, K, 100)

    def test_rejects_bad_coefficient(self, coverage):
        with pytest.raises(ConfigurationError, match="coefficient"):
            CoverageAwareUCBPolicy(coverage, exploration_coefficient=0.0)


class TestRunCoverageSimulation:
    QUALITIES = np.linspace(0.2, 0.95, M)

    def test_validates_inputs(self, coverage):
        with pytest.raises(ConfigurationError, match="k must be"):
            run_coverage_simulation(UCBPolicy(), coverage, self.QUALITIES,
                                    k=M + 1, num_rounds=10)
        with pytest.raises(ConfigurationError, match="num_rounds"):
            run_coverage_simulation(UCBPolicy(), coverage, self.QUALITIES,
                                    k=K, num_rounds=0)
        with pytest.raises(ConfigurationError, match="one entry"):
            run_coverage_simulation(UCBPolicy(), coverage,
                                    np.ones(3), k=K, num_rounds=10)

    def test_coverage_aware_covers_more(self, coverage):
        blind = run_coverage_simulation(
            UCBPolicy(), coverage, self.QUALITIES, K, 300, seed=1
        )
        aware = run_coverage_simulation(
            CoverageAwareUCBPolicy(coverage), coverage, self.QUALITIES,
            K, 300, seed=1,
        )
        assert aware.mean_coverage >= blind.mean_coverage

    def test_reproducible(self, coverage):
        a = run_coverage_simulation(UCBPolicy(), coverage, self.QUALITIES,
                                    K, 100, seed=2)
        b = run_coverage_simulation(UCBPolicy(), coverage, self.QUALITIES,
                                    K, 100, seed=2)
        assert a.coverage_revenue == b.coverage_revenue

    def test_revenue_counts_only_covered_pois(self):
        # One seller covering exactly half the PoIs: per-round revenue
        # is bounded by L/2 observations of quality <= 1.
        matrix = np.zeros((2, 4), dtype=bool)
        matrix[0, :2] = True
        matrix[1, 2:] = True
        coverage = CoverageMatrix(matrix)
        result = run_coverage_simulation(
            UCBPolicy(), coverage, np.array([0.5, 0.5]), k=1,
            num_rounds=50, seed=3,
        )
        # 49 exploit rounds x at most 2 covered PoIs + round 0 (both).
        assert result.coverage_revenue <= (49 * 2 + 4) * 1.0
        assert result.mean_coverage <= 0.55
