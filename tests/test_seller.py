"""Unit tests for sellers and seller populations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.entities.costs import QuadraticSellerCost
from repro.entities.seller import Seller, SellerPopulation
from repro.exceptions import ConfigurationError


def make_seller(quality=0.8, a=0.3, b=0.4, seller_id=0) -> Seller:
    return Seller(seller_id=seller_id, expected_quality=quality,
                  cost=QuadraticSellerCost(a=a, b=b))


class TestSeller:
    def test_rejects_zero_quality(self):
        with pytest.raises(ConfigurationError, match="expected_quality"):
            make_seller(quality=0.0)

    def test_rejects_quality_above_one(self):
        with pytest.raises(ConfigurationError, match="expected_quality"):
            make_seller(quality=1.5)

    def test_profit_matches_equation_5(self):
        seller = make_seller(a=0.3, b=0.4)
        p, tau, q_hat = 2.0, 1.5, 0.7
        cost = (0.3 * tau * tau + 0.4 * tau) * q_hat
        assert seller.profit(p, tau, q_hat) == pytest.approx(p * tau - cost)

    def test_best_response_matches_theorem_14(self):
        seller = make_seller(a=0.3, b=0.4)
        p, q_hat = 2.0, 0.7
        expected = (p - q_hat * 0.4) / (2.0 * q_hat * 0.3)
        assert seller.best_response(p, q_hat) == pytest.approx(expected)

    def test_best_response_maximises_profit(self):
        seller = make_seller()
        p, q_hat = 3.0, 0.6
        tau_star = seller.best_response(p, q_hat)
        best = seller.profit(p, tau_star, q_hat)
        for tau in np.linspace(0.0, 3.0 * tau_star + 1.0, 60):
            assert seller.profit(p, tau, q_hat) <= best + 1e-12

    def test_best_response_floors_at_zero_for_low_price(self):
        seller = make_seller(a=0.3, b=1.0)
        assert seller.best_response(0.05, 0.9) == 0.0


class TestSellerPopulation:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="empty"):
            SellerPopulation([])

    def test_len_and_getitem(self):
        sellers = [make_seller(seller_id=i, quality=0.5 + i / 10)
                   for i in range(3)]
        population = SellerPopulation(sellers)
        assert len(population) == 3
        assert population[1].expected_quality == pytest.approx(0.6)

    def test_iteration_order(self):
        sellers = [make_seller(seller_id=i) for i in range(4)]
        population = SellerPopulation(sellers)
        assert [s.seller_id for s in population] == [0, 1, 2, 3]

    def test_array_views_match_objects(self):
        sellers = [make_seller(quality=0.4, a=0.2, b=0.3, seller_id=0),
                   make_seller(quality=0.9, a=0.5, b=0.1, seller_id=1)]
        population = SellerPopulation(sellers)
        np.testing.assert_allclose(population.expected_qualities, [0.4, 0.9])
        np.testing.assert_allclose(population.cost_a, [0.2, 0.5])
        np.testing.assert_allclose(population.cost_b, [0.3, 0.1])

    def test_array_views_readonly(self):
        population = SellerPopulation([make_seller()])
        with pytest.raises(ValueError):
            population.expected_qualities[0] = 0.1

    def test_top_k_by_quality(self):
        qualities = [0.3, 0.9, 0.5, 0.7]
        population = SellerPopulation(
            [make_seller(quality=q, seller_id=i)
             for i, q in enumerate(qualities)]
        )
        np.testing.assert_array_equal(population.top_k_by_quality(2), [1, 3])

    def test_top_k_tie_break_by_index(self):
        population = SellerPopulation(
            [make_seller(quality=0.5, seller_id=i) for i in range(4)]
        )
        np.testing.assert_array_equal(population.top_k_by_quality(2), [0, 1])

    def test_top_k_rejects_bad_k(self):
        population = SellerPopulation([make_seller()])
        with pytest.raises(ConfigurationError):
            population.top_k_by_quality(2)
        with pytest.raises(ConfigurationError):
            population.top_k_by_quality(0)


class TestRandomPopulation:
    def test_respects_parameter_ranges(self, rng):
        population = SellerPopulation.random(
            100, rng, a_range=(0.1, 0.5), b_range=(0.1, 1.0)
        )
        assert np.all(population.cost_a >= 0.1)
        assert np.all(population.cost_a <= 0.5)
        assert np.all(population.cost_b >= 0.1)
        assert np.all(population.cost_b <= 1.0)
        assert np.all(population.expected_qualities > 0.0)
        assert np.all(population.expected_qualities <= 1.0)

    def test_rejects_nonpositive_size(self, rng):
        with pytest.raises(ConfigurationError, match="num_sellers"):
            SellerPopulation.random(0, rng)

    def test_rejects_bad_quality_range(self, rng):
        with pytest.raises(ConfigurationError, match="quality_range"):
            SellerPopulation.random(5, rng, quality_range=(0.8, 0.2))

    def test_same_seed_same_population(self):
        a = SellerPopulation.random(20, np.random.default_rng(3))
        b = SellerPopulation.random(20, np.random.default_rng(3))
        np.testing.assert_array_equal(a.expected_qualities,
                                      b.expected_qualities)
        np.testing.assert_array_equal(a.cost_a, b.cost_a)

    def test_custom_quality_range(self, rng):
        population = SellerPopulation.random(
            50, rng, quality_range=(0.5, 0.9)
        )
        assert np.all(population.expected_qualities >= 0.5)
        assert np.all(population.expected_qualities <= 0.9)


class TestFromArrays:
    def test_round_trip(self):
        qualities = np.array([0.4, 0.8])
        a = np.array([0.2, 0.3])
        b = np.array([0.1, 0.6])
        population = SellerPopulation.from_arrays(qualities, a, b)
        np.testing.assert_array_equal(population.expected_qualities, qualities)
        np.testing.assert_array_equal(population.cost_a, a)
        np.testing.assert_array_equal(population.cost_b, b)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError, match="equal length"):
            SellerPopulation.from_arrays(
                np.array([0.5]), np.array([0.2, 0.3]), np.array([0.1])
            )
