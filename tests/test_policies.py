"""Unit tests for the selection policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandits.policies import (
    EpsilonFirstPolicy,
    EpsilonGreedyPolicy,
    OptimalPolicy,
    RandomPolicy,
    SlidingWindowUCBPolicy,
    ThompsonSamplingPolicy,
    UCBPolicy,
)
from repro.core.state import LearningState
from repro.exceptions import ConfigurationError

M, K, N = 10, 3, 100


def warmed_state(means=None) -> LearningState:
    """A state where every seller has been observed once (L=4)."""
    state = LearningState(M)
    if means is None:
        means = np.linspace(0.1, 0.9, M)
    state.update(np.arange(M), np.asarray(means) * 4.0, num_observations=4)
    return state


class TestUCBPolicy:
    def test_round_zero_selects_all(self, rng):
        policy = UCBPolicy()
        policy.reset(M, K, N)
        selected = policy.select(0, LearningState(M), rng)
        np.testing.assert_array_equal(selected, np.arange(M))

    def test_round_zero_optional(self, rng):
        policy = UCBPolicy(initial_full_exploration=False)
        policy.reset(M, K, N)
        selected = policy.select(0, warmed_state(), rng)
        assert selected.size == K

    def test_later_rounds_select_top_ucb(self, rng):
        policy = UCBPolicy()
        policy.reset(M, K, N)
        state = warmed_state()
        selected = policy.select(1, state, rng)
        expected = np.sort(
            np.argsort(-state.ucb_values(K + 1.0), kind="stable")[:K]
        )
        np.testing.assert_array_equal(selected, expected)

    def test_default_coefficient_is_k_plus_one(self):
        policy = UCBPolicy()
        policy.reset(M, K, N)
        assert policy.exploration_coefficient == K + 1

    def test_coefficient_override(self):
        policy = UCBPolicy(exploration_coefficient=0.7)
        policy.reset(M, K, N)
        assert policy.exploration_coefficient == 0.7

    def test_rejects_bad_coefficient(self):
        with pytest.raises(ConfigurationError):
            UCBPolicy(exploration_coefficient=0.0)

    def test_requires_reset(self, rng):
        with pytest.raises(ConfigurationError, match="reset"):
            UCBPolicy().select(1, LearningState(M), rng)


class TestOptimalPolicy:
    def test_selects_true_top_k(self, rng):
        qualities = np.array([0.2, 0.9, 0.4, 0.8, 0.1, 0.3, 0.5, 0.6,
                              0.7, 0.05])
        policy = OptimalPolicy(qualities)
        policy.reset(M, K, N)
        np.testing.assert_array_equal(
            policy.select(0, LearningState(M), rng), [1, 3, 8]
        )

    def test_selection_constant_across_rounds(self, rng):
        policy = OptimalPolicy(np.linspace(0.1, 0.9, M))
        policy.reset(M, K, N)
        state = LearningState(M)
        first = policy.select(0, state, rng)
        later = policy.select(50, state, rng)
        np.testing.assert_array_equal(first, later)

    def test_rejects_size_mismatch(self):
        policy = OptimalPolicy(np.linspace(0.1, 0.9, 5))
        with pytest.raises(ConfigurationError, match="knows 5"):
            policy.reset(M, K, N)


class TestEpsilonFirstPolicy:
    def test_name_includes_epsilon(self):
        assert EpsilonFirstPolicy(0.1).name == "0.1-first"
        assert EpsilonFirstPolicy(0.5).name == "0.5-first"

    def test_exploration_rounds_count(self):
        policy = EpsilonFirstPolicy(0.1)
        policy.reset(M, K, N)
        assert policy.exploration_rounds == 10

    def test_explores_randomly_then_greedy(self, rng):
        policy = EpsilonFirstPolicy(0.2)
        policy.reset(M, K, N)
        state = warmed_state()
        # Exploitation phase selects the top sample means.
        selected = policy.select(50, state, rng)
        np.testing.assert_array_equal(selected, [7, 8, 9])

    def test_exploration_phase_is_random(self):
        policy = EpsilonFirstPolicy(0.5)
        policy.reset(M, K, N)
        state = warmed_state()
        selections = {
            tuple(policy.select(3, state, np.random.default_rng(s)))
            for s in range(20)
        }
        assert len(selections) > 1

    def test_rejects_epsilon_out_of_range(self):
        with pytest.raises(ConfigurationError):
            EpsilonFirstPolicy(0.0)
        with pytest.raises(ConfigurationError):
            EpsilonFirstPolicy(1.0)


class TestRandomPolicy:
    def test_selects_k_distinct(self, rng):
        policy = RandomPolicy()
        policy.reset(M, K, N)
        selected = policy.select(0, LearningState(M), rng)
        assert selected.size == K
        assert np.unique(selected).size == K

    def test_uniform_coverage(self):
        policy = RandomPolicy()
        policy.reset(M, K, 1)
        counts = np.zeros(M)
        rng = np.random.default_rng(0)
        for __ in range(2_000):
            counts[policy.select(0, LearningState(M), rng)] += 1
        # Each seller selected ~K/M of the time.
        np.testing.assert_allclose(counts / counts.sum(), np.full(M, 1 / M),
                                   atol=0.02)


class TestEpsilonGreedyPolicy:
    def test_name(self):
        assert EpsilonGreedyPolicy(0.25).name == "0.25-greedy"

    def test_zero_epsilon_always_greedy(self, rng):
        policy = EpsilonGreedyPolicy(0.0)
        policy.reset(M, K, N)
        state = warmed_state()
        for t in range(5):
            np.testing.assert_array_equal(
                policy.select(t, state, rng), [7, 8, 9]
            )

    def test_one_epsilon_always_random(self):
        policy = EpsilonGreedyPolicy(1.0)
        policy.reset(M, K, N)
        state = warmed_state()
        selections = {
            tuple(policy.select(0, state, np.random.default_rng(s)))
            for s in range(20)
        }
        assert len(selections) > 1


class TestThompsonSamplingPolicy:
    def test_posterior_concentrates_on_best(self):
        policy = ThompsonSamplingPolicy()
        policy.reset(M, K, N)
        # Heavy evidence: seller means linspace(0.1, 0.9) over 500 obs.
        means = np.linspace(0.1, 0.9, M)
        policy.observe(0, np.arange(M), means * 500.0, 500)
        rng = np.random.default_rng(1)
        counts = np.zeros(M)
        for __ in range(200):
            counts[policy.select(1, LearningState(M), rng)] += 1
        assert set(np.argsort(-counts)[:K]) == {7, 8, 9}

    def test_prior_validation(self):
        with pytest.raises(ConfigurationError):
            ThompsonSamplingPolicy(prior_alpha=0.0)

    def test_reset_clears_posterior(self, rng):
        policy = ThompsonSamplingPolicy()
        policy.reset(M, K, N)
        policy.observe(0, np.arange(M), np.full(M, 400.0), 500)
        policy.reset(M, K, N)
        # After reset the posterior is uniform: selections vary by seed.
        selections = {
            tuple(policy.select(0, LearningState(M),
                                np.random.default_rng(s)))
            for s in range(10)
        }
        assert len(selections) > 1


class TestSlidingWindowUCBPolicy:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError, match="window"):
            SlidingWindowUCBPolicy(window=0)

    def test_round_zero_selects_all(self, rng):
        policy = SlidingWindowUCBPolicy(window=5)
        policy.reset(M, K, N)
        np.testing.assert_array_equal(
            policy.select(0, LearningState(M), rng), np.arange(M)
        )

    def test_old_observations_age_out(self, rng):
        policy = SlidingWindowUCBPolicy(window=2,
                                        exploration_coefficient=0.1)
        policy.reset(M, K, N)
        # Seller 0 looks great in an old round, terrible recently.
        policy.observe(0, np.arange(M), np.full(M, 4.0), 4)
        policy.observe(1, np.array([0]), np.array([0.0]), 4)
        policy.observe(2, np.array([0]), np.array([0.0]), 4)
        policy.observe(3, np.array([0]), np.array([0.0]), 4)
        # The stellar round 0 is now outside the window: seller 0's
        # windowed mean is 0 while the others have aged out entirely
        # (infinite bonus), so seller 0 ranks last among finite indices.
        selected = policy.select(4, LearningState(M), rng)
        assert 0 not in selected

    def test_windowed_counts_consistent(self):
        policy = SlidingWindowUCBPolicy(window=3)
        policy.reset(M, K, N)
        for t in range(10):
            policy.observe(t, np.array([t % M]), np.array([2.0]), 4)
        # Only the last 3 rounds' observations remain.
        assert policy._win_counts.sum() == pytest.approx(3 * 4)

    def test_name(self):
        assert SlidingWindowUCBPolicy(window=10).name == "sw-ucb"


class TestResetValidation:
    @pytest.mark.parametrize("policy_factory", [
        UCBPolicy, RandomPolicy,
        lambda: EpsilonFirstPolicy(0.1),
        lambda: EpsilonGreedyPolicy(0.1),
        ThompsonSamplingPolicy,
        lambda: SlidingWindowUCBPolicy(window=5),
    ])
    def test_rejects_bad_k(self, policy_factory):
        policy = policy_factory()
        with pytest.raises(ConfigurationError):
            policy.reset(5, 6, 10)

    def test_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError, match="num_rounds"):
            RandomPolicy().reset(5, 2, 0)
