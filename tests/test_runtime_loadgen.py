"""Seeded load scripts (:mod:`repro.runtime.loadgen`)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError, PersistenceError
from repro.runtime import (
    LoadSpec,
    MarketService,
    generate_script,
    load_script,
    replay_script,
    save_script,
)
from repro.sim import SimulationConfig

SPEC = LoadSpec(seed=3, num_sessions=40, max_open=6, rounds_budget=50)


def _service(num_sellers: int = 8, num_rounds: int = 200) -> MarketService:
    return MarketService(SimulationConfig(
        num_sellers=num_sellers,
        num_selected=min(3, num_sellers - 1),
        num_pois=4, num_rounds=num_rounds, seed=11,
    ))


class TestLoadSpec:
    def test_counts_validated(self):
        with pytest.raises(ConfigurationError, match="num_sessions"):
            LoadSpec(num_sessions=0)
        with pytest.raises(ConfigurationError, match="rounds_budget"):
            LoadSpec(rounds_budget=0)

    def test_weights_validated(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            LoadSpec(trade_weight=-0.1)
        with pytest.raises(ConfigurationError, match="close_weight"):
            LoadSpec(close_weight=0.0)


class TestGenerateScript:
    def test_same_spec_same_script(self):
        assert generate_script(SPEC) == generate_script(SPEC)
        assert generate_script(SPEC) != generate_script(
            LoadSpec(seed=SPEC.seed + 1, num_sessions=SPEC.num_sessions)
        )

    def test_every_session_opened_and_drained(self):
        ops = generate_script(SPEC)
        registers = sum(1 for op in ops if op["op"] == "register")
        closes = sum(1 for op in ops if op["op"] == "close")
        assert registers == SPEC.num_sessions
        assert closes == SPEC.num_sessions
        open_count = 0
        for op in ops:
            if op["op"] == "register":
                open_count += 1
                assert open_count <= SPEC.max_open
            elif op["op"] == "close":
                open_count -= 1
                assert open_count >= 0
            else:
                # trade/quote only happen with a session open
                assert open_count > 0
        assert open_count == 0

    def test_rounds_budget_respected(self):
        ops = generate_script(SPEC)
        traded = sum(int(op["rounds"]) for op in ops
                     if op["op"] == "trade")
        assert 0 < traded <= SPEC.rounds_budget


class TestScriptPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "script.json"
        ops = generate_script(SPEC)
        save_script(path, ops)
        assert load_script(path) == ops

    def test_save_rejects_unknown_ops(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown script op"):
            save_script(tmp_path / "bad.json", [{"op": "steal"}])

    def test_load_rejects_corruption(self, tmp_path):
        path = tmp_path / "script.json"
        path.write_text("not json {", encoding="utf-8")
        with pytest.raises(PersistenceError, match="cannot read"):
            load_script(path)
        path.write_text(json.dumps({"version": 99, "ops": []}),
                        encoding="utf-8")
        with pytest.raises(PersistenceError, match="unsupported"):
            load_script(path)
        path.write_text(json.dumps({"version": 1,
                                    "ops": [{"op": "defraud"}]}),
                        encoding="utf-8")
        with pytest.raises(PersistenceError, match="unknown op"):
            load_script(path)
        with pytest.raises(PersistenceError, match="cannot read"):
            load_script(tmp_path / "missing.json")


class TestReplay:
    def test_replay_is_deterministic_across_services(self):
        ops = generate_script(SPEC)
        a = replay_script(_service(), ops)
        b = replay_script(_service(), ops)
        assert a.ledger_digest == b.ledger_digest
        assert a.sessions_opened == b.sessions_opened == SPEC.num_sessions
        assert a.sessions_closed == SPEC.num_sessions
        assert a.rounds_traded == b.rounds_traded > 0
        assert a.quotes == b.quotes

    def test_replay_skips_inapplicable_ops(self):
        # Two slots only: registrations beyond capacity are skipped,
        # as are trades once the 3-round budget is exhausted.
        service = _service(num_sellers=2, num_rounds=3)
        ops = [{"op": "close"}, {"op": "quote"},  # nothing open yet
               {"op": "register"}, {"op": "register"},
               {"op": "register"},  # floor is full
               {"op": "trade", "rounds": 3},
               {"op": "trade", "rounds": 1},  # budget exhausted
               {"op": "close"}, {"op": "close"}]
        report = replay_script(service, ops)
        assert report.sessions_opened == 2
        assert report.sessions_closed == 2
        assert report.rounds_traded == 3
        assert report.ops_skipped == 4

    def test_report_round_trips_to_dict(self):
        report = replay_script(_service(), generate_script(
            LoadSpec(seed=1, num_sessions=5, rounds_budget=4)
        ))
        payload = report.to_dict()
        assert payload["sessions_opened"] == 5
        assert payload["ledger_digest"] == report.ledger_digest
        assert payload["wall_s"] >= 0.0
