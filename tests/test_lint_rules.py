"""Fixture-driven tests for rules RL001-RL006.

Each bad fixture under ``tests/lint_fixtures/`` violates exactly one
rule a known number of times; each good fixture shows the sanctioned
alternative and must lint clean.  Fixtures are linted as text — never
imported — so they are free to be as broken as the rules require.
"""

from __future__ import annotations

import os

import pytest

from repro.lint import lint_paths, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")


def lint_fixture(name: str):
    findings, checked = lint_paths([os.path.join(FIXTURES, name)])
    assert checked == 1
    return findings


@pytest.mark.parametrize("name,rule,count", [
    ("rl001_bad.py", "RL001", 5),
    ("rl002_bad.py", "RL002", 4),
    ("rl003_bad.py", "RL003", 3),
    ("rl004_bad.py", "RL004", 3),
    ("rl005_bad.py", "RL005", 3),
    ("rl006_bad.py", "RL006", 3),
])
def test_bad_fixture_flags_only_its_rule(name, rule, count):
    findings = lint_fixture(name)
    assert [f.rule for f in findings] == [rule] * count


@pytest.mark.parametrize("name", [
    "rl001_good.py", "rl001_allowed_package.py",
    "rl002_good.py", "rl002_out_of_scope.py",
    "rl003_good.py", "rl004_good.py",
    "rl005_good.py", "rl006_good.py",
])
def test_good_fixture_is_clean(name):
    assert lint_fixture(name) == []


def test_suppression_fixture_leaves_exactly_one_finding():
    findings = lint_fixture("suppressions.py")
    assert len(findings) == 1
    assert findings[0].rule == "RL001"
    assert "still_flagged" in findings[0].snippet


class TestRl001Details:
    def test_aliased_numpy_import_is_resolved(self):
        source = (
            "import numpy as banana\n"
            "rng = banana.random.default_rng(3)\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RL001"]

    def test_from_import_alias_is_resolved(self):
        source = (
            "from numpy.random import default_rng as mk\n"
            "rng = mk(3)\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RL001"]

    def test_unrelated_random_attribute_not_flagged(self):
        # A local object that merely *has* a .random() method.
        source = "rng = population.random()\n"
        assert lint_source(source) == []


class TestRl002Details:
    def test_perf_counter_ns_flagged(self):
        source = (
            "# repro-lint: package=repro.bandits.fake\n"
            "import time\n"
            "t = time.perf_counter_ns()\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RL002"]

    def test_obs_package_is_whitelisted(self):
        source = "from time import perf_counter\nt = perf_counter()\n"
        findings = lint_source(source, path="src/repro/obs/timing.py")
        assert findings == []


class TestRl004Details:
    def test_chained_comparison_mixed_ops(self):
        source = (
            "# repro-lint: package=repro.verify.fake\n"
            "ok = 0.0 <= x == 1.0\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RL004"]

    def test_float_inequalities_are_fine(self):
        source = (
            "# repro-lint: package=repro.verify.fake\n"
            "ok = x < 1.0 <= y\n"
        )
        assert lint_source(source) == []


class TestRl005Details:
    def test_broad_handler_with_real_body_is_fine(self):
        source = (
            "# repro-lint: package=repro.faults.fake\n"
            "try:\n"
            "    risky()\n"
            "except Exception as error:\n"
            "    handle(error)\n"
        )
        assert lint_source(source) == []

    def test_docstring_only_body_is_trivial(self):
        source = (
            "# repro-lint: package=repro.faults.fake\n"
            "try:\n"
            "    risky()\n"
            "except Exception:\n"
            "    'tolerated'\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RL005"]


class TestRl006Details:
    def test_keyword_lambda_flagged(self):
        source = "spec = TaskSpec(payload=1, runner=lambda: 2)\n"
        assert [f.rule for f in lint_source(source)] == ["RL006"]

    def test_module_level_function_reference_is_fine(self):
        source = (
            "def runner():\n"
            "    return 1\n"
            "spec = TaskSpec(payload=1, runner=runner)\n"
        )
        assert lint_source(source) == []
