"""Unit tests for regret accounting and the Theorem-19 bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regret import (
    RegretTracker,
    gap_statistics,
    theorem19_bound,
)
from repro.exceptions import ConfigurationError

QUALITIES = np.array([0.9, 0.2, 0.7, 0.5, 0.4])


class TestGapStatistics:
    def test_delta_min_is_boundary_gap(self):
        gaps = gap_statistics(QUALITIES, k=2)
        # Sorted: 0.9, 0.7 | 0.5, 0.4, 0.2 -> delta_min = 0.7 - 0.5.
        assert gaps.delta_min == pytest.approx(0.2)

    def test_delta_max_is_top_vs_bottom(self):
        gaps = gap_statistics(QUALITIES, k=2)
        assert gaps.delta_max == pytest.approx((0.9 + 0.7) - (0.4 + 0.2))

    def test_optimal_set(self):
        gaps = gap_statistics(QUALITIES, k=2)
        np.testing.assert_array_equal(gaps.optimal_set, [0, 2])
        assert gaps.optimal_value == pytest.approx(1.6)

    def test_rejects_k_equal_m(self):
        with pytest.raises(ConfigurationError, match="k must be"):
            gap_statistics(QUALITIES, k=5)

    def test_tied_boundary_gives_zero_delta_min(self):
        gaps = gap_statistics(np.array([0.9, 0.9, 0.5]), k=1)
        assert gaps.delta_min == 0.0


class TestTheorem19Bound:
    def test_positive_and_finite(self):
        bound = theorem19_bound(50, 5, 10, 10_000, delta_min=0.05,
                                delta_max=2.0)
        assert np.isfinite(bound)
        assert bound > 0.0

    def test_grows_logarithmically_in_n(self):
        kwargs = dict(num_sellers=50, k=5, num_pois=10, delta_min=0.05,
                      delta_max=2.0)
        b1 = theorem19_bound(num_rounds=10_000, **kwargs)
        b2 = theorem19_bound(num_rounds=100_000, **kwargs)
        b3 = theorem19_bound(num_rounds=1_000_000, **kwargs)
        assert b1 < b2 < b3
        # Log growth: equal increments for equal multiplicative steps.
        assert (b3 - b2) == pytest.approx(b2 - b1, rel=1e-6)

    def test_infinite_for_zero_gap(self):
        assert theorem19_bound(10, 2, 5, 100, 0.0, 1.0) == np.inf

    def test_no_overflow_for_large_k(self):
        bound = theorem19_bound(300, 60, 10, 200_000, delta_min=0.001,
                                delta_max=50.0)
        assert np.isfinite(bound)

    def test_scales_linearly_in_m(self):
        kwargs = dict(k=5, num_pois=10, num_rounds=10_000,
                      delta_min=0.05, delta_max=2.0)
        assert theorem19_bound(num_sellers=100, **kwargs) == pytest.approx(
            2.0 * theorem19_bound(num_sellers=50, **kwargs)
        )

    def test_rejects_negative_gaps(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            theorem19_bound(10, 2, 5, 100, -0.1, 1.0)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ConfigurationError, match="positive"):
            theorem19_bound(0, 2, 5, 100, 0.1, 1.0)


class TestRegretTracker:
    def test_optimal_selection_zero_regret(self):
        tracker = RegretTracker(QUALITIES, k=2, num_pois=4)
        increment = tracker.record(np.array([0, 2]))
        assert increment == 0.0
        assert tracker.cumulative_regret == 0.0

    def test_suboptimal_selection_charged_gap(self):
        tracker = RegretTracker(QUALITIES, k=2, num_pois=4)
        increment = tracker.record(np.array([1, 4]))  # 0.2 + 0.4
        assert increment == pytest.approx((1.6 - 0.6) * 4)

    def test_cumulative_accumulates(self):
        tracker = RegretTracker(QUALITIES, k=2, num_pois=4)
        tracker.record(np.array([1, 4]))
        tracker.record(np.array([0, 2]))
        tracker.record(np.array([3, 4]))
        expected = ((1.6 - 0.6) + 0.0 + (1.6 - 0.9)) * 4
        assert tracker.cumulative_regret == pytest.approx(expected)
        assert tracker.num_rounds == 3

    def test_history_tracks_cumulative(self):
        tracker = RegretTracker(QUALITIES, k=2, num_pois=1)
        tracker.record(np.array([1, 4]))
        tracker.record(np.array([1, 4]))
        np.testing.assert_allclose(tracker.history,
                                   [1.0, 2.0], atol=1e-12)

    def test_explore_all_round_charged_fairly(self):
        # Selecting all sellers includes the optimal set: zero regret,
        # but revenue counts every selected seller.
        tracker = RegretTracker(QUALITIES, k=2, num_pois=4)
        increment = tracker.record(np.arange(5))
        assert increment == 0.0
        assert tracker.cumulative_expected_revenue == pytest.approx(
            QUALITIES.sum() * 4
        )

    def test_expected_revenue_accumulates(self):
        tracker = RegretTracker(QUALITIES, k=2, num_pois=4)
        tracker.record(np.array([0, 2]))
        assert tracker.cumulative_expected_revenue == pytest.approx(1.6 * 4)

    def test_optimal_round_revenue(self):
        tracker = RegretTracker(QUALITIES, k=2, num_pois=4)
        assert tracker.optimal_round_revenue == pytest.approx(1.6 * 4)

    def test_is_optimal_selection(self):
        tracker = RegretTracker(QUALITIES, k=2, num_pois=4)
        assert tracker.is_optimal_selection(np.array([0, 2]))
        assert tracker.is_optimal_selection(np.array([2, 0]))
        assert not tracker.is_optimal_selection(np.array([0, 1]))

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            RegretTracker(QUALITIES, k=6, num_pois=4)

    def test_rejects_bad_num_pois(self):
        with pytest.raises(ConfigurationError, match="num_pois"):
            RegretTracker(QUALITIES, k=2, num_pois=0)
