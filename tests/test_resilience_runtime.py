"""Integration tests: resilience runtime wired through engine/replication/executor.

Covers the recovery paths end-to-end: graceful shutdown at round and
seed boundaries with bit-identical resume, checkpoint quarantine and
generation rollback, watchdog stall kills in the worker pool, and the
OS-signal drain exercised against a real subprocess.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.bandits.policies import UCBPolicy
from repro.exceptions import GracefulShutdownInterrupt
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.parallel import ParallelExecutor
from repro.parallel.worker import (
    CRASH_MARKER_ENV,
    CRASH_TASK_ENV,
    STALL_MARKER_ENV,
    STALL_TASK_ENV,
)
from repro.resilience import (
    Backoff,
    ResiliencePolicy,
    RetryPolicy,
    ScheduledAbort,
    WatchdogConfig,
)
from repro.sim import SimulationConfig, TradingSimulator
from repro.sim.replication import replicate_comparison
from repro.verify import check_recovery_equivalence

CONFIG = SimulationConfig(num_sellers=10, num_selected=3, num_rounds=40,
                          seed=2)

METRIC_FIELDS = (
    "realized_revenue", "expected_revenue", "regret", "consumer_profit",
    "platform_profit", "seller_profit_mean", "service_price",
    "collection_price", "total_sensing_time", "selection_counts",
    "estimation_error",
)


def assert_runs_identical(reference, resumed):
    for field in METRIC_FIELDS:
        np.testing.assert_array_equal(
            getattr(reference, field), getattr(resumed, field),
            err_msg=field,
        )


def factory(qualities):
    return [UCBPolicy()]


class TestEngineShutdown:
    def test_scheduled_abort_writes_resumable_checkpoint(self, tmp_path):
        path = tmp_path / "run.npz"
        reference = TradingSimulator(CONFIG).run(UCBPolicy())

        sink = RingBufferSink()
        with pytest.raises(GracefulShutdownInterrupt) as info:
            TradingSimulator(CONFIG).run(
                UCBPolicy(), checkpoint_path=path,
                shutdown=ScheduledAbort([20]), tracer=Tracer(sink),
            )
        assert info.value.checkpoint_path == str(path)
        assert path.exists()
        events = [e for e in sink.events if e.kind == "graceful_shutdown"]
        assert len(events) == 1
        assert events[0].payload["rounds_completed"] == 20

        resumed = TradingSimulator(CONFIG).run(
            UCBPolicy(), checkpoint_path=path, resume=True,
        )
        assert_runs_identical(reference, resumed)

    def test_abort_before_any_round_leaves_no_checkpoint(self, tmp_path):
        path = tmp_path / "run.npz"
        with pytest.raises(GracefulShutdownInterrupt) as info:
            TradingSimulator(CONFIG).run(
                UCBPolicy(), checkpoint_path=path,
                shutdown=ScheduledAbort([0]),
            )
        assert info.value.checkpoint_path is None
        assert not path.exists()


class TestEngineQuarantine:
    def test_corrupt_checkpoint_rolls_back_and_resumes_identically(
            self, tmp_path):
        path = tmp_path / "run.npz"
        reference = TradingSimulator(CONFIG).run(UCBPolicy())

        resilience = ResiliencePolicy(quarantine=True,
                                      checkpoint_generations=2)
        with pytest.raises(GracefulShutdownInterrupt):
            TradingSimulator(CONFIG).run(
                UCBPolicy(), checkpoint_path=path, checkpoint_every=10,
                shutdown=ScheduledAbort([30]), resilience=resilience,
            )
        # Rounds 10, 20 and the round-30 shutdown checkpoint rotated
        # through the generation chain, so a rollback target exists.
        assert os.path.exists(f"{path}.gen-1")

        path.write_bytes(b"not a checkpoint")

        sink = RingBufferSink()
        registry = MetricsRegistry()
        resumed = TradingSimulator(CONFIG).run(
            UCBPolicy(), checkpoint_path=path, resume=True,
            resilience=resilience, tracer=Tracer(sink), metrics=registry,
        )
        assert_runs_identical(reference, resumed)
        assert os.path.isdir(f"{path}.quarantine")
        assert registry.counters["resilience.checkpoints_quarantined"] == 1
        events = [e for e in sink.events
                  if e.kind == "checkpoint_quarantined"]
        assert len(events) == 1
        assert events[0].payload["path"] == str(path)
        assert f"{path}.quarantine" in events[0].payload["quarantined_to"]


class TestReplicationShutdown:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupted_sweep_resumes_identically(self, tmp_path, workers):
        path = tmp_path / "sweep.json"
        reference = replicate_comparison(CONFIG, factory, num_seeds=5)

        with pytest.raises(GracefulShutdownInterrupt) as info:
            replicate_comparison(
                CONFIG, factory, num_seeds=5, workers=workers,
                checkpoint_path=path, shutdown=ScheduledAbort([2, 3, 4]),
            )
        assert info.value.checkpoint_path == str(path)
        assert path.exists()

        resumed = replicate_comparison(
            CONFIG, factory, num_seeds=5, workers=workers,
            checkpoint_path=path, resume=True,
        )
        check = check_recovery_equivalence(reference, resumed,
                                           case="interrupt")
        assert check.passed, check.detail

    def test_sweep_quarantine_rollback(self, tmp_path):
        path = tmp_path / "sweep.json"
        reference = replicate_comparison(CONFIG, factory, num_seeds=4)

        resilience = ResiliencePolicy(quarantine=True,
                                      checkpoint_generations=2)
        with pytest.raises(GracefulShutdownInterrupt):
            replicate_comparison(
                CONFIG, factory, num_seeds=4, checkpoint_path=path,
                shutdown=ScheduledAbort([2, 3]), resilience=resilience,
            )
        path.write_bytes(b"{broken json")

        resumed = replicate_comparison(
            CONFIG, factory, num_seeds=4, checkpoint_path=path,
            resume=True, resilience=resilience,
        )
        check = check_recovery_equivalence(reference, resumed,
                                           case="quarantine")
        assert check.passed, check.detail
        assert os.path.isdir(f"{path}.quarantine")


class TestRecoveryOracle:
    def test_identical_sweeps_pass_with_zero_error(self):
        first = replicate_comparison(CONFIG, factory, num_seeds=3)
        second = replicate_comparison(CONFIG, factory, num_seeds=3)
        check = check_recovery_equivalence(first, second)
        assert check.passed
        assert check.max_error == 0.0

    def test_divergent_sweeps_fail_with_detail(self):
        golden = replicate_comparison(CONFIG, factory, num_seeds=3)
        other = replicate_comparison(CONFIG, factory, num_seeds=2)
        check = check_recovery_equivalence(golden, other)
        assert not check.passed
        assert "seeds" in check.detail


def slow_square(payload, context):
    time.sleep(0.02)
    return payload * payload


class TestExecutorWatchdog:
    def test_stalled_worker_is_killed_and_task_requeued(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(STALL_TASK_ENV, "1")
        monkeypatch.setenv(STALL_MARKER_ENV, str(tmp_path / "stall.marker"))
        sink = RingBufferSink()
        registry = MetricsRegistry()
        executor = ParallelExecutor(
            slow_square, workers=2, chunk_size=1,
            retry_policy=RetryPolicy.of(2, Backoff.none()),
            # The per-task deadline is the stall detector; the generous
            # heartbeat limit keeps slow CI from tripping false kills.
            watchdog=WatchdogConfig(task_timeout_s=0.75,
                                    heartbeat_interval_s=0.1,
                                    heartbeat_timeout_s=10.0),
            tracer=Tracer(sink), metrics=registry,
        )
        results = executor.map(list(range(6)))
        assert [r.value for r in results] == [n * n for n in range(6)]
        assert os.path.exists(tmp_path / "stall.marker")
        assert registry.counters["parallel.watchdog_kills"] == 1
        kills = [e for e in sink.events if e.kind == "watchdog_kill"]
        assert len(kills) == 1
        assert kills[0].payload["reason"] == "task_deadline_exceeded"
        assert kills[0].payload["task"] == 1
        deadline_events = [e for e in sink.events
                           if e.kind == "task_deadline_exceeded"]
        assert len(deadline_events) == 1
        requeues = [e for e in sink.events if e.kind == "retry_attempt"]
        assert any(e.payload["op"] == "parallel.task-1" for e in requeues)

    def test_crash_requeue_emits_retry_attempt(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CRASH_TASK_ENV, "2")
        monkeypatch.setenv(CRASH_MARKER_ENV, str(tmp_path / "crash.marker"))
        sink = RingBufferSink()
        executor = ParallelExecutor(
            slow_square, workers=2, chunk_size=1,
            retry_policy=RetryPolicy.of(2, Backoff.none()),
            tracer=Tracer(sink),
        )
        results = executor.map(list(range(6)))
        assert [r.value for r in results] == [n * n for n in range(6)]
        requeues = [e for e in sink.events if e.kind == "retry_attempt"]
        assert [e.payload["op"] for e in requeues] == ["parallel.task-2"]
        assert requeues[0].payload["attempt"] == 1
        assert "exitcode" in requeues[0].payload["error"]


_CHILD_SCRIPT = """\
import sys

sys.path.insert(0, {src!r})

from repro.bandits.policies import UCBPolicy
from repro.exceptions import GracefulShutdownInterrupt
from repro.resilience import GracefulShutdown
from repro.sim import SimulationConfig
from repro.sim.replication import replicate_comparison

config = SimulationConfig(num_sellers=10, num_selected=3, num_rounds=40,
                          seed=2)
with GracefulShutdown() as stop:
    try:
        replicate_comparison(
            config, lambda qualities: [UCBPolicy()], num_seeds=60,
            checkpoint_path={checkpoint!r}, resume=True, shutdown=stop,
        )
    except GracefulShutdownInterrupt as interrupt:
        print("INTERRUPTED", interrupt.checkpoint_path, flush=True)
        sys.exit(42)
print("FINISHED", flush=True)
"""


class TestSignalInterrupt:
    """Satellite (d): a real OS signal interrupts a sweep mid-run.

    A subprocess runs a 60-seed sweep with :class:`GracefulShutdown`
    installed; the parent waits for the first checkpoint to land, sends
    the signal, and asserts the child drained to a resumable checkpoint
    that a fresh process finishes bit-identically.
    """

    @pytest.mark.parametrize("signum",
                             [signal.SIGINT, signal.SIGTERM])
    def test_signal_drains_to_resumable_checkpoint(self, tmp_path, signum):
        checkpoint = tmp_path / "sweep.json"
        script = tmp_path / "child.py"
        src = os.path.dirname(os.path.dirname(repro.__file__))
        script.write_text(_CHILD_SCRIPT.format(src=src,
                                               checkpoint=str(checkpoint)))

        child = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            start_new_session=True,  # isolate from the test's signals
        )
        try:
            deadline = time.monotonic() + 60.0
            while not checkpoint.exists():
                assert child.poll() is None, child.communicate()[1]
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.01)
            child.send_signal(signum)
            stdout, stderr = child.communicate(timeout=60.0)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.communicate()
        assert child.returncode == 42, (stdout, stderr)
        assert f"INTERRUPTED {checkpoint}" in stdout

        config = SimulationConfig(num_sellers=10, num_selected=3,
                                  num_rounds=40, seed=2)
        resumed = replicate_comparison(
            config, factory, num_seeds=60,
            checkpoint_path=checkpoint, resume=True,
        )
        reference = replicate_comparison(config, factory, num_seeds=60)
        check = check_recovery_equivalence(reference, resumed,
                                           case=signal.Signals(signum).name)
        assert check.passed, check.detail
