"""Unit tests for the deterministic RNG factory."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngFactory


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(7)
        a = factory.generator("population").random(5)
        b = factory.generator("population").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_different_streams(self):
        factory = RngFactory(7)
        a = factory.generator("population").random(5)
        b = factory.generator("observations").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = RngFactory(1).generator("x").random(5)
        b = RngFactory(2).generator("x").random(5)
        assert not np.array_equal(a, b)

    def test_two_factories_same_seed_agree(self):
        a = RngFactory(3).generator("obs", 5).random(4)
        b = RngFactory(3).generator("obs", 5).random(4)
        np.testing.assert_array_equal(a, b)

    def test_integer_name_parts(self):
        factory = RngFactory(3)
        a = factory.generator("run", 1).random(3)
        b = factory.generator("run", 2).random(3)
        assert not np.array_equal(a, b)

    def test_request_order_irrelevant(self):
        first = RngFactory(9)
        __ = first.generator("a").random(2)
        late = first.generator("b").random(2)
        fresh = RngFactory(9).generator("b").random(2)
        np.testing.assert_array_equal(late, fresh)

    def test_master_seed_property(self):
        assert RngFactory(42).master_seed == 42
