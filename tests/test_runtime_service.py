"""The request front-end (:mod:`repro.runtime.service`).

Covers the register/quote/trade/close request surface, the service's
batch-equivalence posture, in-process graceful draining through
``trade``, and the real thing: SIGINT against a live ``repro serve``
subprocess drains to a resumable checkpoint and exits 0.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.bandits.policies import UCBPolicy
from repro.exceptions import (
    ConfigurationError,
    GracefulShutdownInterrupt,
)
from repro.resilience import GracefulShutdown
from repro.runtime import ChurnSpec, MarketRuntime, MarketService
from repro.sim import SimulationConfig, TradingSimulator


def _config(num_rounds: int = 30, seed: int = 4) -> SimulationConfig:
    return SimulationConfig(num_sellers=10, num_selected=3, num_pois=4,
                            num_rounds=num_rounds, seed=seed)


class TestRequests:
    def test_register_quote_trade_close_flow(self):
        service = MarketService(_config())
        first = service.register()
        assert first == {"session": 0, "slot": 0, "round": 0}
        for _ in range(4):
            service.register()

        quote = service.quote(first["session"])
        assert quote["slot"] == 0
        assert quote["observations"] == 0
        assert quote["service_price"] is None  # nothing traded yet

        result = service.trade(3)
        assert result["rounds_played"] == 3
        assert result["next_round"] == 3
        assert [t["round"] for t in result["trades"]] == [0, 1, 2]
        # Round 0 explores every online seller; later rounds trade K.
        assert result["trades"][0]["participants"] == 5
        assert result["trades"][1]["participants"] == 3

        quote = service.quote(first["session"])
        assert quote["observations"] > 0
        assert quote["service_price"] is not None

        summary = service.close(first["session"])
        assert summary["rounds_online"] == 3
        with pytest.raises(ConfigurationError, match="no open session"):
            service.quote(first["session"])

    def test_trade_stops_at_the_round_budget(self):
        service = MarketService(_config(num_rounds=5), start_online=True)
        assert service.trade(99)["rounds_played"] == 5
        assert service.trade(1)["rounds_played"] == 0

    def test_status_snapshot(self):
        service = MarketService(_config())
        service.register()
        service.register()
        service.trade(2)
        status = service.status()
        assert status["round"] == 2
        assert status["online"] == 2
        assert status["slots"] == 10
        assert status["sessions_opened"] == 2
        assert status["sessions_closed"] == 0
        assert status["trades"] == 2
        assert status["policy"] == UCBPolicy().name
        assert status["messages_delivered"] > 0

    def test_batch_posture_matches_the_batch_engine(self):
        config = _config(num_rounds=25)
        batch = TradingSimulator(config).run(UCBPolicy())
        service = MarketService(config, UCBPolicy(), start_online=True)
        service.trade(config.num_rounds)
        live = service.metrics()
        assert np.array_equal(live.realized_revenue, batch.realized_revenue)
        assert np.array_equal(live.regret, batch.regret)
        assert np.array_equal(live.selection_counts, batch.selection_counts)

    def test_churn_spec_drives_organic_sessions(self):
        service = MarketService(
            _config(num_rounds=40),
            churn=ChurnSpec(arrival_rate=0.4, departure_rate=0.2),
            start_online=True,
        )
        service.trade(40)
        status = service.status()
        assert status["sessions_opened"] > 10  # arrivals beyond the start
        assert status["sessions_closed"] > 0


class TestInProcessDrain:
    def test_requested_shutdown_drains_trade_to_a_checkpoint(self, tmp_path):
        config = _config(num_rounds=40)
        path = tmp_path / "service.npz"
        churn = ChurnSpec(arrival_rate=0.3, departure_rate=0.15)

        straight = MarketService(config, churn=churn, start_online=True)
        straight.trade(config.num_rounds)

        service = MarketService(config, churn=churn, start_online=True)
        service.trade(15)
        stop = GracefulShutdown()
        stop.request()  # programmatic trip: no signal handlers involved
        with pytest.raises(GracefulShutdownInterrupt) as excinfo:
            service.trade(99, shutdown=stop, checkpoint_path=path)
        assert excinfo.value.checkpoint_path == str(path)

        resumed = MarketService(config, churn=churn, start_online=True)
        resumed.runtime.restore(path)
        assert resumed.status()["round"] == 15
        resumed.trade(config.num_rounds)
        assert (resumed.runtime.ledger.digest()
                == straight.runtime.ledger.digest())
        assert np.array_equal(resumed.metrics().realized_revenue,
                              straight.metrics().realized_revenue)


class TestServeSignalDrain:
    """Satellite (c): SIGINT during ``repro serve`` exits 0 with a
    resumable final checkpoint."""

    def test_sigint_drains_serve_to_a_resumable_checkpoint(self, tmp_path):
        checkpoint = tmp_path / "serve.npz"
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, PYTHONPATH=src)
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--sellers", "8", "--selected", "3",
             "--rounds", "2000000", "--seed", "1",
             "--arrival-rate", "0.2", "--departure-rate", "0.1",
             "--checkpoint", str(checkpoint), "--checkpoint-every", "25"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, start_new_session=True,  # isolate the test's signals
        )
        try:
            deadline = time.monotonic() + 60.0
            while not checkpoint.exists():
                assert child.poll() is None, child.communicate()[1]
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.01)
            child.send_signal(signal.SIGINT)
            stdout, stderr = child.communicate(timeout=60.0)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.communicate()
        assert child.returncode == 0, (stdout, stderr)
        assert "graceful shutdown at round" in stdout
        assert "resumable checkpoint" in stdout

        # The checkpoint restores into a matching runtime mid-run.
        config = SimulationConfig(num_sellers=8, num_selected=3,
                                  num_rounds=2_000_000, seed=1)
        runtime = MarketRuntime(
            config,
            churn=ChurnSpec(arrival_rate=0.2, departure_rate=0.1),
        )
        next_round = runtime.restore(checkpoint)
        assert next_round > 0
        runtime.advance(5)  # and keeps trading from where it stopped
        assert runtime.next_round == next_round + 5
