"""Unit tests for the flow engine's project layer.

Covers per-file fact extraction (the vexpr mini-IR and its JSON round
trip), the :class:`ProjectIndex` name resolution (aliases, re-exports,
methods), call-graph construction, Tarjan SCC ordering, the bottom-up
function summaries, and the content-hash facts cache.
"""

import json

import pytest

from repro.lint.framework import build_context
from repro.lint.flow import FlowAnalysis, run_flow
from repro.lint.framework import LintSession
from repro.lint.project import (CallSite, ProjectIndex, build_call_graph,
                                strongly_connected_components)
from repro.lint.summaries import (FactsCache, ModuleFacts, content_hash,
                                  extract_module_facts)


def facts_of(source, module, path=None):
    context = build_context(source, path or f"{module.replace('.', '/')}.py")
    return extract_module_facts(context, module=module)


def index_of(*modules):
    index = ProjectIndex()
    for source, module in modules:
        index.add(facts_of(source, module))
    return index


class TestExtraction:
    def test_function_facts_capture_params_and_calls(self):
        facts = facts_of(
            "def solve(a, b, *, tol=1e-9):\n"
            "    return helper(a, tol)\n",
            "pkg.mod",
        )
        fn = facts.functions["solve"]
        assert fn.params == ["a", "b"]
        assert fn.kwonly == ["tol"]
        assert fn.required == 2
        assert len(fn.calls) == 1
        # `helper` is not a local, so it lowers to a module-level ref
        assert fn.calls[0][1] == ["ref", "helper"]

    def test_module_facts_json_round_trip(self):
        source = (
            "import numpy as np\n"
            "from pkg.other import thing\n"
            "LIMIT = frozenset({'a', 'b'})\n"
            "class Box:\n"
            "    def get(self, key):\n"
            "        return self.data[key]\n"
            "def top(x):\n"
            "    return np.sqrt(x)\n"
        )
        facts = facts_of(source, "pkg.mod")
        clone = ModuleFacts.from_dict(json.loads(
            json.dumps(facts.to_dict())))
        assert clone.to_dict() == facts.to_dict()
        assert clone.imports_modules["np"] == "numpy"
        assert clone.imports_objects["thing"] == "pkg.other.thing"
        assert "Box" in clone.classes
        assert "Box.get" in clone.functions

    def test_annotations_are_not_value_flow(self):
        # `x: np.random.Generator` must not read as an RNG reference
        facts = facts_of(
            "import numpy as np\n"
            "def f(x):\n"
            "    g: np.random.Generator = x\n"
            "    return g\n",
            "pkg.mod",
        )
        assert facts.functions["f"].calls == []

    def test_out_param_conventions_and_pragmas(self):
        facts = facts_of(
            "# repro-lint: mutates=dst\n"
            "def f(a, dst, out, scratch):\n"
            "    return a\n",
            "pkg.mod",
        )
        assert set(facts.functions["f"].out_params) \
            == {"dst", "out", "scratch"}


class TestProjectIndex:
    def test_resolve_through_import_alias(self):
        index = index_of(
            ("def helper(x):\n    return x\n", "pkg.util"),
            ("import pkg.util as u\n"
             "def caller(x):\n    return u.helper(x)\n", "pkg.main"),
        )
        assert index.resolve("pkg.main", "u.helper") == "pkg.util.helper"

    def test_resolve_through_reexport_chain(self):
        index = index_of(
            ("def deep(x):\n    return x\n", "pkg.impl"),
            ("from pkg.impl import deep\n", "pkg"),
            ("from pkg import deep\n"
             "def caller(x):\n    return deep(x)\n", "app.main"),
        )
        assert index.resolve("app.main", "deep") == "pkg.impl.deep"

    def test_lookup_inherited_method(self):
        index = index_of(
            ("class Base:\n"
             "    def shared(self):\n        return 1\n", "pkg.base"),
            ("from pkg.base import Base\n"
             "class Child(Base):\n"
             "    def own(self):\n        return 2\n", "pkg.child"),
        )
        assert index.lookup_method("pkg.child.Child", "shared") is not None
        assert index.lookup_method("pkg.child.Child", "missing") is None

    def test_eval_constexpr_follows_refs(self):
        index = index_of(
            ("CORE = frozenset({'a', 'b'})\n", "pkg.schema"),
            ("from pkg.schema import CORE\n"
             "ALL = CORE\n", "pkg.use"),
        )
        assert index.eval_constexpr("pkg.use", ["ref", "ALL"]) \
            == {"a", "b"}


class TestCallGraph:
    def test_method_call_on_known_class_instance(self):
        index = index_of(
            ("class Engine:\n"
             "    def step(self):\n        return 1\n", "pkg.engine"),
            ("from pkg.engine import Engine\n"
             "def run():\n"
             "    e = Engine()\n"
             "    return e.step()\n", "pkg.main"),
        )
        graph = build_call_graph(index)
        targets = {site.target for site in graph["pkg.main.run"]}
        assert "pkg.engine.Engine.step" in targets

    def test_tarjan_orders_callees_before_callers(self):
        def edge(caller, target):
            return CallSite(caller=caller, target=target, call=["other"],
                            line=1, col=0, is_ctor=False)

        graph = {"a": [edge("a", "b")], "b": [edge("b", "c")],
                 "c": [edge("c", "b")], "d": []}
        sccs = strongly_connected_components(graph)
        flat = [sorted(scc) for scc in sccs]
        assert ["b", "c"] in flat
        # the cycle {b,c} must come before its caller a
        assert flat.index(["b", "c"]) < flat.index(["a"])


class TestSummaries:
    def _analysis(self, *modules):
        index = ProjectIndex()
        sources = {}
        for source, module in modules:
            facts = facts_of(source, module)
            index.add(facts)
            sources[facts.path] = facts
        return FlowAnalysis(index, sources)

    def test_rng_taint_propagates_through_helper_returns(self):
        analysis = self._analysis(
            ("import numpy as np\n"
             "def born():\n"
             "    return np.random.default_rng(0)\n"
             "def laundered():\n"
             "    return born()\n", "pkg.rng"),
        )
        assert "taint" in analysis.summary_of("pkg.rng.born").returns
        assert "taint" in analysis.summary_of("pkg.rng.laundered").returns

    def test_mutated_params_propagate_through_call_chain(self):
        analysis = self._analysis(
            ("def inner(buf):\n"
             "    buf[:] = 0\n"
             "def outer(data):\n"
             "    inner(data)\n", "pkg.mut"),
        )
        assert analysis.summary_of("pkg.mut.inner").mutated_params \
            == frozenset({"buf"})
        assert analysis.summary_of("pkg.mut.outer").mutated_params \
            == frozenset({"data"})

    def test_recursive_cycle_reaches_fixpoint(self):
        analysis = self._analysis(
            ("GLOBAL = []\n"
             "def ping(n):\n"
             "    GLOBAL.append(n)\n"
             "    return pong(n - 1)\n"
             "def pong(n):\n"
             "    return ping(n) if n else n\n", "pkg.cycle"),
        )
        assert analysis.summary_of("pkg.cycle.ping").writes_global
        # impurity crosses the cycle to the mutual partner
        assert analysis.summary_of("pkg.cycle.pong").writes_global

    def test_module_function_call_is_not_a_mutation(self):
        analysis = self._analysis(
            ("import numpy as np\n"
             "def f(x):\n"
             "    return np.sort(x)\n", "pkg.np_use"),
        )
        summary = analysis.summary_of("pkg.np_use.f")
        assert not summary.writes_global
        assert summary.mutated_params == frozenset()


class TestFactsCache:
    def test_round_trip_and_pruning(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache = FactsCache(str(cache_path))
        facts = facts_of("def f(x):\n    return x\n", "pkg.mod")
        cache.put(facts)
        cache.save()

        fresh = FactsCache(str(cache_path))
        hit = fresh.get(facts.content_hash)
        assert hit is not None
        assert hit.to_dict() == facts.to_dict()
        assert fresh.get(content_hash("something else")) is None

        fresh.save(keep=set())  # prune everything
        assert FactsCache(str(cache_path)).get(facts.content_hash) is None

    def test_run_flow_reuses_cache_across_runs(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("# repro-lint: package=pkg.mod\n"
                          "def f(x):\n    return x\n")
        cache_path = str(tmp_path / "cache.json")
        first = run_flow(LintSession([str(target)]),
                         cache_path=cache_path)
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        second = run_flow(LintSession([str(target)]),
                          cache_path=cache_path)
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        target.write_text("# repro-lint: package=pkg.mod\n"
                          "def f(x):\n    return x + 1\n")
        third = run_flow(LintSession([str(target)]),
                         cache_path=cache_path)
        assert (third.cache_hits, third.cache_misses) == (0, 1)
