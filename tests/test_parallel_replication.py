"""Determinism and crash-tolerance of the parallel replication sweep.

The contract under test: ``replicate_comparison(..., workers=N)`` is
**bit-identical** to the serial sweep for any worker count, chunk size,
checkpoint/resume split, or worker-crash schedule.  Equality is asserted
on the :class:`~repro.sim.replication.MetricSummary` dataclasses
themselves (exact float comparison, no tolerance).
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.bandits.policies import OptimalPolicy, RandomPolicy, UCBPolicy
from repro.faults import FaultSpec
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.parallel.worker import CRASH_MARKER_ENV, CRASH_TASK_ENV
from repro.sim.config import SimulationConfig
from repro.sim.replication import replicate_comparison

CONFIG = SimulationConfig(num_sellers=10, num_selected=3, num_pois=3,
                          num_rounds=40, seed=0)


def factory(qualities: np.ndarray):
    return [OptimalPolicy(qualities), UCBPolicy(), RandomPolicy()]


def assert_bit_identical(reference, candidate):
    """Exact equality of seeds and every per-metric summary."""
    assert candidate.seeds == reference.seeds
    assert candidate.summaries == reference.summaries


@pytest.fixture(scope="module")
def serial():
    return replicate_comparison(CONFIG, factory, num_seeds=4)


class TestDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial(self, serial, workers):
        parallel = replicate_comparison(CONFIG, factory, num_seeds=4,
                                        workers=workers)
        assert_bit_identical(serial, parallel)

    @pytest.mark.parametrize("chunk_size", [1, 2, 4])
    def test_any_chunking_matches_serial(self, serial, chunk_size):
        parallel = replicate_comparison(CONFIG, factory, num_seeds=4,
                                        workers=2, chunk_size=chunk_size)
        assert_bit_identical(serial, parallel)

    def test_random_shard_shapes_match_serial(self, serial):
        # Property-style: a seeded sample of (workers, chunk_size)
        # shapes — every sharding of the same seeds aggregates to the
        # same floats.
        rng = random.Random(1729)
        for __ in range(3):
            workers = rng.randint(2, 6)
            chunk_size = rng.choice([None, rng.randint(1, 4)])
            parallel = replicate_comparison(
                CONFIG, factory, num_seeds=4,
                workers=workers, chunk_size=chunk_size,
            )
            assert_bit_identical(serial, parallel)

    def test_traced_parallel_matches_untraced_serial(self, serial):
        sink = RingBufferSink()
        parallel = replicate_comparison(CONFIG, factory, num_seeds=4,
                                        workers=2, tracer=Tracer(sink))
        assert_bit_identical(serial, parallel)
        kinds = [event.kind for event in sink.events]
        assert kinds.count("seed_end") == 4
        assert kinds.count("worker_task_done") == 4

    def test_faulty_parallel_matches_faulty_serial(self):
        spec = FaultSpec(dropout_rate=0.2, corruption_rate=0.05)
        reference = replicate_comparison(CONFIG, factory, num_seeds=3,
                                         fault_spec=spec)
        parallel = replicate_comparison(CONFIG, factory, num_seeds=3,
                                        fault_spec=spec, workers=3)
        assert_bit_identical(reference, parallel)

    def test_parallel_records_all_seed_durations(self):
        parallel = replicate_comparison(CONFIG, factory, num_seeds=4,
                                        workers=2)
        assert sorted(parallel.seed_durations) == parallel.seeds
        assert all(d > 0 for d in parallel.seed_durations.values())


class TestCheckpointInterop:
    def _truncate(self, path, keep):
        payload = json.loads(path.read_text())
        kept = payload["completed_seeds"][:keep]
        payload["completed_seeds"] = kept
        payload["seed_samples"] = {
            str(seed): payload["seed_samples"][str(seed)] for seed in kept
        }
        payload["seed_durations"] = {
            str(seed): payload["seed_durations"][str(seed)] for seed in kept
        }
        payload.pop("checksum", None)  # hand-edit invalidates it
        path.write_text(json.dumps(payload))

    def test_parallel_sweep_resumes_serial_checkpoint(self, serial,
                                                      tmp_path):
        # Crash mid-sweep serially, resume with 4 workers: identical.
        path = tmp_path / "sweep.json"
        replicate_comparison(CONFIG, factory, num_seeds=4,
                             checkpoint_path=path)
        self._truncate(path, keep=2)
        resumed = replicate_comparison(CONFIG, factory, num_seeds=4,
                                       checkpoint_path=path, resume=True,
                                       workers=4)
        assert_bit_identical(serial, resumed)

    def test_serial_sweep_resumes_parallel_checkpoint(self, serial,
                                                      tmp_path):
        path = tmp_path / "sweep.json"
        replicate_comparison(CONFIG, factory, num_seeds=4,
                             checkpoint_path=path, workers=2)
        self._truncate(path, keep=1)
        resumed = replicate_comparison(CONFIG, factory, num_seeds=4,
                                       checkpoint_path=path, resume=True)
        assert_bit_identical(serial, resumed)

    def test_resumed_durations_cover_both_halves(self, tmp_path):
        path = tmp_path / "sweep.json"
        replicate_comparison(CONFIG, factory, num_seeds=4,
                             checkpoint_path=path, workers=2)
        self._truncate(path, keep=2)
        resumed = replicate_comparison(CONFIG, factory, num_seeds=4,
                                       checkpoint_path=path, resume=True,
                                       workers=2)
        # Durations of checkpointed seeds survive the resume, so the
        # cumulative timing spans the whole sweep, not just the rerun.
        assert sorted(resumed.seed_durations) == [0, 1, 2, 3]
        assert resumed.cumulative_seed_time > 0


class TestWorkerCrashRecovery:
    def test_crashed_seed_reruns_bit_identically(self, serial, monkeypatch,
                                                 tmp_path):
        # Kill the worker holding seed index 1 mid-sweep; the re-queued
        # seed lands on a fresh worker and the sweep still matches the
        # serial reference exactly.
        monkeypatch.setenv(CRASH_TASK_ENV, "1")
        monkeypatch.setenv(CRASH_MARKER_ENV, str(tmp_path / "marker"))
        registry = MetricsRegistry()
        parallel = replicate_comparison(CONFIG, factory, num_seeds=4,
                                        workers=2, chunk_size=1,
                                        metrics=registry)
        assert_bit_identical(serial, parallel)
        assert registry.counters["parallel.worker_crashes"] == 1
        assert registry.counters["parallel.tasks_requeued"] == 1
        assert registry.counters["seeds_completed"] == 4

    def test_crash_then_resume_with_other_worker_count(self, serial,
                                                       monkeypatch,
                                                       tmp_path):
        # A crash-recovered, checkpointed parallel sweep truncated and
        # resumed serially still reproduces the serial reference.
        monkeypatch.setenv(CRASH_TASK_ENV, "2")
        monkeypatch.setenv(CRASH_MARKER_ENV, str(tmp_path / "marker"))
        path = tmp_path / "sweep.json"
        replicate_comparison(CONFIG, factory, num_seeds=4,
                             checkpoint_path=path, workers=2,
                             chunk_size=1)
        monkeypatch.delenv(CRASH_TASK_ENV)
        payload = json.loads(path.read_text())
        kept = payload["completed_seeds"][:2]
        payload["completed_seeds"] = kept
        payload["seed_samples"] = {
            str(seed): payload["seed_samples"][str(seed)] for seed in kept
        }
        payload["seed_durations"] = {
            str(seed): payload["seed_durations"][str(seed)] for seed in kept
        }
        payload.pop("checksum", None)  # hand-edit invalidates it
        path.write_text(json.dumps(payload))
        resumed = replicate_comparison(CONFIG, factory, num_seeds=4,
                                       checkpoint_path=path, resume=True)
        assert_bit_identical(serial, resumed)
