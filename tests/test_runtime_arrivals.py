"""Seeded churn draws (:mod:`repro.runtime.arrivals`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.quality.drift import SinusoidalDrift
from repro.runtime import ChurnProcess, ChurnSpec
from repro.sim.rng import RngFactory


def _process(spec: ChurnSpec, m: int = 20,
             seed: int = 0) -> ChurnProcess:
    return ChurnProcess(spec, RngFactory(seed), m)


class TestChurnSpec:
    def test_defaults_are_disabled(self):
        spec = ChurnSpec()
        assert not spec.enabled
        assert spec.min_online == 1

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError, match="arrival_rate"):
            ChurnSpec(arrival_rate=1.5)
        with pytest.raises(ConfigurationError, match="departure_rate"):
            ChurnSpec(departure_rate=-0.1)
        with pytest.raises(ConfigurationError, match="min_online"):
            ChurnSpec(min_online=0)

    def test_to_dict_round_trips_drift_parameters(self):
        spec = ChurnSpec(arrival_rate=0.2, departure_rate=0.1,
                         min_online=3,
                         drift=SinusoidalDrift(amplitude=0.4, period=50.0))
        payload = spec.to_dict()
        assert payload["arrival_rate"] == 0.2
        assert payload["drift"] == {"amplitude": 0.4, "period": 50.0}
        assert "drift" not in ChurnSpec(arrival_rate=0.2).to_dict()


class TestChurnProcess:
    def test_min_online_must_fit_population(self):
        with pytest.raises(ConfigurationError, match="min_online"):
            _process(ChurnSpec(min_online=30), m=20)

    def test_same_seed_same_round_same_churn(self):
        spec = ChurnSpec(arrival_rate=0.3, departure_rate=0.2)
        online = np.zeros(20, dtype=bool)
        online[:10] = True
        a = _process(spec).plan_round(7, online)
        b = _process(spec).plan_round(7, online)
        assert np.array_equal(a.arrivals, b.arrivals)
        assert np.array_equal(a.departures, b.departures)

    def test_rounds_use_independent_streams(self):
        spec = ChurnSpec(arrival_rate=0.5, departure_rate=0.5)
        online = np.zeros(20, dtype=bool)
        online[::2] = True
        process = _process(spec)
        plans = [process.plan_round(t, online) for t in range(6)]
        # Not every round draws the same churn (the streams differ)...
        assert len({tuple(plan.arrivals.tolist()) for plan in plans}) > 1
        # ...and replaying any round out of order reproduces it exactly.
        replay = process.plan_round(3, online)
        assert np.array_equal(replay.arrivals, plans[3].arrivals)
        assert np.array_equal(replay.departures, plans[3].departures)

    def test_arrivals_only_from_offline_departures_only_from_online(self):
        spec = ChurnSpec(arrival_rate=1.0, departure_rate=1.0,
                         min_online=1)
        online = np.zeros(10, dtype=bool)
        online[:4] = True
        plan = _process(spec, m=10).plan_round(0, online)
        assert set(plan.arrivals.tolist()) == {4, 5, 6, 7, 8, 9}
        assert set(plan.departures.tolist()).issubset({0, 1, 2, 3})

    def test_min_online_floor_limits_departures(self):
        spec = ChurnSpec(departure_rate=1.0, min_online=3)
        online = np.ones(8, dtype=bool)
        plan = _process(spec, m=8).plan_round(0, online)
        # All eight want to leave; only 8 - 3 may.
        assert plan.departures.size == 5
        assert np.array_equal(plan.departures, np.arange(5))

    def test_arrivals_raise_the_departure_allowance(self):
        spec = ChurnSpec(arrival_rate=1.0, departure_rate=1.0,
                         min_online=4)
        online = np.zeros(8, dtype=bool)
        online[:4] = True
        plan = _process(spec, m=8).plan_round(0, online)
        assert plan.arrivals.size == 4
        # online_after = 4 + 4, so all 4 current sellers may leave.
        assert plan.departures.size == 4

    def test_zero_rates_draw_quiet_rounds(self):
        plan = _process(ChurnSpec()).plan_round(0, np.ones(20, dtype=bool))
        assert plan.is_quiet

    def test_drift_modulates_arrival_rate(self):
        drift = SinusoidalDrift(amplitude=1.0, period=40.0)
        process = _process(ChurnSpec(arrival_rate=0.4, drift=drift))
        rates = {process.arrival_rate_at(t) for t in range(40)}
        assert len(rates) > 1
        assert all(0.0 <= rate <= 1.0 for rate in rates)
        flat = _process(ChurnSpec(arrival_rate=0.4))
        assert flat.arrival_rate_at(17) == 0.4

    def test_mask_shape_validated(self):
        process = _process(ChurnSpec(arrival_rate=0.1))
        with pytest.raises(ConfigurationError, match="online_mask"):
            process.plan_round(0, np.ones(7, dtype=bool))
