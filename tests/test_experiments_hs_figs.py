"""Shape tests for the single-round HS experiments (Figs. 13-18).

Each test asserts the qualitative claims the paper makes about the
corresponding figure — who rises, who falls, where the peaks sit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import Scale, run_experiment
from repro.experiments.fig13_poc_vs_price import OMEGA_VALUES
from repro.experiments.hs_setup import build_round_game, solve_round
from repro.exceptions import ExperimentError


@pytest.fixture(scope="module")
def fig13():
    return run_experiment("fig13", Scale.SMALL)


@pytest.fixture(scope="module")
def fig14():
    return run_experiment("fig14", Scale.SMALL)


@pytest.fixture(scope="module")
def fig15():
    return run_experiment("fig15", Scale.SMALL)


@pytest.fixture(scope="module")
def fig16():
    return run_experiment("fig16", Scale.SMALL)


@pytest.fixture(scope="module")
def fig17():
    return run_experiment("fig17", Scale.SMALL)


@pytest.fixture(scope="module")
def fig18():
    return run_experiment("fig18", Scale.SMALL)


class TestHsSetup:
    def test_same_seed_same_sellers(self):
        a = build_round_game(seed=4)
        b = build_round_game(seed=4)
        np.testing.assert_array_equal(a.qualities, b.qualities)

    def test_cost_override(self):
        setup = build_round_game(cost_a_override={6: 3.0})
        assert setup.cost_a[6] == 3.0

    def test_override_position_validated(self):
        with pytest.raises(ExperimentError, match="out of range"):
            build_round_game(k=5, cost_a_override={7: 1.0})

    def test_solve_round_feasible(self):
        setup = build_round_game()
        solved = solve_round(setup)
        setup.game.require_feasible(solved.profile)


class TestFig13:
    def test_poc_curve_per_omega(self, fig13):
        assert len(fig13.panel("poc_by_omega")) == len(OMEGA_VALUES)

    def test_each_curve_unimodal_with_interior_peak(self, fig13):
        for series in fig13.panel("poc_by_omega"):
            peak = int(np.argmax(series.y))
            assert 0 < peak < series.y.size - 1, series.label
            assert np.all(np.diff(series.y[:peak + 1]) > -1e-9)
            assert np.all(np.diff(series.y[peak:]) < 1e-9)

    def test_larger_omega_larger_peak_profit(self, fig13):
        peaks = [series.y.max() for series in fig13.panel("poc_by_omega")]
        assert peaks == sorted(peaks)

    def test_larger_omega_larger_se_price(self, fig13):
        locations = [
            float(series.x[int(np.argmax(series.y))])
            for series in fig13.panel("poc_by_omega")
        ]
        assert locations == sorted(locations)

    def test_pop_and_pos_monotone_in_price(self, fig13):
        pop = fig13.series("profits", "PoP")
        assert np.all(np.diff(pop.y) > 0.0)
        for label in ("PoS-3", "PoS-6", "PoS-8"):
            pos = fig13.series("profits", label)
            assert np.all(np.diff(pos.y) >= -1e-9), label

    def test_poc_has_interior_max_in_profits_panel(self, fig13):
        poc = fig13.series("profits", "PoC")
        peak = int(np.argmax(poc.y))
        assert 0 < peak < poc.y.size - 1


class TestFig14:
    def test_deviator_peak_at_equilibrium(self, fig14):
        pos6 = fig14.series("profits", "PoS-6")
        note = next(n for n in fig14.notes if "equilibrium" in n)
        tau_star = float(note.split("=")[1])
        best = float(pos6.x[int(np.argmax(pos6.y))])
        step = pos6.x[1] - pos6.x[0]
        assert abs(best - tau_star) <= step + 1e-9

    def test_other_sellers_flat(self, fig14):
        for label in ("PoS-3", "PoS-8"):
            series = fig14.series("profits", label)
            np.testing.assert_allclose(series.y, series.y[0])

    def test_leaders_profits_vary(self, fig14):
        assert fig14.series("profits", "PoC").y.std() > 0.0
        assert fig14.series("profits", "PoP").y.std() > 0.0


class TestFig15:
    def test_poc_and_pos6_decline(self, fig15):
        for label in ("PoC", "PoS-6"):
            series = fig15.series("profits", label)
            assert series.y[0] > series.y[-1], label

    def test_pop_nearly_flat_under_derived_formula(self, fig15):
        # The paper's PoP decline only reproduces under its sign-flipped
        # Stage-2 constant; the corrected formula leaves PoP ~flat.
        series = fig15.series("profits", "PoP")
        swing = series.y.max() - series.y.min()
        assert swing < 0.02 * abs(series.y.mean())

    def test_pop_declines_under_paper_variant(self):
        from repro.core.incentive import (
            ClosedFormStackelbergSolver,
            FormulaVariant,
        )

        solver = ClosedFormStackelbergSolver(variant=FormulaVariant.PAPER)
        profits = []
        for a6 in (0.05, 1.0, 5.0):
            setup = build_round_game(seed=0, cost_a_override={6: a6})
            profits.append(solver.solve(setup.game).platform_profit)
        assert profits[0] > profits[1] > profits[2]

    def test_sharp_then_flat(self, fig15):
        poc = fig15.series("profits", "PoC")
        early_drop = poc.y[0] - poc.y[poc.y.size // 4]
        late_drop = poc.y[3 * poc.y.size // 4] - poc.y[-1]
        assert early_drop > 5.0 * abs(late_drop)

    def test_rival_sellers_gain(self, fig15):
        for label in ("PoS-3", "PoS-8"):
            series = fig15.series("profits", label)
            assert series.y[-1] > series.y[0], label


class TestFig16:
    def test_prices_rise_with_a6(self, fig16):
        for label in ("SoC (p^J*)", "SoP (p*)"):
            series = fig16.series("prices", label)
            assert series.y[-1] > series.y[0], label

    def test_deviator_time_falls(self, fig16):
        series = fig16.series("sensing_times", "SoS-6 (tau*)")
        assert series.y[-1] < series.y[0]

    def test_rival_times_rise(self, fig16):
        for label in ("SoS-3 (tau*)", "SoS-8 (tau*)"):
            series = fig16.series("sensing_times", label)
            assert series.y[-1] > series.y[0], label


class TestFig17:
    def test_all_profits_decline_in_theta(self, fig17):
        for series in fig17.panel("profits"):
            assert series.y[0] > series.y[-1], series.label

    def test_decline_flattens(self, fig17):
        poc = fig17.series("profits", "PoC")
        early = poc.y[0] - poc.y[poc.y.size // 3]
        late = poc.y[2 * poc.y.size // 3] - poc.y[-1]
        assert early > late


class TestFig18:
    def test_service_price_rises_with_theta(self, fig18):
        series = fig18.series("prices", "SoC (p^J*)")
        assert series.y[-1] > series.y[0]

    def test_collection_price_falls_with_theta(self, fig18):
        series = fig18.series("prices", "SoP (p*)")
        assert series.y[-1] < series.y[0]

    def test_sensing_times_fall_with_theta(self, fig18):
        for series in fig18.panel("sensing_times"):
            assert series.y[-1] < series.y[0], series.label
