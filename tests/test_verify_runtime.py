"""The runtime verification leg (:mod:`repro.verify.runtime`)."""

from __future__ import annotations

import json

from repro.verify import run_verification
from repro.verify.runtime import (
    check_batch_equivalence,
    check_runtime,
    compute_runtime_golden,
    update_runtime_golden,
    verify_runtime_golden,
)


class TestBatchEquivalenceOracle:
    def test_passes_on_the_real_engines(self):
        passed, detail = check_batch_equivalence(seed=0, num_rounds=30)
        assert passed, detail
        assert "bit-identical" in detail

    def test_detail_names_the_scenario(self):
        _passed, detail = check_batch_equivalence(seed=9, num_rounds=20)
        assert "seed 9" in detail
        assert "20 rounds" in detail


class TestChurnGolden:
    def test_missing_golden_points_at_update_goldens(self, tmp_path):
        mismatches = verify_runtime_golden(str(tmp_path))
        assert len(mismatches) == 1
        assert "--update-goldens" in mismatches[0].describe()

    def test_update_then_verify_is_clean(self, tmp_path):
        path = update_runtime_golden(str(tmp_path))
        assert path.endswith("runtime-churn.json")
        assert verify_runtime_golden(str(tmp_path)) == []

    def test_golden_pins_the_ledger_digest(self, tmp_path):
        path = update_runtime_golden(str(tmp_path))
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["ledger_digest"] = "0" * 64
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        mismatches = verify_runtime_golden(str(tmp_path))
        assert any("ledger_digest" in m.describe() for m in mismatches)

    def test_golden_payload_shape(self):
        payload = compute_runtime_golden()
        assert payload["case"]["name"] == "runtime-churn"
        assert len(payload["ledger_digest"]) == 64
        assert payload["sessions_opened"] > payload["case"]["num_sellers"]
        assert payload["messages_dropped"] > 0
        assert "total_revenue" in payload["summary"]

    def test_checked_in_golden_is_current(self):
        # The committed store must match what the code computes today.
        assert verify_runtime_golden() == []


class TestRuntimeSection:
    def test_check_runtime_combines_both_legs(self, tmp_path):
        update_runtime_golden(str(tmp_path))
        result = check_runtime(num_rounds=20, goldens_dir=str(tmp_path))
        assert result.passed
        payload = result.to_dict()
        assert payload["equivalence"]["passed"] is True
        assert payload["golden"]["mismatches"] == []

    def test_run_verification_runtime_only(self, tmp_path):
        update_runtime_golden(str(tmp_path))
        report = run_verification(sections=("runtime",),
                                  goldens_dir=str(tmp_path))
        assert report.oracles is None and report.strict is None
        assert report.runtime is not None
        assert report.passed == report.runtime.passed
        text = report.to_text()
        assert "runtime: PASS" in text
        assert report.to_dict()["runtime"]["passed"] is True

    def test_missing_golden_fails_the_section(self, tmp_path):
        result = check_runtime(num_rounds=20, goldens_dir=str(tmp_path))
        assert not result.passed
        assert result.equivalence_passed  # only the golden leg failed
