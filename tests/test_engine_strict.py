"""Engine strict mode: invariant checking without perturbing results."""

from __future__ import annotations

import numpy as np
import pytest

import repro.sim.rounds as rounds_module
from repro.bandits import RandomPolicy, UCBPolicy
from repro.exceptions import InvariantViolationError
from repro.faults import FaultSpec
from repro.obs import RingBufferSink, Tracer
from repro.sim import SimulationConfig, TradingSimulator

CONFIG = SimulationConfig(num_sellers=12, num_selected=3, num_pois=4,
                          num_rounds=60, seed=11)

ALL_FIELDS = (
    "realized_revenue", "expected_revenue", "regret", "consumer_profit",
    "platform_profit", "seller_profit_mean", "service_price",
    "collection_price", "total_sensing_time", "selection_counts",
    "estimation_error",
)


def run(config=CONFIG, *, policy=None, spec=None, **kwargs):
    simulator = TradingSimulator(config)
    model = simulator.fault_model(spec) if spec is not None else None
    return simulator.run(policy if policy is not None else UCBPolicy(),
                         fault_model=model, **kwargs)


def assert_runs_identical(reference, other):
    for field in ALL_FIELDS:
        np.testing.assert_array_equal(
            getattr(reference, field), getattr(other, field), err_msg=field)


class TestStrictBitIdentity:
    def test_clean_run(self):
        assert_runs_identical(run(), run(strict=True))

    def test_faulty_run(self):
        spec = FaultSpec(dropout_rate=0.25, corruption_rate=0.1,
                         stall_rate=0.05)
        assert_runs_identical(run(spec=spec), run(spec=spec, strict=True))

    def test_k_equals_m_run(self):
        config = SimulationConfig(num_sellers=5, num_selected=5, num_pois=3,
                                  num_rounds=40, seed=3)
        assert_runs_identical(run(config), run(config, strict=True))

    def test_policy_without_ucb_values(self):
        # Policies that expose no index vector skip the top-K cross
        # check but still get every other invariant.
        assert_runs_identical(run(policy=RandomPolicy()),
                              run(policy=RandomPolicy(), strict=True))


class TestStrictCheckpointResume:
    def test_resumed_strict_run_equals_uninterrupted_default(self, tmp_path):
        """Resume replays invariant checks and stays bit-identical."""
        path = tmp_path / "strict.npz"
        reference = run()

        run(strict=True, checkpoint_path=path, checkpoint_every=15)
        assert path.exists()

        resumed = run(strict=True, checkpoint_path=path, resume=True)
        assert_runs_identical(reference, resumed)

    def test_resumed_strict_faulty_run(self, tmp_path):
        spec = FaultSpec(dropout_rate=0.2, corruption_rate=0.05)
        path = tmp_path / "strict-faulty.npz"
        reference = run(spec=spec)
        run(spec=spec, strict=True, checkpoint_path=path,
            checkpoint_every=15)
        resumed = run(spec=spec, strict=True, checkpoint_path=path,
                      resume=True)
        assert_runs_identical(reference, resumed)


class TestStrictCatchesMutations:
    def test_perturbed_collection_price_raises(self, monkeypatch):
        true_solve = rounds_module.solve_round_fast

        def perturbed(*args, **kwargs):
            p_j, p, taus = true_solve(*args, **kwargs)
            return p_j, p * 1.05 + 0.01, taus

        monkeypatch.setattr(rounds_module, "solve_round_fast", perturbed)
        # Default mode happily records the wrong equilibrium...
        run()
        # ...strict mode refuses it (which invariant fires first —
        # price feasibility or stationarity — depends on the round).
        with pytest.raises(InvariantViolationError, match="violated"):
            run(strict=True)

    def test_perturbed_sensing_times_raise(self, monkeypatch):
        true_solve = rounds_module.solve_round_fast

        def perturbed(*args, **kwargs):
            p_j, p, taus = true_solve(*args, **kwargs)
            return p_j, p, taus * 1.2 + 0.05

        monkeypatch.setattr(rounds_module, "solve_round_fast", perturbed)
        with pytest.raises(InvariantViolationError):
            run(strict=True)


class TestStrictObservability:
    def test_clean_strict_run_emits_no_violation_events(self):
        sink = RingBufferSink()
        run(strict=True, tracer=Tracer(sink))
        assert sink.of_kind("invariant_violation") == ()

    def test_compare_supports_strict(self):
        simulator = TradingSimulator(CONFIG)
        comparison = simulator.compare([UCBPolicy(), RandomPolicy()],
                                       strict=True)
        assert set(comparison.runs) == {"CMAB-HS", "random"}
