"""Unit tests for the crash-tolerant process-pool executor."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ParallelExecutionError
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.parallel import (
    ParallelExecutor,
    TaskSpec,
    default_worker_count,
    resolve_chunk_size,
)
from repro.parallel.worker import (
    CRASH_EXIT_CODE,
    CRASH_MARKER_ENV,
    CRASH_TASK_ENV,
)


def square(payload, context):
    return payload * payload


def square_with_telemetry(payload, context):
    context.metrics.counter("squares").inc()
    context.metrics.timer("square").observe(0.001)
    context.tracer.emit("profits", round_index=payload, value=payload)
    return payload * payload


def explode_on_three(payload, context):
    if payload == 3:
        raise ValueError("payload three is cursed")
    return payload


class TestTaskTypes:
    def test_task_spec_is_frozen(self):
        spec = TaskSpec(task_id=0, payload="x")
        with pytest.raises(AttributeError):
            spec.task_id = 1


class TestParameters:
    def test_default_worker_count_at_least_one(self):
        assert default_worker_count() >= 1

    def test_resolve_chunk_size_balances(self):
        # ~4 chunks per worker, never below 1.
        assert resolve_chunk_size(32, 4, None) == 2
        assert resolve_chunk_size(3, 4, None) == 1
        assert resolve_chunk_size(100, 2, 7) == 7

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            resolve_chunk_size(10, 2, 0)
        with pytest.raises(ConfigurationError, match="chunk_size"):
            ParallelExecutor(square, workers=2, chunk_size=-1)

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ParallelExecutor(square, workers=0)

    def test_rejects_bad_retries(self):
        with pytest.raises(ConfigurationError, match="max_task_retries"):
            ParallelExecutor(square, workers=1, max_task_retries=-1)

    def test_rejects_bad_ring_capacity(self):
        with pytest.raises(ConfigurationError, match="ring_capacity"):
            ParallelExecutor(square, workers=1, ring_capacity=0)


class TestExecution:
    def test_map_preserves_submission_order(self):
        executor = ParallelExecutor(square, workers=2)
        results = executor.map(list(range(10)))
        assert [r.task_id for r in results] == list(range(10))
        assert [r.value for r in results] == [n * n for n in range(10)]

    def test_map_empty(self):
        assert ParallelExecutor(square, workers=2).map([]) == []

    def test_as_completed_covers_every_task(self):
        executor = ParallelExecutor(square, workers=3, chunk_size=1)
        seen = {r.task_id: r.value for r in executor.as_completed([5, 6, 7])}
        assert seen == {0: 25, 1: 36, 2: 49}

    def test_results_carry_worker_and_duration(self):
        executor = ParallelExecutor(square, workers=2)
        for result in executor.map([1, 2, 3]):
            assert result.worker_id >= 0
            assert result.duration_s >= 0.0
            assert result.attempts == 1

    def test_more_workers_than_tasks(self):
        executor = ParallelExecutor(square, workers=8)
        assert [r.value for r in executor.map([4])] == [16]

    def test_runner_exception_fails_fast_with_traceback(self):
        executor = ParallelExecutor(explode_on_three, workers=2,
                                    chunk_size=1)
        with pytest.raises(ParallelExecutionError) as excinfo:
            executor.map(list(range(6)))
        message = str(excinfo.value)
        assert "payload three is cursed" in message
        assert "Traceback" in message

    def test_closure_runner_works_under_fork(self):
        offset = 100

        def add_offset(payload, context):
            return payload + offset

        executor = ParallelExecutor(add_offset, workers=2)
        assert [r.value for r in executor.map([1, 2])] == [101, 102]


class TestTelemetryMerge:
    def test_worker_metrics_merge_into_coordinator(self):
        registry = MetricsRegistry()
        executor = ParallelExecutor(square_with_telemetry, workers=2,
                                    metrics=registry)
        executor.map(list(range(8)))
        assert registry.counters["squares"] == 8
        assert registry.counters["parallel.tasks_completed"] == 8
        assert registry.counters["parallel.workers_started"] == 2
        assert registry.timer("square").count == 8
        assert registry.timer("parallel.task").count == 8

    def test_worker_events_replay_tagged_into_parent_tracer(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        executor = ParallelExecutor(square_with_telemetry, workers=2,
                                    tracer=tracer)
        executor.map(list(range(4)))
        kinds = [event.kind for event in sink.events]
        assert kinds.count("worker_started") == 2
        assert kinds.count("worker_task_done") == 4
        replayed = [e for e in sink.events if e.kind == "profits"]
        assert len(replayed) == 4
        assert all("worker" in e.payload for e in replayed)

    def test_untraced_run_ships_no_events(self):
        executor = ParallelExecutor(square_with_telemetry, workers=2)
        for result in executor.map(list(range(4))):
            assert result.events == ()


class TestCrashTolerance:
    def _crash_env(self, monkeypatch, tmp_path, task_id):
        monkeypatch.setenv(CRASH_TASK_ENV, str(task_id))
        monkeypatch.setenv(CRASH_MARKER_ENV,
                           str(tmp_path / "crash.marker"))

    def test_crashed_task_is_requeued_and_completes(self, monkeypatch,
                                                    tmp_path):
        self._crash_env(monkeypatch, tmp_path, task_id=2)
        registry = MetricsRegistry()
        sink = RingBufferSink()
        executor = ParallelExecutor(square, workers=2, chunk_size=1,
                                    metrics=registry, tracer=Tracer(sink))
        results = executor.map(list(range(6)))
        assert [r.value for r in results] == [n * n for n in range(6)]
        assert results[2].attempts == 2
        assert registry.counters["parallel.worker_crashes"] == 1
        assert registry.counters["parallel.tasks_requeued"] == 1
        # The replacement worker is a fresh process with a fresh id.
        assert registry.counters["parallel.workers_started"] == 3
        crashes = [e for e in sink.events if e.kind == "worker_crashed"]
        assert len(crashes) == 1
        assert crashes[0].payload["exitcode"] == CRASH_EXIT_CODE
        assert crashes[0].payload["lost_tasks"] == [2]

    def test_crash_mid_chunk_requeues_unfinished_tasks_only(
            self, monkeypatch, tmp_path):
        # One worker, one chunk of 4: tasks 0-1 finish, the crash on
        # task 2 loses tasks 2-3, and both complete on the replacement.
        self._crash_env(monkeypatch, tmp_path, task_id=2)
        registry = MetricsRegistry()
        executor = ParallelExecutor(square, workers=1, chunk_size=4,
                                    metrics=registry)
        results = executor.map(list(range(4)))
        assert [r.value for r in results] == [0, 1, 4, 9]
        assert registry.counters["parallel.tasks_requeued"] == 2
        assert results[0].attempts == 1
        assert results[2].attempts == 2
        # Task 3 never *started* before the crash, so its replacement
        # run is its first attempt.
        assert results[3].attempts == 1

    def test_retry_budget_exhaustion_raises(self, monkeypatch, tmp_path):
        self._crash_env(monkeypatch, tmp_path, task_id=1)
        executor = ParallelExecutor(square, workers=1, chunk_size=1,
                                    max_task_retries=0)
        with pytest.raises(ParallelExecutionError, match="worker crash"):
            executor.map(list(range(3)))
