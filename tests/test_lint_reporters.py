"""Reporter, baseline, and pragma edge-case coverage.

The SARIF checks are structural (the container has no ``jsonschema``
package): they pin the exact invariants GitHub code scanning consumes
— schema URL, version, rule index consistency, region coordinates, and
stable partial fingerprints.
"""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import (
    Finding,
    filter_baselined,
    finding_fingerprint,
    findings_to_json,
    findings_to_sarif,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.lint.framework import LintSession
from repro.lint.reporters import (JSON_REPORT_VERSION, SARIF_SCHEMA,
                                  SARIF_VERSION)


def sample_findings():
    return [
        Finding(path="src/a.py", line=3, column=4, rule="RL001",
                message="bad rng", snippet="rng = default_rng()"),
        Finding(path="src/b.py", line=9, column=0, rule="RL007",
                message="orphan pragma", snippet="", severity="warning"),
    ]


class TestJsonReport:
    def test_round_trips_through_json(self):
        report = findings_to_json(sample_findings(), files_checked=2)
        clone = json.loads(json.dumps(report))
        assert clone == report
        assert clone["version"] == JSON_REPORT_VERSION
        assert [item["severity"] for item in clone["findings"]] \
            == ["error", "warning"]

    def test_rules_override_for_flow_runs(self):
        meta = {"RL101": {"title": "t", "rationale": "r"}}
        report = findings_to_json([], rules=meta)
        assert report["rules"] == meta


class TestSarif:
    def test_structure_matches_sarif_2_1_0(self):
        findings = sample_findings()
        sarif = findings_to_sarif(findings)
        assert sarif["$schema"] == SARIF_SCHEMA
        assert sarif["version"] == SARIF_VERSION == "2.1.0"
        (run,) = sarif["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        results = run["results"]
        assert len(results) == len(findings)
        for result, finding in zip(results, findings):
            # ruleIndex must point at the matching driver rule
            assert rule_ids[result["ruleIndex"]] == result["ruleId"] \
                == finding.rule
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] == finding.line
            # SARIF columns are 1-based; findings store 0-based
            assert region["startColumn"] == finding.column + 1
            assert result["partialFingerprints"]["reproLint/v1"] \
                == finding_fingerprint(finding)
        assert [r["level"] for r in results] == ["error", "warning"]
        json.dumps(sarif)  # must serialize as-is

    def test_every_registered_rule_is_listed(self):
        sarif = findings_to_sarif([])
        rule_ids = [rule["id"]
                    for rule in sarif["runs"][0]["tool"]["driver"]["rules"]]
        assert rule_ids == [f"RL00{i}" for i in range(1, 7)]


class TestBaseline:
    def test_fingerprint_is_line_independent(self):
        a = sample_findings()[0]
        moved = Finding(path=a.path, line=a.line + 40, column=2,
                        rule=a.rule, message=a.message, snippet=a.snippet)
        assert finding_fingerprint(a) == finding_fingerprint(moved)
        other = Finding(path=a.path, line=a.line, column=a.column,
                        rule="RL002", message=a.message, snippet=a.snippet)
        assert finding_fingerprint(a) != finding_fingerprint(other)

    def test_write_load_filter_cycle(self, tmp_path):
        findings = sample_findings()
        path = tmp_path / "baseline.json"
        assert write_baseline(str(path), findings) == 2
        baseline = load_baseline(str(path))
        kept, suppressed = filter_baselined(findings, baseline)
        assert kept == [] and suppressed == 2
        fresh = Finding(path="src/c.py", line=1, column=0, rule="RL003",
                        message="new", snippet="emit('x')")
        kept, suppressed = filter_baselined(findings + [fresh], baseline)
        assert kept == [fresh] and suppressed == 2

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_baseline(str(tmp_path / "nope.json"))


RNG_CALL = "np.random.default_rng()"


class TestPragmaEdgeCases:
    def test_pragma_on_decorator_line_suppresses_def_line(self):
        source = (
            "import numpy as np\n"
            "def deco(f):\n"
            "    return f\n"
            "@deco  # repro-lint: disable=RL001\n"
            f"def f():\n"
            f"    return 1\n"
        )
        # the pragma sits on the decorator: a finding on that exact
        # line is suppressed, but the def body is not blanketed
        assert lint_source(source) == []

    def test_file_level_pragma_after_docstring(self):
        source = (
            '"""Module docstring spanning\n'
            'two lines."""\n'
            "# repro-lint: disable-file=RL001\n"
            "import numpy as np\n"
            f"rng = {RNG_CALL}\n"
        )
        assert lint_source(source) == []

    def test_line_pragma_only_covers_its_line(self):
        source = (
            "import numpy as np\n"
            f"a = {RNG_CALL}  # repro-lint: disable=RL001\n"
            f"b = {RNG_CALL}\n"
        )
        findings = lint_source(source)
        assert [f.line for f in findings] == [3]

    def test_pragma_inside_string_literal_is_inert(self):
        source = (
            "import numpy as np\n"
            'note = "# repro-lint: disable-file=RL001"\n'
            f"rng = {RNG_CALL}\n"
        )
        assert len(lint_source(source)) == 1

    def test_unused_pragma_reported_via_session(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # repro-lint: disable=RL004\n")
        session = LintSession([str(target)])
        session.run_classic()
        orphans = session.orphan_findings(session.rule_ids)
        assert [f.rule for f in orphans] == ["RL007"]
        assert orphans[0].severity == "warning"
        strict = session.orphan_findings(session.rule_ids, strict=True)
        assert strict[0].severity == "error"

    def test_used_pragma_is_not_orphaned(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import numpy as np\n"
            f"rng = {RNG_CALL}  # repro-lint: disable=RL001\n"
        )
        session = LintSession([str(target)])
        assert session.run_classic() == []
        assert session.orphan_findings(session.rule_ids) == []
