"""Unit tests for the trace schema and CSV loader."""

from __future__ import annotations

import pytest

from repro.data.loader import (
    filter_by_taxis,
    filter_by_time,
    load_trace,
    save_trace,
)
from repro.data.schema import CSV_HEADER, TripRecord
from repro.exceptions import DataTraceError


def make_record(taxi_id=1, timestamp=100.0, miles=2.5) -> TripRecord:
    return TripRecord(
        taxi_id=taxi_id, timestamp=timestamp, trip_miles=miles,
        pickup_latitude=41.88, pickup_longitude=-87.63,
        dropoff_latitude=41.90, dropoff_longitude=-87.65,
    )


class TestTripRecord:
    def test_rejects_negative_taxi_id(self):
        with pytest.raises(DataTraceError, match="taxi_id"):
            make_record(taxi_id=-1)

    def test_rejects_negative_miles(self):
        with pytest.raises(DataTraceError, match="trip_miles"):
            make_record(miles=-0.5)

    def test_rejects_nonfinite_fields(self):
        with pytest.raises(DataTraceError, match="finite"):
            TripRecord(taxi_id=1, timestamp=float("nan"), trip_miles=1.0,
                       pickup_latitude=0.0, pickup_longitude=0.0,
                       dropoff_latitude=0.0, dropoff_longitude=0.0)

    def test_csv_round_trip(self):
        record = make_record()
        parsed = TripRecord.from_csv_row(record.to_csv_row())
        assert parsed.taxi_id == record.taxi_id
        assert parsed.timestamp == pytest.approx(record.timestamp)
        assert parsed.pickup_latitude == pytest.approx(
            record.pickup_latitude, abs=1e-6
        )

    def test_from_csv_rejects_wrong_arity(self):
        with pytest.raises(DataTraceError, match="expected 7 fields"):
            TripRecord.from_csv_row("1,2,3")

    def test_from_csv_rejects_non_numeric(self):
        with pytest.raises(DataTraceError, match="malformed"):
            TripRecord.from_csv_row("a,b,c,d,e,f,g")


class TestLoader:
    def test_save_and_load_round_trip(self, tmp_path):
        records = [make_record(taxi_id=i, timestamp=float(i))
                   for i in range(5)]
        path = tmp_path / "trace.csv"
        count = save_trace(records, path)
        assert count == 5
        loaded = load_trace(path)
        assert len(loaded) == 5
        assert [r.taxi_id for r in loaded] == list(range(5))

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataTraceError, match="empty"):
            load_trace(path)

    def test_load_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(DataTraceError, match="header"):
            load_trace(path)

    def test_header_matches_schema(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace([make_record()], path)
        first_line = path.read_text().splitlines()[0]
        assert first_line == ",".join(CSV_HEADER)


class TestFilters:
    def test_filter_by_time(self):
        records = [make_record(timestamp=float(t)) for t in range(10)]
        subset = filter_by_time(records, 3.0, 7.0)
        assert [r.timestamp for r in subset] == [3.0, 4.0, 5.0, 6.0]

    def test_filter_by_time_rejects_empty_window(self):
        with pytest.raises(DataTraceError, match="empty time window"):
            filter_by_time([make_record()], 5.0, 5.0)

    def test_filter_by_taxis(self):
        records = [make_record(taxi_id=i % 3) for i in range(9)]
        subset = filter_by_taxis(records, [1])
        assert len(subset) == 3
        assert all(r.taxi_id == 1 for r in subset)

    def test_filter_by_taxis_empty_selection(self):
        assert filter_by_taxis([make_record()], []) == []
