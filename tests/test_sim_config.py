"""Unit tests for the simulation configuration and Table II."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.config import TABLE_II, SimulationConfig


class TestDefaults:
    def test_defaults_match_table_ii(self):
        config = SimulationConfig()
        assert config.num_rounds == TABLE_II["num_rounds"]["default"]
        assert config.num_sellers == TABLE_II["num_sellers"]["default"]
        assert config.num_selected == TABLE_II["num_selected"]["default"]
        assert config.omega == TABLE_II["omega"]["default"]
        assert config.theta == TABLE_II["theta"]["default"]
        assert config.lam == TABLE_II["lam"]["default"]
        assert config.num_pois == TABLE_II["num_pois"]["default"]

    def test_table_ii_sweep_values(self):
        assert TABLE_II["num_rounds"]["values"] == [
            5_000, 40_000, 80_000, 100_000, 120_000, 160_000, 200_000
        ]
        assert TABLE_II["num_sellers"]["values"] == [
            50, 100, 150, 200, 250, 300
        ]
        assert TABLE_II["num_selected"]["values"] == [
            10, 20, 30, 40, 50, 60
        ]
        assert TABLE_II["omega"]["values"] == [600, 800, 1_000, 1_200, 1_400]

    def test_exploration_coefficient_is_k_plus_one(self):
        config = SimulationConfig(num_selected=7, num_sellers=50)
        assert config.exploration_coefficient == 8.0


class TestValidation:
    def test_rejects_k_above_m(self):
        with pytest.raises(ConfigurationError, match="num_selected"):
            SimulationConfig(num_sellers=5, num_selected=6)

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ConfigurationError, match="num_rounds"):
            SimulationConfig(num_rounds=0)

    def test_rejects_bad_theta(self):
        with pytest.raises(ConfigurationError, match="theta"):
            SimulationConfig(theta=0.0)

    def test_rejects_bad_omega(self):
        with pytest.raises(ConfigurationError, match="omega"):
            SimulationConfig(omega=1.0)

    def test_rejects_zero_a_lower_bound(self):
        with pytest.raises(ConfigurationError, match="a_range"):
            SimulationConfig(a_range=(0.0, 0.5))

    def test_rejects_inverted_price_bounds(self):
        with pytest.raises(ConfigurationError, match="price_bounds"):
            SimulationConfig(service_price_bounds=(5.0, 1.0))

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError, match="quality_sigma"):
            SimulationConfig(quality_sigma=0.0)

    def test_rejects_tau0_beyond_duration(self):
        with pytest.raises(ConfigurationError, match="initial_sensing_time"):
            SimulationConfig(initial_sensing_time=2.0, max_sensing_time=1.0)


class TestDerive:
    def test_derive_replaces_fields(self):
        base = SimulationConfig()
        derived = base.derive(num_rounds=500, omega=800.0)
        assert derived.num_rounds == 500
        assert derived.omega == 800.0
        assert derived.num_sellers == base.num_sellers

    def test_derive_validates(self):
        base = SimulationConfig()
        with pytest.raises(ConfigurationError):
            base.derive(num_rounds=-1)

    def test_derive_leaves_original_untouched(self):
        base = SimulationConfig()
        base.derive(num_rounds=500)
        assert base.num_rounds == TABLE_II["num_rounds"]["default"]
