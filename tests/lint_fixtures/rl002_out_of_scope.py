"""RL002 fixture: clock reads outside the scoped packages (clean).

No ``package=`` pragma, so the inferred package is ``""`` and the
package-scoped wall-clock rule does not apply.
"""

import time


def stamp():
    return time.time()
