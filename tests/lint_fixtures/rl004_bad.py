# repro-lint: package=repro.game.fake_module
"""RL004 fixture: exact float equality on model quantities (3 findings)."""


def classify(price, tau):
    if price == 0.0:
        return "free"
    if -1.0 != tau:
        return "sensing"
    return "degenerate" if float(price) == tau else "priced"
