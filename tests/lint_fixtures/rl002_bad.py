# repro-lint: package=repro.sim.fake_module
"""RL002 fixture: wall-clock reads in a deterministic package (4 findings)."""

import datetime
import time
from time import perf_counter


def stamp_round():
    started = perf_counter()
    now = time.time()
    today = datetime.datetime.now()
    return started, now, today
