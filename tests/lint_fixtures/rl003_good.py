"""RL003 fixture: registered literal kinds and dynamic kinds (clean)."""


def trace_round(tracer, index, kind):
    tracer.emit("round_start", round_index=index)
    tracer.emit("round_end", round_index=index)
    tracer.emit(kind, round_index=index)  # dynamic kinds are not checked


def trace_recovery(tracer, index):
    # The resilience-layer kinds are registered in EVENT_KINDS too.
    tracer.emit("retry_attempt", op="engine.checkpoint_write", attempt=1)
    tracer.emit("watchdog_kill", worker=0, reason="heartbeat_lost")
    tracer.emit("task_deadline_exceeded", worker=0, task=3)
    tracer.emit("checkpoint_quarantined", path="ck.npz")
    tracer.emit("graceful_shutdown", round_index=index)


def trace_runtime(tracer, index):
    # The event-runtime lifecycle kinds are registered as well.
    tracer.emit("agent_spawn", agent="seller-3", kind="seller", slot=3)
    tracer.emit("message_delivered", topic="collect", time=float(index))
    tracer.emit("session_open", session=7, slot=3)
    tracer.emit("session_close", session=7, slot=3, rounds_online=12)
    tracer.emit("agent_depart", agent="seller-3", kind="seller", slot=3)
