"""RL003 fixture: registered literal kinds and dynamic kinds (clean)."""


def trace_round(tracer, index, kind):
    tracer.emit("round_start", round_index=index)
    tracer.emit("round_end", round_index=index)
    tracer.emit(kind, round_index=index)  # dynamic kinds are not checked


def trace_recovery(tracer, index):
    # The resilience-layer kinds are registered in EVENT_KINDS too.
    tracer.emit("retry_attempt", op="engine.checkpoint_write", attempt=1)
    tracer.emit("watchdog_kill", worker=0, reason="heartbeat_lost")
    tracer.emit("task_deadline_exceeded", worker=0, task=3)
    tracer.emit("checkpoint_quarantined", path="ck.npz")
    tracer.emit("graceful_shutdown", round_index=index)
