"""RL003 fixture: registered literal kinds and dynamic kinds (clean)."""


def trace_round(tracer, index, kind):
    tracer.emit("round_start", round_index=index)
    tracer.emit("round_end", round_index=index)
    tracer.emit(kind, round_index=index)  # dynamic kinds are not checked
