# repro-lint: package=repro.parallel.fake_module
"""RL005 fixture: swallowed exceptions in recovery code (3 findings)."""


def drain(queue, tasks):
    try:
        queue.get()
    except:
        pass
    try:
        queue.put(1)
    except Exception:
        pass
    for task in tasks:
        try:
            task.run()
        except BaseException:
            continue
