"""RL103 fixture: kinds reach ``Tracer.emit`` only through wrappers.

Clean as committed: every literal forwarded through ``forward`` (and
every ``TraceEvent`` construction) is a member of ``EVENT_KINDS``, and
every declared kind is produced by some call chain.  The meta-tests
mutate a forwarded literal to a typo (invalid kind through a wrapper —
invisible to the single-file RL003) and add a kind nobody emits (dead
kind).
"""
# repro-lint: package=repro.sim.emitters
from repro.obs.events import TraceEvent


def forward(tracer, kind):
    """Wrapper the single-file emit check cannot see through."""
    tracer.emit(kind)


def run_round(tracer):
    forward(tracer, "round_start")
    forward(tracer, "round_end")
    return TraceEvent("trade_settled")
