"""RL103 fixture: the event schema module (kinds + TraceEvent)."""
# repro-lint: package=repro.obs.events

EVENT_KINDS = frozenset({
    "round_start",
    "round_end",
    "trade_settled",
})


class TraceEvent:
    """Minimal stand-in for the real trace record."""

    def __init__(self, kind, payload=None):
        self.kind = kind
        self.payload = payload
