"""RL105 fixture: the differential harness referencing the kernel."""
# repro-lint: package=repro.verify.kernels
from repro.core.reference import slow_scores
from repro.kernels import fast_scores


def check_scores(counts, means, coefficient):
    """One scalar-vs-vector differential leg."""
    fast = fast_scores(counts, means, coefficient)
    slow = slow_scores(counts, means, coefficient)
    return list(fast) == list(slow)
