"""RL105 fixture: the public kernel surface with a declared twin."""
# repro-lint: package=repro.kernels
import numpy as np

__all__ = ["fast_scores"]


# repro-lint: twin=repro.core.reference.slow_scores
def fast_scores(counts, means, coefficient):
    """Vectorised score kernel (twin: the scalar reference loop)."""
    return means + coefficient * np.sqrt(counts)
