"""RL105 fixture: the scalar reference twin of the vector kernel."""
# repro-lint: package=repro.core.reference
import math


def slow_scores(counts, means, coefficient):
    """Element-by-element reference for ``fast_scores``."""
    return [mean + coefficient * math.sqrt(count)
            for count, mean in zip(counts, means)]
