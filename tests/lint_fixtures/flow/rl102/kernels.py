"""RL102 fixture: a pure kernel pair with a declared ``out=`` buffer.

Clean as committed: ``scale_into`` only writes its conventional ``out``
parameter and ``pipeline`` forwards its own ``out`` buffer.  The
meta-tests mutate this into the three impurity classes RL102 exists
for: mutating a non-out parameter, appending to module state, and
calling an impure helper.
"""
# repro-lint: package=repro.kernels.fixture
import numpy as np

_SCALE = 2.0


def scale_into(values, out):
    """Write ``values * _SCALE`` into the caller-owned ``out``."""
    np.multiply(values, _SCALE, out=out)
    return out


def pipeline(values, out):
    """Forward the caller's buffer through the scaling kernel."""
    return scale_into(values, out)
