"""RL104 fixture: a symmetric ``save_state``/``load_state`` pair.

Clean as committed: every key the saver writes is read back (or
defaulted) by the loader, and every key the loader requires is
written.  The meta-tests widen one side at a time — an extra written
key (never read) and an extra required key (never written) — and
assert RL104 reports the drift at the right site.
"""
# repro-lint: package=repro.sim.persist_fixture


def _schema_version():
    return 3


def save_state(means, counts):
    """Serialize the learning state to a plain payload dict."""
    return {
        "means": list(means),
        "counts": list(counts),
        "version": _schema_version(),
    }


def load_state(payload):
    """Rebuild the learning state from ``payload``."""
    means = payload["means"]
    counts = payload["counts"]
    version = payload.get("version", 0)
    return means, counts, version
