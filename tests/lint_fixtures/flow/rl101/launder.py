"""RL101 fixture: helpers that *could* launder an RNG constructor.

Clean as committed: ``invoke`` is a generic factory applicator and no
call site hands it a raw RNG constructor.  The meta-test mutates
``make_stream`` to alias ``np.random.default_rng`` through a local —
the single-file RL001 pattern cannot see the aliased call, RL101 must.
"""
# repro-lint: package=repro.quality.launder
import numpy as np


def invoke(factory, seed):
    """Apply any zero-state factory to ``seed``."""
    return factory(seed)


def make_stream(seed):
    """Derive a deterministic stream tag (no RNG is constructed)."""
    return invoke(str, seed)


def spread(seed):
    """A plain numpy call that must not read as an RNG birth."""
    return np.asarray([seed, seed + 1])
