"""RL001 fixture: the sanctioned way to obtain RNG streams (clean)."""

from repro.sim.rng import RngFactory, seed_sequence, seeded_generator


def make_generators(seed):
    factory = RngFactory(seed)
    generator = seeded_generator(seed)
    sequence = seed_sequence([seed, 0x51])
    return factory, generator, sequence
