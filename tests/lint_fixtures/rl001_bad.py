"""RL001 fixture: RNG construction outside repro.sim.rng (5 findings)."""

import random

import numpy as np
from numpy.random import default_rng


def make_generators():
    direct = np.random.default_rng(7)
    from_import = default_rng(7)
    sequence = np.random.SeedSequence(7)
    stdlib_draw = random.random()
    stdlib_rng = random.Random(7)
    return direct, from_import, sequence, stdlib_draw, stdlib_rng
