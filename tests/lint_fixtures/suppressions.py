"""Suppression fixture: RL001 violations silenced two different ways.

The first construction carries a line pragma; the second is covered by
the file-wide ``disable-file`` pragma below; the third disables a
*different* rule, so it still fires (exactly 1 finding in this file).
"""
# repro-lint: disable-file=RL006

import numpy as np


def make(seed):
    silenced = np.random.default_rng(seed)  # repro-lint: disable=RL001
    still_flagged = np.random.default_rng(seed)  # repro-lint: disable=RL002
    return silenced, still_flagged
