# repro-lint: package=repro.sim.fake_module
"""RL002 fixture: timing routed through the auditable shim (clean)."""

from repro.obs.timing import perf_counter


def stamp_round():
    return perf_counter()
