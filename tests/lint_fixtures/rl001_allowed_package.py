# repro-lint: package=repro.sim.rng
"""RL001 fixture: direct construction is legal *inside* repro.sim.rng."""

import numpy as np


def make(seed):
    return np.random.default_rng(seed)
