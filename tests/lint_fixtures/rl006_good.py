"""RL006 fixture: module-level runners cross the boundary (clean)."""

from repro.parallel import ParallelExecutor, TaskSpec


def run_task(task):
    return task


def launch(payloads):
    executor = ParallelExecutor(runner=run_task)
    specs = [TaskSpec(payload, run_task) for payload in payloads]
    return executor, specs
