"""RL003 fixture: literal emit kind missing from EVENT_KINDS (1 finding)."""


def trace_round(tracer, index):
    tracer.emit("round_strat", round_index=index)  # typo for round_start
