"""RL003 fixture: literal emit kinds missing from EVENT_KINDS (3 findings)."""


def trace_round(tracer, index):
    tracer.emit("round_strat", round_index=index)  # typo for round_start


def trace_recovery(tracer):
    tracer.emit("watchdog_killed", worker=0)  # typo for watchdog_kill


def trace_runtime(tracer):
    tracer.emit("agent_spawned", agent="seller-3")  # typo for agent_spawn
