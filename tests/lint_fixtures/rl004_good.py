# repro-lint: package=repro.game.fake_module
"""RL004 fixture: tolerance-aware comparisons and int equality (clean)."""

import math


def classify(price, tau, count):
    if math.isclose(price, 0.0, abs_tol=1e-12):
        return "free"
    if count == 0:  # integer equality is exact and fine
        return "empty"
    return "priced" if math.isclose(price, tau) else "split"
