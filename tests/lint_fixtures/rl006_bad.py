"""RL006 fixture: unpicklable callables at the task boundary (3 findings)."""

from repro.parallel import ParallelExecutor, TaskSpec


def launch(payloads):
    executor = ParallelExecutor(runner=lambda task: task)
    def local_runner(task):
        return task

    specs = [TaskSpec(payload, local_runner) for payload in payloads]
    specs.append(TaskSpec(None, lambda task: task))
    executor.submit(lambda: None)  # not a boundary call: not flagged
    return executor, specs
