# repro-lint: package=repro.parallel.fake_module
"""RL005 fixture: narrow or observable exception handling (clean)."""

import logging

log = logging.getLogger(__name__)


def drain(queue, tasks):
    try:
        queue.get()
    except OSError:  # narrow types may be deliberately ignored
        pass
    for task in tasks:
        try:
            task.run()
        except Exception as error:  # broad is fine when observable
            log.warning("task failed: %s", error)
            raise
