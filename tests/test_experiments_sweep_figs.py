"""Shape tests for the policy-sweep experiments (Figs. 7-12).

Run at reduced sizes via the runners' override parameters; the same
assertions hold at paper scale (see benchmarks/).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import Scale
from repro.experiments.fig07_revenue_regret_vs_n import run as run_fig7
from repro.experiments.fig08_delta_profit_vs_n import run as run_fig8
from repro.experiments.fig09_revenue_regret_vs_m import run as run_fig9
from repro.experiments.fig10_delta_profit_vs_m import run as run_fig10
from repro.experiments.fig11_revenue_regret_vs_k import run as run_fig11
from repro.experiments.fig12_avg_profit_vs_k import run as run_fig12
from repro.sim.config import SimulationConfig

FAST_CONFIG = SimulationConfig(num_sellers=40, num_selected=5,
                               num_pois=5, num_rounds=100, seed=3)


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(Scale.SMALL, seed=3, sweep_values=[200, 500, 1_000],
                    config=FAST_CONFIG)


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(Scale.SMALL, seed=3, sweep_values=[200, 500, 1_000],
                    config=FAST_CONFIG)


@pytest.fixture(scope="module")
def fig9():
    return run_fig9(Scale.SMALL, seed=3, sweep_values=[20, 40, 60],
                    num_rounds=500)


@pytest.fixture(scope="module")
def fig10():
    return run_fig10(Scale.SMALL, seed=3, sweep_values=[20, 40, 60],
                     num_rounds=500)


@pytest.fixture(scope="module")
def fig11():
    return run_fig11(Scale.SMALL, seed=3, sweep_values=[5, 10, 15],
                     num_rounds=500, num_sellers=60)


@pytest.fixture(scope="module")
def fig12():
    return run_fig12(Scale.SMALL, seed=3, sweep_values=[5, 10, 15],
                     num_rounds=500, num_sellers=60)


ALL_POLICIES = ("optimal", "CMAB-HS", "0.1-first", "0.5-first", "random")


class TestFig7:
    def test_all_policies_present(self, fig7):
        labels = {s.label for s in fig7.panel("total_revenue")}
        assert labels == set(ALL_POLICIES)

    def test_revenue_grows_with_n(self, fig7):
        for series in fig7.panel("total_revenue"):
            assert np.all(np.diff(series.y) > 0.0), series.label

    def test_optimal_dominates(self, fig7):
        optimal = fig7.series("total_revenue", "optimal").y
        for label in ("CMAB-HS", "0.1-first", "0.5-first", "random"):
            other = fig7.series("total_revenue", label).y
            assert np.all(optimal >= other), label

    def test_learning_beats_random(self, fig7):
        random = fig7.series("total_revenue", "random").y
        for label in ("CMAB-HS", "0.1-first"):
            assert np.all(fig7.series("total_revenue", label).y > random)

    def test_optimal_zero_regret(self, fig7):
        np.testing.assert_allclose(fig7.series("regret", "optimal").y, 0.0)

    def test_random_regret_linear(self, fig7):
        regret = fig7.series("regret", "random")
        rates = regret.y / regret.x
        assert rates.max() < 1.5 * rates.min()

    def test_cmabhs_regret_sublinear(self, fig7):
        regret = fig7.series("regret", "CMAB-HS")
        rates = regret.y / regret.x
        assert rates[-1] < rates[0]

    def test_cmabhs_regret_below_random(self, fig7):
        cmabhs = fig7.series("regret", "CMAB-HS").y
        random = fig7.series("regret", "random").y
        assert np.all(cmabhs < random)


class TestFig8:
    def test_policies_exclude_optimal(self, fig8):
        labels = {s.label for s in fig8.panel("delta_poc")}
        assert "optimal" not in labels
        assert labels == {"CMAB-HS", "0.1-first", "0.5-first", "random"}

    def test_cmabhs_delta_poc_shrinks_with_n(self, fig8):
        series = fig8.series("delta_poc", "CMAB-HS")
        assert series.y[-1] < series.y[0]

    def test_random_delta_poc_worst(self, fig8):
        random = fig8.series("delta_poc", "random").y
        cmabhs = fig8.series("delta_poc", "CMAB-HS").y
        assert np.all(random > cmabhs)

    def test_all_panels_present(self, fig8):
        assert set(fig8.panels) == {"delta_poc", "delta_pop", "delta_pos"}


class TestFig9:
    def test_revenue_grows_only_slightly_in_m(self, fig9):
        # The paper: revenue "keeps stable and grows very slightly" with M
        # (the top-K dominates).  At these small M values the top-K still
        # improves somewhat; tripling M must change revenue far less than
        # proportionally.
        optimal = fig9.series("total_revenue", "optimal").y
        assert optimal.max() < 1.3 * optimal.min()

    def test_learning_beats_random_at_every_m(self, fig9):
        random = fig9.series("total_revenue", "random").y
        cmabhs = fig9.series("total_revenue", "CMAB-HS").y
        assert np.all(cmabhs > random)

    def test_random_regret_grows_with_m(self, fig9):
        # More sellers -> a random pick is farther from the top-K.
        random = fig9.series("regret", "random").y
        assert random[-1] > random[0]


class TestFig10:
    def test_cmabhs_delta_below_random_at_every_m(self, fig10):
        for panel in ("delta_poc", "delta_pos"):
            random = fig10.series(panel, "random").y
            cmabhs = fig10.series(panel, "CMAB-HS").y
            assert np.all(cmabhs < random), panel


class TestFig11:
    def test_revenue_grows_with_k(self, fig11):
        for series in fig11.panel("total_revenue"):
            assert np.all(np.diff(series.y) > 0.0), series.label

    def test_regret_grows_with_k_for_random(self, fig11):
        random = fig11.series("regret", "random").y
        assert np.all(np.diff(random) > 0.0)

    def test_cmabhs_regret_below_random_at_every_k(self, fig11):
        cmabhs = fig11.series("regret", "CMAB-HS").y
        random = fig11.series("regret", "random").y
        assert np.all(cmabhs < random)


class TestFig12:
    def test_pos_per_seller_drops_with_k(self, fig12):
        for label in ("optimal", "CMAB-HS"):
            series = fig12.series("avg_pos", label)
            assert np.all(np.diff(series.y) < 0.0), label

    def test_poc_relatively_stable_in_k(self, fig12):
        series = fig12.series("avg_poc", "optimal")
        pos = fig12.series("avg_pos", "optimal")
        poc_rel_change = abs(series.y[-1] - series.y[0]) / abs(series.y[0])
        pos_rel_change = abs(pos.y[-1] - pos.y[0]) / abs(pos.y[0])
        assert poc_rel_change < pos_rel_change

    def test_all_policies_present(self, fig12):
        labels = {s.label for s in fig12.panel("avg_poc")}
        assert labels == set(ALL_POLICIES)
