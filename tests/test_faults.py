"""Fault injection, graceful degradation, and clean-path bit-identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandits import ThompsonSamplingPolicy, UCBPolicy
from repro.core import CMABHSMechanism, LearningState
from repro.core.state import observation_mask
from repro.entities import Consumer, Job, Platform, SellerPopulation
from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultKind,
    FaultLog,
    FaultModel,
    FaultSpec,
    parse_fault_spec,
)
from repro.sim import SimulationConfig, TradingSimulator
from repro.sim.rng import RngFactory

SMALL = SimulationConfig(num_sellers=15, num_selected=4, num_rounds=120,
                         seed=11)


class TestFaultSpec:
    def test_defaults_are_disabled(self):
        assert not FaultSpec().enabled

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError, match="dropout_rate"):
            FaultSpec(dropout_rate=1.5)
        with pytest.raises(ConfigurationError, match="sum to at most 1"):
            FaultSpec(dropout_rate=0.6, corruption_rate=0.6)

    def test_dict_round_trip(self):
        spec = FaultSpec(dropout_rate=0.2, corruption_rate=0.05,
                         stall_rate=0.01)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_names_missing_field(self):
        with pytest.raises(ConfigurationError, match="stall_rate"):
            FaultSpec.from_dict({"dropout_rate": 0.1,
                                 "corruption_rate": 0.0})


class TestParseFaultSpec:
    @pytest.mark.parametrize("text", [None, "", "none", "off", "  NONE "])
    def test_disabled_forms(self, text):
        assert parse_fault_spec(text) is None

    def test_full_spec(self):
        spec = parse_fault_spec("dropout=0.2,corrupt=0.05,stall=0.01")
        assert spec == FaultSpec(dropout_rate=0.2, corruption_rate=0.05,
                                 stall_rate=0.01)

    def test_aliases(self):
        assert parse_fault_spec("drop=0.1") == FaultSpec(dropout_rate=0.1)
        assert parse_fault_spec("corruption=0.1") == FaultSpec(
            corruption_rate=0.1
        )

    @pytest.mark.parametrize("text", ["bogus=0.1", "dropout", "dropout=x",
                                      "dropout=0.1,drop=0.2"])
    def test_malformed_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(text)


class TestFaultModel:
    def make_model(self, spec=None, seed=5, m=20):
        spec = spec or FaultSpec(dropout_rate=0.25, corruption_rate=0.15,
                                 stall_rate=0.1)
        return FaultModel(spec, RngFactory(seed), m)

    def test_same_round_same_plan(self):
        model = self.make_model()
        selected = np.array([1, 4, 9, 13, 17])
        first = model.plan_round(7, selected, 10)
        second = model.plan_round(7, selected, 10)
        np.testing.assert_array_equal(first.dropped, second.dropped)
        np.testing.assert_array_equal(first.corrupted, second.corrupted)
        np.testing.assert_array_equal(first.corrupted_sums,
                                      second.corrupted_sums)
        np.testing.assert_array_equal(first.stalled, second.stalled)

    def test_schedule_is_selection_independent(self):
        # Whether a given seller faults in round t must not depend on
        # which other sellers were selected (common random faults).
        model = self.make_model()
        wide = model.plan_round(3, np.arange(20), 10)
        narrow = model.plan_round(3, np.array([2, 5, 11]), 10)
        for field in ("dropped", "corrupted", "stalled"):
            wide_set = set(getattr(wide, field).tolist())
            narrow_set = set(getattr(narrow, field).tolist())
            assert narrow_set == wide_set & {2, 5, 11}

    def test_faults_are_disjoint(self):
        model = self.make_model(FaultSpec(dropout_rate=0.3,
                                          corruption_rate=0.3,
                                          stall_rate=0.3))
        for t in range(50):
            plan = model.plan_round(t, np.arange(20), 10)
            combined = np.concatenate([plan.dropped, plan.corrupted,
                                       plan.stalled])
            assert combined.size == np.unique(combined).size

    def test_corrupted_sums_are_always_detectable(self):
        model = self.make_model(FaultSpec(corruption_rate=0.5))
        num_observations = 10
        seen = 0
        for t in range(100):
            plan = model.plan_round(t, np.arange(20), num_observations)
            seen += plan.corrupted.size
            assert not observation_mask(plan.corrupted_sums,
                                        num_observations).any()
        assert seen > 0

    def test_zero_rates_give_clean_plans(self):
        model = self.make_model(FaultSpec())
        for t in range(20):
            assert model.plan_round(t, np.arange(20), 10).is_clean

    def test_out_of_range_selection_rejected(self):
        model = self.make_model()
        with pytest.raises(ConfigurationError, match="out of range"):
            model.plan_round(0, np.array([25]), 10)


class TestFaultLog:
    def test_log_matches_planned_schedule(self):
        model = FaultModel(
            FaultSpec(dropout_rate=0.2, corruption_rate=0.1,
                      stall_rate=0.05),
            RngFactory(9), 20,
        )
        log = FaultLog()
        selected = np.arange(20)
        for t in range(40):
            model.log_plan(model.plan_round(t, selected, 10), log)
        for t in range(40):
            plan = model.plan_round(t, selected, 10)
            assert (set(log.sellers_hit(FaultKind.DROPOUT, t))
                    == set(plan.dropped.tolist()))
            assert (set(log.sellers_hit(FaultKind.CORRUPTION, t))
                    == set(plan.corrupted.tolist()))
            assert (set(log.sellers_hit(FaultKind.STALL, t))
                    == set(plan.stalled.tolist()))

    def test_array_round_trip(self):
        log = FaultLog()
        log.record(0, FaultKind.DROPOUT, 3)
        log.record(1, FaultKind.CORRUPTION, 5, float("nan"))
        log.record(1, FaultKind.NO_TRADE)
        restored = FaultLog.from_arrays(log.to_arrays())
        assert restored.summary() == log.summary()
        assert len(restored) == 3
        assert restored.events_in_round(1)[0].seller == 5


class TestQuarantineGate:
    def test_learning_state_rejects_infeasible_sums(self):
        state = LearningState(5)
        with pytest.raises(ConfigurationError, match="quarantine"):
            state.update(np.array([0]), np.array([np.nan]), 10)
        with pytest.raises(ConfigurationError, match="quarantine"):
            state.update(np.array([1]), np.array([11.0]), 10)
        with pytest.raises(ConfigurationError, match="quarantine"):
            state.update(np.array([2]), np.array([-0.5]), 10)

    def test_observation_mask(self):
        sums = np.array([0.0, 10.0, -0.1, 10.1, np.nan, np.inf, 5.0])
        np.testing.assert_array_equal(
            observation_mask(sums, 10),
            [True, True, False, False, False, False, True],
        )


class TestEngineDegradation:
    def test_clean_path_bit_identical_with_faults_disabled(self):
        simulator = TradingSimulator(SMALL)
        baseline = simulator.run(UCBPolicy())
        zero_model = simulator.fault_model(FaultSpec())
        log = FaultLog()
        with_model = simulator.run(UCBPolicy(), fault_model=zero_model,
                                   fault_log=log)
        for field in ("realized_revenue", "expected_revenue", "regret",
                      "consumer_profit", "platform_profit",
                      "seller_profit_mean", "service_price",
                      "collection_price", "total_sensing_time",
                      "selection_counts", "estimation_error"):
            np.testing.assert_array_equal(
                getattr(baseline, field), getattr(with_model, field),
                err_msg=field,
            )
        assert len(log) == 0

    def test_fault_injection_integration(self):
        # The acceptance scenario: 20% dropout + 5% corruption must
        # complete, log exactly the planned schedule, and keep regret
        # finite.
        simulator = TradingSimulator(SMALL)
        spec = FaultSpec(dropout_rate=0.2, corruption_rate=0.05)
        model = simulator.fault_model(spec)
        log = FaultLog()
        run = simulator.run(UCBPolicy(), fault_model=model, fault_log=log)

        assert np.isfinite(run.regret).all()
        assert np.isfinite(run.final_regret)
        summary = log.summary()
        assert summary.get("dropout", 0) > 0
        assert summary.get("corruption", 0) > 0
        # every corruption was caught: quarantines == corruptions
        assert summary.get("quarantine") == summary.get("corruption")

        # the log's injected events replay the model's schedule exactly
        reference = FaultModel(spec, RngFactory(SMALL.seed),
                               SMALL.num_sellers)
        for event in log.events:
            if event.kind not in (FaultKind.DROPOUT, FaultKind.CORRUPTION,
                                  FaultKind.STALL):
                continue
            plan = reference.plan_round(
                event.round_index,
                np.arange(SMALL.num_sellers), SMALL.num_pois,
            )
            planned = {
                FaultKind.DROPOUT: plan.dropped,
                FaultKind.CORRUPTION: plan.corrupted,
                FaultKind.STALL: plan.stalled,
            }[event.kind]
            assert event.seller in planned

    def test_common_random_faults_across_policies(self):
        simulator = TradingSimulator(SMALL)
        model = simulator.fault_model(FaultSpec(dropout_rate=0.3))
        logs = {}
        for policy in (UCBPolicy(), ThompsonSamplingPolicy()):
            log = FaultLog()
            simulator.run(policy, fault_model=model, fault_log=log)
            logs[policy.name] = log
        ucb, thompson = logs.values()
        # Different policies select different sets, so raw event counts
        # differ — but any seller both policies selected in a round gets
        # the same verdict.  Cheap proxy: per-round dropout sets of the
        # intersection agree (checked via the reference model above);
        # here assert both logs are consistent with one schedule.
        reference = FaultModel(FaultSpec(dropout_rate=0.3),
                               RngFactory(SMALL.seed), SMALL.num_sellers)
        for log in (ucb, thompson):
            for event in log.events:
                if event.kind is not FaultKind.DROPOUT:
                    continue
                plan = reference.plan_round(
                    event.round_index,
                    np.arange(SMALL.num_sellers), SMALL.num_pois,
                )
                assert event.seller in plan.dropped

    def test_total_dropout_settles_as_no_trade(self):
        simulator = TradingSimulator(
            SimulationConfig(num_sellers=6, num_selected=3, num_rounds=30,
                             seed=2)
        )
        model = simulator.fault_model(FaultSpec(dropout_rate=0.9))
        log = FaultLog()
        run = simulator.run(UCBPolicy(), fault_model=model, fault_log=log)
        no_trade_rounds = [e.round_index for e in log.events
                           if e.kind is FaultKind.NO_TRADE]
        assert no_trade_rounds  # at 90% dropout some round loses everyone
        for t in no_trade_rounds:
            assert run.realized_revenue[t] == 0.0
            assert run.platform_profit[t] == 0.0
            assert run.total_sensing_time[t] == 0.0
        assert np.isfinite(run.regret).all()

    def test_fault_model_must_match_population(self):
        simulator = TradingSimulator(SMALL)
        foreign = FaultModel(FaultSpec(dropout_rate=0.1), RngFactory(0), 99)
        with pytest.raises(ConfigurationError, match="different number"):
            simulator.run(UCBPolicy(), fault_model=foreign)


class TestMechanismDegradation:
    def make_mechanism(self, seed=1):
        rng = np.random.default_rng(7)
        population = SellerPopulation.random(num_sellers=12, rng=rng)
        job = Job.simple(num_pois=5, num_rounds=60)
        return CMABHSMechanism(population, job, Platform.default(),
                               Consumer.default(), k=3, seed=seed)

    def test_zero_rate_model_is_bit_identical(self):
        baseline = self.make_mechanism().run()
        model = FaultModel(FaultSpec(), RngFactory(1), 12)
        injected = self.make_mechanism().run(fault_model=model)
        assert baseline.realized_revenue == injected.realized_revenue
        np.testing.assert_array_equal(baseline.regret_history,
                                      injected.regret_history)
        for clean, faulty in zip(baseline.rounds, injected.rounds):
            np.testing.assert_array_equal(clean.sensing_times,
                                          faulty.sensing_times)
            assert clean.platform_profit == faulty.platform_profit

    def test_faulty_run_completes_and_degrades(self):
        model = FaultModel(
            FaultSpec(dropout_rate=0.3, corruption_rate=0.1,
                      stall_rate=0.05),
            RngFactory(1), 12,
        )
        log = FaultLog()
        result = self.make_mechanism().run(fault_model=model, fault_log=log)
        assert np.isfinite(result.regret_history).all()
        summary = log.summary()
        assert summary.get("dropout", 0) > 0
        assert summary.get("quarantine") == summary.get("corruption")
        degraded = [e for e in log.events
                    if e.kind is FaultKind.DEGRADED]
        assert degraded
        for event in degraded:
            outcome = result.rounds[event.round_index]
            assert outcome.participants is not None
            assert outcome.participants.size == int(event.value)
            assert outcome.participants.size < outcome.selected.size
