"""Per-round invariant checkers (repro.verify.invariants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incentive import (
    optimal_collection_price,
    optimal_sensing_times,
    optimal_service_price,
)
from repro.core.state import LearningState
from repro.exceptions import InvariantViolationError
from repro.game.profits import GameInstance
from repro.obs.tracer import RingBufferSink, Tracer
from repro.verify import InvariantMonitor
from repro.verify.invariants import (
    leader_foc_residuals,
    stage3_stationarity_violation,
)


def interior_game() -> GameInstance:
    """A game whose closed-form solution is strictly interior."""
    return GameInstance(
        qualities=np.array([0.6, 0.8, 0.5, 0.7]),
        cost_a=np.array([0.2, 0.3, 0.25, 0.15]),
        cost_b=np.array([0.3, 0.1, 0.4, 0.2]),
        theta=0.1, lam=1.0, omega=1_000.0,
    )


def equilibrium(game: GameInstance):
    p_j = optimal_service_price(game)
    p = optimal_collection_price(game, p_j)
    taus = optimal_sensing_times(game, p)
    return p_j, p, taus


def collecting_monitor(num_pois: int = 5, **kwargs) -> InvariantMonitor:
    return InvariantMonitor(num_pois, raise_on_violation=False, **kwargs)


class TestStage3Stationarity:
    def test_zero_at_best_response(self):
        game = interior_game()
        _, p, taus = equilibrium(game)
        violation = stage3_stationarity_violation(
            game.qualities, game.cost_a, game.cost_b, p, taus,
            game.max_sensing_time,
        )
        assert np.all(violation < 1e-9)

    def test_positive_when_perturbed(self):
        game = interior_game()
        _, p, taus = equilibrium(game)
        perturbed = taus * 1.1 + 0.05
        violation = stage3_stationarity_violation(
            game.qualities, game.cost_a, game.cost_b, p, perturbed,
            game.max_sensing_time,
        )
        assert np.all(violation > 1e-4)

    def test_opt_out_requires_nonpositive_gradient(self):
        # One seller with b so large it opts out: tau = 0 with g <= 0
        # is stationary, tau = 0 with g > 0 is a violation.
        q = np.array([0.9])
        a = np.array([0.2])
        b = np.array([20.0])
        zero = np.zeros(1)
        ok = stage3_stationarity_violation(q, a, b, 1.0, zero, np.inf)
        assert ok[0] == 0.0
        bad = stage3_stationarity_violation(q, a, b, 50.0, zero, np.inf)
        assert bad[0] > 0.0

    def test_cap_requires_nonnegative_gradient(self):
        q = np.array([0.5])
        a = np.array([0.1])
        b = np.array([0.1])
        cap = np.array([2.0])
        # Price high enough that the unconstrained optimum exceeds T.
        ok = stage3_stationarity_violation(q, a, b, 5.0, cap, 2.0)
        assert ok[0] == 0.0
        # Price so low the seller would rather back off the cap.
        bad = stage3_stationarity_violation(q, a, b, 0.01, cap, 2.0)
        assert bad[0] > 0.0


class TestLeaderFocResiduals:
    def test_near_zero_at_equilibrium(self):
        game = interior_game()
        p_j, p, taus = equilibrium(game)
        stage1, stage2 = leader_foc_residuals(
            game.qualities, game.cost_a, game.cost_b, game.theta,
            game.lam, game.omega, p_j, p, taus,
        )
        assert stage1 < 1e-8
        assert stage2 < 1e-8

    def test_large_when_prices_perturbed(self):
        game = interior_game()
        p_j, p, taus = equilibrium(game)
        stage1, stage2 = leader_foc_residuals(
            game.qualities, game.cost_a, game.cost_b, game.theta,
            game.lam, game.omega, p_j * 1.5, p * 0.5, taus,
        )
        assert stage2 > 1e-3
        stage1_only, _ = leader_foc_residuals(
            game.qualities, game.cost_a, game.cost_b, game.theta,
            game.lam, game.omega, p_j * 2.0, p, taus,
        )
        assert stage1_only > 1e-3


class TestCheckSelection:
    def test_valid_selection_passes(self):
        monitor = collecting_monitor()
        monitor.check_selection(0, np.array([1, 3, 5]), 3, 10, False)
        assert monitor.violations == []
        assert monitor.num_checks == 1

    def test_wrong_size(self):
        monitor = collecting_monitor()
        monitor.check_selection(0, np.array([1, 3]), 3, 10, False)
        assert monitor.violations[0].invariant == "selection_size"

    def test_duplicates(self):
        monitor = collecting_monitor()
        monitor.check_selection(0, np.array([1, 1, 5]), 3, 10, False)
        assert monitor.violations[0].invariant == "selection_unique"

    def test_out_of_range(self):
        monitor = collecting_monitor()
        monitor.check_selection(0, np.array([1, 3, 10]), 3, 10, False)
        assert monitor.violations[0].invariant == "selection_range"

    def test_top_k_against_brute_force(self):
        monitor = collecting_monitor()
        ucb = np.array([0.9, 0.1, 0.8, 0.7, 0.2])
        monitor.check_selection(0, np.array([0, 2, 3]), 3, 5, False,
                                ucb_values=ucb)
        assert monitor.violations == []
        monitor.check_selection(1, np.array([0, 1, 2]), 3, 5, False,
                                ucb_values=ucb)
        assert monitor.violations[0].invariant == "selection_top_k"

    def test_explore_round_skips_top_k(self):
        monitor = collecting_monitor()
        ucb = np.array([0.9, 0.1, 0.8])
        # Not the argmax set, but exploration rounds pick round-robin.
        monitor.check_selection(0, np.array([1]), 1, 3, True, ucb_values=ucb)
        assert monitor.violations == []


class TestCheckEquilibrium:
    def args(self, game, p_j, p, taus, explore=False):
        return dict(
            qualities=game.qualities, cost_a=game.cost_a,
            cost_b=game.cost_b, theta=game.theta, lam=game.lam,
            omega=game.omega,
            service_price_bounds=game.service_price_bounds,
            collection_price_bounds=game.collection_price_bounds,
            max_sensing_time=game.max_sensing_time,
            service_price=p_j, collection_price=p, taus=taus,
            explore=explore,
        )

    def test_equilibrium_passes_all_legs(self):
        game = interior_game()
        p_j, p, taus = equilibrium(game)
        monitor = collecting_monitor()
        monitor.check_equilibrium(0, **self.args(game, p_j, p, taus))
        assert monitor.violations == []

    def test_price_feasibility(self):
        game = interior_game()
        p_j, p, taus = equilibrium(game)
        monitor = collecting_monitor()
        monitor.check_equilibrium(0, **self.args(game, -5.0, p, taus))
        assert monitor.violations[0].invariant == "price_feasibility"

    def test_sensing_time_feasibility(self):
        game = interior_game()
        p_j, p, taus = equilibrium(game)
        monitor = collecting_monitor()
        monitor.check_equilibrium(
            0, **self.args(game, p_j, p, taus - taus.max() - 1.0))
        names = [v.invariant for v in monitor.violations]
        assert "sensing_time_feasibility" in names

    def test_stationarity_violation_detected(self):
        game = interior_game()
        p_j, p, taus = equilibrium(game)
        monitor = collecting_monitor()
        monitor.check_equilibrium(
            0, **self.args(game, p_j, p, taus * 1.5 + 0.1))
        names = [v.invariant for v in monitor.violations]
        assert "stage3_stationarity" in names

    def test_perturbed_price_fails_foc(self):
        game = interior_game()
        p_j, p, taus = equilibrium(game)
        # Perturb p and recompute the (true) best-response taus, so
        # stationarity holds but the Stage-2 FOC cannot.
        bad_p = p * 1.2 + 0.1
        bad_taus = optimal_sensing_times(game, bad_p)
        monitor = collecting_monitor()
        monitor.check_equilibrium(0, **self.args(game, p_j, bad_p, bad_taus))
        names = [v.invariant for v in monitor.violations]
        assert "stage2_first_order" in names

    def test_explore_round_only_checks_feasibility(self):
        game = interior_game()
        monitor = collecting_monitor()
        # Arbitrary feasible profile that is nowhere near an equilibrium:
        # fine in an exploration round.
        taus = np.full(game.num_sellers, 0.5)
        monitor.check_equilibrium(
            0, **self.args(game, 10.0, 1.0, taus, explore=True))
        assert monitor.violations == []

    def test_negative_profit_fails_ir(self):
        game = interior_game()
        p_j, p, taus = equilibrium(game)
        monitor = collecting_monitor(tolerance=1e-9)
        # Sensing far beyond the best response turns profit negative;
        # use a huge tolerance on stationarity by checking IR directly
        # via the recorded violation list.
        monitor.check_equilibrium(
            0, **self.args(game, p_j, p, taus * 50.0 + 10.0))
        names = [v.invariant for v in monitor.violations]
        assert "individual_rationality" in names


class TestCheckLearning:
    def make_state(self, num_sellers=6, num_pois=5, rounds=3, k=2, seed=0):
        rng = np.random.default_rng(seed)
        state = LearningState(num_sellers)
        counts = np.zeros(num_sellers, dtype=np.int64)
        for _ in range(rounds):
            selected = rng.choice(num_sellers, size=k, replace=False)
            sums = rng.uniform(0.2, 0.8, size=k) * num_pois
            state.update(selected, sums, num_pois)
            counts[selected] += 1
        return state, counts

    def test_clean_counts_pass(self):
        state, counts = self.make_state()
        monitor = collecting_monitor(num_pois=5)
        monitor.check_learning(2, state, counts, clean=True,
                               exploration_coefficient=3.0)
        assert monitor.violations == []

    def test_clean_count_mismatch_detected(self):
        state, counts = self.make_state()
        wrong = counts.copy()
        wrong[0] += 1
        monitor = collecting_monitor(num_pois=5)
        monitor.check_learning(2, state, wrong, clean=True)
        assert monitor.violations[0].invariant == "count_conservation"

    def test_faulty_counts_may_lose_but_not_invent(self):
        state, counts = self.make_state()
        monitor = collecting_monitor(num_pois=5)
        # Pretend one more selection than observed: losing is fine.
        inflated = counts.copy()
        inflated[counts.argmax()] += 1
        monitor.check_learning(2, state, inflated, clean=False)
        assert monitor.violations == []
        # Fewer selections than observations: faults cannot invent.
        deflated = counts.copy()
        deflated[counts.argmax()] -= 1
        monitor.check_learning(2, state, deflated, clean=False)
        assert monitor.violations[0].invariant == "count_conservation"

    def test_ucb_structure_holds_for_real_state(self):
        state, counts = self.make_state(rounds=6)
        monitor = collecting_monitor(num_pois=5)
        monitor.check_learning(5, state, counts, clean=True,
                               exploration_coefficient=3.0)
        assert monitor.violations == []


class TestMonitorPlumbing:
    def test_raise_mode_raises_on_first_violation(self):
        monitor = InvariantMonitor(5)
        with pytest.raises(InvariantViolationError, match="selection_size"):
            monitor.check_selection(0, np.array([1]), 3, 10, False)

    def test_collect_mode_records_round_and_magnitude(self):
        game = interior_game()
        p_j, p, taus = equilibrium(game)
        monitor = collecting_monitor()
        monitor.check_equilibrium(
            7, **TestCheckEquilibrium().args(game, p_j, p, taus * 2.0))
        violation = monitor.violations[0]
        assert violation.round_index == 7
        assert violation.magnitude > 0.0

    def test_violations_emitted_as_trace_events(self):
        sink = RingBufferSink()
        monitor = collecting_monitor(tracer=Tracer(sink))
        monitor.check_selection(3, np.array([1, 1]), 2, 10, False)
        events = sink.of_kind("invariant_violation")
        assert len(events) == 1
        assert events[0].round_index == 3
        assert events[0].payload["invariant"] == "selection_unique"
