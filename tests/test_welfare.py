"""Unit tests for social welfare and price-of-anarchy analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incentive import ClosedFormStackelbergSolver
from repro.exceptions import GameError
from repro.game.profits import GameInstance, StrategyProfile
from repro.game.welfare import (
    analyze_welfare,
    maximize_welfare,
    social_welfare,
)


def make_game(seed=0, k=5, omega=800.0) -> GameInstance:
    rng = np.random.default_rng(seed)
    return GameInstance(
        qualities=rng.uniform(0.3, 1.0, k),
        cost_a=rng.uniform(0.1, 0.5, k),
        cost_b=rng.uniform(0.1, 1.0, k),
        theta=0.1,
        lam=1.0,
        omega=omega,
        service_price_bounds=(0.0, 10_000.0),
        collection_price_bounds=(0.0, 10_000.0),
    )


class TestSocialWelfare:
    def test_zero_profile_zero_welfare(self):
        game = make_game()
        assert social_welfare(game, np.zeros(5)) == 0.0

    def test_prices_cancel_out(self):
        # Welfare equals the sum of all three profits at any profile.
        game = make_game()
        taus = np.full(5, 2.0)
        profile = StrategyProfile(7.0, 3.0, taus)
        profits = game.profile_profits(profile)
        total = (profits["consumer"] + profits["platform"]
                 + float(profits["sellers"].sum()))
        assert social_welfare(game, taus) == pytest.approx(total)

    def test_welfare_concave_along_rays(self):
        game = make_game()
        direction = np.ones(5)
        scales = np.linspace(0.0, 20.0, 40)
        values = [social_welfare(game, s * direction) for s in scales]
        second_diff = np.diff(values, 2)
        assert np.all(second_diff < 1e-9)


class TestMaximizeWelfare:
    @pytest.mark.parametrize("seed", range(4))
    def test_first_order_conditions(self, seed):
        game = make_game(seed)
        taus = maximize_welfare(game)
        base = social_welfare(game, taus)
        h = 1e-5
        for j in range(game.num_sellers):
            if taus[j] <= 1e-9:
                continue
            up = taus.copy()
            up[j] += h
            down = taus.copy()
            down[j] -= h
            derivative = (
                social_welfare(game, up) - social_welfare(game, down)
            ) / (2 * h)
            assert abs(derivative) < 1e-4, f"seller {j}"
        assert np.isfinite(base)

    @pytest.mark.parametrize("seed", range(4))
    def test_beats_random_profiles(self, seed):
        game = make_game(seed)
        optimum = social_welfare(game, maximize_welfare(game))
        rng = np.random.default_rng(seed + 100)
        for __ in range(20):
            candidate = rng.uniform(0.0, 15.0, game.num_sellers)
            assert social_welfare(game, candidate) <= optimum + 1e-6

    def test_respects_round_duration(self):
        rng = np.random.default_rng(1)
        game = GameInstance(
            qualities=rng.uniform(0.3, 1.0, 4),
            cost_a=rng.uniform(0.1, 0.5, 4),
            cost_b=rng.uniform(0.1, 1.0, 4),
            theta=0.1, lam=1.0, omega=800.0,
            max_sensing_time=1.5,
        )
        taus = maximize_welfare(game)
        assert np.all(taus <= 1.5 + 1e-9)
        assert np.all(taus >= 0.0)

    def test_expensive_market_opts_out(self):
        # Tiny omega and huge linear costs: the social optimum is zero.
        game = GameInstance(
            qualities=np.array([0.5]),
            cost_a=np.array([0.5]),
            cost_b=np.array([50.0]),
            theta=0.5, lam=100.0, omega=2.0,
        )
        np.testing.assert_allclose(maximize_welfare(game), 0.0)


class TestAnalyzeWelfare:
    @pytest.mark.parametrize("seed", range(4))
    def test_poa_at_least_one(self, seed):
        game = make_game(seed)
        solved = ClosedFormStackelbergSolver().solve(game)
        analysis = analyze_welfare(game, solved.profile)
        assert analysis.price_of_anarchy >= 1.0 - 1e-9
        assert 0.0 < analysis.efficiency <= 1.0 + 1e-9

    def test_se_underprovides_sensing_time(self):
        game = make_game()
        solved = ClosedFormStackelbergSolver().solve(game)
        analysis = analyze_welfare(game, solved.profile)
        assert (analysis.optimal_taus.sum()
                > solved.profile.total_sensing_time)

    def test_consistent_ratios(self):
        game = make_game()
        solved = ClosedFormStackelbergSolver().solve(game)
        analysis = analyze_welfare(game, solved.profile)
        assert analysis.price_of_anarchy == pytest.approx(
            1.0 / analysis.efficiency
        )
        assert analysis.optimal_welfare == pytest.approx(
            social_welfare(game, analysis.optimal_taus)
        )

    def test_rejects_nonpositive_equilibrium_welfare(self):
        game = make_game()
        degenerate = StrategyProfile(1.0, 1.0, np.zeros(5))
        with pytest.raises(GameError, match="non-positive"):
            analyze_welfare(game, degenerate)


class TestLemma18Bound:
    def test_theorem19_is_m_delta_max_times_lemma18(self):
        from repro.core.regret import lemma18_bound, theorem19_bound

        kwargs = dict(k=5, num_pois=10, num_rounds=10_000, delta_min=0.05)
        assert theorem19_bound(
            num_sellers=40, delta_max=2.0, **kwargs
        ) == pytest.approx(40 * 2.0 * lemma18_bound(**kwargs))

    def test_theorem19_zero_when_no_gap_spread(self):
        from repro.core.regret import theorem19_bound

        assert theorem19_bound(10, 2, 5, 100, delta_min=0.0,
                               delta_max=0.0) == 0.0

    def test_lemma18_infinite_for_zero_gap(self):
        from repro.core.regret import lemma18_bound

        assert lemma18_bound(2, 5, 100, 0.0) == float("inf")

    def test_measured_counters_below_lemma18(self):
        """Suboptimal sellers' selection counts respect Lemma 18."""
        from repro.bandits.environment import CMABEnvironment
        from repro.bandits.policies import UCBPolicy
        from repro.core.regret import lemma18_bound
        from repro.quality.distributions import TruncatedGaussianQuality

        qualities = np.array([0.9, 0.8, 0.6, 0.4, 0.2, 0.1])
        k, num_pois, num_rounds = 2, 4, 2_000
        environment = CMABEnvironment(
            TruncatedGaussianQuality(qualities), num_pois=num_pois, k=k,
            num_rounds=num_rounds, seed=3,
        )
        result = environment.run(UCBPolicy())
        # Per-seller gap to the optimal set's weakest member.
        weakest_optimal = np.sort(qualities)[::-1][k - 1]
        for seller in range(qualities.size):
            gap = weakest_optimal - qualities[seller]
            if gap <= 0.0:
                continue  # optimal seller; Lemma 18 does not bound it
            observations = result.selection_counts[seller] * num_pois
            bound = lemma18_bound(k, num_pois, num_rounds, gap)
            assert observations <= bound, f"seller {seller}"