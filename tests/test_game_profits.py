"""Unit tests for game instances and the profit functions (Eqs. 5, 7, 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, InfeasibleStrategyError
from repro.game.profits import GameInstance, StrategyProfile


def make_game(**overrides) -> GameInstance:
    defaults = dict(
        qualities=np.array([0.5, 0.8]),
        cost_a=np.array([0.2, 0.4]),
        cost_b=np.array([0.1, 0.3]),
        theta=0.1,
        lam=1.0,
        omega=100.0,
    )
    defaults.update(overrides)
    return GameInstance(**defaults)


class TestValidation:
    def test_rejects_empty_qualities(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            make_game(qualities=np.array([]), cost_a=np.array([]),
                      cost_b=np.array([]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError, match="identical shapes"):
            make_game(cost_a=np.array([0.2]))

    def test_rejects_zero_quality(self):
        with pytest.raises(ConfigurationError, match=r"\(0, 1\]"):
            make_game(qualities=np.array([0.0, 0.8]))

    def test_rejects_nonpositive_a(self):
        with pytest.raises(ConfigurationError, match="a_i"):
            make_game(cost_a=np.array([0.0, 0.4]))

    def test_rejects_negative_b(self):
        with pytest.raises(ConfigurationError, match="b_i"):
            make_game(cost_b=np.array([-0.1, 0.3]))

    def test_rejects_bad_theta(self):
        with pytest.raises(ConfigurationError, match="theta"):
            make_game(theta=0.0)

    def test_rejects_bad_omega(self):
        with pytest.raises(ConfigurationError, match="omega"):
            make_game(omega=0.5)

    def test_rejects_inverted_price_bounds(self):
        with pytest.raises(ConfigurationError, match="upper bound"):
            make_game(service_price_bounds=(5.0, 1.0))

    def test_rejects_nan_bounds(self):
        with pytest.raises(ConfigurationError, match="NaN"):
            make_game(collection_price_bounds=(0.0, float("nan")))

    def test_rejects_nonpositive_max_sensing_time(self):
        with pytest.raises(ConfigurationError, match="max_sensing_time"):
            make_game(max_sensing_time=0.0)


class TestCoefficients:
    def test_coefficient_a_formula(self):
        game = make_game()
        expected = 1.0 / (2 * 0.5 * 0.2) + 1.0 / (2 * 0.8 * 0.4)
        assert game.coefficient_a == pytest.approx(expected)

    def test_coefficient_b_formula(self):
        game = make_game()
        expected = 0.1 / (2 * 0.2) + 0.3 / (2 * 0.4)
        assert game.coefficient_b == pytest.approx(expected)

    def test_total_time_is_linear_in_price(self):
        # sum tau*(p) = p*A - B on the interior region.
        game = make_game()
        a, b = game.coefficient_a, game.coefficient_b
        for price in (1.0, 2.0, 5.0):
            total = game.seller_best_responses(price).sum()
            assert total == pytest.approx(price * a - b)

    def test_mean_quality(self):
        assert make_game().mean_quality == pytest.approx(0.65)

    def test_opt_out_price(self):
        game = make_game()
        assert game.opt_out_price == pytest.approx(
            max(0.5 * 0.1, 0.8 * 0.3)
        )

    def test_num_sellers(self):
        assert make_game().num_sellers == 2


class TestProfits:
    def test_seller_profits_equation_5(self):
        game = make_game()
        taus = np.array([1.0, 2.0])
        p = 2.0
        expected_0 = 2.0 * 1.0 - (0.2 * 1.0 + 0.1 * 1.0) * 0.5
        expected_1 = 2.0 * 2.0 - (0.4 * 4.0 + 0.3 * 2.0) * 0.8
        np.testing.assert_allclose(
            game.seller_profits(p, taus), [expected_0, expected_1]
        )

    def test_platform_profit_equation_7(self):
        game = make_game()
        taus = np.array([1.0, 2.0])
        expected = (5.0 - 2.0) * 3.0 - (0.1 * 9.0 + 1.0 * 3.0)
        assert game.platform_profit(5.0, 2.0, taus) == pytest.approx(expected)

    def test_consumer_profit_equation_9(self):
        game = make_game()
        taus = np.array([1.0, 2.0])
        expected = 100.0 * np.log(1.0 + 0.65 * 3.0) - 5.0 * 3.0
        assert game.consumer_profit(5.0, taus) == pytest.approx(expected)

    def test_profile_profits_consistency(self):
        game = make_game()
        profile = StrategyProfile(5.0, 2.0, np.array([1.0, 2.0]))
        profits = game.profile_profits(profile)
        assert profits["consumer"] == pytest.approx(
            game.consumer_profit(5.0, profile.sensing_times)
        )
        assert profits["platform"] == pytest.approx(
            game.platform_profit(5.0, 2.0, profile.sensing_times)
        )
        np.testing.assert_allclose(
            profits["sellers"],
            game.seller_profits(2.0, profile.sensing_times),
        )


class TestBestResponses:
    def test_matches_theorem_14(self):
        game = make_game()
        p = 2.0
        expected = (p - game.qualities * game.cost_b) / (
            2.0 * game.qualities * game.cost_a
        )
        np.testing.assert_allclose(game.seller_best_responses(p), expected)

    def test_floors_at_zero(self):
        game = make_game(cost_b=np.array([5.0, 0.3]))
        taus = game.seller_best_responses(0.5)
        assert taus[0] == 0.0
        assert taus[1] > 0.0

    def test_caps_at_round_duration(self):
        game = make_game(max_sensing_time=1.0)
        taus = game.seller_best_responses(100.0)
        assert np.all(taus <= 1.0)


class TestFeasibility:
    def test_clip_prices(self):
        game = make_game(service_price_bounds=(1.0, 4.0),
                         collection_price_bounds=(0.5, 2.0))
        assert game.clip_service_price(0.0) == 1.0
        assert game.clip_service_price(9.0) == 4.0
        assert game.clip_collection_price(3.0) == 2.0

    def test_clip_sensing_times(self):
        game = make_game(max_sensing_time=2.0)
        np.testing.assert_allclose(
            game.clip_sensing_times(np.array([-1.0, 1.0, 5.0])),
            [0.0, 1.0, 2.0],
        )

    def test_require_feasible_accepts_valid(self):
        game = make_game()
        game.require_feasible(
            StrategyProfile(5.0, 2.0, np.array([1.0, 1.0]))
        )

    def test_require_feasible_rejects_price(self):
        game = make_game(service_price_bounds=(0.0, 4.0))
        with pytest.raises(InfeasibleStrategyError, match="service price"):
            game.require_feasible(
                StrategyProfile(9.0, 2.0, np.array([1.0, 1.0]))
            )

    def test_require_feasible_rejects_negative_time(self):
        game = make_game()
        with pytest.raises(InfeasibleStrategyError, match="sensing times"):
            game.require_feasible(
                StrategyProfile(5.0, 2.0, np.array([-1.0, 1.0]))
            )

    def test_require_feasible_rejects_wrong_arity(self):
        game = make_game()
        with pytest.raises(InfeasibleStrategyError, match="expected 2"):
            game.require_feasible(StrategyProfile(5.0, 2.0, np.array([1.0])))


class TestStrategyProfile:
    def test_total_sensing_time(self):
        profile = StrategyProfile(5.0, 2.0, np.array([1.0, 2.5]))
        assert profile.total_sensing_time == pytest.approx(3.5)

    def test_replace_sensing_time_copies(self):
        profile = StrategyProfile(5.0, 2.0, np.array([1.0, 2.0]))
        deviated = profile.replace_sensing_time(0, 9.0)
        assert deviated.sensing_times[0] == 9.0
        assert profile.sensing_times[0] == 1.0

    def test_rejects_2d_times(self):
        with pytest.raises(ConfigurationError, match="1-D"):
            StrategyProfile(5.0, 2.0, np.array([[1.0]]))
