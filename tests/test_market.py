"""Unit tests for the multi-consumer market extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.entities.seller import SellerPopulation
from repro.exceptions import ConfigurationError, SelectionError
from repro.market.allocation import (
    RandomPriorityAllocation,
    RichestFirstAllocation,
    SnakeDraftAllocation,
)
from repro.market.engine import MarketSimulator
from repro.market.spec import ConsumerSpec

SPECS = [
    ConsumerSpec(consumer_id=0, omega=1_400.0, k=3),
    ConsumerSpec(consumer_id=1, omega=1_000.0, k=3),
    ConsumerSpec(consumer_id=2, omega=600.0, k=2),
]

RANKED = np.arange(20)


class TestConsumerSpec:
    def test_rejects_bad_omega(self):
        with pytest.raises(ConfigurationError, match="omega"):
            ConsumerSpec(consumer_id=0, omega=1.0, k=2)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ConfigurationError, match="k must be"):
            ConsumerSpec(consumer_id=0, omega=100.0, k=0)

    def test_rejects_negative_id(self):
        with pytest.raises(ConfigurationError, match="consumer_id"):
            ConsumerSpec(consumer_id=-1, omega=100.0, k=2)


class TestAllocationStrategies:
    @pytest.mark.parametrize("strategy_cls", [
        RichestFirstAllocation, SnakeDraftAllocation,
        RandomPriorityAllocation,
    ])
    def test_partitions_are_disjoint_and_sized(self, strategy_cls, rng):
        allocation = strategy_cls().allocate(RANKED, SPECS, rng)
        all_sellers = np.concatenate(list(allocation.values()))
        assert np.unique(all_sellers).size == all_sellers.size
        for spec in SPECS:
            assert allocation[spec.consumer_id].size == spec.k

    def test_richest_first_gives_best_to_highest_omega(self, rng):
        allocation = RichestFirstAllocation().allocate(RANKED, SPECS, rng)
        # Ranked is 0..19 descending desirability; consumer 0 (omega
        # 1400) gets the top-3, consumer 1 the next 3, consumer 2 after.
        np.testing.assert_array_equal(allocation[0], [0, 1, 2])
        np.testing.assert_array_equal(allocation[1], [3, 4, 5])
        np.testing.assert_array_equal(allocation[2], [6, 7])

    def test_snake_draft_interleaves(self, rng):
        allocation = SnakeDraftAllocation().allocate(RANKED, SPECS, rng)
        # Pass 1 forward: c0<-0, c1<-1, c2<-2; pass 2 reversed:
        # c2<-3, c1<-4, c0<-5; pass 3 forward: c0<-6, c1<-7 (c2 done).
        np.testing.assert_array_equal(allocation[0], [0, 5, 6])
        np.testing.assert_array_equal(allocation[1], [1, 4, 7])
        np.testing.assert_array_equal(allocation[2], [2, 3])

    def test_random_priority_varies_with_rng(self):
        allocations = set()
        for seed in range(10):
            allocation = RandomPriorityAllocation().allocate(
                RANKED, SPECS, np.random.default_rng(seed)
            )
            allocations.add(tuple(allocation[0].tolist()))
        assert len(allocations) > 1

    def test_insufficient_supply_rejected(self, rng):
        with pytest.raises(SelectionError, match="demand"):
            RichestFirstAllocation().allocate(np.arange(5), SPECS, rng)

    def test_duplicate_consumer_ids_rejected(self, rng):
        specs = [ConsumerSpec(0, 100.0, 2), ConsumerSpec(0, 200.0, 2)]
        with pytest.raises(ConfigurationError, match="unique"):
            SnakeDraftAllocation().allocate(RANKED, specs, rng)


class TestMarketSimulator:
    @pytest.fixture(scope="class")
    def population(self):
        return SellerPopulation.random(30, np.random.default_rng(8))

    @pytest.fixture(scope="class")
    def simulator(self, population):
        return MarketSimulator(population, SPECS, num_pois=4, seed=8)

    def test_rejects_excess_demand(self, population):
        greedy = [ConsumerSpec(i, 100.0, 15) for i in range(3)]
        with pytest.raises(ConfigurationError, match="demand"):
            MarketSimulator(population, greedy)

    def test_rejects_empty_market(self, population):
        with pytest.raises(ConfigurationError, match="at least one"):
            MarketSimulator(population, [])

    def test_run_shapes(self, simulator):
        result = simulator.run(SnakeDraftAllocation(), num_rounds=50)
        assert result.num_rounds == 50
        assert set(result.consumer_profits) == {0, 1, 2}
        for series in result.consumer_profits.values():
            assert series.shape == (50,)

    def test_higher_omega_earns_more(self, simulator):
        result = simulator.run(SnakeDraftAllocation(), num_rounds=300)
        totals = result.consumer_totals()
        assert totals[0] > totals[1] > totals[2]

    def test_platform_profit_positive_after_learning(self, simulator):
        result = simulator.run(SnakeDraftAllocation(), num_rounds=300)
        assert result.platform_profit[-100:].mean() > 0.0

    def test_reproducible(self, population):
        a = MarketSimulator(population, SPECS, num_pois=4, seed=8).run(
            SnakeDraftAllocation(), 60
        )
        b = MarketSimulator(population, SPECS, num_pois=4, seed=8).run(
            SnakeDraftAllocation(), 60
        )
        np.testing.assert_array_equal(a.platform_profit, b.platform_profit)

    def test_richest_first_favours_top_consumer(self, simulator):
        richest = simulator.run(RichestFirstAllocation(), num_rounds=400)
        snake = simulator.run(SnakeDraftAllocation(), num_rounds=400)
        # Under richest-first, consumer 0's allocated quality dominates
        # its snake-draft quality.
        assert (richest.consumer_mean_quality[0][-100:].mean()
                >= snake.consumer_mean_quality[0][-100:].mean() - 1e-9)
        # And the lowest-omega consumer gets worse sellers than under
        # the fair draft.
        assert (richest.consumer_mean_quality[2][-100:].mean()
                <= snake.consumer_mean_quality[2][-100:].mean() + 1e-9)

    def test_compare_rejects_duplicates(self, simulator):
        with pytest.raises(ConfigurationError, match="duplicate"):
            simulator.compare(
                [SnakeDraftAllocation(), SnakeDraftAllocation()], 10
            )

    def test_welfare_and_fairness_metrics(self, simulator):
        result = simulator.run(SnakeDraftAllocation(), num_rounds=100)
        assert result.total_welfare() == pytest.approx(
            sum(result.consumer_totals().values())
            + float(result.platform_profit.sum())
        )
        assert result.fairness_gap() >= 0.0

    def test_rejects_nonpositive_rounds(self, simulator):
        with pytest.raises(ConfigurationError, match="num_rounds"):
            simulator.run(SnakeDraftAllocation(), 0)
