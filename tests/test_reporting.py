"""Unit tests for the ASCII chart rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.registry import ExperimentResult, Series
from repro.experiments.reporting import (
    ascii_chart,
    render_experiment,
    sparkline,
)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_monotone_series_monotone_levels(self):
        line = sparkline(np.linspace(0.0, 1.0, 8))
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series_mid_level(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_nan_renders_space(self):
        line = sparkline([1.0, float("nan"), 3.0])
        assert line[1] == " "

    def test_rejects_empty(self):
        with pytest.raises(ExperimentError, match="empty"):
            sparkline([])

    def test_all_nan_all_spaces(self):
        assert sparkline([float("nan")] * 4) == "    "


class TestAsciiChart:
    def make_series(self) -> list[Series]:
        x = np.linspace(0.0, 10.0, 20)
        return [
            Series("up", x, x),
            Series("down", x, 10.0 - x),
        ]

    def test_contains_legend_and_ranges(self):
        chart = ascii_chart(self.make_series())
        assert "o=up" in chart
        assert "x=down" in chart
        assert "x: [0, 10]" in chart
        assert "y: [0, 10]" in chart

    def test_markers_present(self):
        chart = ascii_chart(self.make_series())
        assert "o" in chart
        assert "x" in chart

    def test_corners_of_monotone_series(self):
        x = np.array([0.0, 1.0])
        chart = ascii_chart([Series("s", x, x)], width=10, height=5)
        rows = [line for line in chart.splitlines()
                if line.startswith("|")]
        assert rows[0][-2] == "o"   # max y at right edge, top row
        assert rows[-1][1] == "o"   # min y at left edge, bottom row

    def test_rejects_empty_panel(self):
        with pytest.raises(ExperimentError, match="empty"):
            ascii_chart([])

    def test_rejects_tiny_dimensions(self):
        with pytest.raises(ExperimentError, match="at least"):
            ascii_chart(self.make_series(), width=4, height=2)

    def test_constant_series_renders(self):
        x = np.linspace(0.0, 1.0, 5)
        chart = ascii_chart([Series("flat", x, np.ones(5))])
        assert "o" in chart


class TestRenderExperiment:
    def make_result(self) -> ExperimentResult:
        result = ExperimentResult("figZ", "demo", "t")
        x = np.linspace(0.0, 1.0, 10)
        result.add_series("panel", Series("a", x, x * 2.0))
        return result

    def test_includes_table_and_chart(self):
        text = render_experiment(self.make_result())
        assert "figZ" in text
        assert "(chart)" in text
        assert "|" in text

    def test_charts_optional(self):
        text = render_experiment(self.make_result(), charts=False)
        assert "(chart)" not in text

    def test_renders_real_experiment(self):
        from repro.experiments import Scale, run_experiment

        result = run_experiment("fig17", Scale.SMALL)
        text = render_experiment(result)
        assert "PoC" in text
        assert "(chart)" in text
