"""Unit tests for the Lemma-18 counter diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.diagnostics import counter_report
from repro.exceptions import ConfigurationError

QUALITIES = np.array([0.9, 0.7, 0.5, 0.3, 0.1])


class TestCounterReport:
    def test_optimal_sellers_unbounded(self):
        counts = np.array([100, 100, 5, 5, 5])
        report = counter_report(QUALITIES, counts, k=2, num_pois=4,
                                num_rounds=100)
        optimal = [d for d in report.diagnostics if d.is_optimal]
        assert {d.seller for d in optimal} == {0, 1}
        assert all(np.isinf(d.bound) for d in optimal)
        assert all(d.within_bound for d in optimal)

    def test_gaps_to_weakest_optimal(self):
        report = counter_report(QUALITIES, np.zeros(5, dtype=int), k=2,
                                num_pois=4, num_rounds=100)
        gaps = {d.seller: d.gap for d in report.diagnostics}
        assert gaps[2] == pytest.approx(0.2)
        assert gaps[4] == pytest.approx(0.6)

    def test_smaller_gap_bigger_bound(self):
        report = counter_report(QUALITIES, np.zeros(5, dtype=int), k=2,
                                num_pois=4, num_rounds=100)
        bounds = {d.seller: d.bound for d in report.diagnostics}
        assert bounds[2] > bounds[3] > bounds[4]

    def test_violation_detected(self):
        counts = np.array([10, 10, 10, 10, 10**7])
        report = counter_report(QUALITIES, counts, k=2, num_pois=4,
                                num_rounds=100)
        offender = next(d for d in report.diagnostics if d.seller == 4)
        assert not offender.within_bound
        assert not report.all_within_bounds

    def test_table_renders(self):
        report = counter_report(QUALITIES, np.arange(5), k=2, num_pois=4,
                                num_rounds=100)
        table = report.to_table()
        assert "seller" in table
        assert "bound" in table

    def test_rejects_misaligned_inputs(self):
        with pytest.raises(ConfigurationError, match="aligned"):
            counter_report(QUALITIES, np.zeros(3, dtype=int), k=2,
                           num_pois=4, num_rounds=100)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError, match="k must be"):
            counter_report(QUALITIES, np.zeros(5, dtype=int), k=9,
                           num_pois=4, num_rounds=100)

    def test_worst_utilisation_in_unit_range_for_real_run(self):
        from repro.bandits.environment import CMABEnvironment
        from repro.bandits.policies import UCBPolicy
        from repro.quality.distributions import TruncatedGaussianQuality

        qualities = np.array([0.9, 0.75, 0.55, 0.35, 0.2, 0.1])
        environment = CMABEnvironment(
            TruncatedGaussianQuality(qualities), num_pois=4, k=2,
            num_rounds=1_500, seed=6,
        )
        result = environment.run(UCBPolicy())
        report = counter_report(qualities, result.selection_counts, k=2,
                                num_pois=4, num_rounds=1_500)
        assert report.all_within_bounds, report.to_table()
        assert 0.0 < report.worst_utilisation <= 1.0

    def test_violation_emits_invariant_trace_event(self):
        from repro.obs import RingBufferSink, Tracer

        ring = RingBufferSink()
        counts = np.array([10, 10, 10, 10, 10**7])
        report = counter_report(QUALITIES, counts, k=2, num_pois=4,
                                num_rounds=100, tracer=Tracer(ring))
        assert not report.all_within_bounds
        violations = ring.of_kind("invariant_violation")
        assert [e.payload["seller"] for e in violations] == [4]
        payload = violations[0].payload
        assert payload["invariant"] == "lemma18_counter_bound"
        assert payload["observations"] > payload["bound"]
        assert payload["gap"] == pytest.approx(0.6)

    def test_compliant_report_emits_no_events(self):
        from repro.obs import RingBufferSink, Tracer

        ring = RingBufferSink()
        report = counter_report(QUALITIES, np.array([40, 40, 1, 1, 1]),
                                k=2, num_pois=4, num_rounds=100,
                                tracer=Tracer(ring))
        assert report.all_within_bounds
        assert ring.events == ()

    def test_mechanism_counters_certified(self):
        from repro.core.mechanism import CMABHSMechanism
        from repro.entities import (
            Consumer,
            Job,
            Platform,
            SellerPopulation,
        )

        population = SellerPopulation.from_arrays(
            qualities=np.array([0.9, 0.7, 0.5, 0.35, 0.2]),
            a=np.full(5, 0.3),
            b=np.full(5, 0.2),
        )
        job = Job.simple(num_pois=4, num_rounds=800)
        mechanism = CMABHSMechanism(
            population, job, Platform.default(price_max=5.0),
            Consumer.default(), k=2, seed=11,
        )
        result = mechanism.run()
        counts = result.selection_matrix.sum(axis=0)
        report = counter_report(
            population.expected_qualities, counts, k=2, num_pois=4,
            num_rounds=800,
        )
        assert report.all_within_bounds, report.to_table()
