"""Unit tests for the deviation-curve analysis (Figs. 13-14 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incentive import ClosedFormStackelbergSolver
from repro.exceptions import ConfigurationError
from repro.game.analysis import (
    consumer_price_sweep,
    seller_time_deviation_sweep,
)
from repro.game.profits import GameInstance


@pytest.fixture
def game(rng) -> GameInstance:
    return GameInstance(
        qualities=rng.uniform(0.3, 1.0, 5),
        cost_a=rng.uniform(0.1, 0.5, 5),
        cost_b=rng.uniform(0.1, 1.0, 5),
        theta=0.1,
        lam=1.0,
        omega=800.0,
        service_price_bounds=(0.0, 10_000.0),
        collection_price_bounds=(0.0, 10_000.0),
    )


@pytest.fixture
def solver() -> ClosedFormStackelbergSolver:
    return ClosedFormStackelbergSolver()


class TestConsumerPriceSweep:
    def test_rejects_empty_sweep(self, game, solver):
        with pytest.raises(ConfigurationError, match="non-empty"):
            consumer_price_sweep(game, [], solver.cascade)

    def test_shapes(self, game, solver):
        prices = np.linspace(1.0, 30.0, 12)
        curves = consumer_price_sweep(game, prices, solver.cascade)
        assert curves.consumer.shape == (12,)
        assert curves.platform.shape == (12,)
        assert curves.sellers.shape == (12, 5)
        assert curves.collection_prices.shape == (12,)

    def test_consumer_profit_unimodal_with_interior_peak(self, game, solver):
        prices = np.linspace(1.0, 40.0, 120)
        curves = consumer_price_sweep(game, prices, solver.cascade)
        peak = int(np.argmax(curves.consumer))
        assert 0 < peak < prices.size - 1
        # Rising before the peak, falling after it.
        assert np.all(np.diff(curves.consumer[: peak + 1]) > -1e-9)
        assert np.all(np.diff(curves.consumer[peak:]) < 1e-9)

    def test_platform_and_sellers_monotone_in_price(self, game, solver):
        prices = np.linspace(2.0, 40.0, 60)
        curves = consumer_price_sweep(game, prices, solver.cascade)
        assert np.all(np.diff(curves.platform) > 0.0)
        assert np.all(np.diff(curves.mean_seller) >= -1e-12)

    def test_argmax_matches_closed_form_se(self, game, solver):
        equilibrium = solver.solve(game)
        prices = np.linspace(1.0, 40.0, 400)
        curves = consumer_price_sweep(game, prices, solver.cascade)
        assert curves.argmax_consumer == pytest.approx(
            equilibrium.profile.service_price, abs=0.2
        )

    def test_default_cascade_is_numeric(self, game):
        prices = np.array([10.0])
        curves = consumer_price_sweep(game, prices)  # no cascade given
        assert np.isfinite(curves.consumer[0])


class TestSellerDeviationSweep:
    def test_rejects_bad_position(self, game, solver):
        profile = solver.solve(game).profile
        with pytest.raises(ConfigurationError, match="position"):
            seller_time_deviation_sweep(game, profile, 5, [1.0])

    def test_rejects_empty_sweep(self, game, solver):
        profile = solver.solve(game).profile
        with pytest.raises(ConfigurationError, match="non-empty"):
            seller_time_deviation_sweep(game, profile, 0, [])

    def test_deviator_profit_peaks_at_equilibrium(self, game, solver):
        profile = solver.solve(game).profile
        position = 2
        tau_star = profile.sensing_times[position]
        sweep = np.linspace(0.0, 2.0 * tau_star, 201)
        curve = seller_time_deviation_sweep(game, profile, position, sweep)
        best = float(sweep[int(np.argmax(curve.deviator_profit))])
        assert best == pytest.approx(tau_star, abs=2.0 * tau_star / 200 + 1e-9)

    def test_other_sellers_unaffected(self, game, solver):
        profile = solver.solve(game).profile
        sweep = np.linspace(0.1, 2.0, 30)
        curve = seller_time_deviation_sweep(game, profile, 1, sweep)
        for other in (0, 2, 3, 4):
            column = curve.sellers[:, other]
            np.testing.assert_allclose(column, column[0])

    def test_leaders_profits_change_with_deviation(self, game, solver):
        profile = solver.solve(game).profile
        sweep = np.linspace(0.1, 3.0, 30)
        curve = seller_time_deviation_sweep(game, profile, 0, sweep)
        assert curve.consumer.std() > 0.0
        assert curve.platform.std() > 0.0

    def test_zero_deviation_zero_profit(self, game, solver):
        profile = solver.solve(game).profile
        curve = seller_time_deviation_sweep(game, profile, 0, [0.0])
        assert curve.deviator_profit[0] == pytest.approx(0.0)

    def test_best_deviation_matches_equilibrium_time(self, game, solver):
        profile = solver.solve(game).profile
        tau_star = profile.sensing_times[3]
        sweep = np.linspace(0.0, 2.0 * tau_star, 401)
        curve = seller_time_deviation_sweep(game, profile, 3, sweep)
        step = sweep[1] - sweep[0]
        assert curve.best_deviation() == pytest.approx(tau_star,
                                                       abs=step + 1e-12)
