"""Unit tests for the cost and valuation function objects (Eqs. 6, 8, 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.entities.costs import (
    LogValuation,
    QuadraticAggregationCost,
    QuadraticSellerCost,
)
from repro.exceptions import ConfigurationError


class TestQuadraticSellerCost:
    def test_value_matches_equation_6(self):
        cost = QuadraticSellerCost(a=0.3, b=0.5)
        # (0.3*4 + 0.5*2) * 0.8 = (1.2 + 1.0) * 0.8
        assert cost(2.0, 0.8) == pytest.approx(2.2 * 0.8)

    def test_zero_time_zero_cost(self):
        assert QuadraticSellerCost(0.2, 0.1)(0.0, 0.9) == 0.0

    def test_rejects_nonpositive_a(self):
        with pytest.raises(ConfigurationError, match="a must be > 0"):
            QuadraticSellerCost(a=0.0, b=0.1)

    def test_rejects_negative_b(self):
        with pytest.raises(ConfigurationError, match="b must be >= 0"):
            QuadraticSellerCost(a=0.1, b=-0.1)

    def test_marginal_is_derivative(self):
        cost = QuadraticSellerCost(a=0.4, b=0.2)
        h = 1e-7
        numeric = (cost(1.0 + h, 0.7) - cost(1.0 - h, 0.7)) / (2 * h)
        assert cost.marginal(1.0, 0.7) == pytest.approx(numeric, rel=1e-5)

    def test_strictly_convex_in_time(self):
        cost = QuadraticSellerCost(a=0.3, b=0.5)
        taus = np.linspace(0.0, 5.0, 20)
        values = np.array([cost(t, 0.6) for t in taus])
        second_diff = np.diff(values, 2)
        assert np.all(second_diff > 0.0)

    def test_monotone_increasing(self):
        cost = QuadraticSellerCost(a=0.3, b=0.5)
        values = [cost(t, 0.6) for t in np.linspace(0.1, 5.0, 10)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_optimal_sensing_time_equation_20(self):
        cost = QuadraticSellerCost(a=0.25, b=0.4)
        p, q = 2.0, 0.8
        expected = (p - q * 0.4) / (2.0 * q * 0.25)
        assert cost.optimal_sensing_time(p, q) == pytest.approx(expected)

    def test_optimal_sensing_time_maximises_profit(self):
        cost = QuadraticSellerCost(a=0.25, b=0.4)
        p, q = 2.0, 0.8
        tau_star = cost.optimal_sensing_time(p, q)
        best = p * tau_star - cost(tau_star, q)
        for tau in np.linspace(0.0, 3.0 * tau_star, 50):
            assert p * tau - cost(tau, q) <= best + 1e-12

    def test_optimal_sensing_time_floors_at_zero(self):
        cost = QuadraticSellerCost(a=0.25, b=1.0)
        # price below the marginal cost of the first unit: opt out.
        assert cost.optimal_sensing_time(0.1, 0.9) == 0.0

    def test_optimal_sensing_time_rejects_zero_quality(self):
        cost = QuadraticSellerCost(a=0.25, b=0.4)
        with pytest.raises(ConfigurationError, match="positive quality"):
            cost.optimal_sensing_time(1.0, 0.0)

    def test_cost_scales_linearly_with_quality(self):
        cost = QuadraticSellerCost(a=0.3, b=0.5)
        assert cost(2.0, 0.8) == pytest.approx(2.0 * cost(2.0, 0.4))


class TestQuadraticAggregationCost:
    def test_value_matches_equation_8(self):
        cost = QuadraticAggregationCost(theta=0.2, lam=1.5)
        total = 4.0
        assert cost(total) == pytest.approx(0.2 * 16.0 + 1.5 * 4.0)

    def test_accepts_vector_input(self):
        cost = QuadraticAggregationCost(theta=0.2, lam=1.5)
        assert cost(np.array([1.0, 3.0])) == pytest.approx(cost(4.0))

    def test_rejects_nonpositive_theta(self):
        with pytest.raises(ConfigurationError, match="theta"):
            QuadraticAggregationCost(theta=0.0, lam=1.0)

    def test_rejects_negative_lambda(self):
        with pytest.raises(ConfigurationError, match="lambda"):
            QuadraticAggregationCost(theta=0.1, lam=-0.5)

    def test_marginal_is_derivative(self):
        cost = QuadraticAggregationCost(theta=0.3, lam=0.7)
        h = 1e-7
        numeric = (cost(2.0 + h) - cost(2.0 - h)) / (2 * h)
        assert cost.marginal(2.0) == pytest.approx(numeric, rel=1e-5)

    def test_convex(self):
        cost = QuadraticAggregationCost(theta=0.3, lam=0.7)
        totals = np.linspace(0.0, 10.0, 30)
        second_diff = np.diff([cost(t) for t in totals], 2)
        assert np.all(second_diff > 0.0)


class TestLogValuation:
    def test_value_matches_equation_10(self):
        valuation = LogValuation(omega=1_000.0)
        assert valuation(4.0, 0.5) == pytest.approx(
            1_000.0 * np.log(1.0 + 0.5 * 4.0)
        )

    def test_accepts_vector_input(self):
        valuation = LogValuation(omega=500.0)
        assert valuation(np.array([1.0, 3.0]), 0.5) == pytest.approx(
            valuation(4.0, 0.5)
        )

    def test_rejects_omega_at_or_below_one(self):
        with pytest.raises(ConfigurationError, match="omega"):
            LogValuation(omega=1.0)

    def test_zero_time_zero_value(self):
        assert LogValuation(omega=100.0)(0.0, 0.9) == 0.0

    def test_monotone_increasing_in_time(self):
        valuation = LogValuation(omega=100.0)
        values = [valuation(t, 0.7) for t in np.linspace(0.0, 10.0, 20)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_strictly_concave_in_time(self):
        valuation = LogValuation(omega=100.0)
        totals = np.linspace(0.1, 10.0, 30)
        second_diff = np.diff([valuation(t, 0.7) for t in totals], 2)
        assert np.all(second_diff < 0.0)

    def test_marginal_is_derivative(self):
        valuation = LogValuation(omega=250.0)
        h = 1e-7
        numeric = (valuation(3.0 + h, 0.6) - valuation(3.0 - h, 0.6)) / (2 * h)
        assert valuation.marginal(3.0, 0.6) == pytest.approx(numeric, rel=1e-5)

    def test_rejects_invalid_argument(self):
        valuation = LogValuation(omega=100.0)
        with pytest.raises(ConfigurationError, match="positive"):
            valuation(-5.0, 0.5)

    def test_diminishing_marginal_return(self):
        valuation = LogValuation(omega=100.0)
        assert valuation.marginal(1.0, 0.5) > valuation.marginal(5.0, 0.5)
