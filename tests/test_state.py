"""Unit tests for the quality-learning state (Eqs. 17-19)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import LearningState
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError, match="num_sellers"):
            LearningState(0)

    def test_rejects_bad_prior(self):
        with pytest.raises(ConfigurationError, match="prior_mean"):
            LearningState(3, prior_mean=1.5)

    def test_starts_empty(self):
        state = LearningState(4)
        assert state.total_count == 0
        np.testing.assert_array_equal(state.counts, np.zeros(4))

    def test_prior_mean_reported_for_unseen(self):
        state = LearningState(3, prior_mean=0.5)
        np.testing.assert_array_equal(state.means, [0.5, 0.5, 0.5])


class TestUpdate:
    def test_counts_advance_by_l(self):
        state = LearningState(4)
        state.update(np.array([0, 2]), np.array([2.0, 3.0]),
                     num_observations=5)
        np.testing.assert_array_equal(state.counts, [5, 0, 5, 0])

    def test_means_are_running_averages(self):
        state = LearningState(2)
        state.update(np.array([0]), np.array([2.0]), num_observations=4)
        assert state.mean_of(0) == pytest.approx(0.5)
        state.update(np.array([0]), np.array([4.0]), num_observations=4)
        assert state.mean_of(0) == pytest.approx(6.0 / 8.0)

    def test_update_matches_equation_18_batch_recomputation(self, rng):
        # The incremental update must equal recomputing from all samples.
        state = LearningState(3)
        all_sums = np.zeros(3)
        all_counts = np.zeros(3)
        for __ in range(20):
            sellers = np.sort(rng.choice(3, size=2, replace=False))
            sums = rng.uniform(0.0, 4.0, size=2)
            state.update(sellers, sums, num_observations=4)
            all_sums[sellers] += sums
            all_counts[sellers] += 4
        np.testing.assert_allclose(state.means, all_sums / all_counts)

    def test_unselected_sellers_unchanged(self):
        state = LearningState(3)
        state.update(np.array([0]), np.array([1.0]), num_observations=2)
        before = state.mean_of(0)
        state.update(np.array([1]), np.array([1.5]), num_observations=2)
        assert state.mean_of(0) == before

    def test_rejects_duplicate_sellers(self):
        state = LearningState(3)
        with pytest.raises(ConfigurationError, match="twice"):
            state.update(np.array([1, 1]), np.array([1.0, 1.0]), 2)

    def test_rejects_out_of_range_seller(self):
        state = LearningState(3)
        with pytest.raises(ConfigurationError, match="out of range"):
            state.update(np.array([3]), np.array([1.0]), 2)

    def test_rejects_misaligned_arrays(self):
        state = LearningState(3)
        with pytest.raises(ConfigurationError, match="aligned"):
            state.update(np.array([0, 1]), np.array([1.0]), 2)

    def test_rejects_nonpositive_observation_count(self):
        state = LearningState(3)
        with pytest.raises(ConfigurationError, match="num_observations"):
            state.update(np.array([0]), np.array([1.0]), 0)

    def test_empty_update_is_noop(self):
        state = LearningState(3)
        state.update(np.array([], dtype=int), np.array([]), 4)
        assert state.total_count == 0


class TestUCB:
    def test_unseen_sellers_have_infinite_index(self):
        state = LearningState(3)
        state.update(np.array([0]), np.array([1.0]), num_observations=2)
        ucb = state.ucb_values(coefficient=2.0)
        assert np.isfinite(ucb[0])
        assert np.isinf(ucb[1]) and np.isinf(ucb[2])

    def test_matches_equation_19(self):
        state = LearningState(2)
        state.update(np.array([0, 1]), np.array([2.0, 1.0]),
                     num_observations=4)
        coefficient = 3.0
        total = 8
        expected_bonus = np.sqrt(coefficient * np.log(total) / 4.0)
        ucb = state.ucb_values(coefficient)
        assert ucb[0] == pytest.approx(0.5 + expected_bonus)
        assert ucb[1] == pytest.approx(0.25 + expected_bonus)

    def test_bonus_shrinks_with_observations(self):
        state = LearningState(2)
        state.update(np.array([0, 1]), np.array([1.0, 1.0]), 2)
        first = state.exploration_bonuses(2.0)[0]
        for __ in range(5):
            state.update(np.array([0]), np.array([1.0]), 2)
        second = state.exploration_bonuses(2.0)[0]
        assert second < first

    def test_less_observed_seller_gets_larger_bonus(self):
        state = LearningState(2)
        state.update(np.array([0, 1]), np.array([1.0, 1.0]), 2)
        state.update(np.array([0]), np.array([1.0]), 6)
        bonuses = state.exploration_bonuses(2.0)
        assert bonuses[1] > bonuses[0]

    def test_rejects_nonpositive_coefficient(self):
        state = LearningState(2)
        with pytest.raises(ConfigurationError, match="coefficient"):
            state.ucb_values(0.0)

    def test_all_infinite_before_any_observation(self):
        state = LearningState(3)
        assert np.all(np.isinf(state.ucb_values(2.0)))


class TestSnapshotRestore:
    def test_round_trip(self):
        state = LearningState(3)
        state.update(np.array([0, 1]), np.array([1.0, 2.0]), 4)
        snapshot = state.snapshot()
        state.update(np.array([2]), np.array([3.0]), 4)
        state.restore(snapshot)
        np.testing.assert_array_equal(state.counts, [4, 4, 0])
        assert state.mean_of(1) == pytest.approx(0.5)

    def test_snapshot_is_a_copy(self):
        state = LearningState(2)
        state.update(np.array([0]), np.array([1.0]), 2)
        snapshot = state.snapshot()
        snapshot["counts"][0] = 99
        assert state.counts[0] == 2

    def test_restore_rejects_wrong_shape(self):
        state = LearningState(2)
        with pytest.raises(ConfigurationError, match="shape"):
            state.restore({"counts": np.zeros(3), "sums": np.zeros(3)})

    def test_reset(self):
        state = LearningState(2)
        state.update(np.array([0]), np.array([1.0]), 2)
        state.reset()
        assert state.total_count == 0
