"""Unit tests for the closed-form incentive solution (Theorems 14-16)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incentive import (
    ClosedFormStackelbergSolver,
    FormulaVariant,
    StageCoefficients,
    initial_round_prices,
    optimal_collection_price,
    optimal_service_price,
    solve_round_fast,
)
from repro.exceptions import GameError
from repro.game.profits import GameInstance
from repro.game.stackelberg import (
    NumericalStackelbergSolver,
    solve_stage2_numeric,
    solve_stage3_numeric,
)


def make_game(k=6, seed=0, omega=1_000.0, theta=0.1, lam=1.0,
              b_zero=False, **overrides) -> GameInstance:
    rng = np.random.default_rng(seed)
    params = dict(
        qualities=rng.uniform(0.3, 1.0, k),
        cost_a=rng.uniform(0.1, 0.5, k),
        cost_b=(np.zeros(k) if b_zero else rng.uniform(0.1, 1.0, k)),
        theta=theta,
        lam=lam,
        omega=omega,
        service_price_bounds=(0.0, 10_000.0),
        collection_price_bounds=(0.0, 10_000.0),
    )
    params.update(overrides)
    return GameInstance(**params)


class TestStageCoefficients:
    def test_a_and_b_sums(self):
        game = make_game()
        coeffs = StageCoefficients.from_game(game)
        assert coeffs.a_sum == pytest.approx(game.coefficient_a)
        assert coeffs.b_sum == pytest.approx(game.coefficient_b)

    def test_variants_differ_by_2b(self):
        game = make_game()
        derived = StageCoefficients.from_game(game, FormulaVariant.DERIVED)
        paper = StageCoefficients.from_game(game, FormulaVariant.PAPER)
        assert paper.constant - derived.constant == pytest.approx(
            2.0 * derived.b_sum
        )

    def test_variants_coincide_when_b_zero(self):
        game = make_game(b_zero=True)
        derived = StageCoefficients.from_game(game, FormulaVariant.DERIVED)
        paper = StageCoefficients.from_game(game, FormulaVariant.PAPER)
        assert derived.constant == pytest.approx(paper.constant)
        assert derived.lambda_coef == pytest.approx(paper.lambda_coef)


class TestStage2ClosedForm:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_numeric_argmax(self, seed):
        game = make_game(seed=seed)
        service_price = 12.0
        closed = optimal_collection_price(game, service_price)
        numeric = solve_stage2_numeric(game, service_price,
                                       coarse_points=4_001)
        assert closed == pytest.approx(numeric, abs=5e-3)

    def test_first_order_condition(self):
        game = make_game()
        service_price = 15.0
        price = optimal_collection_price(game, service_price)

        def profit(p: float) -> float:
            taus = game.seller_best_responses(p)
            return game.platform_profit(service_price, p, taus)

        h = 1e-6
        derivative = (profit(price + h) - profit(price - h)) / (2 * h)
        assert abs(derivative) < 1e-6

    def test_paper_variant_suboptimal_when_b_positive(self):
        game = make_game()
        service_price = 15.0
        derived = optimal_collection_price(game, service_price,
                                           FormulaVariant.DERIVED)
        paper = optimal_collection_price(game, service_price,
                                         FormulaVariant.PAPER)

        def profit(p: float) -> float:
            return game.platform_profit(
                service_price, p, game.seller_best_responses(p)
            )

        assert profit(derived) > profit(paper)

    def test_clipped_to_bounds(self):
        game = make_game(collection_price_bounds=(0.0, 0.5))
        assert optimal_collection_price(game, 50.0) == 0.5

    def test_increases_with_service_price(self):
        game = make_game()
        prices = [optimal_collection_price(game, p_j)
                  for p_j in (5.0, 10.0, 20.0)]
        assert prices[0] < prices[1] < prices[2]


class TestStage1ClosedForm:
    @pytest.mark.parametrize("seed", range(5))
    def test_first_order_condition_through_cascade(self, seed):
        game = make_game(seed=seed)
        solver = ClosedFormStackelbergSolver()
        price = optimal_service_price(game)

        def profit(p_j: float) -> float:
            __, taus = solver.cascade(game, p_j)
            return game.consumer_profit(p_j, taus)

        h = 1e-5
        derivative = (profit(price + h) - profit(price - h)) / (2 * h)
        assert abs(derivative) < 1e-4 * max(abs(profit(price)), 1.0)

    def test_grows_with_omega(self):
        low = optimal_service_price(make_game(omega=600.0))
        high = optimal_service_price(make_game(omega=1_400.0))
        assert high > low

    def test_clipped_to_bounds(self):
        game = make_game(service_price_bounds=(0.0, 3.0))
        assert optimal_service_price(game) == 3.0

    def test_delta_discriminant_positive(self):
        # The discriminant is (q*Lambda-2)^2 + 8*Theta*omega*q^2 > 0 always.
        for seed in range(10):
            game = make_game(seed=seed)
            # Must not raise: a real solution exists.
            optimal_service_price(game)


class TestFullCascade:
    @pytest.mark.parametrize("seed", range(4))
    def test_closed_form_matches_numeric_solver(self, seed):
        game = make_game(seed=seed)
        closed = ClosedFormStackelbergSolver().solve(game)
        numeric = NumericalStackelbergSolver().solve(game)
        assert closed.profile.service_price == pytest.approx(
            numeric.profile.service_price, rel=2e-2
        )
        assert closed.consumer_profit == pytest.approx(
            numeric.consumer_profit, rel=1e-3
        )

    def test_closed_form_weakly_dominates_numeric_for_consumer(self):
        # The closed form is exact; the numerical solver can only tie it
        # (up to grid error) on consumer profit.
        game = make_game(seed=11)
        closed = ClosedFormStackelbergSolver().solve(game)
        numeric = NumericalStackelbergSolver().solve(game)
        assert closed.consumer_profit >= numeric.consumer_profit - 0.05

    def test_sensing_times_match_theorem_14(self):
        game = make_game()
        solved = ClosedFormStackelbergSolver().solve(game)
        expected = game.seller_best_responses(
            solved.profile.collection_price
        )
        np.testing.assert_allclose(solved.profile.sensing_times, expected)


class TestSolverFallbacks:
    def test_invalid_fallback_rejected(self):
        with pytest.raises(GameError, match="fallback"):
            ClosedFormStackelbergSolver(fallback="nope")

    def test_clip_fallback_floors_sensing_times(self):
        # A very expensive-b seller opts out at the closed-form price.
        game = make_game(cost_b=np.array([9.0, 0.1, 0.1, 0.1, 0.1, 0.1]))
        solved = ClosedFormStackelbergSolver(fallback="clip").solve(game)
        assert np.all(solved.profile.sensing_times >= 0.0)

    def test_error_fallback_raises_on_clip(self):
        game = make_game(cost_b=np.array([9.0, 0.1, 0.1, 0.1, 0.1, 0.1]))
        with pytest.raises(GameError, match="outside"):
            ClosedFormStackelbergSolver(fallback="error").solve(game)

    def test_numeric_fallback_produces_feasible_solution(self):
        game = make_game(cost_b=np.array([9.0, 0.1, 0.1, 0.1, 0.1, 0.1]))
        solved = ClosedFormStackelbergSolver(fallback="numeric").solve(game)
        game.require_feasible(solved.profile)

    def test_numeric_fallback_platform_consistent_under_clipping(self):
        # When a seller opts out, the clipped closed form keeps a platform
        # price that is no longer the platform's best response; the numeric
        # fallback restores platform consistency.
        game = make_game(cost_b=np.array([9.0, 0.1, 0.1, 0.1, 0.1, 0.1]))
        clipped = ClosedFormStackelbergSolver(fallback="clip").solve(game)
        numeric = ClosedFormStackelbergSolver(fallback="numeric").solve(game)

        def platform_gain(solution):
            best = solve_stage2_numeric(
                game, solution.profile.service_price, coarse_points=2_001
            )
            best_profit = game.platform_profit(
                solution.profile.service_price, best,
                solve_stage3_numeric(game, best),
            )
            return best_profit - solution.platform_profit

        assert platform_gain(numeric) < 0.05
        assert platform_gain(clipped) > platform_gain(numeric)


class TestBoundAwareStage1:
    """The piecewise candidate evaluation must match brute force."""

    @pytest.mark.parametrize("col_hi", [0.8, 1.5, 2.5])
    def test_matches_grid_search_when_collection_bound_binds(self, col_hi):
        game = make_game(collection_price_bounds=(0.0, col_hi),
                         service_price_bounds=(0.0, 100.0))
        solver = ClosedFormStackelbergSolver(fallback="clip")
        solved = solver.solve(game)

        def consumer_profit(p_j: float) -> float:
            price = optimal_collection_price(game, p_j)
            taus = game.seller_best_responses(price)
            return game.consumer_profit(p_j, taus)

        grid = np.linspace(0.0, 100.0, 40_001)
        best = max(consumer_profit(float(p_j)) for p_j in grid)
        assert solved.consumer_profit >= best - 1e-3

    def test_matches_grid_search_when_service_bound_binds(self):
        game = make_game(service_price_bounds=(0.0, 6.0))
        solver = ClosedFormStackelbergSolver(fallback="clip")
        solved = solver.solve(game)
        assert solved.profile.service_price <= 6.0 + 1e-12

        def consumer_profit(p_j: float) -> float:
            price = optimal_collection_price(game, p_j)
            taus = game.seller_best_responses(price)
            return game.consumer_profit(p_j, taus)

        grid = np.linspace(0.0, 6.0, 12_001)
        best = max(consumer_profit(float(p_j)) for p_j in grid)
        assert solved.consumer_profit >= best - 1e-3


class TestInitialRoundPrices:
    def test_break_even_platform_profit(self):
        game = make_game(collection_price_bounds=(0.0, 5.0))
        tau0 = 1.0
        service, collection = initial_round_prices(game, tau0)
        assert collection == 5.0
        profit = game.platform_profit(
            service, collection, np.full(game.num_sellers, tau0)
        )
        assert profit == pytest.approx(0.0, abs=1e-9)

    def test_paper_example_values(self):
        # 3 sellers, tau0=1, p_max=5, theta=0.5, lambda=1 gives
        # p^{J,1*} = 5 + (0.5*9 + 1*3)/3 = 7.5 — the Sec. III-D numbers.
        game = GameInstance(
            qualities=np.array([0.5, 0.5, 0.5]),
            cost_a=np.array([0.3, 0.3, 0.3]),
            cost_b=np.array([0.1, 0.1, 0.1]),
            theta=0.5, lam=1.0, omega=100.0,
            collection_price_bounds=(0.0, 5.0),
            service_price_bounds=(0.0, 100.0),
        )
        service, collection = initial_round_prices(game, 1.0)
        assert collection == pytest.approx(5.0)
        assert service == pytest.approx(7.5)

    def test_rejects_nonpositive_tau0(self):
        with pytest.raises(GameError, match="initial sensing time"):
            initial_round_prices(make_game(), 0.0)


class TestSolveRoundFast:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_object_solver(self, seed):
        game = make_game(seed=seed)
        solved = ClosedFormStackelbergSolver(fallback="clip").solve(game)
        p_j, p, taus = solve_round_fast(
            game.qualities, game.cost_a, game.cost_b, game.theta,
            game.lam, game.omega, game.service_price_bounds,
            game.collection_price_bounds, game.max_sensing_time,
        )
        assert p_j == pytest.approx(solved.profile.service_price)
        assert p == pytest.approx(solved.profile.collection_price)
        np.testing.assert_allclose(taus, solved.profile.sensing_times)

    def test_paper_variant_flag(self):
        game = make_game()
        p_j_paper, __, __ = solve_round_fast(
            game.qualities, game.cost_a, game.cost_b, game.theta,
            game.lam, game.omega, game.service_price_bounds,
            game.collection_price_bounds, paper_variant=True,
        )
        expected = optimal_service_price(game, FormulaVariant.PAPER)
        assert p_j_paper == pytest.approx(expected)

    def test_clips_prices_and_times(self):
        game = make_game()
        p_j, p, taus = solve_round_fast(
            game.qualities, game.cost_a, game.cost_b, game.theta,
            game.lam, game.omega, (0.0, 2.0), (0.0, 0.3),
            max_sensing_time=0.25,
        )
        assert p_j <= 2.0
        assert p <= 0.3
        assert np.all(taus <= 0.25)
        assert np.all(taus >= 0.0)
