"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# Deterministic property tests: a reproduction repository should produce
# the same test outcome on every run.
settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")

from repro.entities.consumer import Consumer
from repro.entities.job import Job
from repro.entities.platform import Platform
from repro.entities.seller import SellerPopulation
from repro.game.profits import GameInstance
from repro.sim.config import SimulationConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, seeded generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_game(rng: np.random.Generator) -> GameInstance:
    """A 5-seller game instance with paper-range parameters."""
    return GameInstance(
        qualities=rng.uniform(0.3, 1.0, 5),
        cost_a=rng.uniform(0.1, 0.5, 5),
        cost_b=rng.uniform(0.1, 1.0, 5),
        theta=0.1,
        lam=1.0,
        omega=1_000.0,
        service_price_bounds=(0.0, 10_000.0),
        collection_price_bounds=(0.0, 10_000.0),
    )


@pytest.fixture
def population(rng: np.random.Generator) -> SellerPopulation:
    """A 20-seller population with paper-range parameters."""
    return SellerPopulation.random(20, rng)


@pytest.fixture
def job() -> Job:
    """A small 5-PoI, 50-round job."""
    return Job.simple(num_pois=5, num_rounds=50)


@pytest.fixture
def platform() -> Platform:
    """A platform with paper defaults and a p_max of 5."""
    return Platform.default(price_max=5.0)


@pytest.fixture
def consumer() -> Consumer:
    """A consumer with the paper's default omega."""
    return Consumer.default()


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A fast simulation config for integration tests."""
    return SimulationConfig(
        num_sellers=15, num_selected=4, num_pois=5, num_rounds=120, seed=9
    )
