"""Unit tests for the quality observation models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.quality.distributions import (
    BernoulliQuality,
    BetaQuality,
    DeterministicQuality,
    DriftingQuality,
    TruncatedGaussianQuality,
    UniformQuality,
    make_quality_model,
)

MEANS = np.array([0.2, 0.5, 0.8])

ALL_MODELS = [
    TruncatedGaussianQuality,
    BernoulliQuality,
    BetaQuality,
    UniformQuality,
    DeterministicQuality,
    DriftingQuality,
]


class TestValidation:
    def test_rejects_empty_means(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            TruncatedGaussianQuality(np.array([]))

    def test_rejects_2d_means(self):
        with pytest.raises(ConfigurationError, match="1-D"):
            TruncatedGaussianQuality(np.array([[0.5]]))

    def test_rejects_means_above_one(self):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            TruncatedGaussianQuality(np.array([0.5, 1.2]))

    def test_rejects_negative_means(self):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            TruncatedGaussianQuality(np.array([-0.1, 0.5]))

    def test_rejects_nan_means(self):
        with pytest.raises(ConfigurationError, match="finite"):
            TruncatedGaussianQuality(np.array([np.nan, 0.5]))

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ConfigurationError, match="sigma"):
            TruncatedGaussianQuality(MEANS, sigma=0.0)

    def test_rejects_nonpositive_concentration(self):
        with pytest.raises(ConfigurationError, match="concentration"):
            BetaQuality(MEANS, concentration=-1.0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConfigurationError, match="width"):
            UniformQuality(MEANS, width=0.0)

    def test_drifting_rejects_large_amplitude(self):
        with pytest.raises(ConfigurationError, match="amplitude"):
            DriftingQuality(MEANS, amplitude=0.6)

    def test_drifting_rejects_bad_period(self):
        with pytest.raises(ConfigurationError, match="period"):
            DriftingQuality(MEANS, period=0.0)

    def test_means_are_readonly(self):
        model = DeterministicQuality(MEANS)
        with pytest.raises(ValueError):
            model.means[0] = 0.9


class TestObserve:
    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_shape(self, model_cls, rng):
        model = model_cls(MEANS)
        out = model.observe(rng, np.array([0, 2]), num_pois=7)
        assert out.shape == (2, 7)

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_range(self, model_cls, rng):
        model = model_cls(MEANS)
        out = model.observe(rng, np.array([0, 1, 2]), num_pois=50)
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0)

    def test_rejects_bad_seller_index(self, rng):
        model = DeterministicQuality(MEANS)
        with pytest.raises(ConfigurationError, match="out of range"):
            model.observe(rng, np.array([3]), num_pois=2)

    def test_rejects_negative_seller_index(self, rng):
        model = DeterministicQuality(MEANS)
        with pytest.raises(ConfigurationError, match="out of range"):
            model.observe(rng, np.array([-1]), num_pois=2)

    def test_rejects_nonpositive_pois(self, rng):
        model = DeterministicQuality(MEANS)
        with pytest.raises(ConfigurationError, match="num_pois"):
            model.observe(rng, np.array([0]), num_pois=0)

    def test_empty_selection_allowed(self, rng):
        model = DeterministicQuality(MEANS)
        out = model.observe(rng, np.array([], dtype=int), num_pois=3)
        assert out.shape == (0, 3)

    def test_deterministic_exact(self, rng):
        model = DeterministicQuality(MEANS)
        out = model.observe(rng, np.array([0, 1, 2]), num_pois=4)
        np.testing.assert_allclose(out, MEANS[:, None] * np.ones((1, 4)))

    def test_bernoulli_binary(self, rng):
        model = BernoulliQuality(MEANS)
        out = model.observe(rng, np.array([0, 1, 2]), num_pois=100)
        assert set(np.unique(out)) <= {0.0, 1.0}

    @pytest.mark.parametrize("model_cls", [TruncatedGaussianQuality,
                                           BernoulliQuality, BetaQuality,
                                           UniformQuality])
    def test_sample_mean_near_expectation(self, model_cls, rng):
        model = model_cls(MEANS)
        out = model.observe(rng, np.repeat([0, 1, 2], 1), num_pois=20_000)
        np.testing.assert_allclose(out.mean(axis=1), MEANS, atol=0.02)

    def test_reproducible_with_same_seed(self):
        model = TruncatedGaussianQuality(MEANS)
        a = model.observe(np.random.default_rng(4), np.array([0, 1]), 5)
        b = model.observe(np.random.default_rng(4), np.array([0, 1]), 5)
        np.testing.assert_array_equal(a, b)


class TestEffectiveMeans:
    def test_exact_models_return_configured_means(self):
        for model_cls in (BernoulliQuality, BetaQuality,
                          DeterministicQuality):
            model = model_cls(MEANS)
            np.testing.assert_array_equal(model.effective_means(), MEANS)

    def test_truncated_gaussian_estimate_close_for_interior_means(self):
        model = TruncatedGaussianQuality(np.array([0.5]), sigma=0.05)
        assert abs(model.effective_means()[0] - 0.5) < 0.01

    def test_truncated_gaussian_biased_at_boundary(self):
        # A mean of 0 gets clipped upward: effective mean > 0.
        model = TruncatedGaussianQuality(np.array([0.0]), sigma=0.2)
        assert model.effective_means()[0] > 0.05


class TestBetaEdgeCases:
    def test_degenerate_means_are_point_masses(self, rng):
        model = BetaQuality(np.array([0.0, 1.0]))
        out = model.observe(rng, np.array([0, 1]), num_pois=10)
        np.testing.assert_array_equal(out[0], np.zeros(10))
        np.testing.assert_array_equal(out[1], np.ones(10))

    def test_higher_concentration_less_spread(self, rng):
        tight = BetaQuality(np.array([0.5]), concentration=200.0)
        loose = BetaQuality(np.array([0.5]), concentration=2.0)
        spread_tight = tight.observe(
            np.random.default_rng(0), np.array([0]), 5_000
        ).std()
        spread_loose = loose.observe(
            np.random.default_rng(0), np.array([0]), 5_000
        ).std()
        assert spread_tight < spread_loose


class TestDrifting:
    def test_means_at_zero_round_near_base(self):
        model = DriftingQuality(MEANS, amplitude=0.1, period=100.0)
        drifted = model.means_at(0)
        assert np.all(np.abs(drifted - MEANS) <= 0.1 + 1e-12)

    def test_means_oscillate(self):
        model = DriftingQuality(np.array([0.5]), amplitude=0.3,
                                period=100.0)
        values = [model.means_at(t)[0] for t in range(0, 100, 5)]
        assert max(values) > 0.6
        assert min(values) < 0.4

    def test_means_clipped_to_unit_interval(self):
        model = DriftingQuality(np.array([0.95, 0.05]), amplitude=0.5,
                                period=10.0)
        for t in range(20):
            drifted = model.means_at(t)
            assert np.all(drifted >= 0.0) and np.all(drifted <= 1.0)

    def test_set_round_controls_observation_mean(self, rng):
        model = DriftingQuality(np.array([0.5]), amplitude=0.4,
                                period=10.0, sigma=1e-6)
        for t in (0, 3, 7):
            model.set_round(t)
            draw = model.observe(np.random.default_rng(0), np.array([0]), 1)
            assert float(draw[0, 0]) == pytest.approx(
                float(model.means_at(t)[0]), abs=1e-4
            )

    def test_set_round_rejects_negative(self):
        model = DriftingQuality(MEANS)
        with pytest.raises(ConfigurationError, match="round index"):
            model.set_round(-1)

    def test_same_phase_seed_same_drift(self):
        a = DriftingQuality(MEANS, phase_seed=9)
        b = DriftingQuality(MEANS, phase_seed=9)
        np.testing.assert_array_equal(a.means_at(37), b.means_at(37))


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("truncated_gaussian", TruncatedGaussianQuality),
        ("bernoulli", BernoulliQuality),
        ("beta", BetaQuality),
        ("uniform", UniformQuality),
        ("deterministic", DeterministicQuality),
        ("drifting", DriftingQuality),
    ])
    def test_builds_each_model(self, name, cls):
        assert isinstance(make_quality_model(name, MEANS), cls)

    def test_forwards_kwargs(self):
        model = make_quality_model("truncated_gaussian", MEANS, sigma=0.3)
        assert model.sigma == 0.3

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown quality model"):
            make_quality_model("gamma", MEANS)
