"""Scalar-vs-vector differential tests for :mod:`repro.kernels`.

The equivalence contract (DESIGN.md §15) has two strengths and every
test here pins one of them:

* **bit-identity** for selections, learning state, and whole-run metric
  series — the vector backend must be indistinguishable from the scalar
  reference, not merely close;
* **``<= 1e-9`` relative** for the batched ``(markets, M)`` Stage 1-3
  solves, whose masked reductions legitimately sum in a different order
  than the compacted scalar vectors.  Exact Stage-1 profit ties may
  resolve to different (equally optimal) candidates, so those rows are
  compared on consumer profit, not price identity.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bandits.policies import UCBPolicy
from repro.core.incentive import solve_round_fast
from repro.core.selection import top_k_indices
from repro.core.state import LearningState
from repro.exceptions import ConfigurationError, SelectionError
from repro.faults.model import FaultSpec
from repro.kernels import (
    VectorLearningState,
    estimation_error,
    masked_stage_sums,
    solve_rounds_batch,
    stage3_golden_batch,
    top_k_partition,
    ucb_scores,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator
from repro.sim.rounds import PRIOR_MEAN

RTOL = 1e-9

#: RunMetrics fields the engine differential compares bit-for-bit.
METRIC_FIELDS = (
    "realized_revenue", "expected_revenue", "regret", "consumer_profit",
    "platform_profit", "seller_profit_mean", "service_price",
    "collection_price", "total_sensing_time", "selection_counts",
    "estimation_error",
)


@st.composite
def state_histories(draw):
    """A seller count, K, and a random feasible update sequence."""
    m = draw(st.integers(2, 25))
    k = draw(st.integers(1, m))
    num_updates = draw(st.integers(1, 10))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    updates = []
    for __ in range(num_updates):
        size = int(rng.integers(1, m + 1))
        sellers = np.sort(rng.choice(m, size=size, replace=False))
        num_obs = int(rng.integers(1, 6))
        sums = rng.uniform(0.0, 1.0, size) * num_obs
        updates.append((sellers, sums, num_obs))
    return m, k, updates


class TestSelectionKernels:
    @given(state_histories())
    @settings(max_examples=60, deadline=None)
    def test_state_and_ucb_bit_identical(self, history):
        m, k, updates = history
        scalar = LearningState(m, prior_mean=PRIOR_MEAN)
        vector = VectorLearningState(m, prior_mean=PRIOR_MEAN)
        coefficient = float(k + 1)
        for sellers, sums, num_obs in updates:
            scalar.update(sellers, sums, num_obs)
            vector.update(sellers, sums, num_obs)
            assert scalar.total_count == vector.total_count
            np.testing.assert_array_equal(scalar.means, vector.means)
            reference = scalar.ucb_values(coefficient)
            np.testing.assert_array_equal(reference,
                                          vector.ucb_values(coefficient))
            np.testing.assert_array_equal(
                top_k_indices(reference, k),
                top_k_partition(vector.ucb_values(coefficient), k),
            )

    @given(st.integers(2, 40), st.integers(0, 2**16), st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_partition_matches_argsort_on_quantized_scores(
            self, m, seed, levels):
        # Coarse quantization forces massive ties — the regime where a
        # naive argpartition diverges from stable tie-breaking.
        rng = np.random.default_rng(seed)
        scores = rng.integers(0, levels + 1, m).astype(float)
        for k in range(1, m + 1):
            np.testing.assert_array_equal(top_k_indices(scores, k),
                                          top_k_partition(scores, k))

    def test_partition_tie_breaks_by_ascending_index(self):
        scores = np.array([1.0, 2.0, 2.0, 2.0, 0.5])
        np.testing.assert_array_equal(top_k_partition(scores, 2), [1, 2])

    def test_partition_all_equal_scores(self):
        scores = np.full(7, 3.25)
        np.testing.assert_array_equal(top_k_partition(scores, 3),
                                      [0, 1, 2])

    def test_partition_infinite_scores_first(self):
        scores = np.array([0.1, np.inf, 0.2, np.inf, 0.3])
        np.testing.assert_array_equal(top_k_partition(scores, 3),
                                      [1, 3, 4])

    def test_partition_k_equals_m_is_arange(self):
        scores = np.array([0.3, 0.1, 0.2])
        np.testing.assert_array_equal(top_k_partition(scores, 3),
                                      np.arange(3))

    def test_partition_nan_delegates_to_reference(self):
        scores = np.array([0.5, np.nan, 0.9, 0.1])
        np.testing.assert_array_equal(top_k_partition(scores, 2),
                                      top_k_indices(scores, 2))

    def test_partition_rejects_bad_k(self):
        with pytest.raises(SelectionError):
            top_k_partition(np.array([1.0, 2.0]), 3)
        with pytest.raises(SelectionError):
            top_k_partition(np.array([1.0, 2.0]), 0)

    def test_ucb_scores_unseen_and_cold_start(self):
        counts = np.array([0.0, 4.0, 2.0])
        means = np.array([0.5, 0.7, 0.6])
        # total <= 1: every seller must be forced into exploration.
        assert np.all(np.isinf(ucb_scores(counts, means, 1, 3.0)))
        # Unseen seller keeps an infinite index afterwards.
        scores = ucb_scores(counts, means, 6, 3.0)
        assert math.isinf(scores[0])
        assert np.all(np.isfinite(scores[1:]))

    def test_ucb_scores_rejects_bad_coefficient(self):
        with pytest.raises(ConfigurationError, match="coefficient"):
            ucb_scores(np.ones(3), np.ones(3), 5, 0.0)

    def test_estimation_error_matches_scalar_expression(self):
        rng = np.random.default_rng(3)
        means = rng.uniform(0.0, 1.0, 50)
        truth = rng.uniform(0.1, 1.0, 50)
        scratch = np.empty(50)
        expected = float(np.abs(means - truth).mean())
        assert estimation_error(means, truth, scratch) == expected

    def test_vector_state_snapshot_restore_round_trip(self):
        rng = np.random.default_rng(7)
        vector = VectorLearningState(9, prior_mean=PRIOR_MEAN)
        vector.update(np.arange(5), rng.uniform(0.0, 3.0, 5), 3)
        snapshot = vector.snapshot()
        restored = VectorLearningState(9, prior_mean=PRIOR_MEAN)
        restored.restore(snapshot)
        np.testing.assert_array_equal(vector.means, restored.means)
        np.testing.assert_array_equal(vector.ucb_values(4.0),
                                      restored.ucb_values(4.0))
        assert vector.total_count == restored.total_count


@st.composite
def batch_instances(draw):
    """Random ``(markets, M)`` game instances with participation masks."""
    seed = draw(st.integers(0, 2**16))
    paper_variant = draw(st.booleans())
    bounded = draw(st.booleans())
    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, 20))
    markets = int(rng.integers(1, 6))
    mask = rng.random((markets, m)) < 0.6
    for r in range(markets):
        if not mask[r].any():
            mask[r, int(rng.integers(0, m))] = True
    return {
        "qualities": rng.uniform(0.05, 1.0, (markets, m)),
        "cost_a": rng.uniform(0.2, 2.0, (markets, m)),
        "cost_b": rng.uniform(0.0, 0.5, (markets, m)),
        "mask": mask,
        "theta": float(rng.uniform(0.01, 0.5)),
        "lam": float(rng.uniform(0.1, 2.0)),
        "omega": float(rng.uniform(1.0, 60.0)),
        "svc_bounds": ((0.0, float(rng.uniform(5.0, 200.0)))
                       if bounded else (0.0, float("inf"))),
        "col_bounds": (0.0, float(rng.uniform(1.0, 50.0))),
        "tau_max": (float(rng.uniform(0.5, 10.0))
                    if bounded else float("inf")),
        "paper_variant": paper_variant,
    }


class TestBatchKernels:
    @given(batch_instances())
    @settings(max_examples=40, deadline=None)
    def test_masked_sums_match_compacted_sums(self, inst):
        a_sums, b_sums, mean_q = masked_stage_sums(
            inst["qualities"], inst["cost_a"], inst["cost_b"],
            inst["mask"])
        for r in range(inst["mask"].shape[0]):
            sel = np.flatnonzero(inst["mask"][r])
            q = inst["qualities"][r, sel]
            a = inst["cost_a"][r, sel]
            b = inst["cost_b"][r, sel]
            np.testing.assert_allclose(
                a_sums[r], np.sum(1.0 / (2.0 * q * a)), rtol=RTOL)
            np.testing.assert_allclose(
                b_sums[r], np.sum(b / (2.0 * a)), rtol=RTOL, atol=1e-12)
            np.testing.assert_allclose(mean_q[r], q.mean(), rtol=RTOL)

    @given(batch_instances())
    @settings(max_examples=40, deadline=None)
    def test_batch_solve_profit_equals_scalar_solve(self, inst):
        services, collections, taus, __ = solve_rounds_batch(
            inst["qualities"], inst["cost_a"], inst["cost_b"],
            inst["mask"], inst["theta"], inst["lam"], inst["omega"],
            inst["svc_bounds"], inst["col_bounds"], inst["tau_max"],
            inst["paper_variant"],
        )
        for r in range(inst["mask"].shape[0]):
            sel = np.flatnonzero(inst["mask"][r])
            q = inst["qualities"][r, sel]
            ref_svc, ref_col, ref_taus = solve_round_fast(
                q, inst["cost_a"][r, sel], inst["cost_b"][r, sel],
                inst["theta"], inst["lam"], inst["omega"],
                inst["svc_bounds"], inst["col_bounds"], inst["tau_max"],
                inst["paper_variant"],
            )
            q_bar = float(q.mean())

            def profit(svc, sensing):
                total = float(np.sum(sensing))
                return (inst["omega"] * math.log1p(q_bar * total)
                        - svc * total)

            # The consumer profit must always agree — candidate ties
            # resolve to equally optimal strategies.
            np.testing.assert_allclose(
                profit(float(services[r]), taus[r, sel]),
                profit(ref_svc, ref_taus), rtol=RTOL, atol=1e-9)
            price_close = abs(float(services[r]) - ref_svc) <= (
                RTOL * max(abs(ref_svc), 1.0))
            if price_close:
                np.testing.assert_allclose(float(collections[r]),
                                           ref_col, rtol=RTOL, atol=1e-9)
                np.testing.assert_allclose(taus[r, sel], ref_taus,
                                           rtol=RTOL, atol=1e-9)
            # Masked-out sellers never sense.
            assert np.all(taus[r, ~inst["mask"][r]] == 0.0)

    @given(st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_stage3_batch_matches_game_reference(self, seed):
        from repro.game.profits import GameInstance
        from repro.game.stackelberg import solve_stage3_batch

        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 12))
        markets = int(rng.integers(1, 6))
        qualities = rng.uniform(0.05, 1.0, m)
        cost_a = rng.uniform(0.2, 2.0, m)
        cost_b = rng.uniform(0.0, 0.5, m)
        prices = rng.uniform(0.5, 20.0, markets)
        game = GameInstance(qualities=qualities, cost_a=cost_a,
                            cost_b=cost_b, theta=0.1, lam=1.0,
                            omega=10.0, max_sensing_time=8.0)
        np.testing.assert_allclose(
            stage3_golden_batch(prices, qualities, cost_a, cost_b, 8.0),
            solve_stage3_batch(game, prices), rtol=RTOL, atol=1e-9)


def _run(backend, *, m, k, seed, num_rounds=80, fault=None):
    config = SimulationConfig(num_sellers=m, num_selected=k, num_pois=4,
                              num_rounds=num_rounds, seed=seed)
    simulator = TradingSimulator(config, backend=backend)
    fault_model = (simulator.fault_model(fault)
                   if fault is not None else None)
    return simulator.run(UCBPolicy(), fault_model=fault_model)


class TestEngineDifferential:
    @pytest.mark.parametrize("m,k", [(12, 3), (20, 4), (6, 6), (9, 1)])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_clean_runs_bit_identical(self, m, k, seed):
        scalar = _run("scalar", m=m, k=k, seed=seed)
        vector = _run("vector", m=m, k=k, seed=seed)
        for field in METRIC_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(scalar, field)),
                np.asarray(getattr(vector, field)), err_msg=field)

    @pytest.mark.parametrize("seed", [2, 5])
    def test_faulty_runs_bit_identical(self, seed):
        fault = FaultSpec(dropout_rate=0.15, corruption_rate=0.05,
                          stall_rate=0.02)
        scalar = _run("scalar", m=15, k=3, seed=seed, fault=fault)
        vector = _run("vector", m=15, k=3, seed=seed, fault=fault)
        for field in METRIC_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(scalar, field)),
                np.asarray(getattr(vector, field)), err_msg=field)

    def test_backend_validation(self):
        config = SimulationConfig(num_sellers=6, num_selected=2,
                                  num_pois=3, num_rounds=10, seed=0)
        with pytest.raises(ConfigurationError, match="backend"):
            TradingSimulator(config, backend="gpu")

    def test_runtime_churn_ledger_digest_identical(self):
        from repro.verify.runtime import (
            RUNTIME_GOLDEN_CASE,
            compute_runtime_golden,
        )

        scalar = compute_runtime_golden(RUNTIME_GOLDEN_CASE,
                                        backend="scalar")
        vector = compute_runtime_golden(RUNTIME_GOLDEN_CASE,
                                        backend="vector")
        assert scalar["ledger_digest"] == vector["ledger_digest"]
        assert scalar["sessions_opened"] == vector["sessions_opened"]
        assert scalar["messages_delivered"] == vector["messages_delivered"]

    def test_runtime_backend_validation(self):
        from repro.runtime.market import MarketRuntime

        config = SimulationConfig(num_sellers=6, num_selected=2,
                                  num_pois=3, num_rounds=10, seed=0)
        with pytest.raises(ConfigurationError, match="backend"):
            MarketRuntime(config, backend="gpu")


class TestKernelsVerifySection:
    def test_check_kernels_passes(self):
        from repro.verify.kernels import check_kernels

        result = check_kernels(seed=0)
        assert result.passed, [c.describe() for c in result.failures()]
        assert {c.name for c in result.checks} == {
            "selection-unit", "batch-stage", "engine-differential",
            "churn-differential", "mutation-canary",
        }

    def test_mutation_canary_detects_kernel_defect(self):
        # The canary inverts the oracle: a 1% bonus inflation must FAIL
        # the selection leg, or the differential suite has no power.
        from repro.kernels import selection
        from repro.verify.kernels import check_selection_kernels

        original = selection._MUTATION_SCALE
        try:
            selection._MUTATION_SCALE = 1.01
            assert not check_selection_kernels(seed=0, trials=10).passed
        finally:
            selection._MUTATION_SCALE = original

    def test_runner_accepts_kernels_section(self):
        from repro.verify.runner import SECTIONS, run_verification

        assert "kernels" in SECTIONS
        report = run_verification(sections=("kernels",))
        assert report.kernels is not None
        assert report.passed
        assert report.oracles is None and report.goldens is None
        payload = report.to_dict()
        assert payload["kernels"]["passed"]
        assert "kernels: PASS" in report.to_text()
