"""Unit tests for the retry/timeout/backoff policy engine."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    PersistenceError,
    RetryBudgetExceededError,
)
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.resilience import (
    NO_DEADLINE,
    NO_RETRY,
    NOOP_POLICY,
    Backoff,
    Deadline,
    ResiliencePolicy,
    RetryPolicy,
    execute_with_policy,
)


class TestBackoff:
    def test_default_is_no_delay(self):
        assert Backoff().delay_s(1) == 0.0
        assert Backoff.none().delay_s(7) == 0.0

    def test_fixed_delay_is_flat(self):
        backoff = Backoff.fixed(0.25)
        assert [backoff.delay_s(k) for k in (1, 2, 5)] == [0.25] * 3

    def test_exponential_growth_and_clamp(self):
        backoff = Backoff.exponential(base_s=0.1, factor=2.0, max_s=0.5)
        assert backoff.delay_s(1) == pytest.approx(0.1)
        assert backoff.delay_s(2) == pytest.approx(0.2)
        assert backoff.delay_s(3) == pytest.approx(0.4)
        assert backoff.delay_s(4) == 0.5  # clamped
        assert backoff.delay_s(10) == 0.5

    def test_jitter_is_deterministic_and_bounded(self):
        backoff = Backoff.exponential(base_s=1.0, factor=1.0, max_s=1.0,
                                      jitter=0.5, seed=3)
        first = backoff.delay_s(1, "persist")
        assert backoff.delay_s(1, "persist") == first  # replayable
        assert 0.5 <= first <= 1.0
        # Different labels/attempts/seeds draw different jitter.
        assert backoff.delay_s(1, "other-label") != first
        assert backoff.delay_s(2, "persist") != first
        different_seed = Backoff.exponential(
            base_s=1.0, factor=1.0, max_s=1.0, jitter=0.5, seed=4
        )
        assert different_seed.delay_s(1, "persist") != first

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="base_s"):
            Backoff(base_s=-1.0)
        with pytest.raises(ConfigurationError, match="factor"):
            Backoff(factor=0.5)
        with pytest.raises(ConfigurationError, match="jitter"):
            Backoff(jitter=1.5)
        with pytest.raises(ConfigurationError, match="attempt"):
            Backoff().delay_s(0)


class TestRetryPolicy:
    def test_default_is_noop(self):
        assert NO_RETRY.is_noop
        assert NO_RETRY.max_attempts == 1

    def test_of_counts_retries_not_attempts(self):
        policy = RetryPolicy.of(2)
        assert policy.max_attempts == 3
        assert not policy.is_noop
        assert RetryPolicy.of(0).is_noop

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="max_retries"):
            RetryPolicy.of(-1)
        with pytest.raises(ConfigurationError, match="retry_on"):
            RetryPolicy(max_attempts=2, retry_on=())


class TestDeadline:
    def test_default_disabled(self):
        assert not NO_DEADLINE.enabled
        assert Deadline(2.5).enabled

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="timeout_s"):
            Deadline(0.0)


class TestResiliencePolicy:
    def test_default_is_noop(self):
        assert NOOP_POLICY.is_noop

    def test_any_armed_piece_breaks_noop(self):
        assert not ResiliencePolicy(retry=RetryPolicy.of(1)).is_noop
        assert not ResiliencePolicy(deadline=Deadline(1.0)).is_noop
        assert not ResiliencePolicy(checkpoint_generations=2).is_noop
        assert not ResiliencePolicy(quarantine=True).is_noop

    def test_generations_validated(self):
        with pytest.raises(ConfigurationError, match="generations"):
            ResiliencePolicy(checkpoint_generations=0)

    def test_from_cli_defaults_to_noop(self):
        assert ResiliencePolicy.from_cli(None, None).is_noop

    def test_from_cli_arms_requested_pieces(self):
        policy = ResiliencePolicy.from_cli(30.0, 2)
        assert policy.deadline.timeout_s == 30.0
        assert policy.retry.max_attempts == 3
        assert policy.retry.backoff.jitter == 0.5


class _Flaky:
    """Fails ``failures`` times, then succeeds."""

    def __init__(self, failures: int,
                 error: BaseException | None = None) -> None:
        self.failures = failures
        self.calls = 0
        self.error = error if error is not None else OSError("disk hiccup")

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class TestExecuteWithPolicy:
    def test_success_is_silent(self):
        registry = MetricsRegistry()
        sink = RingBufferSink()
        result = execute_with_policy(
            lambda: 42, RetryPolicy.of(3), label="op",
            tracer=Tracer(sink), metrics=registry,
        )
        assert result == 42
        assert registry.counters == {}
        assert sink.events == ()

    def test_retries_until_success_with_telemetry(self):
        flaky = _Flaky(failures=2)
        registry = MetricsRegistry()
        sink = RingBufferSink()
        slept: list[float] = []
        result = execute_with_policy(
            flaky, RetryPolicy.of(3, Backoff.fixed(0.125)), label="persist",
            tracer=Tracer(sink), metrics=registry, sleep=slept.append,
        )
        assert result == "ok"
        assert flaky.calls == 3
        assert slept == [0.125, 0.125]
        assert registry.counters["resilience.retry_attempts"] == 2
        events = [e for e in sink.events if e.kind == "retry_attempt"]
        assert [e.payload["attempt"] for e in events] == [1, 2]
        assert events[0].payload["op"] == "persist"
        assert "OSError" in events[0].payload["error"]

    def test_budget_exhaustion_chains_the_last_error(self):
        flaky = _Flaky(failures=99)
        with pytest.raises(RetryBudgetExceededError,
                           match="all 3 attempts") as info:
            execute_with_policy(flaky, RetryPolicy.of(2), label="op",
                                sleep=lambda _s: None)
        assert flaky.calls == 3
        assert isinstance(info.value.__cause__, OSError)

    def test_noop_policy_raises_unwrapped(self):
        # The guard must be invisible: same exception type as unguarded.
        with pytest.raises(OSError, match="disk hiccup"):
            execute_with_policy(_Flaky(failures=1), NO_RETRY, label="op")

    def test_unlisted_exception_propagates_immediately(self):
        flaky = _Flaky(failures=1, error=ValueError("a bug, not a fault"))
        with pytest.raises(ValueError, match="bug"):
            execute_with_policy(flaky, RetryPolicy.of(5), label="op")
        assert flaky.calls == 1

    def test_persistence_error_is_retryable_by_default(self):
        flaky = _Flaky(failures=1, error=PersistenceError("torn write"))
        assert execute_with_policy(flaky, RetryPolicy.of(1),
                                   label="op") == "ok"

    def test_deadline_checked_between_attempts(self):
        # A zero-ish deadline expires before the first retry.
        flaky = _Flaky(failures=99)
        with pytest.raises(DeadlineExceededError, match="deadline"):
            execute_with_policy(
                flaky, RetryPolicy.of(5), label="op",
                deadline=Deadline(1e-9), sleep=lambda _s: None,
            )
        assert flaky.calls == 1
