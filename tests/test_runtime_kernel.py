"""The deterministic discrete-event kernel (:mod:`repro.runtime.kernel`)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import RingBufferSink, Tracer
from repro.runtime import DELIVER, SETTLE, TICK, Agent, EventKernel, Message


class Recorder(Agent):
    """Collects what it saw, for assertions."""

    kind = "recorder"

    def __init__(self, agent_id: str) -> None:
        super().__init__(agent_id)
        self.log: list[tuple[str, str, float]] = []

    def on_message(self, message: Message) -> None:
        self.log.append((message.topic, message.sender, message.time))


class Echo(Agent):
    """Replies to every ping with a pong."""

    kind = "echo"

    def on_message(self, message: Message) -> None:
        if message.topic == "ping":
            self.send(message.sender, "pong")


class TestClockAndScheduling:
    def test_clock_starts_at_zero_and_advances_to_event_times(self):
        kernel = EventKernel()
        assert kernel.clock.now == 0.0
        kernel.schedule(3.0, lambda: None)
        kernel.run()
        assert kernel.clock.now == 3.0

    def test_cannot_schedule_into_the_past(self):
        kernel = EventKernel()
        kernel.schedule(5.0, lambda: None)
        kernel.run()
        with pytest.raises(ConfigurationError, match="past"):
            kernel.schedule(4.0, lambda: None)

    def test_rejects_unknown_phase(self):
        with pytest.raises(ConfigurationError, match="phase"):
            EventKernel().schedule(0.0, lambda: None, phase=7)

    def test_run_until_is_an_inclusive_horizon(self):
        kernel = EventKernel()
        fired: list[float] = []
        for time in (1.0, 2.0, 3.0):
            kernel.schedule(time, lambda t=time: fired.append(t))
        assert kernel.run(until=2.0) == 2
        assert fired == [1.0, 2.0]
        assert kernel.num_pending == 1

    def test_events_run_in_time_order_regardless_of_insertion(self):
        kernel = EventKernel()
        fired: list[float] = []
        for time in (4.0, 1.0, 3.0, 2.0):
            kernel.schedule(time, lambda t=time: fired.append(t))
        kernel.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_phases_order_one_logical_instant(self):
        kernel = EventKernel()
        fired: list[str] = []
        kernel.schedule(1.0, lambda: fired.append("settle"), phase=SETTLE)
        kernel.schedule(1.0, lambda: fired.append("tick"), phase=TICK)
        kernel.schedule(1.0, lambda: fired.append("deliver"),
                        phase=DELIVER)
        kernel.run()
        assert fired == ["tick", "deliver", "settle"]

    def test_same_time_same_phase_runs_in_insertion_order(self):
        kernel = EventKernel()
        fired: list[int] = []
        for i in range(5):
            kernel.schedule(1.0, lambda i=i: fired.append(i))
        kernel.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_two_kernels_fed_the_same_schedule_agree(self):
        def drive(kernel: EventKernel) -> list[str]:
            fired: list[str] = []
            for label, time, phase in (("a", 2.0, TICK), ("b", 1.0, SETTLE),
                                       ("c", 1.0, TICK), ("d", 2.0, SETTLE),
                                       ("e", 1.0, DELIVER)):
                kernel.schedule(
                    time, lambda la=label: fired.append(la), phase=phase
                )
            kernel.run()
            return fired

        assert drive(EventKernel()) == drive(EventKernel())

    def test_step_pops_one_event(self):
        kernel = EventKernel()
        fired: list[int] = []
        kernel.schedule(0.0, lambda: fired.append(1))
        kernel.schedule(0.0, lambda: fired.append(2))
        assert kernel.step() is True
        assert fired == [1]
        assert kernel.step() is True
        assert kernel.step() is False


class TestAgentsAndMessages:
    def test_register_lookup_and_deregister(self):
        kernel = EventKernel()
        agent = kernel.register(Recorder("r1"))
        assert kernel.has_agent("r1")
        assert kernel.agent("r1") is agent
        assert agent.kernel is kernel
        kernel.deregister("r1")
        assert not kernel.has_agent("r1")
        with pytest.raises(ConfigurationError, match="no agent"):
            kernel.agent("r1")

    def test_duplicate_registration_rejected(self):
        kernel = EventKernel()
        kernel.register(Recorder("r1"))
        with pytest.raises(ConfigurationError, match="already registered"):
            kernel.register(Recorder("r1"))

    def test_unattached_agent_cannot_send(self):
        agent = Recorder("loose")
        with pytest.raises(ConfigurationError, match="not registered"):
            agent.send("anyone", "hello")

    def test_message_delivery_and_reply(self):
        kernel = EventKernel()
        recorder = kernel.register(Recorder("r1"))
        kernel.register(Echo("e1"))
        kernel.send("r1", "e1", "ping")
        kernel.run()
        assert recorder.log == [("pong", "e1", 0.0)]
        assert kernel.messages_delivered == 2

    def test_delayed_message_arrives_later(self):
        kernel = EventKernel()
        recorder = kernel.register(Recorder("r1"))
        sender = kernel.register(Recorder("r2"))
        sender.send("r1", "later", delay=5.0, detail="x")
        kernel.run()
        assert recorder.log == [("later", "r2", 5.0)]
        assert recorder.inbox[0].payload == {"detail": "x"}
        assert kernel.clock.now == 5.0

    def test_negative_delay_rejected(self):
        kernel = EventKernel()
        kernel.register(Recorder("r1"))
        with pytest.raises(ConfigurationError, match="delay"):
            kernel.send("r1", "r1", "oops", delay=-1.0)

    def test_message_to_departed_agent_is_dropped(self):
        kernel = EventKernel()
        kernel.register(Recorder("r1"))
        gone = kernel.register(Recorder("gone"))
        kernel.send("r1", "gone", "collect")
        kernel.deregister("gone")
        kernel.run()
        assert gone.log == []
        assert kernel.messages_dropped == 1
        assert kernel.messages_delivered == 0


class TestLifecycleTracing:
    def test_spawn_depart_and_delivery_events(self):
        ring = RingBufferSink()
        kernel = EventKernel(Tracer(ring))
        kernel.register(Recorder("r1"), slot=3)
        kernel.register(Echo("e1"))
        kernel.send("r1", "e1", "ping")
        kernel.run()
        kernel.deregister("r1", slot=3)

        spawns = ring.of_kind("agent_spawn")
        assert [e.payload["agent"] for e in spawns] == ["r1", "e1"]
        assert spawns[0].payload["agent_kind"] == "recorder"
        assert spawns[0].payload["slot"] == 3
        assert "slot" not in spawns[1].payload

        delivered = ring.of_kind("message_delivered")
        assert [e.payload["topic"] for e in delivered] == ["ping", "pong"]

        departs = ring.of_kind("agent_depart")
        assert [e.payload["agent"] for e in departs] == ["r1"]
        assert departs[0].payload["agent_kind"] == "recorder"

    def test_tracing_does_not_change_execution_order(self):
        def drive(kernel: EventKernel) -> list[str]:
            recorder = kernel.register(Recorder("r1"))
            kernel.register(Echo("e1"))
            kernel.send("r1", "e1", "ping")
            kernel.schedule(1.0, lambda: kernel.send("r1", "e1", "ping"))
            kernel.run()
            return [topic for topic, _sender, _time in recorder.log]

        assert drive(EventKernel()) == drive(
            EventKernel(Tracer(RingBufferSink()))
        )
