"""Unit tests for the benchmark history store and regression gates.

Exercises :class:`~repro.obs.BenchStore` round-trips (append, reload,
corrupt-file handling), the :func:`~repro.obs.compare` verdict logic,
and the ``repro bench`` CLI — including a mutation-style test that
plants a synthetic slowdown and proves ``repro bench compare`` exits
non-zero.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError, PersistenceError
from repro.obs import BenchRecord, BenchStore, compare
from repro.obs.benchstore import (
    BENCH_SCHEMA_VERSION,
    current_git_sha,
    machine_tag,
)


def _record(name="engine.scalar.m300", rounds_per_s=1000.0,
            peak_mb=120.0, baseline=False, timestamp=1.0, **kwargs):
    return BenchRecord(name=name, rounds_per_s=rounds_per_s,
                       wall_s=0.5, peak_mb=peak_mb, baseline=baseline,
                       timestamp=timestamp, **kwargs)


class TestBenchRecord:
    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            _record(name="")

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError, match="negative"):
            _record(rounds_per_s=-1.0)

    def test_measure_rejects_nonpositive_wall(self):
        with pytest.raises(ConfigurationError, match="non-positive"):
            BenchRecord.measure(name="x", rounds=100, wall_s=0.0)

    def test_measure_stamps_environment(self):
        record = BenchRecord.measure(name="x", rounds=100, wall_s=2.0,
                                     sellers=300, selected=10)
        assert record.rounds_per_s == pytest.approx(50.0)
        assert record.git_sha == current_git_sha()
        assert record.machine == machine_tag()
        assert record.timestamp > 0.0
        assert not record.baseline

    def test_dict_round_trip(self):
        original = _record(sellers=300, selected=10, rounds=500,
                           scale="small", extra={"workers": 4})
        clone = BenchRecord.from_dict(original.to_dict(), what="test")
        assert clone == original

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(PersistenceError, match="malformed"):
            BenchRecord.from_dict({"name": "x"}, what="test")
        with pytest.raises(PersistenceError, match="JSON object"):
            BenchRecord.from_dict(["not", "a", "dict"], what="test")


class TestBenchStore:
    def test_append_reload_round_trip(self, tmp_path):
        path = tmp_path / "BENCH.json"
        store = BenchStore(path)
        store.append(_record(baseline=True, timestamp=1.0))
        store.append(_record(rounds_per_s=1100.0, timestamp=2.0))
        store.append(_record(name="sweep.serial", timestamp=3.0))

        reloaded = BenchStore(path)
        assert len(reloaded) == 3
        assert reloaded.names() == ["engine.scalar.m300", "sweep.serial"]
        assert reloaded.records("sweep.serial")[0].name == "sweep.serial"
        latest = reloaded.latest("engine.scalar.m300")
        assert latest is not None
        assert latest.rounds_per_s == pytest.approx(1100.0)
        baseline = reloaded.baseline("engine.scalar.m300")
        assert baseline is not None
        assert baseline.baseline
        assert reloaded.baseline("sweep.serial") is None

    def test_newest_baseline_wins(self, tmp_path):
        store = BenchStore(tmp_path / "BENCH.json")
        store.append(_record(rounds_per_s=500.0, baseline=True))
        store.append(_record(rounds_per_s=900.0, baseline=True))
        baseline = store.baseline("engine.scalar.m300")
        assert baseline.rounds_per_s == pytest.approx(900.0)

    def test_missing_file_starts_empty(self, tmp_path):
        store = BenchStore(tmp_path / "absent.json")
        assert len(store) == 0
        assert store.names() == []
        assert store.latest("anything") is None

    def test_corrupt_file_raises_persistence_error(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text('{"schema_version": 1, "records": [{"na')
        with pytest.raises(PersistenceError, match="corrupt"):
            BenchStore(path)

    def test_non_object_payload_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError, match="JSON object"):
            BenchStore(path)

    def test_wrong_schema_version_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(
            {"schema_version": BENCH_SCHEMA_VERSION + 1, "records": []}
        ))
        with pytest.raises(PersistenceError, match="schema version"):
            BenchStore(path)

    def test_records_not_a_list_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(
            {"schema_version": 1, "records": {"a": 1}}
        ))
        with pytest.raises(PersistenceError, match="must be a list"):
            BenchStore(path)

    def test_malformed_record_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(
            {"schema_version": 1, "records": [{"name": "x"}]}
        ))
        with pytest.raises(PersistenceError, match="malformed"):
            BenchStore(path)


class TestCompare:
    def _store(self, tmp_path, *records):
        store = BenchStore(tmp_path / "BENCH.json")
        for record in records:
            store.append(record)
        return store

    def test_ok_within_thresholds(self, tmp_path):
        store = self._store(
            tmp_path,
            _record(rounds_per_s=1000.0, peak_mb=100.0, baseline=True),
            _record(rounds_per_s=900.0, peak_mb=110.0, timestamp=2.0),
        )
        verdict = compare(store)
        assert verdict.ok
        (result,) = verdict.results
        assert result.speed_ratio == pytest.approx(0.9)
        assert result.memory_ratio == pytest.approx(1.1)
        assert not result.regressed
        assert "verdict: OK" in verdict.to_text()

    def test_slowdown_regression(self, tmp_path):
        store = self._store(
            tmp_path,
            _record(rounds_per_s=1000.0, baseline=True),
            _record(rounds_per_s=700.0, timestamp=2.0),
        )
        verdict = compare(store)
        assert not verdict.ok
        (result,) = verdict.results
        assert result.regressed
        assert any("rounds/sec dropped" in r for r in result.regressions)
        assert "REGRESSION DETECTED" in verdict.to_text()

    def test_memory_regression(self, tmp_path):
        store = self._store(
            tmp_path,
            _record(rounds_per_s=1000.0, peak_mb=100.0, baseline=True),
            _record(rounds_per_s=1000.0, peak_mb=140.0, timestamp=2.0),
        )
        verdict = compare(store)
        assert not verdict.ok
        (result,) = verdict.results
        assert any("peak memory grew" in r for r in result.regressions)

    def test_missing_memory_side_skips_memory_gate(self, tmp_path):
        store = self._store(
            tmp_path,
            _record(rounds_per_s=1000.0, peak_mb=None, baseline=True),
            _record(rounds_per_s=1000.0, peak_mb=900.0, timestamp=2.0),
        )
        verdict = compare(store)
        assert verdict.ok
        assert verdict.results[0].memory_ratio is None

    def test_unmatched_names_never_fail(self, tmp_path):
        store = self._store(
            tmp_path,
            _record(name="only.baseline", baseline=True),
            _record(name="only.measurement", timestamp=2.0),
        )
        verdict = compare(store)
        assert verdict.ok
        assert set(verdict.unmatched) == {"only.baseline",
                                          "only.measurement"}
        assert verdict.results == ()

    def test_relaxed_threshold_rides_out_noise(self, tmp_path):
        store = self._store(
            tmp_path,
            _record(rounds_per_s=1000.0, baseline=True),
            _record(rounds_per_s=700.0, timestamp=2.0),
        )
        assert not compare(store).ok
        assert compare(store, max_slowdown=0.5).ok

    def test_rejects_nonsense_thresholds(self, tmp_path):
        store = self._store(tmp_path)
        with pytest.raises(ConfigurationError, match="max_slowdown"):
            compare(store, max_slowdown=1.0)
        with pytest.raises(ConfigurationError,
                           match="max_memory_growth"):
            compare(store, max_memory_growth=-0.1)

    def test_verdict_dict_is_json_and_versioned(self, tmp_path):
        store = self._store(
            tmp_path,
            _record(baseline=True),
            _record(timestamp=2.0),
        )
        payload = compare(store).to_dict()
        json.dumps(payload)
        assert payload["schema"] == 1
        assert payload["ok"] is True


class TestBenchCli:
    def test_record_history_compare_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "BENCH.json")
        base = ["bench", "record", "--store", store,
                "--name", "engine.tiny", "--sellers", "16",
                "--selected", "3", "--rounds", "40"]
        assert main([*base, "--baseline"]) == 0
        assert main(base) == 0
        capsys.readouterr()

        assert main(["bench", "history", store]) == 0
        history = capsys.readouterr().out
        assert "engine.tiny" in history
        assert "baseline" in history

        # Two live 40-round recordings can differ by well over the
        # default 20% floor on a loaded host; this test is about the
        # record/history/compare plumbing, so gate at the same 2x
        # threshold CI's hard gate uses.  The planted-slowdown test
        # below covers the gating logic with synthetic records.
        assert main(["bench", "compare", store,
                     "--max-slowdown", "0.5"]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_compare_exits_nonzero_on_planted_slowdown(self, capsys,
                                                       tmp_path):
        # Mutation-style check: a store whose newest measurement is a
        # synthetic 2x slowdown over its committed baseline must turn
        # the CLI gate red.
        path = tmp_path / "BENCH.json"
        store = BenchStore(path)
        store.append(_record(rounds_per_s=1000.0, baseline=True))
        store.append(_record(rounds_per_s=500.0, timestamp=2.0))
        assert main(["bench", "compare", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION DETECTED" in out
        assert "rounds/sec dropped" in out

    def test_compare_threshold_flag_loosens_gate(self, capsys,
                                                 tmp_path):
        path = tmp_path / "BENCH.json"
        store = BenchStore(path)
        store.append(_record(rounds_per_s=1000.0, baseline=True))
        store.append(_record(rounds_per_s=600.0, timestamp=2.0))
        assert main(["bench", "compare", str(path)]) == 1
        capsys.readouterr()
        assert main(["bench", "compare", str(path),
                     "--max-slowdown", "0.5"]) == 0

    def test_compare_writes_report(self, capsys, tmp_path):
        path = tmp_path / "BENCH.json"
        store = BenchStore(path)
        store.append(_record(baseline=True))
        store.append(_record(timestamp=2.0))
        report = tmp_path / "verdict.json"
        assert main(["bench", "compare", str(path),
                     "--report", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert payload["schema"] == 1
        assert payload["ok"] is True

    def test_compare_corrupt_store_fails_cleanly(self, capsys,
                                                 tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("{not json")
        assert main(["bench", "compare", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_history_missing_store_reports_empty(self, capsys,
                                                 tmp_path):
        assert main(["bench", "history",
                     str(tmp_path / "absent.json")]) == 0
        assert "no records" in capsys.readouterr().out
