"""Unit tests for the general CUCB oracles and the oracle policy."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.bandits.cucb import (
    GreedyKnapsackOracle,
    OraclePolicy,
    TopKOracle,
    WeightedCoverageOracle,
)
from repro.bandits.environment import CMABEnvironment
from repro.bandits.policies import UCBPolicy
from repro.core.state import LearningState
from repro.exceptions import ConfigurationError, SelectionError
from repro.quality.distributions import TruncatedGaussianQuality


class TestTopKOracle:
    def test_matches_top_k(self):
        weights = np.array([0.1, 0.9, 0.5, 0.7])
        np.testing.assert_array_equal(
            TopKOracle().select(weights, 2), [1, 3]
        )

    def test_rejects_bad_k(self):
        with pytest.raises(SelectionError):
            TopKOracle().select(np.array([0.5]), 2)

    def test_rejects_empty_weights(self):
        with pytest.raises(SelectionError, match="non-empty"):
            TopKOracle().select(np.array([]), 1)


class TestWeightedCoverageOracle:
    def test_covers_before_exploiting(self):
        # Seller 0 is the only one reaching PoI 0 but has tiny weight.
        matrix = np.zeros((4, 3), dtype=bool)
        matrix[0, 0] = True
        matrix[1:, 1:] = True
        oracle = WeightedCoverageOracle(matrix)
        weights = np.array([0.01, 0.9, 0.8, 0.7])
        selected = oracle.select(weights, 2)
        assert 0 in selected

    def test_fills_by_weight_once_covered(self):
        matrix = np.ones((5, 2), dtype=bool)  # anyone covers everything
        oracle = WeightedCoverageOracle(matrix)
        weights = np.array([0.5, 0.9, 0.1, 0.8, 0.2])
        selected = oracle.select(weights, 3)
        # One cover pick (the max weight), then the next two by weight.
        np.testing.assert_array_equal(selected, [0, 1, 3])

    def test_handles_infinite_weights(self):
        matrix = np.ones((3, 1), dtype=bool)
        oracle = WeightedCoverageOracle(matrix)
        weights = np.array([np.inf, 0.5, 0.2])
        selected = oracle.select(weights, 2)
        assert 0 in selected

    def test_rejects_mismatched_weights(self):
        oracle = WeightedCoverageOracle(np.ones((3, 2), dtype=bool))
        with pytest.raises(SelectionError, match="does not match"):
            oracle.select(np.ones(4), 2)

    def test_rejects_bad_matrix(self):
        with pytest.raises(ConfigurationError):
            WeightedCoverageOracle(np.ones(3, dtype=bool))


class TestGreedyKnapsackOracle:
    COSTS = np.array([1.0, 2.0, 3.0, 4.0, 5.0])

    def test_respects_budget(self):
        oracle = GreedyKnapsackOracle(self.COSTS, budget=5.0)
        weights = np.array([0.9, 0.8, 0.7, 0.6, 0.5])
        selected = oracle.select(weights, 5)
        assert self.COSTS[selected].sum() <= 5.0

    def test_respects_k(self):
        oracle = GreedyKnapsackOracle(np.ones(6), budget=100.0)
        selected = oracle.select(np.linspace(0.1, 0.9, 6), 2)
        assert selected.size == 2

    def test_greedy_density_order(self):
        # Weights equal -> cheapest sellers picked first.
        oracle = GreedyKnapsackOracle(self.COSTS, budget=6.0)
        selected = oracle.select(np.ones(5), 5)
        np.testing.assert_array_equal(selected, [0, 1, 2])

    def test_never_selects_nothing(self):
        oracle = GreedyKnapsackOracle(self.COSTS, budget=0.5)
        selected = oracle.select(np.ones(5), 3)
        np.testing.assert_array_equal(selected, [0])

    def test_near_optimality_against_brute_force(self):
        # Greedy-by-density (+ the always-recruit rule) attains at least
        # half the budget-feasible optimum on random small instances.
        rng = np.random.default_rng(5)
        for __ in range(25):
            m = 7
            costs = rng.uniform(0.5, 3.0, m)
            weights = rng.uniform(0.1, 1.0, m)
            budget = float(rng.uniform(2.0, 6.0))
            oracle = GreedyKnapsackOracle(costs, budget)
            selected = oracle.select(weights, m)
            achieved = float(weights[selected].sum())
            best = 0.0
            for r in range(1, m + 1):
                for subset in itertools.combinations(range(m), r):
                    subset = list(subset)
                    if costs[subset].sum() <= budget:
                        best = max(best, float(weights[subset].sum()))
            assert achieved >= 0.5 * best - 1e-9

    def test_rejects_bad_costs(self):
        with pytest.raises(ConfigurationError, match="costs"):
            GreedyKnapsackOracle(np.array([1.0, 0.0]), budget=1.0)

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError, match="budget"):
            GreedyKnapsackOracle(np.ones(3), budget=0.0)


class TestCanonicalSelectionDtype:
    """Every oracle returns an ascending ``np.int64`` array.

    Regression: the coverage and knapsack oracles used to build their
    selections from python ``int``s, yielding platform-default dtype
    arrays whose serialized checkpoints and cross-backend comparisons
    could differ from the ``np.int64`` the top-K path produces.
    """

    def _assert_canonical(self, selected):
        assert isinstance(selected, np.ndarray)
        assert selected.dtype == np.int64
        np.testing.assert_array_equal(selected, np.sort(selected))

    def test_top_k_oracle(self):
        self._assert_canonical(
            TopKOracle().select(np.array([0.4, 0.9, 0.1, 0.7]), 2))

    def test_coverage_oracle_cover_and_fill_paths(self):
        matrix = np.zeros((5, 2), dtype=bool)
        matrix[0, 0] = True
        matrix[1, 1] = True
        oracle = WeightedCoverageOracle(matrix)
        # k=4 forces the by-weight fill path after the two cover picks.
        self._assert_canonical(
            oracle.select(np.array([0.1, 0.2, 0.9, 0.8, 0.7]), 4))

    def test_knapsack_oracle_greedy_and_fallback_paths(self):
        costs = np.array([1.0, 2.0, 3.0])
        self._assert_canonical(
            GreedyKnapsackOracle(costs, budget=4.0).select(np.ones(3), 3))
        # Infeasible budget: the always-recruit fallback path.
        self._assert_canonical(
            GreedyKnapsackOracle(costs, budget=0.5).select(np.ones(3), 2))


class TestOraclePolicy:
    def test_top_k_oracle_reproduces_ucb_policy(self):
        qualities = np.array([0.9, 0.7, 0.5, 0.3, 0.15, 0.05])
        model = TruncatedGaussianQuality(qualities)
        env_kwargs = dict(num_pois=4, k=2, num_rounds=250, seed=7)
        ucb_run = CMABEnvironment(model, **env_kwargs).run(UCBPolicy())
        oracle_run = CMABEnvironment(model, **env_kwargs).run(
            OraclePolicy(TopKOracle(), name="CMAB-HS")
        )
        # Same name -> same policy RNG stream -> identical runs.
        np.testing.assert_array_equal(ucb_run.selection_counts,
                                      oracle_run.selection_counts)
        assert ucb_run.realized_revenue == oracle_run.realized_revenue

    def test_round_zero_selects_all(self, rng):
        policy = OraclePolicy(TopKOracle())
        policy.reset(6, 2, 50)
        np.testing.assert_array_equal(
            policy.select(0, LearningState(6), rng), np.arange(6)
        )

    def test_default_name_mentions_oracle(self):
        policy = OraclePolicy(TopKOracle())
        assert policy.name == "cucb:TopKOracle"

    def test_knapsack_policy_end_to_end(self):
        qualities = np.array([0.9, 0.8, 0.6, 0.4, 0.2])
        costs = np.array([3.0, 1.0, 1.0, 1.0, 1.0])
        model = TruncatedGaussianQuality(qualities)
        policy = OraclePolicy(
            GreedyKnapsackOracle(costs, budget=3.0),
            name="knapsack",
            initial_full_exploration=False,
        )
        environment = CMABEnvironment(model, num_pois=4, k=3,
                                      num_rounds=400, seed=2)
        result = environment.run(policy)
        # Seller 0 (cost 3) can never join two others within budget 3;
        # after learning, the cheap good sellers 1 and 2 dominate.
        assert result.selection_counts[1] > result.selection_counts[0]
        assert result.selection_counts[2] > result.selection_counts[4]

    def test_rejects_bad_coefficient(self):
        with pytest.raises(ConfigurationError, match="coefficient"):
            OraclePolicy(TopKOracle(), exploration_coefficient=0.0)

    def test_knapsack_policy_runs_through_trading_engine(self):
        # Budget-constrained selection can return fewer than K sellers;
        # the full trading engine must handle the variable set size.
        from repro.sim.config import SimulationConfig
        from repro.sim.engine import TradingSimulator

        config = SimulationConfig(num_sellers=12, num_selected=4,
                                  num_pois=3, num_rounds=80, seed=9)
        simulator = TradingSimulator(config)
        costs = np.linspace(1.0, 4.0, 12)
        policy = OraclePolicy(
            GreedyKnapsackOracle(costs, budget=6.0), name="knapsack"
        )
        run = simulator.run(policy)
        assert run.num_rounds == 80
        assert np.all(np.isfinite(run.consumer_profit))
        assert np.all(run.total_sensing_time >= 0.0)
