"""Crash-safe checkpoint/resume: resumed runs equal uninterrupted ones."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bandits import (
    OptimalPolicy,
    RandomPolicy,
    SlidingWindowUCBPolicy,
    ThompsonSamplingPolicy,
    UCBPolicy,
)
from repro.exceptions import ConfigurationError, PersistenceError
from repro.faults import FaultLog, FaultSpec
from repro.sim import SimulationConfig, TradingSimulator
from repro.sim.replication import replicate_comparison

CONFIG = SimulationConfig(num_sellers=12, num_selected=3, num_rounds=90,
                          seed=4)

ALL_FIELDS = (
    "realized_revenue", "expected_revenue", "regret", "consumer_profit",
    "platform_profit", "seller_profit_mean", "service_price",
    "collection_price", "total_sensing_time", "selection_counts",
    "estimation_error",
)


def assert_runs_identical(reference, resumed):
    assert reference.policy_name == resumed.policy_name
    for field in ALL_FIELDS:
        np.testing.assert_array_equal(
            getattr(reference, field), getattr(resumed, field),
            err_msg=field,
        )


class TestEngineResume:
    def run_interrupted(self, make_policy, tmp_path, *, spec=None,
                        checkpoint_every=20):
        """An uninterrupted reference vs a checkpoint-resumed run."""
        path = tmp_path / "run.npz"

        simulator = TradingSimulator(CONFIG)
        model = simulator.fault_model(spec) if spec is not None else None
        reference = simulator.run(make_policy(), fault_model=model)
        reference_log = None
        if spec is not None:
            reference_log = FaultLog()
            TradingSimulator(CONFIG).run(
                make_policy(),
                fault_model=TradingSimulator(CONFIG).fault_model(spec),
                fault_log=reference_log,
            )

        # "crash": a fresh process writes checkpoints but we discard its
        # result, keeping only the checkpoint file...
        crashed = TradingSimulator(CONFIG)
        crashed.run(
            make_policy(),
            fault_model=(crashed.fault_model(spec)
                         if spec is not None else None),
            checkpoint_path=path, checkpoint_every=checkpoint_every,
        )
        assert path.exists()

        # ...and a third fresh process resumes from it.
        resumed_sim = TradingSimulator(CONFIG)
        resumed_log = FaultLog() if spec is not None else None
        resumed = resumed_sim.run(
            make_policy(),
            fault_model=(resumed_sim.fault_model(spec)
                         if spec is not None else None),
            fault_log=resumed_log,
            checkpoint_path=path, resume=True,
        )
        return reference, resumed, reference_log, resumed_log

    def test_resume_equals_uninterrupted_clean(self, tmp_path):
        reference, resumed, _, _ = self.run_interrupted(UCBPolicy, tmp_path)
        assert_runs_identical(reference, resumed)

    def test_resume_equals_uninterrupted_with_faults(self, tmp_path):
        spec = FaultSpec(dropout_rate=0.2, corruption_rate=0.05)
        reference, resumed, ref_log, res_log = self.run_interrupted(
            UCBPolicy, tmp_path, spec=spec
        )
        assert_runs_identical(reference, resumed)
        assert ref_log.summary() == res_log.summary()

    def test_resume_with_stateful_policies(self, tmp_path):
        # Thompson keeps Beta posteriors, the sliding window keeps a
        # deque — both must survive the snapshot/restore round trip.
        for make_policy in (ThompsonSamplingPolicy,
                            lambda: SlidingWindowUCBPolicy(window=25)):
            reference, resumed, _, _ = self.run_interrupted(
                make_policy, tmp_path
            )
            assert_runs_identical(reference, resumed)

    def test_missing_checkpoint_starts_fresh(self, tmp_path):
        simulator = TradingSimulator(CONFIG)
        reference = TradingSimulator(CONFIG).run(UCBPolicy())
        resumed = simulator.run(
            UCBPolicy(), checkpoint_path=tmp_path / "absent.npz",
            resume=True,
        )
        assert_runs_identical(reference, resumed)

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        path = tmp_path / "run.npz"
        simulator = TradingSimulator(CONFIG)
        simulator.run(UCBPolicy(), checkpoint_path=path,
                      checkpoint_every=20)
        other_policy = TradingSimulator(CONFIG)
        with pytest.raises(PersistenceError, match="policy_name"):
            other_policy.run(RandomPolicy(), checkpoint_path=path,
                             resume=True)
        other_config = TradingSimulator(CONFIG.derive(seed=99))
        with pytest.raises(PersistenceError, match="seed"):
            other_config.run(UCBPolicy(), checkpoint_path=path,
                             resume=True)

    def test_resume_rejects_fault_spec_mismatch(self, tmp_path):
        path = tmp_path / "run.npz"
        simulator = TradingSimulator(CONFIG)
        simulator.run(
            UCBPolicy(),
            fault_model=simulator.fault_model(FaultSpec(dropout_rate=0.2)),
            checkpoint_path=path, checkpoint_every=20,
        )
        with pytest.raises(PersistenceError, match="fault_spec"):
            TradingSimulator(CONFIG).run(UCBPolicy(), checkpoint_path=path,
                                         resume=True)

    def test_truncated_checkpoint_raises(self, tmp_path):
        path = tmp_path / "run.npz"
        simulator = TradingSimulator(CONFIG)
        simulator.run(UCBPolicy(), checkpoint_path=path,
                      checkpoint_every=20)
        content = path.read_bytes()
        path.write_bytes(content[: len(content) // 2])
        with pytest.raises(PersistenceError, match="corrupt"):
            TradingSimulator(CONFIG).run(UCBPolicy(), checkpoint_path=path,
                                         resume=True)

    def test_checkpointing_requires_a_path(self):
        simulator = TradingSimulator(CONFIG)
        with pytest.raises(ConfigurationError, match="checkpoint_path"):
            simulator.run(UCBPolicy(), checkpoint_every=10)
        with pytest.raises(ConfigurationError, match="checkpoint_path"):
            simulator.run(UCBPolicy(), resume=True)


class TestSweepResume:
    @staticmethod
    def factory(qualities):
        return [OptimalPolicy(qualities), UCBPolicy(), RandomPolicy()]

    def test_killed_sweep_resumes_to_identical_result(self, tmp_path):
        config = SimulationConfig(num_sellers=12, num_selected=3,
                                  num_rounds=50)
        path = tmp_path / "sweep.json"
        reference = replicate_comparison(config, self.factory, num_seeds=4)

        # Full sweep with checkpointing, then emulate a crash after seed
        # 2 by truncating the checkpoint to the first two completed
        # seeds (records are keyed per seed).
        replicate_comparison(config, self.factory, num_seeds=4,
                             checkpoint_path=path)
        payload = json.loads(path.read_text())
        kept = payload["completed_seeds"][:2]
        payload["completed_seeds"] = kept
        payload["seed_samples"] = {
            str(seed): payload["seed_samples"][str(seed)] for seed in kept
        }
        payload["seed_durations"] = {
            str(seed): payload["seed_durations"][str(seed)] for seed in kept
        }
        payload.pop("checksum", None)  # hand-edit invalidates it
        path.write_text(json.dumps(payload))

        resumed = replicate_comparison(config, self.factory, num_seeds=4,
                                       checkpoint_path=path, resume=True)
        assert resumed.seeds == reference.seeds
        for policy in reference.policy_names():
            for metric in ("total_revenue", "expected_revenue", "regret",
                           "mean_poc", "mean_pop", "mean_pos"):
                assert (reference.metric(policy, metric)
                        == resumed.metric(policy, metric)), (policy, metric)

    def test_resume_rejects_different_sweep(self, tmp_path):
        config = SimulationConfig(num_sellers=12, num_selected=3,
                                  num_rounds=40)
        path = tmp_path / "sweep.json"
        replicate_comparison(config, self.factory, num_seeds=2,
                             checkpoint_path=path)
        with pytest.raises(PersistenceError, match="different sweep"):
            replicate_comparison(config, self.factory, num_seeds=2,
                                 first_seed=7, checkpoint_path=path,
                                 resume=True)
        other = config.derive(num_rounds=41)
        with pytest.raises(PersistenceError, match="different sweep"):
            replicate_comparison(other, self.factory, num_seeds=2,
                                 checkpoint_path=path, resume=True)

    def test_faulty_sweep_checkpoints_and_resumes(self, tmp_path):
        config = SimulationConfig(num_sellers=12, num_selected=3,
                                  num_rounds=40)
        spec = FaultSpec(dropout_rate=0.2, corruption_rate=0.05)
        path = tmp_path / "sweep.json"
        reference = replicate_comparison(config, self.factory, num_seeds=3,
                                         fault_spec=spec)
        replicate_comparison(config, self.factory, num_seeds=3,
                             fault_spec=spec, checkpoint_path=path)
        payload = json.loads(path.read_text())
        kept = payload["completed_seeds"][:1]
        payload["completed_seeds"] = kept
        payload["seed_samples"] = {
            str(seed): payload["seed_samples"][str(seed)] for seed in kept
        }
        payload["seed_durations"] = {
            str(seed): payload["seed_durations"][str(seed)] for seed in kept
        }
        payload.pop("checksum", None)  # hand-edit invalidates it
        path.write_text(json.dumps(payload))
        resumed = replicate_comparison(config, self.factory, num_seeds=3,
                                       fault_spec=spec,
                                       checkpoint_path=path, resume=True)
        for policy in reference.policy_names():
            assert (reference.metric(policy, "total_revenue")
                    == resumed.metric(policy, "total_revenue"))
        # the spec is part of the fingerprint: a clean resume must refuse
        with pytest.raises(PersistenceError, match="different sweep"):
            replicate_comparison(config, self.factory, num_seeds=3,
                                 checkpoint_path=path, resume=True)
