"""Tests for the chaos harness: drills pass, and the oracle has teeth.

The harness asserts recovered sweeps are bit-identical to fault-free
goldens; the mutation test here disables checkpoint checksumming and
demands the drill *fail*, proving the oracle detects broken recovery
rather than rubber-stamping it.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.faults import FaultSpec
from repro.obs import MetricsRegistry
from repro.resilience.chaos import (
    CHAOS_FAULT_KINDS,
    ChaosConfig,
    ChaosReport,
    _plan_round,
    run_chaos,
)
from repro.sim import persistence
from repro.sim.rng import seeded_generator

_DISK = {"corrupt_checkpoint", "tamper_checkpoint", "truncate_checkpoint"}


def round_plans(config: ChaosConfig) -> list[list[str]]:
    """Replay the planner's draws without running any sweeps."""
    plans = []
    for round_index in range(config.rounds):
        rng = seeded_generator([config.seed, round_index])
        if rng.random() < 0.5:  # same draw order as _run_round
            FaultSpec.random(rng)
        plans.append(_plan_round(rng, config))
    return plans


def find_seed(predicate, *, rounds: int = 2, budget: int = 3,
              include_process_faults: bool = False) -> ChaosConfig:
    """The first master seed whose fault plans satisfy ``predicate``."""
    for seed in range(64):
        config = ChaosConfig(
            seed=seed, rounds=rounds, budget=budget,
            include_process_faults=include_process_faults,
        )
        if predicate(round_plans(config)):
            return config
    raise AssertionError("no satisfying seed in 0..63")  # pragma: no cover


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="rounds"):
            ChaosConfig(rounds=0)
        with pytest.raises(ConfigurationError, match="budget"):
            ChaosConfig(budget=-1)

    def test_planner_respects_process_fault_gate(self):
        config = ChaosConfig(rounds=8, budget=3,
                             include_process_faults=False)
        drawn = {kind for plan in round_plans(config) for kind in plan}
        assert drawn <= set(CHAOS_FAULT_KINDS) - {"worker_crash",
                                                  "worker_stall"}

    def test_plans_are_replayable(self):
        config = ChaosConfig(seed=7, rounds=4)
        assert round_plans(config) == round_plans(config)


class TestChaosRun:
    def test_in_process_drill_recovers_bit_identically(self):
        registry = MetricsRegistry()
        config = ChaosConfig(seed=0, rounds=2, budget=2,
                             include_process_faults=False)
        report = run_chaos(config, metrics=registry)
        assert report.passed
        assert report.num_violations == 0
        assert report.num_faults_applied >= 1
        assert registry.counters["chaos.rounds"] == 2
        assert "chaos.violations" not in registry.counters

    def test_process_fault_drill_recovers(self):
        config = find_seed(
            lambda plans: "worker_crash" in plans[0],
            rounds=1, include_process_faults=True,
        )
        report = run_chaos(config)
        assert report.passed
        crash_entries = [
            fault for entry in report.rounds for fault in entry.applied
            if fault["kind"] == "worker_crash"
        ]
        assert any(fault.get("fired") for fault in crash_entries)

    def test_mutation_broken_checksum_is_caught(self, monkeypatch):
        # A tamper must be a round's *only* disk fault: an earlier
        # corruption leaves nothing parseable to tamper with, a later
        # one rolls the poisoned artefact back — both hide the mutant.
        def tamper_survives(plans):
            return any(
                [kind for kind in plan if kind in _DISK]
                == ["tamper_checkpoint"]
                for plan in plans
            )

        config = find_seed(tamper_survives)
        assert run_chaos(config).passed  # healthy code: clean

        monkeypatch.setattr(persistence, "_json_checksum",
                            lambda payload: "0" * 64)
        report = run_chaos(config)
        assert report.num_violations >= 1
        assert not report.passed


class TestChaosReport:
    @pytest.fixture(scope="class")
    def report(self) -> ChaosReport:
        return run_chaos(ChaosConfig(seed=1, rounds=2, budget=2,
                                     include_process_faults=False))

    def test_to_dict_shape(self, report):
        payload = report.to_dict()
        assert payload["seed"] == 1
        assert payload["rounds"] == 2
        assert payload["passed"] is True
        assert payload["num_violations"] == 0
        assert len(payload["round_reports"]) == 2
        entry = payload["round_reports"][0]
        assert set(entry) == {"round", "fault_spec", "plan", "applied",
                              "passed", "detail", "max_error"}
        json.dumps(payload)  # must be JSON-serialisable as-is

    def test_to_text_readable(self, report):
        text = report.to_text()
        assert "chaos run: seed=1" in text
        assert "round 0 [ok]" in text
        assert "recovered bit-identically" in text


class TestChaosCli:
    def test_smoke_with_report_artifact(self, tmp_path, capsys):
        report_path = tmp_path / "chaos.json"
        code = main([
            "chaos", "--seed", "0", "--rounds", "1", "--budget", "2",
            "--no-process-faults", "--report", str(report_path),
        ])
        assert code == 0
        assert "chaos run: seed=0" in capsys.readouterr().out
        payload = json.loads(report_path.read_text())
        assert payload["passed"] is True
        assert payload["num_violations"] == 0
