"""Unit tests for UCB-greedy seller selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selection import select_by_ucb, top_k_indices
from repro.core.state import LearningState
from repro.exceptions import SelectionError


class TestTopK:
    def test_selects_largest(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [1, 3])

    def test_returns_sorted_indices(self):
        scores = np.array([0.9, 0.1, 0.8])
        result = top_k_indices(scores, 2)
        assert list(result) == sorted(result)

    def test_k_equals_size_returns_all(self):
        scores = np.array([0.3, 0.1])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [0, 1])

    def test_tie_break_by_index(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [0, 1])

    def test_infinite_scores_rank_first(self):
        scores = np.array([0.9, np.inf, 0.8, np.inf])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [1, 3])

    def test_rejects_zero_k(self):
        with pytest.raises(SelectionError):
            top_k_indices(np.array([0.5]), 0)

    def test_rejects_oversized_k(self):
        with pytest.raises(SelectionError, match="cannot select"):
            top_k_indices(np.array([0.5]), 2)

    def test_rejects_2d_scores(self):
        with pytest.raises(SelectionError, match="1-D"):
            top_k_indices(np.array([[0.5]]), 1)


class TestSelectByUCB:
    def test_prefers_unseen_sellers(self):
        state = LearningState(4)
        state.update(np.array([0, 1]), np.array([2.0, 2.0]), 4)
        selected = select_by_ucb(state, 2, exploration_coefficient=3.0)
        np.testing.assert_array_equal(selected, [2, 3])

    def test_selects_top_ucb_when_all_seen(self):
        state = LearningState(3)
        state.update(np.array([0, 1, 2]), np.array([0.8, 2.0, 3.6]), 4)
        # Means 0.2, 0.5, 0.9; equal counts so the bonus is constant.
        selected = select_by_ucb(state, 2, exploration_coefficient=3.0)
        np.testing.assert_array_equal(selected, [1, 2])

    def test_exploration_can_override_mean(self):
        state = LearningState(2)
        # Seller 0: high mean, many observations; seller 1: lower mean,
        # few observations -> bigger bonus wins with a large coefficient.
        state.update(np.array([0]), np.array([90.0]), 100)
        state.update(np.array([1]), np.array([0.6]), 1)
        selected = select_by_ucb(state, 1, exploration_coefficient=10.0)
        np.testing.assert_array_equal(selected, [1])
