"""Unit tests for budget-constrained trading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandits.policies import OptimalPolicy, RandomPolicy, UCBPolicy
from repro.exceptions import ConfigurationError
from repro.extensions.budget import (
    BudgetedComparison,
    run_budgeted_comparison,
    truncate_to_budget,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator
from repro.sim.results import RunMetrics


def make_run(n=10, price=2.0, total_time=3.0) -> RunMetrics:
    ones = np.ones(n)
    return RunMetrics(
        policy_name="test",
        realized_revenue=5.0 * ones,
        expected_revenue=5.0 * ones,
        regret=np.zeros(n),
        consumer_profit=4.0 * ones,
        platform_profit=1.0 * ones,
        seller_profit_mean=0.5 * ones,
        service_price=price * ones,
        collection_price=0.5 * ones,
        total_sensing_time=total_time * ones,
        selection_counts=np.array([n]),
        estimation_error=0.05 * ones,
    )


class TestTruncateToBudget:
    def test_per_round_payment_is_price_times_time(self):
        # Payment = 2.0 * 3.0 = 6 per round; budget 20 -> 3 full rounds.
        budgeted = truncate_to_budget(make_run(), budget=20.0)
        assert budgeted.rounds_completed == 3
        assert budgeted.spent == pytest.approx(18.0)
        assert budgeted.exhausted

    def test_exact_budget_boundary(self):
        budgeted = truncate_to_budget(make_run(), budget=12.0)
        assert budgeted.rounds_completed == 2
        assert budgeted.spent == pytest.approx(12.0)

    def test_budget_covers_whole_run(self):
        budgeted = truncate_to_budget(make_run(n=4), budget=1_000.0)
        assert budgeted.rounds_completed == 4
        assert not budgeted.exhausted

    def test_budget_below_first_round(self):
        budgeted = truncate_to_budget(make_run(), budget=1.0)
        assert budgeted.rounds_completed == 0
        assert budgeted.spent == 0.0
        assert budgeted.realized_revenue == 0.0

    def test_revenue_accumulates_over_completed_rounds(self):
        budgeted = truncate_to_budget(make_run(), budget=20.0)
        assert budgeted.realized_revenue == pytest.approx(15.0)
        assert budgeted.consumer_profit == pytest.approx(12.0)

    def test_revenue_per_unit_budget(self):
        budgeted = truncate_to_budget(make_run(), budget=20.0)
        assert budgeted.revenue_per_unit_budget == pytest.approx(15.0 / 18.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError, match="budget"):
            truncate_to_budget(make_run(), budget=0.0)


class TestBudgetedComparison:
    @pytest.fixture(scope="class")
    def comparison(self) -> BudgetedComparison:
        config = SimulationConfig(num_sellers=20, num_selected=5,
                                  num_pois=4, num_rounds=400, seed=4)
        simulator = TradingSimulator(config)
        policies = [
            OptimalPolicy(simulator.population.expected_qualities),
            UCBPolicy(),
            RandomPolicy(),
        ]
        # A budget that exhausts well before the horizon.
        return run_budgeted_comparison(simulator, policies,
                                       budget=50_000.0)

    def test_all_policies_present(self, comparison):
        assert set(comparison.runs) == {"optimal", "CMAB-HS", "random"}

    def test_budgets_exhausted(self, comparison):
        for run in comparison.runs.values():
            assert run.exhausted
            assert run.spent <= comparison.budget

    def test_optimal_buys_most_quality_per_budget(self, comparison):
        optimal = comparison.runs["optimal"]
        random = comparison.runs["random"]
        assert (optimal.revenue_per_unit_budget
                > random.revenue_per_unit_budget)

    def test_best_by_revenue(self, comparison):
        assert comparison.best_by_revenue() in ("optimal", "CMAB-HS")

    def test_table_renders(self, comparison):
        table = comparison.to_table()
        assert "rev/budget" in table
        assert "CMAB-HS" in table
