"""Tests for the non-stationary (drifting-quality) extension."""

from __future__ import annotations

import pytest

from repro.extensions.nonstationary import drift_comparison


class TestDriftComparison:
    @pytest.fixture(scope="class")
    def stationary(self):
        return drift_comparison(amplitude=0.0, num_rounds=1_000, seed=2,
                                window=200, num_sellers=20, k=4)

    @pytest.fixture(scope="class")
    def drifting(self):
        return drift_comparison(amplitude=0.35, num_rounds=1_000, seed=2,
                                window=200, num_sellers=20, k=4)

    def test_reports_all_policies(self, stationary):
        assert set(stationary) == {"optimal", "CMAB-HS", "sw-ucb",
                                   "random"}

    def test_random_is_worst_in_both_regimes(self, stationary, drifting):
        for outcome in (stationary, drifting):
            learning = min(outcome["CMAB-HS"], outcome["sw-ucb"])
            assert outcome["random"] < learning

    def test_stationary_vanilla_at_least_matches_window(self, stationary):
        # With no drift the window only discards useful history.
        assert stationary["CMAB-HS"] >= stationary["sw-ucb"] * 0.97

    def test_window_relative_standing_improves_with_drift(
        self, stationary, drifting
    ):
        gain_static = stationary["sw-ucb"] / stationary["CMAB-HS"]
        gain_drift = drifting["sw-ucb"] / drifting["CMAB-HS"]
        assert gain_drift > gain_static - 0.02

    def test_zero_amplitude_uses_stationary_model(self):
        # amplitude=0 must be exactly the stationary instance (common
        # random numbers): same result twice.
        a = drift_comparison(0.0, 300, seed=5, window=100,
                             num_sellers=15, k=3)
        b = drift_comparison(0.0, 300, seed=5, window=100,
                             num_sellers=15, k=3)
        assert a == b
