"""Unit tests for Stackelberg Equilibrium verification (Definition 13)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import (
    assert_equilibrium,
    verify_equilibrium,
)
from repro.core.incentive import ClosedFormStackelbergSolver
from repro.exceptions import EquilibriumViolationError
from repro.game.profits import GameInstance, StrategyProfile


def make_game(seed=0, k=5) -> GameInstance:
    rng = np.random.default_rng(seed)
    return GameInstance(
        qualities=rng.uniform(0.3, 1.0, k),
        cost_a=rng.uniform(0.1, 0.5, k),
        cost_b=rng.uniform(0.1, 1.0, k),
        theta=0.1,
        lam=1.0,
        omega=800.0,
        service_price_bounds=(0.0, 10_000.0),
        collection_price_bounds=(0.0, 10_000.0),
    )


@pytest.fixture
def solver() -> ClosedFormStackelbergSolver:
    return ClosedFormStackelbergSolver()


class TestVerifyEquilibrium:
    @pytest.mark.parametrize("seed", range(3))
    def test_closed_form_solution_is_se(self, seed, solver):
        game = make_game(seed)
        solved = solver.solve(game)
        report = verify_equilibrium(game, solved.profile, solver.cascade,
                                    num_points=300, tolerance=0.05)
        assert report.is_equilibrium, report.describe()

    def test_perturbed_seller_time_is_not_se(self, solver):
        game = make_game()
        solved = solver.solve(game)
        bad = solved.profile.replace_sensing_time(
            0, solved.profile.sensing_times[0] * 2.0
        )
        report = verify_equilibrium(game, bad, solver.cascade,
                                    num_points=300, tolerance=0.01)
        assert report.seller_improvements[0] > 0.01
        assert not report.is_equilibrium

    def test_perturbed_collection_price_is_not_se(self, solver):
        game = make_game()
        solved = solver.solve(game)
        bad = StrategyProfile(
            solved.profile.service_price,
            solved.profile.collection_price * 0.5,
            game.seller_best_responses(
                solved.profile.collection_price * 0.5
            ),
        )
        report = verify_equilibrium(game, bad, solver.cascade,
                                    num_points=300, tolerance=0.01)
        assert report.platform_improvement > 0.01

    def test_perturbed_service_price_is_not_se(self, solver):
        game = make_game()
        solved = solver.solve(game)
        bad_price = solved.profile.service_price * 2.0
        collection, taus = solver.cascade(game, bad_price)
        bad = StrategyProfile(bad_price, collection, taus)
        report = verify_equilibrium(game, bad, solver.cascade,
                                    num_points=300, tolerance=0.01)
        assert report.consumer_improvement > 0.01

    def test_report_max_improvement(self, solver):
        game = make_game()
        solved = solver.solve(game)
        report = verify_equilibrium(game, solved.profile, solver.cascade,
                                    num_points=200)
        assert report.max_improvement == max(
            report.consumer_improvement,
            report.platform_improvement,
            float(report.seller_improvements.max()),
        )

    def test_describe_mentions_status(self, solver):
        game = make_game()
        solved = solver.solve(game)
        report = verify_equilibrium(game, solved.profile, solver.cascade,
                                    num_points=200, tolerance=0.05)
        assert "SE holds" in report.describe()


class TestAssertEquilibrium:
    def test_passes_for_equilibrium(self, solver):
        game = make_game()
        solved = solver.solve(game)
        report = assert_equilibrium(game, solved.profile, solver.cascade,
                                    num_points=300, tolerance=0.05)
        assert report.is_equilibrium

    def test_raises_for_non_equilibrium(self, solver):
        game = make_game()
        solved = solver.solve(game)
        bad = solved.profile.replace_sensing_time(0, 0.0)
        with pytest.raises(EquilibriumViolationError, match="SE VIOLATED"):
            assert_equilibrium(game, bad, solver.cascade,
                               num_points=300, tolerance=0.001)
