"""Unit tests for the performance-observability layer.

Covers the clock-injected :class:`~repro.obs.PhaseProfiler` (exact-rate
assertions against a fake clock, self-time attribution, memory probes,
engine/replication integration, the byte-identity guarantee) and the
critical-path analysis over JSONL traces.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bandits import UCBPolicy
from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    PhaseProfiler,
    critical_path,
)
from repro.sim import (
    SimulationConfig,
    TradingSimulator,
    replicate_comparison,
)


class FakeClock:
    """A manually advanced monotonic clock for exact assertions."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPhaseProfiler:
    def test_rejects_unknown_memory_probe(self):
        with pytest.raises(ConfigurationError, match="memory probe"):
            PhaseProfiler(memory="psutil")

    def test_run_finished_without_start_raises(self):
        with pytest.raises(ConfigurationError, match="run_started"):
            PhaseProfiler().run_finished()

    def test_exact_rates_with_fake_clock(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock, memory="off")
        reg = profiler.bind(None)
        profiler.run_started()
        reg.counter("rounds").inc(10)
        for __ in range(10):
            reg.timer("engine.selection").observe(0.01)
        for __ in range(5):
            reg.timer("engine.solve").observe(0.02)
        clock.advance(2.0)
        profiler.run_finished()
        report = profiler.report()
        assert report.wall_s == pytest.approx(2.0)
        assert report.rounds == 10
        assert report.rates["rounds_per_s"] == pytest.approx(5.0)
        assert report.rates["selections_per_s"] == pytest.approx(5.0)
        assert report.rates["solves_per_s"] == pytest.approx(2.5)

    def test_nested_brackets_count_outermost_only(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock, memory="off")
        profiler.run_started()
        clock.advance(1.0)
        profiler.run_started()   # inner bracket (compare() over run())
        clock.advance(1.0)
        profiler.run_finished()
        clock.advance(1.0)
        profiler.run_finished()
        assert profiler.report().wall_s == pytest.approx(3.0)

    def test_report_mid_run_includes_open_bracket(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock, memory="off")
        profiler.run_started()
        clock.advance(1.5)
        assert profiler.report().wall_s == pytest.approx(1.5)

    def test_self_time_subtracts_children(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock, memory="off")
        reg = profiler.bind(None)
        profiler.run_started()
        reg.timer("engine.round").observe(1.0)
        reg.timer("engine.selection").observe(0.3)
        reg.timer("engine.solve").observe(0.5)
        clock.advance(1.0)
        profiler.run_finished()
        phases = {p.name: p for p in profiler.report().phases}
        assert phases["engine.round"].total_s == pytest.approx(1.0)
        assert phases["engine.round"].self_s == pytest.approx(0.2)
        assert phases["engine.selection"].self_s == pytest.approx(0.3)
        assert phases["engine.round"].share == pytest.approx(0.2)

    def test_bind_prefers_caller_registry(self):
        profiler = PhaseProfiler()
        mine = MetricsRegistry()
        assert profiler.bind(mine) is mine
        assert profiler.registry is mine
        assert profiler.bind(None) is profiler.registry
        assert profiler.bind(None) is not mine

    def test_context_accumulates(self):
        profiler = PhaseProfiler(clock=FakeClock(), memory="off")
        profiler.run_started()
        profiler.run_finished(policy="CMAB-HS")
        profiler.run_started()
        profiler.run_finished(seed=3)
        context = profiler.report().context
        assert context == {"policy": "CMAB-HS", "seed": 3}

    def test_rss_probe_reports_peak(self):
        profiler = PhaseProfiler(memory="rss")
        with profiler.profile():
            pass
        report = profiler.report()
        assert report.memory_probe == "rss"
        assert report.peak_memory_bytes > 0
        assert report.peak_memory_mb == pytest.approx(
            report.peak_memory_bytes / (1024.0 * 1024.0)
        )

    def test_tracemalloc_probe_reports_peak(self):
        profiler = PhaseProfiler(memory="tracemalloc")
        with profiler.profile():
            buffer = [0.0] * 200_000  # noqa: F841 - allocate something
        assert profiler.report().peak_memory_bytes > 100_000

    def test_off_probe_reports_none(self):
        profiler = PhaseProfiler(clock=FakeClock(), memory="off")
        with profiler.profile():
            pass
        report = profiler.report()
        assert report.peak_memory_bytes is None
        assert report.peak_memory_mb is None

    def test_hotspot_table_rejects_nonpositive_top(self):
        with pytest.raises(ConfigurationError, match="top"):
            PhaseProfiler().report().hotspot_table(0)


class TestProfiledEngine:
    _CONFIG = dict(num_sellers=30, num_selected=4, num_rounds=60, seed=7)

    def test_profiled_run_results_are_byte_identical(self):
        plain = TradingSimulator(SimulationConfig(**self._CONFIG)).run(
            UCBPolicy()
        )
        profiler = PhaseProfiler()
        profiled = TradingSimulator(SimulationConfig(**self._CONFIG)).run(
            UCBPolicy(), profiler=profiler
        )
        assert np.array_equal(plain.realized_revenue,
                              profiled.realized_revenue)
        assert np.array_equal(plain.regret, profiled.regret)
        assert np.array_equal(plain.selection_counts,
                              profiled.selection_counts)

    def test_engine_run_populates_report(self):
        profiler = PhaseProfiler()
        TradingSimulator(SimulationConfig(**self._CONFIG)).run(
            UCBPolicy(), profiler=profiler
        )
        report = profiler.report()
        assert report.rounds == self._CONFIG["num_rounds"]
        assert report.wall_s > 0.0
        assert report.rates["rounds_per_s"] > 0.0
        names = {p.name for p in report.phases}
        assert {"engine.round", "engine.selection",
                "engine.solve"} <= names
        assert report.context["policy"] == "CMAB-HS"
        assert report.context["num_sellers"] == 30

    def test_caller_registry_wins_and_accumulates(self):
        profiler = PhaseProfiler()
        mine = MetricsRegistry()
        TradingSimulator(SimulationConfig(**self._CONFIG)).run(
            UCBPolicy(), metrics=mine, profiler=profiler
        )
        assert profiler.registry is mine
        assert mine.counters["rounds"] == self._CONFIG["num_rounds"]

    def test_replicate_comparison_profiles_sweep(self):
        profiler = PhaseProfiler()
        replicate_comparison(
            SimulationConfig(num_sellers=16, num_selected=3,
                             num_rounds=40),
            lambda q: [UCBPolicy()], num_seeds=2, profiler=profiler,
        )
        report = profiler.report()
        assert report.rounds == 80
        assert report.context["num_seeds"] == 2
        names = {p.name for p in report.phases}
        assert "replication.seed" in names

    def test_report_dict_is_json_and_versioned(self):
        profiler = PhaseProfiler()
        TradingSimulator(SimulationConfig(**self._CONFIG)).run(
            UCBPolicy(), profiler=profiler
        )
        payload = profiler.report().to_dict()
        json.dumps(payload)
        assert payload["schema"] == 1
        assert payload["memory"]["probe"] == "rss"
        assert payload["phases"][0]["self_s"] >= 0.0


class TestProfileCli:
    def test_profile_round_trips_json(self, capsys, tmp_path):
        out = tmp_path / "profile.json"
        assert main(["profile", "--sellers", "20", "--selected", "3",
                     "--rounds", "40", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "rounds/s" in printed
        assert "engine.round" in printed
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert payload["rounds"] == 40

    def test_profile_rejects_bad_rounds(self, capsys):
        assert main(["profile", "--rounds", "0"]) == 1
        assert "error" in capsys.readouterr().err


def _span(kind, duration, round_index=None, **payload):
    record = {"kind": kind, "duration_s": duration, **payload}
    if round_index is not None:
        record["round"] = round_index
    return json.dumps(record)


class TestCriticalPath:
    def test_names_the_dominating_chain(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join([
            _span("seed_end", 10.0),
            _span("run_end", 9.5),
            _span("round_end", 9.0, round_index=0),
            _span("selection", 2.0, round_index=0),
            _span("equilibrium", 6.0, round_index=0),
            _span("checkpoint", 0.2),
        ]) + "\n")
        report = critical_path(str(path))
        assert report.dominant == (
            "seed > run > round > equilibrium solve"
        )
        shares = {link.phase: link.share_of_parent
                  for link in report.chain}
        assert shares["run"] == pytest.approx(9.5 / 10.0)
        assert shares["equilibrium solve"] == pytest.approx(6.0 / 9.0)

    def test_straggler_worker_lane(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join([
            _span("worker_task_done", 1.0, worker=0, task=0),
            _span("worker_task_done", 3.0, worker=1, task=1),
            _span("worker_task_done", 0.5, worker=1, task=2),
        ]) + "\n")
        report = critical_path(str(path))
        assert report.slowest_lane == "worker 1"
        lanes = {lane.name: lane for lane in report.lanes}
        assert lanes["worker 1"].total_s == pytest.approx(3.5)
        assert lanes["worker 1"].calls == 2

    def test_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            _span("round_end", 1.0, round_index=0)
            + '\n{"kind": "round_end", "durat\n'
        )
        report = critical_path(str(path))
        assert report.skipped_lines == 1
        assert report.dominant == "round"

    def test_empty_trace_reports_nothing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"kind": "run_start"}) + "\n")
        report = critical_path(str(path))
        assert report.chain == []
        assert "nothing to analyse" in report.to_text()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            critical_path(str(tmp_path / "missing.jsonl"))

    def test_cli_round_trips_report(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text("\n".join([
            _span("run_end", 2.0),
            _span("round_end", 1.8, round_index=0),
            _span("selection", 1.2, round_index=0),
        ]) + "\n")
        out = tmp_path / "critical.json"
        assert main(["trace", "critical-path", str(trace),
                     "--report", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "critical path: run > round > selection" in printed
        payload = json.loads(out.read_text())
        assert payload["dominant"] == "run > round > selection"
