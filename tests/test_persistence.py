"""Unit tests for result persistence (NPZ runs, JSON experiments)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PersistenceError
from repro.experiments.registry import ExperimentResult, Series
from repro.sim.persistence import (
    CHECKPOINT_SCHEMA_VERSION,
    RUN_SCHEMA_VERSION,
    atomic_write_bytes,
    experiment_result_to_dict,
    load_checkpoint,
    load_experiment_result,
    load_run_metrics,
    load_sweep_checkpoint,
    quarantine_file,
    recover_checkpoint,
    recover_sweep_checkpoint,
    save_checkpoint,
    save_experiment_result,
    save_run_metrics,
    save_sweep_checkpoint,
)
from repro.sim.results import RunMetrics


def make_run(n=25) -> RunMetrics:
    rng = np.random.default_rng(3)
    return RunMetrics(
        policy_name="CMAB-HS",
        realized_revenue=rng.random(n),
        expected_revenue=rng.random(n),
        regret=np.cumsum(rng.random(n)),
        consumer_profit=rng.random(n),
        platform_profit=rng.random(n),
        seller_profit_mean=rng.random(n),
        service_price=rng.random(n),
        collection_price=rng.random(n),
        total_sensing_time=rng.random(n),
        selection_counts=rng.integers(0, 10, size=8),
        estimation_error=rng.random(n),
    )


class TestRunMetricsPersistence:
    def test_round_trip(self, tmp_path):
        run = make_run()
        path = tmp_path / "run.npz"
        save_run_metrics(run, path)
        loaded = load_run_metrics(path)
        assert loaded.policy_name == "CMAB-HS"
        np.testing.assert_array_equal(loaded.regret, run.regret)
        np.testing.assert_array_equal(loaded.selection_counts,
                                      run.selection_counts)
        assert loaded.summary() == run.summary()

    def test_load_rejects_incomplete_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, policy_name=np.array("x"),
                 realized_revenue=np.ones(3))
        with pytest.raises(PersistenceError, match="missing series"):
            load_run_metrics(path)

    def test_missing_field_error_names_the_fields(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, policy_name=np.array("x"),
                 realized_revenue=np.ones(3))
        with pytest.raises(PersistenceError, match="expected_revenue"):
            load_run_metrics(path)

    def test_load_rejects_wrong_schema_version(self, tmp_path):
        run = make_run()
        path = tmp_path / "run.npz"
        save_run_metrics(run, path)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["schema_version"] = np.array(RUN_SCHEMA_VERSION + 1)
        np.savez(path, **arrays)
        with pytest.raises(PersistenceError, match="schema version"):
            load_run_metrics(path)

    def test_legacy_file_without_schema_version_loads(self, tmp_path):
        run = make_run()
        path = tmp_path / "run.npz"
        save_run_metrics(run, path)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files
                      if name != "schema_version"}
        np.savez(path, **arrays)
        loaded = load_run_metrics(path)
        assert loaded.summary() == run.summary()


class TestExperimentResultPersistence:
    def make_result(self) -> ExperimentResult:
        result = ExperimentResult("figX", "demo title", "N",
                                  notes=["a note"])
        result.add_series(
            "revenue", Series("optimal", np.array([1.0, 2.0]),
                              np.array([10.0, 20.0]))
        )
        result.add_series(
            "revenue", Series("random", np.array([1.0, 2.0]),
                              np.array([5.0, 9.0]))
        )
        result.add_series(
            "regret", Series("random", np.array([1.0, 2.0]),
                             np.array([1.0, 2.5]))
        )
        return result

    def test_dict_structure(self):
        payload = experiment_result_to_dict(self.make_result())
        assert payload["experiment_id"] == "figX"
        assert set(payload["panels"]) == {"revenue", "regret"}
        assert payload["panels"]["revenue"][0]["label"] == "optimal"

    def test_round_trip(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "figX.json"
        save_experiment_result(result, path)
        loaded = load_experiment_result(path)
        assert loaded.experiment_id == result.experiment_id
        assert loaded.notes == result.notes
        np.testing.assert_array_equal(
            loaded.series("revenue", "random").y,
            result.series("revenue", "random").y,
        )
        assert loaded.to_text() == result.to_text()

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"title": "no id"}')
        with pytest.raises(PersistenceError, match="missing key"):
            load_experiment_result(path)

    def test_real_experiment_round_trip(self, tmp_path):
        from repro.experiments import Scale, run_experiment

        result = run_experiment("fig14", Scale.SMALL)
        path = tmp_path / "fig14.json"
        save_experiment_result(result, path)
        loaded = load_experiment_result(path)
        np.testing.assert_allclose(
            loaded.series("profits", "PoC").y,
            result.series("profits", "PoC").y,
        )


class TestFailureModes:
    """Persistence must fail loudly and precisely, never half-load."""

    def test_truncated_json_raises_persistence_error(self, tmp_path):
        result = TestExperimentResultPersistence().make_result()
        path = tmp_path / "figX.json"
        save_experiment_result(result, path)
        content = path.read_bytes()
        path.write_bytes(content[: len(content) // 2])  # simulated crash
        with pytest.raises(PersistenceError, match="corrupt"):
            load_experiment_result(path)

    def test_truncated_npz_raises_persistence_error(self, tmp_path):
        path = tmp_path / "run.npz"
        save_run_metrics(make_run(), path)
        content = path.read_bytes()
        path.write_bytes(content[: len(content) // 2])
        with pytest.raises(PersistenceError, match="corrupt"):
            load_run_metrics(path)

    def test_garbage_bytes_raise_persistence_error(self, tmp_path):
        path = tmp_path / "run.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(PersistenceError):
            load_run_metrics(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run_metrics(tmp_path / "absent.npz")
        with pytest.raises(FileNotFoundError):
            load_experiment_result(tmp_path / "absent.json")

    def test_wrong_experiment_schema_version(self, tmp_path):
        import json

        result = TestExperimentResultPersistence().make_result()
        path = tmp_path / "figX.json"
        save_experiment_result(result, path)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 99
        payload.pop("checksum", None)  # hand-edit invalidates it
        path.write_text(json.dumps(payload))
        with pytest.raises(PersistenceError, match="schema version 99"):
            load_experiment_result(path)


class TestAtomicWrites:
    def test_replaces_existing_content_atomically(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"old")
        atomic_write_bytes(path, b"new content")
        assert path.read_bytes() == b"new content"
        # no temp litter after a successful write
        assert list(tmp_path.iterdir()) == [path]

    def test_interrupted_write_leaves_destination_untouched(
        self, tmp_path, monkeypatch
    ):
        import os as _os

        path = tmp_path / "data.bin"
        path.write_bytes(b"precious")

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(_os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk on fire"):
            atomic_write_bytes(path, b"half-written garbage")
        monkeypatch.undo()
        assert path.read_bytes() == b"precious"
        # the failed temp file was cleaned up
        assert list(tmp_path.iterdir()) == [path]


class TestCheckpointPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.npz"
        meta = {"kind": "engine_run", "next_round": 42, "seed": 7}
        arrays = {"counts": np.arange(5), "sums": np.linspace(0, 1, 5)}
        save_checkpoint(path, meta, arrays)
        loaded_meta, loaded_arrays = load_checkpoint(path)
        assert loaded_meta == meta  # schema stamp stripped on load
        np.testing.assert_array_equal(loaded_arrays["counts"],
                                      arrays["counts"])
        np.testing.assert_array_equal(loaded_arrays["sums"], arrays["sums"])

    def test_reserved_array_names_rejected(self, tmp_path):
        with pytest.raises(PersistenceError, match="reserved"):
            save_checkpoint(tmp_path / "ck.npz", {},
                            {"checkpoint_meta": np.zeros(1)})

    def test_npz_without_meta_is_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, values=np.ones(3))
        with pytest.raises(PersistenceError, match="no metadata record"):
            load_checkpoint(path)

    def test_truncated_checkpoint_detected(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"next_round": 3}, {"x": np.ones(4)})
        content = path.read_bytes()
        path.write_bytes(content[: len(content) // 2])
        with pytest.raises(PersistenceError, match="corrupt"):
            load_checkpoint(path)

    def test_sweep_checkpoint_round_trip(self, tmp_path):
        path = tmp_path / "sweep.json"
        payload = {"kind": "replication_sweep", "completed_seeds": [0, 1]}
        save_sweep_checkpoint(path, payload)
        loaded = load_sweep_checkpoint(path)
        assert loaded == payload

    def test_sweep_checkpoint_without_version_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text('{"kind": "replication_sweep"}')
        with pytest.raises(PersistenceError, match="schema_version"):
            load_sweep_checkpoint(path)


class TestPersistenceErrorContext:
    """The error carries path / schema versions / cause, not just prose."""

    def test_schema_mismatch_carries_versions_and_path(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"next_round": 3}, {"x": np.ones(2)})
        meta, arrays = load_checkpoint(path)
        bad_meta = dict(meta)
        # re-stamp with a future schema version via the raw writer
        from repro.sim import persistence

        bad_meta["schema_version"] = 99
        persistence._atomic_write_npz(path, {
            "checkpoint_meta": np.array(__import__("json").dumps(bad_meta)),
            **arrays,
        })
        with pytest.raises(PersistenceError) as excinfo:
            load_checkpoint(path)
        error = excinfo.value
        assert error.path == str(path)
        assert error.schema_found == 99
        assert error.schema_expected == CHECKPOINT_SCHEMA_VERSION
        assert "found 99" in str(error)
        assert f"expected {CHECKPOINT_SCHEMA_VERSION}" in str(error)

    def test_corruption_carries_path_and_cause(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{garbage")
        with pytest.raises(PersistenceError) as excinfo:
            load_sweep_checkpoint(path)
        error = excinfo.value
        assert error.path == str(path)
        assert error.schema_found is None
        assert isinstance(error.__cause__, Exception)
        assert "cause" in str(error)
        assert type(error.__cause__).__name__ in str(error)

    def test_path_appears_in_str_once(self, tmp_path):
        path = tmp_path / "run.npz"
        path.write_bytes(b"not an archive")
        with pytest.raises(PersistenceError) as excinfo:
            load_run_metrics(path)
        assert str(excinfo.value).count(str(path)) == 1


class TestChecksumFooter:
    def test_bit_flip_inside_payload_detected(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"next_round": 3}, {"x": np.arange(64.0)})
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError, match="checksum"):
            load_checkpoint(path)

    def test_footerless_legacy_npz_still_loads(self, tmp_path):
        import io

        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"next_round": 3}, {"x": np.arange(4.0)})
        from repro.sim.persistence import (
            _CHECKSUM_FOOTER_LEN,
            _CHECKSUM_MAGIC,
        )

        raw = path.read_bytes()
        assert raw[-_CHECKSUM_FOOTER_LEN:].startswith(_CHECKSUM_MAGIC)
        path.write_bytes(raw[:-_CHECKSUM_FOOTER_LEN])  # strip the footer
        meta, arrays = load_checkpoint(path)
        assert meta["next_round"] == 3
        del io

    def test_sweep_value_tamper_detected(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep_checkpoint(path, {"completed_seeds": [0, 1]})
        path.write_text(
            path.read_text().replace("completed_seeds", "completed_seedz")
        )
        with pytest.raises(PersistenceError, match="checksum"):
            load_sweep_checkpoint(path)


class TestQuarantineAndRollback:
    def test_generations_rotate_and_cap(self, tmp_path):
        path = tmp_path / "ck.npz"
        for i in range(5):
            save_checkpoint(path, {"next_round": i}, {"x": np.arange(2.0)},
                            keep_generations=3)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ck.npz", "ck.npz.gen-1", "ck.npz.gen-2"]
        assert load_checkpoint(path)[0]["next_round"] == 4
        assert load_checkpoint(str(path) + ".gen-1")[0]["next_round"] == 3
        assert load_checkpoint(str(path) + ".gen-2")[0]["next_round"] == 2

    def test_single_generation_keeps_flat_layout(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"next_round": 0}, {"x": np.arange(2.0)})
        save_checkpoint(path, {"next_round": 1}, {"x": np.arange(2.0)})
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ck.npz"]

    def test_recover_rolls_back_and_quarantines(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"next_round": 1}, {"x": np.arange(2.0)},
                        keep_generations=2)
        save_checkpoint(path, {"next_round": 2}, {"x": np.arange(2.0)},
                        keep_generations=2)
        path.write_bytes(b"scrambled")
        recovered = recover_checkpoint(path)
        assert recovered is not None
        meta, arrays, actual = recovered
        assert meta["next_round"] == 1
        assert actual.endswith(".gen-1")
        quarantine_dir = tmp_path / "ck.npz.quarantine"
        assert [p.name for p in quarantine_dir.iterdir()] == ["ck.npz"]
        assert not path.exists()

    def test_recover_returns_none_when_nothing_valid(self, tmp_path):
        path = tmp_path / "ck.npz"
        assert recover_checkpoint(path) is None
        path.write_bytes(b"junk")
        assert recover_checkpoint(path) is None
        assert (tmp_path / "ck.npz.quarantine" / "ck.npz").exists()

    def test_recover_sweep_checkpoint(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep_checkpoint(path, {"completed_seeds": [0]},
                              keep_generations=2)
        save_sweep_checkpoint(path, {"completed_seeds": [0, 1]},
                              keep_generations=2)
        path.write_text("{broken")
        recovered = recover_sweep_checkpoint(path)
        assert recovered is not None
        payload, actual = recovered
        assert payload == {"completed_seeds": [0]}
        assert actual.endswith(".gen-1")

    def test_quarantine_disambiguates_repeat_offenders(self, tmp_path):
        path = tmp_path / "ck.npz"
        path.write_bytes(b"bad one")
        first = quarantine_file(path)
        path.write_bytes(b"bad two")
        second = quarantine_file(path)
        assert first != second
        quarantine_dir = tmp_path / "ck.npz.quarantine"
        assert sorted(p.name for p in quarantine_dir.iterdir()) == [
            "ck.npz", "ck.npz.1",
        ]

    def test_quarantine_emits_event_and_metric(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import RingBufferSink, Tracer

        path = tmp_path / "ck.npz"
        path.write_bytes(b"junk")
        sink = RingBufferSink(capacity=8)
        metrics = MetricsRegistry()
        assert recover_checkpoint(path, tracer=Tracer(sink),
                                  metrics=metrics) is None
        kinds = [event.kind for event in sink.events]
        assert "checkpoint_quarantined" in kinds
        assert metrics.counters[
            "resilience.checkpoints_quarantined"] == 1
