"""Unit tests for result persistence (NPZ runs, JSON experiments)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.registry import ExperimentResult, Series
from repro.sim.persistence import (
    experiment_result_to_dict,
    load_experiment_result,
    load_run_metrics,
    save_experiment_result,
    save_run_metrics,
)
from repro.sim.results import RunMetrics


def make_run(n=25) -> RunMetrics:
    rng = np.random.default_rng(3)
    return RunMetrics(
        policy_name="CMAB-HS",
        realized_revenue=rng.random(n),
        expected_revenue=rng.random(n),
        regret=np.cumsum(rng.random(n)),
        consumer_profit=rng.random(n),
        platform_profit=rng.random(n),
        seller_profit_mean=rng.random(n),
        service_price=rng.random(n),
        collection_price=rng.random(n),
        total_sensing_time=rng.random(n),
        selection_counts=rng.integers(0, 10, size=8),
        estimation_error=rng.random(n),
    )


class TestRunMetricsPersistence:
    def test_round_trip(self, tmp_path):
        run = make_run()
        path = tmp_path / "run.npz"
        save_run_metrics(run, path)
        loaded = load_run_metrics(path)
        assert loaded.policy_name == "CMAB-HS"
        np.testing.assert_array_equal(loaded.regret, run.regret)
        np.testing.assert_array_equal(loaded.selection_counts,
                                      run.selection_counts)
        assert loaded.summary() == run.summary()

    def test_load_rejects_incomplete_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, policy_name=np.array("x"),
                 realized_revenue=np.ones(3))
        with pytest.raises(ConfigurationError, match="missing series"):
            load_run_metrics(path)


class TestExperimentResultPersistence:
    def make_result(self) -> ExperimentResult:
        result = ExperimentResult("figX", "demo title", "N",
                                  notes=["a note"])
        result.add_series(
            "revenue", Series("optimal", np.array([1.0, 2.0]),
                              np.array([10.0, 20.0]))
        )
        result.add_series(
            "revenue", Series("random", np.array([1.0, 2.0]),
                              np.array([5.0, 9.0]))
        )
        result.add_series(
            "regret", Series("random", np.array([1.0, 2.0]),
                             np.array([1.0, 2.5]))
        )
        return result

    def test_dict_structure(self):
        payload = experiment_result_to_dict(self.make_result())
        assert payload["experiment_id"] == "figX"
        assert set(payload["panels"]) == {"revenue", "regret"}
        assert payload["panels"]["revenue"][0]["label"] == "optimal"

    def test_round_trip(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "figX.json"
        save_experiment_result(result, path)
        loaded = load_experiment_result(path)
        assert loaded.experiment_id == result.experiment_id
        assert loaded.notes == result.notes
        np.testing.assert_array_equal(
            loaded.series("revenue", "random").y,
            result.series("revenue", "random").y,
        )
        assert loaded.to_text() == result.to_text()

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"title": "no id"}')
        with pytest.raises(ConfigurationError, match="missing key"):
            load_experiment_result(path)

    def test_real_experiment_round_trip(self, tmp_path):
        from repro.experiments import Scale, run_experiment

        result = run_experiment("fig14", Scale.SMALL)
        path = tmp_path / "fig14.json"
        save_experiment_result(result, path)
        loaded = load_experiment_result(path)
        np.testing.assert_allclose(
            loaded.series("profits", "PoC").y,
            result.series("profits", "PoC").y,
        )
