"""Unit tests for the numerical one-dimensional maximisers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import GameError
from repro.game.best_response import (
    golden_section_maximize,
    grid_maximize,
    refine_maximize,
)


def concave(x: float) -> float:
    return -(x - 2.0) ** 2


class TestGoldenSection:
    def test_finds_interior_maximum(self):
        assert golden_section_maximize(concave, 0.0, 5.0) == pytest.approx(
            2.0, abs=1e-6
        )

    def test_monotone_increasing_returns_upper_end(self):
        assert golden_section_maximize(lambda x: x, 0.0, 3.0) == pytest.approx(3.0)

    def test_monotone_decreasing_returns_lower_end(self):
        assert golden_section_maximize(lambda x: -x, 1.0, 3.0) == pytest.approx(1.0)

    def test_degenerate_interval(self):
        assert golden_section_maximize(concave, 2.5, 2.5) == 2.5

    def test_rejects_inverted_interval(self):
        with pytest.raises(GameError, match="empty interval"):
            golden_section_maximize(concave, 3.0, 1.0)

    def test_rejects_infinite_interval(self):
        with pytest.raises(GameError, match="finite"):
            golden_section_maximize(concave, 0.0, float("inf"))

    def test_quadratic_with_offset_maximum(self):
        result = golden_section_maximize(
            lambda x: -(x - math.pi) ** 2 + 7.0, 0.0, 10.0
        )
        assert result == pytest.approx(math.pi, abs=1e-6)


class TestGridMaximize:
    def test_finds_maximum_on_grid(self):
        assert grid_maximize(concave, 0.0, 4.0, num_points=401) == pytest.approx(
            2.0, abs=0.011
        )

    def test_handles_multimodal(self):
        def two_peaks(x: float) -> float:
            return math.sin(x) + 0.5 * math.sin(3.0 * x)

        result = grid_maximize(two_peaks, 0.0, 2.0 * math.pi,
                               num_points=2_001)
        values = [two_peaks(x) for x in np.linspace(0, 2 * math.pi, 10_000)]
        assert two_peaks(result) >= max(values) - 1e-3

    def test_degenerate_interval(self):
        assert grid_maximize(concave, 1.0, 1.0) == 1.0

    def test_rejects_inverted_interval(self):
        with pytest.raises(GameError, match="empty interval"):
            grid_maximize(concave, 3.0, 1.0)


class TestRefineMaximize:
    def test_polishes_to_high_precision(self):
        assert refine_maximize(concave, 0.0, 10.0) == pytest.approx(
            2.0, abs=1e-7
        )

    def test_picks_global_peak_of_bimodal(self):
        def bimodal(x: float) -> float:
            # peaks near 1 (height 1) and near 4 (height 2).
            return math.exp(-((x - 1.0) ** 2) * 4.0) + 2.0 * math.exp(
                -((x - 4.0) ** 2) * 4.0
            )

        result = refine_maximize(bimodal, 0.0, 6.0, coarse_points=61)
        assert result == pytest.approx(4.0, abs=1e-4)

    def test_degenerate_interval(self):
        assert refine_maximize(concave, 2.0, 2.0) == 2.0

    def test_endpoint_maximum(self):
        assert refine_maximize(lambda x: x, 0.0, 5.0) == pytest.approx(5.0)
