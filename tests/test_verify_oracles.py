"""Differential oracles (repro.verify.oracles)."""

from __future__ import annotations

import numpy as np

import repro.verify.oracles as oracles
from repro.core.selection import top_k_indices
from repro.game.profits import GameInstance
from repro.verify import (
    OracleCheck,
    OracleSuiteReport,
    brute_force_top_k,
    check_full_solve_oracle,
    check_selection_oracle,
    check_stage1_oracle,
    check_stage2_oracle,
    check_stage3_oracle,
)


def interior_game(num_sellers: int = 3) -> GameInstance:
    rng = np.random.default_rng(7)
    return GameInstance(
        qualities=rng.uniform(0.4, 0.9, num_sellers),
        cost_a=rng.uniform(0.15, 0.35, num_sellers),
        cost_b=rng.uniform(0.1, 0.5, num_sellers),
        theta=0.1, lam=1.0, omega=800.0,
    )


def binding_game() -> GameInstance:
    return GameInstance(
        qualities=np.array([0.5, 0.7]),
        cost_a=np.array([0.2, 0.25]),
        cost_b=np.array([0.3, 0.5]),
        theta=0.2, lam=0.5, omega=800.0,
        collection_price_bounds=(0.0, 0.75),
    )


class TestBruteForceTopK:
    def test_matches_argsort_on_plain_scores(self):
        scores = np.array([0.3, 0.9, 0.1, 0.7, 0.5])
        np.testing.assert_array_equal(
            brute_force_top_k(scores, 2), top_k_indices(scores, 2))

    def test_tie_breaking_prefers_lower_index(self):
        scores = np.array([0.5, 0.5, 0.5, 0.1])
        np.testing.assert_array_equal(
            brute_force_top_k(scores, 2), np.array([0, 1]))

    def test_handles_infinities(self):
        scores = np.array([0.2, np.inf, 0.3, np.inf])
        np.testing.assert_array_equal(
            brute_force_top_k(scores, 2), np.array([1, 3]))

    def test_k_equals_m(self):
        scores = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(
            brute_force_top_k(scores, 3), np.array([0, 1, 2]))


class TestStageOracles:
    def test_stage3_agrees_on_interior_game(self):
        game = interior_game()
        price = oracles.optimal_collection_price(
            game, oracles.optimal_service_price(game))
        check = check_stage3_oracle(game, price, "interior")
        assert check.passed, check.describe()
        assert check.max_error <= 1e-5

    def test_stage3_detects_perturbed_closed_form(self, monkeypatch):
        game = interior_game()
        true_times = oracles.optimal_sensing_times
        monkeypatch.setattr(
            oracles, "optimal_sensing_times",
            lambda g, p: true_times(g, p) * 1.05 + 0.01)
        check = check_stage3_oracle(game, 1.0, "mutated")
        assert not check.passed

    def test_stage2_agrees_on_interior_game(self):
        game = interior_game()
        check = check_stage2_oracle(
            game, oracles.optimal_service_price(game), "interior")
        assert check.passed, check.describe()
        assert "skipped" not in check.detail

    def test_stage2_skips_binding_bound(self):
        game = binding_game()
        check = check_stage2_oracle(
            game, oracles.optimal_service_price(game), "binding")
        assert check.passed
        assert check.detail.startswith("skipped")

    def test_stage2_detects_perturbed_closed_form(self, monkeypatch):
        game = interior_game()
        true_price = oracles.optimal_collection_price
        monkeypatch.setattr(
            oracles, "optimal_collection_price",
            lambda g, pj: true_price(g, pj) * 1.3 + 0.2)
        check = check_stage2_oracle(
            game, oracles.optimal_service_price(game), "mutated")
        assert not check.passed

    def test_stage1_agrees_on_interior_game(self):
        game = interior_game(num_sellers=2)
        check = check_stage1_oracle(game, "interior")
        assert check.passed, check.describe()
        assert "skipped" not in check.detail

    def test_stage1_detects_perturbed_closed_form(self, monkeypatch):
        game = interior_game(num_sellers=2)
        true_price = oracles.optimal_service_price
        monkeypatch.setattr(
            oracles, "optimal_service_price",
            lambda g: true_price(g) * 1.5 + 1.0)
        check = check_stage1_oracle(game, "mutated")
        # Either the perturbed price breaks the interior premise (then
        # the numerical leg is skipped) or the profit comparison fails;
        # a perturbation must never silently pass as agreement.
        if "skipped" not in check.detail:
            assert not check.passed

    def test_full_solve_agrees_on_interior_game(self):
        game = interior_game(num_sellers=2)
        check = check_full_solve_oracle(game, "interior")
        assert check.passed, check.describe()
        assert "skipped" not in check.detail

    def test_full_solve_skips_binding_bound(self):
        check = check_full_solve_oracle(binding_game(), "binding")
        assert check.passed
        assert check.detail.startswith("skipped")


class TestSelectionOracle:
    def test_agrees_with_ties_and_infinities(self):
        scores = np.array([0.5, 0.5, np.inf, 0.1, 0.5])
        check = check_selection_oracle(scores, 3, "ties")
        assert check.passed, check.describe()

    def test_detects_wrong_fast_path(self, monkeypatch):
        monkeypatch.setattr(
            oracles, "top_k_indices",
            lambda scores, k: np.arange(k, dtype=np.int64)[::-1].copy()
            if k > 1 else np.array([len(scores) - 1]))
        check = check_selection_oracle(np.array([0.1, 0.9, 0.5]), 1, "bad")
        assert not check.passed


class TestSuiteReport:
    def make_report(self, *passed_flags: bool) -> OracleSuiteReport:
        return OracleSuiteReport([
            OracleCheck("stage3", f"case-{i}", flag, "detail", 0.1)
            for i, flag in enumerate(passed_flags)
        ])

    def test_all_passed(self):
        report = self.make_report(True, True)
        assert report.passed
        assert report.num_failed == 0
        assert report.failures() == []

    def test_failures_surface(self):
        report = self.make_report(True, False, False)
        assert not report.passed
        assert report.num_failed == 2
        assert len(report.failures()) == 2

    def test_to_dict_shape(self):
        payload = self.make_report(True, False).to_dict()
        assert payload["passed"] is False
        assert payload["num_checks"] == 2
        assert payload["num_failed"] == 1
        assert payload["failures"][0]["case"] == "case-1"

    def test_describe_marks_status(self):
        assert "[ok]" in OracleCheck("stage3", "c", True, "d").describe()
        assert "[FAIL]" in OracleCheck("stage3", "c", False, "d").describe()
