"""Quickstart: run the CMAB-HS mechanism end to end.

Builds a small crowdsensing data-trading job — one consumer, one
platform, 40 candidate sellers with unknown qualities — runs Algorithm 1
for 2 000 rounds, and prints what the mechanism learned and earned.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CMABHSMechanism,
    Consumer,
    Job,
    Platform,
    SellerPopulation,
    gap_statistics,
    theorem19_bound,
)


def main() -> None:
    rng = np.random.default_rng(seed=7)

    # The three parties.  Sellers carry hidden expected qualities and
    # quadratic sensing costs sampled from the paper's ranges.
    population = SellerPopulation.random(num_sellers=40, rng=rng)
    platform = Platform.default(theta=0.1, lam=1.0, price_max=5.0)
    consumer = Consumer.default(omega=1_000.0)

    # A job: 10 PoIs, 2000 trading rounds.
    job = Job.simple(num_pois=10, num_rounds=2_000,
                     description="hourly air-quality snapshots downtown")

    mechanism = CMABHSMechanism(
        population, job, platform, consumer, k=8, seed=42
    )
    result = mechanism.run()

    print("=== CMAB-HS quickstart ===")
    print(f"rounds played         : {result.num_rounds}")
    print(f"realized revenue      : {result.realized_revenue:,.1f}")
    print(f"cumulative regret     : {result.cumulative_regret:,.1f}")

    gaps = gap_statistics(population.expected_qualities, k=8)
    bound = theorem19_bound(
        num_sellers=len(population), k=8, num_pois=job.num_pois,
        num_rounds=result.num_rounds, delta_min=gaps.delta_min,
        delta_max=gaps.delta_max,
    )
    print(f"Theorem-19 regret bound: {bound:,.1f} "
          f"(measured {result.cumulative_regret:,.1f})")

    # How close did the learned estimates get to the hidden truth?
    error = np.abs(result.final_means - population.expected_qualities)
    print(f"quality estimation err : mean {error.mean():.4f}, "
          f"max {error.max():.4f}")

    # Who got picked?  Compare against the omniscient top-8.
    truly_best = set(population.top_k_by_quality(8).tolist())
    last_round = result.rounds[-1]
    print(f"last-round selection   : {sorted(last_round.selected.tolist())}")
    print(f"omniscient top-8       : {sorted(truly_best)}")

    # The equilibrium strategies of the final round.
    print(f"final-round strategies : p^J*={last_round.service_price:.3f}, "
          f"p*={last_round.collection_price:.3f}, "
          f"total tau*={last_round.total_sensing_time:.3f}")
    print(f"final-round profits    : PoC={last_round.consumer_profit:.2f}, "
          f"PoP={last_round.platform_profit:.2f}, "
          f"mean PoS={last_round.seller_profits.mean():.3f}")


if __name__ == "__main__":
    main()
