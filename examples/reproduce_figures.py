"""Regenerate paper figures, render them as ASCII charts, save as JSON.

Demonstrates the full artifact-regeneration workflow:

1. run a selection of the paper's figure experiments;
2. render each as terminal tables + ASCII charts (no matplotlib needed);
3. persist every result as JSON under ``./figure_results`` so it can be
   reloaded later without re-simulating.

Run with::

    python examples/reproduce_figures.py
"""

from __future__ import annotations

import os

from repro.experiments import Scale, render_experiment, run_experiment
from repro.sim.persistence import (
    load_experiment_result,
    save_experiment_result,
)

#: A representative subset: one HS-game figure, one equilibrium sweep,
#: and one strategy sweep (the bandit sweeps fig7-fig12 take minutes —
#: run them via ``repro-cdt run fig7 ...`` when needed).
FIGURES = ("fig13", "fig15", "fig18")

OUTPUT_DIR = "figure_results"


def main() -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    for experiment_id in FIGURES:
        result = run_experiment(experiment_id, Scale.SMALL)
        print(render_experiment(result, width=60, height=12))
        print()
        path = os.path.join(OUTPUT_DIR, f"{experiment_id}.json")
        save_experiment_result(result, path)
        print(f"saved {path}")
        print("=" * 72)

    # Round-trip check: reload one result and confirm it matches.
    reloaded = load_experiment_result(
        os.path.join(OUTPUT_DIR, FIGURES[0] + ".json")
    )
    print(f"reloaded {reloaded.experiment_id!r}: "
          f"{len(reloaded.panels)} panels, notes: {len(reloaded.notes)}")


if __name__ == "__main__":
    main()
