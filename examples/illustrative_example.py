"""The paper's Section III-D walkthrough: 3 sellers, 4 PoIs, 10 rounds.

Reproduces the miniature data trading of Figs. 4-6: the initial
explore-all round with break-even pricing, then UCB-ranked pairs with the
hierarchical-Stackelberg strategies each round.

Run with::

    python examples/illustrative_example.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.illustrative import (
    EXAMPLE_QUALITIES,
    build_example_mechanism,
)


def main() -> None:
    mechanism = build_example_mechanism(seed=0)
    result = mechanism.run()

    print("=== Section III-D illustrative example ===")
    print(f"true qualities (hidden): {list(EXAMPLE_QUALITIES)}")
    print()
    header = (f"{'t':>2} {'selected':>10} {'p^J*':>8} {'p*':>7} "
              f"{'taus':>22} {'PoC':>9} {'PoP':>8}")
    print(header)
    print("-" * len(header))
    for outcome in result.rounds:
        sellers = "<" + ",".join(
            str(int(s) + 1) for s in outcome.selected
        ) + ">"
        taus = np.array2string(
            outcome.sensing_times, precision=3, separator=","
        )
        print(
            f"{outcome.round_index + 1:>2} {sellers:>10} "
            f"{outcome.service_price:>8.3f} "
            f"{outcome.collection_price:>7.3f} {taus:>22} "
            f"{outcome.consumer_profit:>9.2f} "
            f"{outcome.platform_profit:>8.2f}"
        )
    print()
    print(f"learned qualities      : {np.round(result.final_means, 3)}")
    print(f"observation counts     : {result.final_counts} "
          "(each selection adds L=4)")
    print(f"realized revenue       : {result.realized_revenue:.2f}")
    print(f"cumulative regret      : {result.cumulative_regret:.2f}")
    chi = result.selection_matrix
    print("selection matrix chi (rounds x sellers):")
    print(chi)


if __name__ == "__main__":
    main()
