"""Data trading on a (synthetic) Chicago-style taxi trace.

Reproduces the paper's evaluation pipeline end to end:

1. generate a taxi-trip trace (27 465 trips, 300 taxis by default —
   scaled down here for speed);
2. extract the ``L = 10`` busiest pickup/dropoff locations as PoIs;
3. qualify the taxis serving those PoIs as candidate sellers;
4. run the CMAB-HS mechanism against the paper's baselines.

Run with::

    python examples/taxi_trace_trading.py
"""

from __future__ import annotations

import numpy as np

from repro.bandits import (
    EpsilonFirstPolicy,
    OptimalPolicy,
    RandomPolicy,
    UCBPolicy,
)
from repro.data import TraceSpec, extract_pois, generate_trace, sellers_from_trace
from repro.quality import TruncatedGaussianQuality
from repro.sim import SimulationConfig, TradingSimulator


def main() -> None:
    # 1. A scaled-down trace (the paper-scale spec is TraceSpec()).
    spec = TraceSpec(num_trips=6_000, num_taxis=120, seed=11)
    trace = generate_trace(spec)
    print(f"generated trace        : {len(trace)} trips, "
          f"{spec.num_taxis} taxis over {spec.days} days")

    # 2. PoIs = the busiest pickup/dropoff grid cells.
    pois = extract_pois(trace, num_pois=10)
    print("extracted PoIs         :")
    for poi in pois[:5]:
        print(f"   PoI {poi.poi_id}: ({poi.latitude:.4f}, "
              f"{poi.longitude:.4f}), {poi.weight:.0f} events")
    print(f"   ... and {len(pois) - 5} more")

    # 3. Taxis covering the PoIs become candidate sellers.
    rng = np.random.default_rng(11)
    derived = sellers_from_trace(trace, pois, num_sellers=60, rng=rng,
                                 radius_degrees=0.02)
    population = derived.population
    print(f"qualified sellers      : {len(population)} "
          f"(PoI coverage {derived.poi_coverage.min()}-"
          f"{derived.poi_coverage.max()} of {len(pois)})")

    # 4. Trade: CMAB-HS versus the paper's baselines on this population.
    config = SimulationConfig(
        num_sellers=len(population), num_selected=10,
        num_pois=len(pois), num_rounds=3_000, seed=11,
    )
    simulator = TradingSimulator(
        config, population=population,
        quality_model=TruncatedGaussianQuality(
            population.expected_qualities
        ),
    )
    policies = [
        OptimalPolicy(population.expected_qualities),
        UCBPolicy(),
        EpsilonFirstPolicy(0.1),
        RandomPolicy(),
    ]
    comparison = simulator.compare(policies)

    print()
    print(f"{'policy':>12} {'revenue':>12} {'regret':>10} "
          f"{'rev. share':>10}")
    optimal_revenue = comparison["optimal"].total_realized_revenue
    for name, run in comparison.runs.items():
        share = run.total_realized_revenue / optimal_revenue
        print(f"{name:>12} {run.total_realized_revenue:>12.1f} "
              f"{run.final_regret:>10.1f} {share:>9.1%}")
    deltas = comparison.delta_profits("CMAB-HS")
    print()
    print("CMAB-HS per-round gaps to optimal: "
          f"Delta-PoC={deltas['delta_poc']:.2f}, "
          f"Delta-PoP={deltas['delta_pop']:.2f}, "
          f"Delta-PoS={deltas['delta_pos']:.3f}")


if __name__ == "__main__":
    main()
