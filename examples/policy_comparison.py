"""Compare every selection policy, including the extensions.

Runs the paper's four algorithms plus the library's extension policies
(epsilon-greedy, Thompson sampling, sliding-window UCB) on one instance,
then repeats the exercise under *drifting* qualities to show why the
sliding window exists.

Run with::

    python examples/policy_comparison.py
"""

from __future__ import annotations

from repro.bandits import (
    EpsilonFirstPolicy,
    EpsilonGreedyPolicy,
    OptimalPolicy,
    RandomPolicy,
    SlidingWindowUCBPolicy,
    ThompsonSamplingPolicy,
    UCBPolicy,
)
from repro.quality import DriftingQuality
from repro.sim import SimulationConfig, TradingSimulator


def print_comparison(title: str, comparison) -> None:
    print(f"--- {title} ---")
    print(f"{'policy':>12} {'revenue':>12} {'regret':>10} "
          f"{'PoC/round':>10} {'PoS/round':>10}")
    for name, run in comparison.runs.items():
        print(f"{name:>12} {run.total_realized_revenue:>12.1f} "
              f"{run.final_regret:>10.1f} {run.mean_consumer_profit:>10.2f} "
              f"{run.mean_seller_profit:>10.3f}")
    print()


def main() -> None:
    config = SimulationConfig(
        num_sellers=80, num_selected=8, num_rounds=4_000, seed=5
    )

    # Stationary qualities: the paper's setting.
    simulator = TradingSimulator(config)
    qualities = simulator.population.expected_qualities
    policies = [
        OptimalPolicy(qualities),
        UCBPolicy(),
        EpsilonFirstPolicy(0.1),
        RandomPolicy(),
        EpsilonGreedyPolicy(0.1),
        ThompsonSamplingPolicy(),
        SlidingWindowUCBPolicy(window=800),
    ]
    print_comparison("stationary qualities", simulator.compare(policies))

    # Drifting qualities (the Definition-3 remark): the sliding window
    # tracks the drift while vanilla UCB averages over stale history.
    # Both use a smaller exploration coefficient than the paper's K+1 —
    # windowed counts are small, so the K+1 radius would force the
    # sliding-window policy into near-permanent exploration.
    drift_config = config.derive(
        num_sellers=40, num_selected=8, num_rounds=8_000
    )
    base_sim = TradingSimulator(drift_config)
    drift_qualities = base_sim.population.expected_qualities
    drifting = DriftingQuality(
        drift_qualities, amplitude=0.35, period=2_000.0, phase_seed=3
    )
    drift_sim = TradingSimulator(drift_config,
                                 population=base_sim.population,
                                 quality_model=drifting)
    drift_policies = [
        OptimalPolicy(drift_qualities),
        UCBPolicy(exploration_coefficient=0.5),
        SlidingWindowUCBPolicy(window=800, exploration_coefficient=0.5),
        RandomPolicy(),
    ]
    comparison = drift_sim.compare(drift_policies)
    print_comparison("drifting qualities (non-stationary)", comparison)
    sw = comparison["sw-ucb"].total_realized_revenue
    ucb = comparison["CMAB-HS"].total_realized_revenue
    print(f"sliding-window vs vanilla UCB revenue under drift: "
          f"{sw:,.0f} vs {ucb:,.0f} "
          f"({(sw / ucb - 1.0):+.1%})")


if __name__ == "__main__":
    main()
