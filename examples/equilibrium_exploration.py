"""Explore the three-stage Stackelberg game of one trading round.

Builds a single round's game (10 selected sellers, paper parameters),
solves it in closed form and numerically, certifies the Stackelberg
Equilibrium by deviation search, and sweeps the consumer price to show
where the SE point sits on the profit curve (the Fig. 13 picture).

Run with::

    python examples/equilibrium_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    ClosedFormStackelbergSolver,
    FormulaVariant,
    verify_equilibrium,
)
from repro.experiments import build_round_game
from repro.game import NumericalStackelbergSolver, consumer_price_sweep


def main() -> None:
    setup = build_round_game(k=10, omega=1_000.0, seed=3)
    game = setup.game

    closed = ClosedFormStackelbergSolver()
    numeric = NumericalStackelbergSolver()
    cf = closed.solve(game)
    nm = numeric.solve(game)
    paper = ClosedFormStackelbergSolver(
        variant=FormulaVariant.PAPER
    ).solve(game)

    print("=== solving one round's hierarchical Stackelberg game ===")
    print(f"{'solver':>22} {'p^J*':>9} {'p*':>8} {'PoC':>10} {'PoP':>9}")
    for name, solution in (
        ("closed form (derived)", cf),
        ("numerical", nm),
        ("closed form (paper)", paper),
    ):
        print(f"{name:>22} {solution.profile.service_price:>9.4f} "
              f"{solution.profile.collection_price:>8.4f} "
              f"{solution.consumer_profit:>10.2f} "
              f"{solution.platform_profit:>9.2f}")
    print()
    print("note: the 'paper' variant keeps Theorem 15's printed sign on B;")
    print("      the derived variant matches the numerical argmax (above).")
    print()

    # Certify the equilibrium: no party can gain by deviating.
    report = verify_equilibrium(game, cf.profile, closed.cascade)
    print("SE verification:", report.describe())
    print()

    # Where does the SE sit on the consumer's profit curve?
    prices = np.linspace(1.0, 40.0, 40)
    curves = consumer_price_sweep(game, prices, closed.cascade)
    print("consumer profit versus p^J (SE marked with *):")
    se_price = cf.profile.service_price
    for price, poc in zip(curves.sweep_values, curves.consumer):
        bar = "#" * max(int(poc / 80.0), 0)
        marker = " *" if abs(price - se_price) == min(
            abs(curves.sweep_values - se_price)
        ) else ""
        print(f"  p^J={price:5.1f}  PoC={poc:9.2f}  {bar}{marker}")


if __name__ == "__main__":
    main()
