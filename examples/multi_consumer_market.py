"""A data-trading market with several concurrent consumers.

The paper's Fig. 1 shows one platform brokering for multiple consumers;
its evaluation instantiates just one.  This example runs three consumers
with different valuation scales against a shared seller population and
compares the platform's seller-allocation strategies on welfare and
fairness.

Run with::

    python examples/multi_consumer_market.py
"""

from __future__ import annotations

import numpy as np

from repro import SellerPopulation
from repro.market import (
    ConsumerSpec,
    MarketSimulator,
    RandomPriorityAllocation,
    RichestFirstAllocation,
    SnakeDraftAllocation,
)


def main() -> None:
    population = SellerPopulation.random(80, np.random.default_rng(13))
    consumers = [
        ConsumerSpec(consumer_id=0, omega=1_400.0, k=10),  # data-hungry lab
        ConsumerSpec(consumer_id=1, omega=1_000.0, k=8),   # city department
        ConsumerSpec(consumer_id=2, omega=600.0, k=6),     # startup
    ]
    simulator = MarketSimulator(
        population, consumers, num_pois=8, seed=13
    )
    print("=== multi-consumer crowdsensing market ===")
    print(f"sellers: {len(population)}, consumers: {len(consumers)}, "
          f"sellers allocated per round: {simulator.total_demand}")
    print()

    strategies = [
        RichestFirstAllocation(),
        SnakeDraftAllocation(),
        RandomPriorityAllocation(),
    ]
    outcomes = simulator.compare(strategies, num_rounds=2_000)

    header = (f"{'strategy':>16} {'welfare':>12} {'platform':>10} "
              f"{'fair.gap':>9}  per-consumer profit")
    print(header)
    print("-" * (len(header) + 24))
    for name, result in outcomes.items():
        totals = result.consumer_totals()
        per_consumer = "  ".join(
            f"c{cid}:{total:,.0f}" for cid, total in sorted(totals.items())
        )
        print(f"{name:>16} {result.total_welfare():>12,.0f} "
              f"{float(result.platform_profit.sum()):>10,.0f} "
              f"{result.fairness_gap():>9,.0f}  {per_consumer}")

    print()
    richest = outcomes["richest-first"]
    snake = outcomes["snake-draft"]
    print("richest-first maximises value-weighted welfare "
          f"({richest.total_welfare():,.0f} vs snake "
          f"{snake.total_welfare():,.0f}) by feeding the highest-omega "
          "consumer the best sellers;")
    print("snake-draft narrows the allocated-quality spread "
          "(mean quality per consumer, last 200 rounds):")
    for name, result in outcomes.items():
        qualities = [
            result.consumer_mean_quality[spec.consumer_id][-200:].mean()
            for spec in consumers
        ]
        print(f"  {name:>16}: "
              + "  ".join(f"{q:.3f}" for q in qualities))


if __name__ == "__main__":
    main()
