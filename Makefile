# Convenience targets for the CMAB-HS reproduction.

PYTHON ?= python

.PHONY: install test bench figures figures-paper-scale examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure (+ extensions) at reduced scale.
figures:
	$(PYTHON) -m repro run all

# The paper's Table II sizes — expect tens of minutes.
figures-paper-scale:
	$(PYTHON) -m repro run all --paper-scale

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks figure_results
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
