# Convenience targets for the CMAB-HS reproduction.

PYTHON ?= python

.PHONY: install test bench lint figures figures-paper-scale examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Static analysis: the in-tree determinism linter always runs (stdlib
# only); ruff and mypy run when installed (pip install -e '.[dev]').
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint --flow --jobs 4 \
		--baseline lint-baseline.json src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[dev]')"; \
	fi
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --config-file pyproject.toml; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[dev]')"; \
	fi

# Regenerate every paper table/figure (+ extensions) at reduced scale.
figures:
	$(PYTHON) -m repro run all

# The paper's Table II sizes — expect tens of minutes.
figures-paper-scale:
	$(PYTHON) -m repro run all --paper-scale

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks figure_results
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
