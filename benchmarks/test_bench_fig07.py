"""Bench: Fig. 7 — total revenue and regret versus total rounds N.

Paper shapes validated: revenues grow with N and are ordered
optimal >= learning policies > random; CMAB-HS regret is sublinear while
random's is linear; CMAB-HS regret stays far below random's.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_fig7_revenue_regret_vs_n(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig7", scale)
    print()
    print(result.to_text())

    optimal = result.series("total_revenue", "optimal").y
    cmabhs = result.series("total_revenue", "CMAB-HS").y
    random = result.series("total_revenue", "random").y
    # Revenue ordering and growth.
    assert np.all(np.diff(optimal) > 0.0)
    assert np.all(optimal >= cmabhs)
    assert np.all(cmabhs > random)

    # Regret: optimal zero; CMAB-HS sublinear; random linear and worst.
    np.testing.assert_allclose(result.series("regret", "optimal").y, 0.0)
    cmabhs_regret = result.series("regret", "CMAB-HS")
    random_regret = result.series("regret", "random")
    assert np.all(cmabhs_regret.y < random_regret.y)
    cmabhs_rates = cmabhs_regret.y / cmabhs_regret.x
    assert cmabhs_rates[-1] < cmabhs_rates[0]
    random_rates = random_regret.y / random_regret.x
    assert random_rates.max() < 1.5 * random_rates.min()
