"""Bench: Fig. 17 — profits versus the platform cost coefficient theta.

Paper shapes validated: every party's profit decreases with theta,
sharply at first and flattening out.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig17_profit_vs_theta(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig17", scale)
    print()
    print(result.to_text())

    for series in result.panel("profits"):
        assert series.y[0] > series.y[-1], series.label

    poc = result.series("profits", "PoC")
    early = poc.y[0] - poc.y[poc.y.size // 3]
    late = poc.y[2 * poc.y.size // 3] - poc.y[-1]
    assert early > late
