"""Benches for the extension experiments (beyond the paper).

* ``ext-drift`` — sliding-window UCB under drifting qualities;
* ``ext-market`` — multi-consumer allocation strategies;
* budgeted trading — revenue within a fixed consumer budget.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.bandits.policies import OptimalPolicy, RandomPolicy, UCBPolicy
from repro.experiments import run_experiment
from repro.extensions.budget import run_budgeted_comparison
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator


def test_ext_drift(benchmark, scale):
    result = run_once(benchmark, run_experiment, "ext-drift", scale)
    print()
    print(result.to_text())
    gains = result.series("window_gain", "sw-ucb gain over vanilla (%)")
    # The window's relative standing improves as drift grows.
    assert gains.y[-1] > gains.y[0]
    # Learning (either variant) beats random at every amplitude.
    random = result.series("total_revenue", "random").y
    vanilla = result.series("total_revenue", "CMAB-HS").y
    assert np.all(vanilla > random)


def test_ext_market(benchmark, scale):
    result = run_once(benchmark, run_experiment, "ext-market", scale)
    print()
    print(result.to_text())
    welfare = result.series("welfare", "total welfare").y
    # richest-first (index 0) maximises value-weighted welfare.
    assert int(np.argmax(welfare)) == 0
    # Every strategy produces positive welfare and platform profit.
    assert np.all(welfare > 0.0)
    platform = result.series("welfare", "platform profit").y
    assert np.all(platform > 0.0)


def test_ext_coverage(benchmark, scale):
    result = run_once(benchmark, run_experiment, "ext-coverage", scale)
    print()
    print(result.to_text())
    blind = result.series("coverage_revenue", "top-K UCB").y
    aware = result.series("coverage_revenue", "coverage-ucb").y
    blind_cov = result.series("mean_poi_coverage", "top-K UCB").y
    aware_cov = result.series("mean_poi_coverage", "coverage-ucb").y
    # At the sparsest density, coverage-awareness pays off clearly.
    assert aware[0] > 1.1 * blind[0]
    assert aware_cov[0] > blind_cov[0]
    # The advantage vanishes as coverage densifies.
    assert abs(aware[-1] / blind[-1] - 1.0) < 0.05
    # The aware policy keeps (near-)full coverage everywhere.
    assert np.all(aware_cov > 0.99)


def test_ext_price_of_anarchy(benchmark, scale):
    result = run_once(benchmark, run_experiment, "ext-poa", scale)
    print()
    print(result.to_text())
    poa = result.series("price_of_anarchy", "optimal / SE").y
    assert np.all(poa >= 1.0 - 1e-9)
    # The hierarchy is quite efficient at paper parameters but never
    # exactly optimal: the SE under-provides sensing time.
    se_time = result.series("total_sensing_time", "SE").y
    opt_time = result.series("total_sensing_time", "social optimum").y
    assert np.all(opt_time > se_time)
    # Welfare grows with omega for both regimes.
    for label in ("SE welfare", "optimal welfare"):
        series = result.series("welfare", label)
        assert np.all(np.diff(series.y) > 0.0), label


def test_ext_replication(benchmark, scale):
    result = run_once(benchmark, run_experiment, "ext-replication", scale)
    print()
    print(result.to_text())
    means = result.series("revenue", "mean").y
    # Ordering stable under replication: optimal > CMAB-HS > random
    # (policy indices 0, 1, 4 per the x_label).
    assert means[0] > means[1] > means[4]
    note = next(n for n in result.notes if "separation" in n)
    separation = float(note.split(":")[1].split("pooled")[0])
    assert separation > 3.0


def test_ext_budgeted_trading(benchmark, scale):
    def compare():
        config = SimulationConfig(num_sellers=40, num_selected=6,
                                  num_pois=5, num_rounds=1_500, seed=9)
        simulator = TradingSimulator(config)
        policies = [
            OptimalPolicy(simulator.population.expected_qualities),
            UCBPolicy(),
            RandomPolicy(),
        ]
        return run_budgeted_comparison(simulator, policies,
                                       budget=100_000.0)

    comparison = run_once(benchmark, compare)
    print()
    print(f"budget = {comparison.budget:.0f}")
    print(comparison.to_table())
    optimal = comparison.runs["optimal"]
    random = comparison.runs["random"]
    # A budget-limited consumer gets more quality per unit budget from
    # the quality-aware policies.
    assert (optimal.revenue_per_unit_budget
            > random.revenue_per_unit_budget)
