"""Bench: the Section III-D illustrative example (Figs. 4-6)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_example_walkthrough(benchmark, scale):
    result = run_once(benchmark, run_experiment, "example", scale)
    print()
    print(result.to_text())
    # 10 rounds; the initial explore-all round pays p_max to every seller.
    strategies = result.panel("strategies")
    p_star = next(s for s in strategies if s.label == "p*")
    assert p_star.y.size == 10
    assert p_star.y[0] == 5.0
    # Exactly 2 of 3 sellers are selected in each round after the first.
    selections = result.panel("selections")
    per_round = np.sum([s.y for s in selections], axis=0)
    assert per_round[0] == 3
    assert np.all(per_round[1:] == 2)
