"""Bench: Fig. 13 — profits versus the consumer's price p^J.

Paper shapes validated: PoC is unimodal in p^J with its peak at the SE
point; bigger omega lifts both the peak profit and its location; PoP and
PoS(s) increase monotonically in p^J.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_fig13_poc_vs_price(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig13", scale)
    print()
    print(result.to_text())

    peaks, locations = [], []
    for series in result.panel("poc_by_omega"):
        peak = int(np.argmax(series.y))
        assert 0 < peak < series.y.size - 1, series.label
        peaks.append(series.y[peak])
        locations.append(series.x[peak])
    assert peaks == sorted(peaks)
    assert locations == sorted(locations)

    assert np.all(np.diff(result.series("profits", "PoP").y) > 0.0)
    for label in ("PoS-3", "PoS-6", "PoS-8"):
        assert np.all(
            np.diff(result.series("profits", label).y) >= -1e-9
        ), label
