"""Ablation benches for the design choices DESIGN.md calls out.

* confidence-width scaling: the paper's ``K+1`` coefficient versus
  smaller widths;
* skipping the initial explore-all round;
* the Stage-2 formula variants (derived versus the paper's printed sign);
* closed-form versus numerical game solver (accuracy and speed).
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import run_once

from repro.bandits.policies import UCBPolicy
from repro.core.incentive import (
    ClosedFormStackelbergSolver,
    FormulaVariant,
)
from repro.experiments.hs_setup import build_round_game
from repro.game.stackelberg import NumericalStackelbergSolver
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator

ABLATION_CONFIG = SimulationConfig(
    num_sellers=60, num_selected=6, num_pois=5, num_rounds=3_000, seed=17
)


def test_ablation_confidence_width(benchmark):
    """Sweep the UCB coefficient; the paper's K+1 over-explores at small N."""

    def sweep():
        simulator = TradingSimulator(ABLATION_CONFIG)
        results = {}
        for coefficient in (None, 2.0, 0.5, 0.1):
            label = "K+1" if coefficient is None else f"c={coefficient:g}"
            run = simulator.run(
                UCBPolicy(exploration_coefficient=coefficient)
            )
            results[label] = run.final_regret
        return results

    results = run_once(benchmark, sweep)
    print()
    print("confidence-width ablation (final regret, N=3000):")
    for label, regret in results.items():
        print(f"  {label:>8}: {regret:12.1f}")
    # Narrower confidence widths exploit sooner at this horizon.
    assert results["c=0.5"] < results["K+1"]


def test_ablation_initial_full_exploration(benchmark):
    """Explore-all round versus letting infinite UCB stagger exploration."""

    def compare():
        simulator = TradingSimulator(ABLATION_CONFIG)
        with_init = simulator.run(
            UCBPolicy(initial_full_exploration=True)
        )
        without_init = simulator.run(
            UCBPolicy(initial_full_exploration=False)
        )
        return with_init, without_init

    with_init, without_init = run_once(benchmark, compare)
    print()
    print("initial exploration ablation (N=3000):")
    print(f"  explore-all round 0: regret {with_init.final_regret:10.1f}")
    print(f"  staggered (no init): regret {without_init.final_regret:10.1f}")
    # Both must stay learning policies: far below a linear-regret run.
    for run in (with_init, without_init):
        rates = run.regret / np.arange(1, run.num_rounds + 1)
        assert rates[-1] < rates[run.num_rounds // 10]


def test_ablation_formula_variants(benchmark):
    """Derived versus paper-printed Stage-2 constant at the equilibrium."""

    def evaluate():
        rows = []
        for seed in range(5):
            setup = build_round_game(seed=seed)
            derived = ClosedFormStackelbergSolver(
                variant=FormulaVariant.DERIVED
            ).solve(setup.game)
            paper = ClosedFormStackelbergSolver(
                variant=FormulaVariant.PAPER
            ).solve(setup.game)
            rows.append((seed, derived.consumer_profit,
                         paper.consumer_profit))
        return rows

    rows = run_once(benchmark, evaluate)
    print()
    print("stage-2 formula ablation (consumer profit at equilibrium):")
    print(f"  {'seed':>4} {'derived':>12} {'paper':>12}")
    for seed, derived, paper in rows:
        print(f"  {seed:>4} {derived:>12.2f} {paper:>12.2f}")
    # The derived constant is consumer-optimal: it never loses.
    for __, derived, paper in rows:
        assert derived >= paper - 1e-6


def test_ablation_lemma18_counters(benchmark):
    """Certify a run's selection counters against Lemma 18 per seller."""
    from repro.core.diagnostics import counter_report

    def certify():
        config = SimulationConfig(num_sellers=20, num_selected=4,
                                  num_pois=5, num_rounds=4_000, seed=12)
        simulator = TradingSimulator(config)
        run = simulator.run(UCBPolicy())
        return counter_report(
            simulator.population.expected_qualities,
            run.selection_counts, k=4, num_pois=5, num_rounds=4_000,
        )

    report = run_once(benchmark, certify)
    print()
    print("Lemma-18 counter certification (M=20, K=4, N=4000):")
    print(report.to_table())
    print(f"worst bound utilisation: {report.worst_utilisation:.3f}")
    assert report.all_within_bounds
    assert report.worst_utilisation < 1.0


def test_ablation_poi_heterogeneity(benchmark):
    """CMAB-HS robustness to per-PoI quality offsets (Def.-3 remark)."""
    from repro.quality.distributions import PoiHeterogeneousQuality

    def compare():
        config = ABLATION_CONFIG
        base = TradingSimulator(config)
        qualities = base.population.expected_qualities
        rows = {}
        for poi_sigma in (0.0, 0.1, 0.2):
            if poi_sigma == 0.0:
                simulator = base
            else:
                model = PoiHeterogeneousQuality(
                    qualities, num_pois=config.num_pois,
                    poi_sigma=poi_sigma, sigma=config.quality_sigma,
                    offset_seed=3,
                )
                simulator = TradingSimulator(
                    config, population=base.population,
                    quality_model=model,
                )
            run = simulator.run(UCBPolicy())
            rows[poi_sigma] = (run.final_regret,
                               run.final_estimation_error)
        return rows

    rows = run_once(benchmark, compare)
    print()
    print("PoI-heterogeneity ablation (N=3000):")
    print(f"  {'poi_sigma':>9} {'regret':>12} {'est. error':>11}")
    for poi_sigma, (regret, error) in rows.items():
        print(f"  {poi_sigma:>9} {regret:>12.1f} {error:>11.4f}")
    # Per-seller learning stays well-posed: regret within 2x of the
    # homogeneous case even at strong heterogeneity.
    baseline = rows[0.0][0]
    for poi_sigma, (regret, __) in rows.items():
        assert regret < 2.0 * baseline + 1_000.0, poi_sigma


def test_ablation_cost_b6(benchmark):
    """Sweep seller 6's *linear* cost coefficient (Fig. 15/16 analogue)."""

    def sweep():
        solver = ClosedFormStackelbergSolver()
        values = np.linspace(0.05, 3.0, 13)
        pos6, sos6, soc = [], [], []
        for b6 in values:
            setup = build_round_game(seed=0)
            game = setup.game
            cost_b = game.cost_b.copy()
            cost_b[6] = b6
            from repro.game.profits import GameInstance

            modified = GameInstance(
                qualities=game.qualities, cost_a=game.cost_a,
                cost_b=cost_b, theta=game.theta, lam=game.lam,
                omega=game.omega,
                service_price_bounds=game.service_price_bounds,
                collection_price_bounds=game.collection_price_bounds,
            )
            solved = solver.solve(modified)
            pos6.append(float(solved.seller_profits[6]))
            sos6.append(float(solved.profile.sensing_times[6]))
            soc.append(solved.profile.service_price)
        return values, np.array(pos6), np.array(sos6), np.array(soc)

    values, pos6, sos6, soc = run_once(benchmark, sweep)
    print()
    print("b_6 ablation (single round, K=10):")
    print(f"  {'b_6':>6} {'PoS-6':>9} {'SoS-6':>8} {'SoC':>8}")
    for row in zip(values, pos6, sos6, soc):
        print(f"  {row[0]:>6.2f} {row[1]:>9.4f} {row[2]:>8.4f} "
              f"{row[3]:>8.4f}")
    # A costlier linear term shrinks seller 6's effort and profit.
    assert pos6[-1] < pos6[0]
    assert sos6[-1] < sos6[0]


def test_ablation_closed_form_vs_numeric(benchmark):
    """Closed-form solver equals the numerical one and is far faster."""
    setup = build_round_game(seed=3)
    closed_solver = ClosedFormStackelbergSolver()
    numeric_solver = NumericalStackelbergSolver()

    closed = benchmark(closed_solver.solve, setup.game)
    numeric = numeric_solver.solve(setup.game)
    assert closed.consumer_profit == pytest.approx(
        numeric.consumer_profit, rel=1e-3
    )
    assert closed.profile.service_price == pytest.approx(
        numeric.profile.service_price, rel=2e-2
    )
