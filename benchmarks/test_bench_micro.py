"""Micro-benchmarks of the per-round hot paths.

These are proper statistical benchmarks (many iterations) of the
operations a trading round is made of — the numbers that determine how
long a 2*10^5-round paper-scale sweep takes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import record_benchmark

from repro.bandits.policies import UCBPolicy
from repro.core.incentive import solve_round_fast
from repro.core.state import LearningState
from repro.quality.distributions import TruncatedGaussianQuality
from repro.quality.sampler import QualitySampler
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator

M, K, L = 300, 10, 10


@pytest.fixture(scope="module")
def round_inputs():
    rng = np.random.default_rng(0)
    return {
        "qualities": rng.uniform(0.3, 1.0, K),
        "cost_a": rng.uniform(0.1, 0.5, K),
        "cost_b": rng.uniform(0.1, 1.0, K),
    }


def test_solve_round_fast(benchmark, round_inputs):
    """Closed-form HS game solve for one round (K=10)."""
    result = benchmark(
        solve_round_fast,
        round_inputs["qualities"], round_inputs["cost_a"],
        round_inputs["cost_b"], 0.1, 1.0, 1_000.0,
        (0.0, 1_000.0), (0.0, 1_000.0),
    )
    assert result[0] > 0.0


def test_ucb_selection(benchmark):
    """UCB index computation + top-K pick over M=300 sellers."""
    state = LearningState(M)
    rng = np.random.default_rng(0)
    state.update(np.arange(M), rng.uniform(0.0, L, M), L)
    policy = UCBPolicy()
    policy.reset(M, K, 1_000)
    selected = benchmark(policy.select, 5, state, rng)
    assert selected.size == K


def test_state_update(benchmark):
    """Folding one round of observations into the learning state."""
    state = LearningState(M)
    sellers = np.arange(K)
    sums = np.random.default_rng(0).uniform(0.0, L, K)

    def update():
        state.update(sellers, sums, L)

    benchmark(update)


def test_quality_sampling(benchmark):
    """Drawing K x L truncated-Gaussian observations."""
    model = TruncatedGaussianQuality(
        np.random.default_rng(0).uniform(0.1, 1.0, M)
    )
    sampler = QualitySampler(model, L, np.random.default_rng(1))
    sellers = np.arange(K)
    observations = benchmark(sampler.sample_round, sellers)
    assert observations.per_poi.shape == (K, L)


def test_engine_round_throughput(benchmark):
    """Full engine rounds (selection + game + learning), per 500 rounds.

    With ``REPRO_BENCH_RECORD=1`` the best block also lands in the
    benchstore under ``engine.scalar.m300`` — the same name the
    committed baseline uses, so ``repro bench compare`` judges this
    exact workload.
    """
    config = SimulationConfig(num_sellers=M, num_selected=K, num_pois=L,
                              num_rounds=500, seed=0)
    simulator = TradingSimulator(config)
    block_times: list[float] = []

    def run_block():
        start = time.perf_counter()
        run = simulator.run(UCBPolicy())
        block_times.append(time.perf_counter() - start)
        return run

    result = benchmark.pedantic(run_block, rounds=3, iterations=1)
    assert result.num_rounds == 500
    record_benchmark("engine.scalar.m300", rounds=500,
                     wall_s=min(block_times), sellers=M, selected=K)


def _engine_throughput(benchmark, *, backend: str, sellers: int,
                       num_rounds: int, bench_name: str,
                       bench_rounds: int = 3):
    """Time full engine rounds at scale and record a benchstore bar.

    The scalar and vector bars share this harness so their workloads
    differ only in ``backend`` — the ratio between them is the kernel
    speedup, not a harness artefact.
    """
    config = SimulationConfig(num_sellers=sellers, num_selected=K,
                              num_pois=L, num_rounds=num_rounds, seed=0)
    simulator = TradingSimulator(config, backend=backend)
    block_times: list[float] = []

    def run_block():
        start = time.perf_counter()
        run = simulator.run(UCBPolicy())
        block_times.append(time.perf_counter() - start)
        return run

    result = benchmark.pedantic(run_block, rounds=bench_rounds,
                                iterations=1)
    assert result.num_rounds == num_rounds
    record_benchmark(bench_name, rounds=num_rounds,
                     wall_s=min(block_times), sellers=sellers, selected=K,
                     extra={"backend": backend})
    return result


def test_engine_round_throughput_scalar_m10k(benchmark):
    """Scalar engine rounds at M=10k — the vector bars' reference.

    At this scale the scalar per-seller python loops dominate; the bar
    exists so the ``engine.vector.m10k`` speedup is measured against
    the same machine and workload, not inferred.
    """
    _engine_throughput(benchmark, backend="scalar", sellers=10_000,
                       num_rounds=120, bench_name="engine.scalar.m10k")


def test_engine_round_throughput_vector_m10k(benchmark):
    """Vectorized engine rounds at M=10k (the tentpole's target scale).

    With ``REPRO_BENCH_RECORD=1`` the best block lands in the benchstore
    under ``engine.vector.m10k``; ``repro bench compare`` then gates
    vector-path regressions against the committed baseline.
    """
    _engine_throughput(benchmark, backend="vector", sellers=10_000,
                       num_rounds=500, bench_name="engine.vector.m10k")


def test_engine_round_throughput_vector_m100k(benchmark):
    """Vectorized engine rounds at M=100k — the scale headroom bar."""
    _engine_throughput(benchmark, backend="vector", sellers=100_000,
                       num_rounds=120, bench_name="engine.vector.m100k",
                       bench_rounds=2)
