"""Bench: Fig. 11 — total revenue and regret versus selected sellers K.

Paper shapes validated: both revenue and regret increase with K, and the
learning policies' regret grows much slower than random's.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_fig11_revenue_regret_vs_k(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig11", scale)
    print()
    print(result.to_text())

    for policy in ("optimal", "CMAB-HS", "random"):
        revenue = result.series("total_revenue", policy).y
        assert np.all(np.diff(revenue) > 0.0), policy

    cmabhs = result.series("regret", "CMAB-HS").y
    random = result.series("regret", "random").y
    assert np.all(cmabhs < random)
    # Regret grows with K for the quality-blind policy.
    assert random[-1] > random[0]
