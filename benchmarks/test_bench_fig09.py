"""Bench: Fig. 9 — total revenue and regret versus number of sellers M.

Paper shapes validated: revenue/regret stay roughly stable as the
candidate pool grows (the selected top-K dominates), and the learning
policies beat random at every M.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_fig9_revenue_regret_vs_m(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig9", scale)
    print()
    print(result.to_text())

    optimal = result.series("total_revenue", "optimal").y
    cmabhs = result.series("total_revenue", "CMAB-HS").y
    random = result.series("total_revenue", "random").y
    # Roughly stable in M: spread well under 2x while M grows 6x.
    assert optimal.max() < 1.3 * optimal.min()
    assert cmabhs.max() < 1.3 * cmabhs.min()
    # Learning beats random at every M.
    assert np.all(cmabhs > random)
    assert np.all(
        result.series("regret", "CMAB-HS").y
        < result.series("regret", "random").y
    )
