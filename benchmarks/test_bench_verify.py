"""Verification subsystem benchmarks: strict-mode overhead and oracle cost.

Strict mode re-derives every round's invariants (stationarity, IR,
FOCs, count conservation, a brute-force top-K cross-check), so it is
expected to cost more than a default run — these benchmarks quantify
how much, so CI budgets and ``repro verify`` defaults stay honest.
"""

from __future__ import annotations

from conftest import run_once

from repro.bandits.policies import UCBPolicy
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator
from repro.verify import GOLDEN_CASES, compute_golden, run_oracle_suite

_CONFIG = dict(num_sellers=100, num_selected=8, num_pois=10,
               num_rounds=400, seed=21)


def _run(strict: bool):
    simulator = TradingSimulator(SimulationConfig(**_CONFIG))
    return simulator.run(UCBPolicy(), strict=strict)


def test_engine_default(benchmark):
    """Baseline: the engine without invariant checking."""
    metrics = benchmark.pedantic(_run, args=(False,), rounds=3, iterations=1)
    assert metrics.num_rounds == _CONFIG["num_rounds"]


def test_engine_strict(benchmark):
    """The same run with every per-round invariant checked."""
    metrics = benchmark.pedantic(_run, args=(True,), rounds=3, iterations=1)
    assert metrics.num_rounds == _CONFIG["num_rounds"]


def test_oracle_suite_edge_cases(benchmark):
    """The deterministic corner-case oracles (``--oracle-cases 0``)."""
    report = run_once(benchmark, run_oracle_suite, seed=0, num_cases=0)
    assert report.passed, [c.describe() for c in report.failures()]


def test_golden_recompute(benchmark):
    """Recomputing the cheapest checked-in golden case."""
    case = min(GOLDEN_CASES, key=lambda c: c.num_rounds * c.num_sellers)
    payload = run_once(benchmark, compute_golden, case)
    assert payload["case"]["name"] == case.name
