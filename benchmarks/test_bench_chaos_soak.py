"""Soak bench: a sustained chaos drill across every resilience layer.

Runs a longer chaos campaign than the tier-1 smoke — more rounds, a
bigger fault budget, process faults included — and times it, printing
the per-round fault mix.  The bench *fails* on any recovery-equivalence
violation: a soak that ends with silently wrong numbers is not a
performance number worth reporting.
"""

from __future__ import annotations

import os

from conftest import run_once

from repro.obs import MetricsRegistry
from repro.resilience.chaos import ChaosConfig, run_chaos


def test_chaos_soak(benchmark):
    rounds = 10 if os.environ.get("REPRO_FULL_SCALE") else 5
    config = ChaosConfig(seed=0, rounds=rounds, budget=4,
                         include_process_faults=True)
    registry = MetricsRegistry()

    report = run_once(benchmark, run_chaos, config, metrics=registry)

    print()
    print(report.to_text())
    print(f"counters: {dict(sorted(registry.counters.items()))}")
    assert len(report.rounds) == rounds
    assert report.num_faults_applied >= rounds  # >= one real fault each
    assert report.passed, report.to_text()
