"""Bench: Fig. 15 — profits versus seller 6's cost coefficient a_6.

Paper shapes validated: PoC and PoS-6 decline sharply near a_6 = 0 and
flatten; the rival sellers' profits rise.  PoP is nearly flat under the
corrected Stage-2 formula (the paper's visible PoP decline reproduces
only under its printed sign variant — see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig15_profit_vs_cost_a6(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig15", scale)
    print()
    print(result.to_text())

    for label in ("PoC", "PoS-6"):
        series = result.series("profits", label)
        assert series.y[0] > series.y[-1], label
        early_drop = series.y[0] - series.y[series.y.size // 4]
        late_drop = series.y[3 * series.y.size // 4] - series.y[-1]
        assert early_drop > 3.0 * abs(late_drop), label

    for label in ("PoS-3", "PoS-8"):
        series = result.series("profits", label)
        assert series.y[-1] > series.y[0], label

    pop = result.series("profits", "PoP")
    assert (pop.y.max() - pop.y.min()) < 0.02 * abs(pop.y.mean())
