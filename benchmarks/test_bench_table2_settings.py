"""Bench: Table II — simulation settings regeneration."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_table2_settings(benchmark, scale):
    result = run_once(benchmark, run_experiment, "table2", scale)
    print()
    print(result.to_text())
    assert any("all defaults match Table II" in note
               for note in result.notes)
