"""Bench: Fig. 10 — Delta-profits versus number of sellers M.

Paper shapes validated: the Delta-metrics stay roughly stable in M and
the learning policies' gaps stay below random's at every M.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_fig10_delta_profits_vs_m(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig10", scale)
    print()
    print(result.to_text())

    for panel in ("delta_poc", "delta_pos"):
        cmabhs = result.series(panel, "CMAB-HS").y
        random = result.series(panel, "random").y
        assert np.all(cmabhs < random), panel
    # Random's consumer gap widens (or stays high) as the pool grows —
    # a random pick drifts further from the enlarging top-K.
    random_poc = result.series("delta_poc", "random").y
    assert random_poc[-1] > 0.0
