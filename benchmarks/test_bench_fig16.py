"""Bench: Fig. 16 — strategies versus seller 6's cost coefficient a_6.

Paper shapes validated: SoC and SoP rise with a_6 (prices compensate the
costlier seller); SoS-6 falls while the rivals' sensing times rise.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig16_strategy_vs_cost_a6(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig16", scale)
    print()
    print(result.to_text())

    for label in ("SoC (p^J*)", "SoP (p*)"):
        series = result.series("prices", label)
        assert series.y[-1] > series.y[0], label

    sos6 = result.series("sensing_times", "SoS-6 (tau*)")
    assert sos6.y[-1] < sos6.y[0]
    for label in ("SoS-3 (tau*)", "SoS-8 (tau*)"):
        series = result.series("sensing_times", label)
        assert series.y[-1] > series.y[0], label
