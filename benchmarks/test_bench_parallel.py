"""Parallel-runtime benchmarks: bit-identity and measured speedup.

Two contracts from the parallel execution runtime:

* **Bit-identity** — ``replicate_comparison(..., workers=4)`` returns
  exactly the serial sweep's floats (asserted on the raw
  ``MetricSummary`` dataclasses, no tolerance).  This always runs.
* **Speedup** — fanning work out must actually overlap it:

  - ``test_cpu_speedup_at_four_workers`` measures a real CMAB sweep at
    4 workers and asserts >= 1.8x over serial.  CPU-bound overlap
    needs 4 physical cores, so the test skips on smaller hosts (CI
    runners with 1-2 cores cannot exhibit it, honestly or otherwise).
  - ``test_blocking_task_overlap_speedup`` asserts the same >= 1.8x
    bar with blocking (sleeping) tasks, which overlap regardless of
    core count — so the scheduling machinery itself is benchmarked on
    every host, including single-core containers.

Wall-clock methodology: each variant is measured twice and the minimum
kept (interference on shared hosts only ever inflates a measurement).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from conftest import record_benchmark

from repro.bandits.policies import OptimalPolicy, RandomPolicy, UCBPolicy
from repro.parallel import ParallelExecutor
from repro.sim.config import SimulationConfig
from repro.sim.replication import replicate_comparison

#: Sweep sized so each seed is heavy enough to amortise process spawn
#: and queue traffic (~seconds of total serial work).
_CONFIG = SimulationConfig(num_sellers=20, num_selected=5, num_pois=5,
                           num_rounds=300, seed=0)
_NUM_SEEDS = 8

_SPEEDUP_FLOOR = 1.8
_WORKERS = 4


def _factory(qualities: np.ndarray):
    return [OptimalPolicy(qualities), UCBPolicy(), RandomPolicy()]


def _best_of(times: int, func):
    """Minimum wall-clock over ``times`` runs (noise is one-sided)."""
    best = float("inf")
    for __ in range(times):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


#: Engine rounds one full sweep plays (seeds x rounds x policies) —
#: the denominator of the recorded rounds/sec rates.
_SWEEP_ROUNDS = _NUM_SEEDS * _CONFIG.num_rounds * 3


def test_parallel_replication_bit_identical():
    serial_start = time.perf_counter()
    serial = replicate_comparison(_CONFIG, _factory, num_seeds=_NUM_SEEDS)
    serial_s = time.perf_counter() - serial_start
    parallel_start = time.perf_counter()
    parallel = replicate_comparison(_CONFIG, _factory,
                                    num_seeds=_NUM_SEEDS,
                                    workers=_WORKERS)
    parallel_s = time.perf_counter() - parallel_start
    assert parallel.seeds == serial.seeds
    assert parallel.summaries == serial.summaries
    record_benchmark("sweep.serial", rounds=_SWEEP_ROUNDS,
                     wall_s=serial_s, sellers=_CONFIG.num_sellers,
                     selected=_CONFIG.num_selected,
                     store="BENCH_parallel.json")
    record_benchmark(f"sweep.parallel.w{_WORKERS}", rounds=_SWEEP_ROUNDS,
                     wall_s=parallel_s, sellers=_CONFIG.num_sellers,
                     selected=_CONFIG.num_selected,
                     store="BENCH_parallel.json",
                     extra={"workers": _WORKERS})


@pytest.mark.skipif((os.cpu_count() or 1) < _WORKERS,
                    reason=f"CPU-bound speedup needs >= {_WORKERS} cores")
def test_cpu_speedup_at_four_workers():
    serial = _best_of(2, lambda: replicate_comparison(
        _CONFIG, _factory, num_seeds=_NUM_SEEDS))
    parallel = _best_of(2, lambda: replicate_comparison(
        _CONFIG, _factory, num_seeds=_NUM_SEEDS, workers=_WORKERS))
    speedup = serial / parallel
    print(f"\ncpu sweep: serial {serial:.2f}s, "
          f"{_WORKERS} workers {parallel:.2f}s, speedup {speedup:.2f}x")
    assert speedup >= _SPEEDUP_FLOOR


def _sleepy(payload, context):
    time.sleep(payload)
    return payload


def test_blocking_task_overlap_speedup():
    delays = [0.15] * 8

    def serial_run():
        for delay in delays:
            _sleepy(delay, None)

    def parallel_run():
        executor = ParallelExecutor(_sleepy, workers=_WORKERS,
                                    chunk_size=1)
        results = executor.map(delays)
        assert [r.value for r in results] == delays

    serial = _best_of(2, serial_run)
    parallel = _best_of(2, parallel_run)
    speedup = serial / parallel
    print(f"\nblocking tasks: serial {serial:.2f}s, "
          f"{_WORKERS} workers {parallel:.2f}s, speedup {speedup:.2f}x")
    assert speedup >= _SPEEDUP_FLOOR
