"""Bench: Fig. 8 — Delta-profits versus total rounds N.

Paper shapes validated: the learning policies' Delta-PoC shrinks as N
grows (estimates converge towards the omniscient selection) and random
stays worst throughout.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_fig8_delta_profits_vs_n(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig8", scale)
    print()
    print(result.to_text())

    cmabhs = result.series("delta_poc", "CMAB-HS").y
    random = result.series("delta_poc", "random").y
    # CMAB-HS converges towards the optimal per-round profits.
    assert cmabhs[-1] < cmabhs[0]
    # Random never catches up.
    assert np.all(random > cmabhs)
    # All three Delta panels exist with all four compared policies.
    for panel in ("delta_poc", "delta_pop", "delta_pos"):
        labels = {s.label for s in result.panel(panel)}
        assert labels == {"CMAB-HS", "0.1-first", "0.5-first", "random"}
