"""Bench: Fig. 18 — strategies versus the platform cost coefficient theta.

Paper shapes validated: SoC (p^J*) rises with theta, SoP (p*) falls, and
every tracked seller's sensing time falls with the lowered price.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig18_strategy_vs_theta(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig18", scale)
    print()
    print(result.to_text())

    soc = result.series("prices", "SoC (p^J*)")
    sop = result.series("prices", "SoP (p*)")
    assert soc.y[-1] > soc.y[0]
    assert sop.y[-1] < sop.y[0]
    for series in result.panel("sensing_times"):
        assert series.y[-1] < series.y[0], series.label
