"""Runtime service throughput: churning seller-sessions at scale.

The ISSUE's load bar: a seeded load script drives **over a thousand
seller-sessions** through the ``register -> quote -> trade -> close``
surface of :class:`~repro.runtime.MarketService` in one process, and
the sustained sessions/sec rate lands in ``BENCH_runtime.json``
(recorded with ``REPRO_BENCH_RECORD=1``, gated against the committed
baseline by the benchstore comparison).

The replay is asserted deterministic — running the same script against
a fresh service must reproduce the trade-ledger digest bit for bit —
so the throughput number always measures the same work.
"""

from __future__ import annotations

from conftest import record_benchmark

from repro.runtime import (
    LoadSpec,
    MarketService,
    generate_script,
    replay_script,
)
from repro.sim import SimulationConfig

#: Service shape: 50 population slots, top-5 selection per round.
_CONFIG = SimulationConfig(num_sellers=50, num_selected=5, num_pois=5,
                           num_rounds=2_000, seed=0)

#: The load bar — 1,200 sessions opened and drained, 600 traded rounds.
_SPEC = LoadSpec(seed=0, num_sessions=1_200, max_open=32,
                 rounds_budget=600, max_rounds_per_trade=3)


def _fresh_service() -> MarketService:
    return MarketService(_CONFIG)


def test_runtime_sustains_a_thousand_seller_sessions():
    ops = generate_script(_SPEC)
    report = replay_script(_fresh_service(), ops)

    assert report.sessions_opened >= 1_000
    assert report.sessions_closed == report.sessions_opened
    assert report.ops_skipped == 0  # the script fits the service
    assert report.rounds_traded == _SPEC.rounds_budget
    assert report.sessions_per_s > 0.0

    # Same script, fresh service: bit-identical trade history.
    replay = replay_script(_fresh_service(), ops)
    assert replay.ledger_digest == report.ledger_digest

    record_benchmark("runtime.session_churn",
                     rounds=report.rounds_traded,
                     wall_s=report.wall_s,
                     sellers=_CONFIG.num_sellers,
                     selected=_CONFIG.num_selected,
                     store="BENCH_runtime.json",
                     extra=report.to_dict())
