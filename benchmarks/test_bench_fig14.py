"""Bench: Fig. 14 — profits versus seller 6's sensing-time deviation.

Paper shapes validated: the deviator's profit peaks at its equilibrium
time (SE certification by sweep), the other sellers' profits are
unaffected, and the leaders' profits respond to the deviation.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_fig14_profit_vs_sensing_time(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig14", scale)
    print()
    print(result.to_text())

    pos6 = result.series("profits", "PoS-6")
    note = next(n for n in result.notes if "equilibrium" in n)
    tau_star = float(note.split("=")[1])
    best = float(pos6.x[int(np.argmax(pos6.y))])
    step = float(pos6.x[1] - pos6.x[0])
    assert abs(best - tau_star) <= step + 1e-9

    for label in ("PoS-3", "PoS-8"):
        series = result.series("profits", label)
        np.testing.assert_allclose(series.y, series.y[0])
    assert result.series("profits", "PoC").y.std() > 0.0
    assert result.series("profits", "PoP").y.std() > 0.0
