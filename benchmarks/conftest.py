"""Shared fixtures for the benchmark suite.

Each ``test_bench_figNN`` module regenerates one paper figure/table and
prints its series (captured in ``bench_output.txt`` when run with
``pytest benchmarks/ --benchmark-only | tee ...``).  Scales follow the
``REPRO_FULL_SCALE`` environment variable: unset -> reduced sizes with
the paper's shapes preserved; set -> Table II sizes.
"""

from __future__ import annotations

import pytest

from repro.experiments import Scale


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The benchmark scale (SMALL unless REPRO_FULL_SCALE is set)."""
    return Scale.from_environment()


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
