"""Shared fixtures for the benchmark suite.

Each ``test_bench_figNN`` module regenerates one paper figure/table and
prints its series (captured in ``bench_output.txt`` when run with
``pytest benchmarks/ --benchmark-only | tee ...``).  Scales follow the
``REPRO_FULL_SCALE`` environment variable: unset -> reduced sizes with
the paper's shapes preserved; set -> Table II sizes.

Benchstore recording: with ``REPRO_BENCH_RECORD=1`` every
:func:`run_once` call (and the explicit :func:`record_benchmark`
helpers in the micro/parallel modules) appends a machine-tagged record
— rounds/sec, peak RSS, wall-clock, git SHA — to the history file named
by ``REPRO_BENCH_STORE`` (default ``BENCH_micro.json``).  Unset, the
benchmarks are byte-for-byte the same as before recording existed.
"""

from __future__ import annotations

import os
import resource
import sys
import time

import pytest

from repro.experiments import Scale


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The benchmark scale (SMALL unless REPRO_FULL_SCALE is set)."""
    return Scale.from_environment()


def _recording_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_RECORD") == "1"


def _peak_rss_mb() -> float:
    """Process-wide peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return peak / (1024.0 * 1024.0)


def record_benchmark(name: str, *, rounds: int, wall_s: float,
                     sellers: int | None = None,
                     selected: int | None = None,
                     store: str | None = None,
                     extra: dict | None = None) -> None:
    """Append one benchstore record — no-op unless REPRO_BENCH_RECORD=1."""
    if not _recording_enabled():
        return
    from repro.obs.benchstore import BenchRecord, BenchStore

    path = store or os.environ.get("REPRO_BENCH_STORE",
                                   "BENCH_micro.json")
    BenchStore(path).append(BenchRecord.measure(
        name=name,
        rounds=rounds,
        wall_s=wall_s,
        peak_mb=_peak_rss_mb(),
        sellers=sellers,
        selected=selected,
        scale=Scale.from_environment().value,
        extra=extra,
    ))


def run_once(benchmark, func, *args, bench_rounds: int | None = None,
             **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer.

    With ``REPRO_BENCH_RECORD=1`` the measurement also lands in the
    benchstore, named after the benchmark node (``bench.<test name>``);
    pass ``bench_rounds`` when the workload has a meaningful round
    count (the record's rounds/sec rate divides by it — otherwise the
    whole invocation counts as one "round", i.e. runs/sec).
    """
    start = time.perf_counter()
    result = benchmark.pedantic(func, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    if _recording_enabled():
        node_name = getattr(benchmark, "name", None) or "unnamed"
        record_benchmark(
            f"bench.{node_name.removeprefix('test_')}",
            rounds=bench_rounds if bench_rounds else 1,
            wall_s=wall_s,
        )
    return result
