"""Observability overhead: traced and profiled runs within 10% of plain.

The observability layer's cheap-enough contract has three parts:
(1) NullTracer/unprofiled runs are bit-identical to pre-observability
builds (covered by the determinism tests); (2) a *fully traced* run —
JSONL sink plus a metrics registry — costs less than 10% over the
NullTracer baseline on a realistic instance, so tracing is cheap
enough to leave on in long experiments; (3) a *profiled* run — a
:class:`~repro.obs.PhaseProfiler` with its default RSS memory probe —
also stays under 10%, so profiling real workloads doesn't distort
what it measures.

Methodology, tuned for noisy shared hosts:

* ``time.process_time`` (CPU time) rather than wall clock — scheduler
  preemption and steal time on a busy machine otherwise swamp a ~10%
  effect.
* Baseline/traced runs are interleaved in alternating order, so both
  variants sample the host's throttle states evenly.
* Two noise-robust estimators are computed — the median of paired
  ratios and the classic timeit-style ratio of minima — and the
  smaller is asserted.  Timing contamination on a shared host is
  one-sided (interference only ever inflates a measurement), so each
  estimator over-estimates the true overhead; they rarely spike on the
  same trial, making their minimum a far more reproducible
  over-estimate than either alone.
"""

from __future__ import annotations

import statistics
import time

from repro.bandits.policies import UCBPolicy
from repro.obs import JsonlSink, MetricsRegistry, PhaseProfiler, Tracer
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator

#: A mid-size instance where per-round mechanism work (UCB scoring and
#: top-K selection over M sellers, the K-seller game solve, L-PoI
#: sampling) dominates, as in any real experiment, and a horizon long
#: enough to amortise run-level telemetry finalisation (the per-seller
#: gauge dump and snapshot are O(M) once per run).
_CONFIG = dict(num_sellers=10_000, num_selected=20, num_pois=50,
               num_rounds=600, seed=13)

_PAIRS = 7


def _run_once(tracer=None, metrics=None, profiler=None) -> float:
    config = SimulationConfig(**_CONFIG)
    simulator = TradingSimulator(config)
    start = time.process_time()
    simulator.run(UCBPolicy(), tracer=tracer, metrics=metrics,
                  profiler=profiler)
    return time.process_time() - start


def _traced_once(tmp_path, index: int) -> float:
    tracer = Tracer(JsonlSink(tmp_path / f"run{index}.jsonl"))
    try:
        return _run_once(tracer=tracer, metrics=MetricsRegistry())
    finally:
        tracer.close()


def test_tracing_overhead_under_10_percent(tmp_path):
    # Warm both paths once (imports, encoder setup, key caches) before
    # timing anything.
    _run_once()
    _traced_once(tmp_path, -1)

    baselines, traceds = [], []
    for i in range(_PAIRS):
        if i % 2 == 0:
            baselines.append(_run_once())
            traceds.append(_traced_once(tmp_path, i))
        else:
            traceds.append(_traced_once(tmp_path, i))
            baselines.append(_run_once())

    median_of_pairs = statistics.median(
        traced / baseline for traced, baseline in zip(traceds, baselines)
    )
    ratio_of_mins = min(traceds) / min(baselines)
    overhead = min(median_of_pairs, ratio_of_mins) - 1.0
    assert overhead < 0.10, (
        f"full tracing costs {overhead:.1%} over the NullTracer baseline "
        f"(budget: 10%); median-of-pairs {median_of_pairs - 1.0:.1%}, "
        f"ratio-of-mins {ratio_of_mins - 1.0:.1%}"
    )


def _profiled_once() -> float:
    return _run_once(profiler=PhaseProfiler())


def test_profiling_overhead_under_10_percent():
    # Same interleaved methodology as the tracing bound: a profiled run
    # (phase timers into the profiler's registry, RSS memory probe,
    # run bracketing) must not distort the workload it measures.
    _run_once()
    _profiled_once()

    baselines, profileds = [], []
    for i in range(_PAIRS):
        if i % 2 == 0:
            baselines.append(_run_once())
            profileds.append(_profiled_once())
        else:
            profileds.append(_profiled_once())
            baselines.append(_run_once())

    median_of_pairs = statistics.median(
        profiled / baseline
        for profiled, baseline in zip(profileds, baselines)
    )
    ratio_of_mins = min(profileds) / min(baselines)
    overhead = min(median_of_pairs, ratio_of_mins) - 1.0
    assert overhead < 0.10, (
        f"profiling costs {overhead:.1%} over the unprofiled baseline "
        f"(budget: 10%); median-of-pairs {median_of_pairs - 1.0:.1%}, "
        f"ratio-of-mins {ratio_of_mins - 1.0:.1%}"
    )
