"""Bench: Fig. 12 — average PoC / PoP / PoS(s) per round versus K.

Paper shapes validated: average PoC and PoP stay comparatively stable as
K grows while the per-seller profit PoS(s) drops dramatically.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_fig12_avg_profits_vs_k(benchmark, scale):
    result = run_once(benchmark, run_experiment, "fig12", scale)
    print()
    print(result.to_text())

    pos = result.series("avg_pos", "optimal").y
    assert np.all(np.diff(pos) < 0.0)
    # PoS drops by a large factor across the sweep.
    assert pos[0] > 2.0 * pos[-1]
    # PoC/PoP relative change is small next to PoS's collapse.
    poc = result.series("avg_poc", "optimal").y
    poc_change = abs(poc[-1] - poc[0]) / abs(poc[0])
    pos_change = abs(pos[-1] - pos[0]) / abs(pos[0])
    assert poc_change < pos_change
    # CMAB-HS tracks optimal more closely than random does.
    for panel in ("avg_poc", "avg_pos"):
        optimal = result.series(panel, "optimal").y
        cmabhs = result.series(panel, "CMAB-HS").y
        random = result.series(panel, "random").y
        gap_cmabhs = np.abs(optimal - cmabhs).mean()
        gap_random = np.abs(optimal - random).mean()
        assert gap_cmabhs < gap_random, panel
