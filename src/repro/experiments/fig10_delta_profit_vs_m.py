"""Fig. 10 — Delta-profits versus the number of sellers ``M``.

The Delta-metrics stay roughly stable in ``M`` (profits are set by the
``K`` selected sellers under the SE), with the learning algorithms well
below ``random`` throughout.
"""

from __future__ import annotations

from repro.experiments.fig08_delta_profit_vs_n import delta_points_to_result
from repro.experiments.fig09_revenue_regret_vs_m import (
    rounds_for_scale,
    seller_sweep_values,
)
from repro.experiments.registry import ExperimentResult, Scale, register
from repro.experiments.sweeps import run_parameter_sweep
from repro.sim.config import SimulationConfig

__all__ = ["run"]


@register("fig10", "Delta-profits versus number of sellers M")
def run(scale: Scale = Scale.SMALL, seed: int = 0,
        sweep_values: list[int] | None = None,
        num_rounds: int | None = None) -> ExperimentResult:
    """Run the Fig. 10 sweep (same instances as Fig. 9).

    ``sweep_values`` and ``num_rounds`` override the scale-derived
    defaults (used by fast tests).
    """
    n = num_rounds if num_rounds is not None else rounds_for_scale(scale)
    values = sweep_values if sweep_values is not None else seller_sweep_values()
    config = SimulationConfig(num_sellers=values[0], num_selected=10,
                              num_pois=10, num_rounds=n, seed=seed)
    points = run_parameter_sweep(config, "num_sellers", values)
    result = delta_points_to_result(
        points, "fig10",
        f"Delta-PoC / Delta-PoP / Delta-PoS(s) versus M (K=10, N={n})",
        "number of sellers M",
    )
    result.notes.append(f"scale={scale.value}, N={n}")
    return result
