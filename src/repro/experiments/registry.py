"""Experiment registry and result containers.

Every paper table/figure has a driver module registering a runner here
under its experiment id ("fig7", "fig13", "table2", ...).  Runners return
an :class:`ExperimentResult` — a set of named panels, each holding the
plotted series as plain arrays — that renders to aligned text tables, so
results can be inspected without any plotting dependency.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.exceptions import ExperimentError

__all__ = [
    "Scale",
    "Series",
    "ExperimentResult",
    "register",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]


class Scale(enum.Enum):
    """How big an experiment run should be.

    ``SMALL``
        Reduced round counts (~1/50 of the paper) so the full suite runs
        in minutes; every qualitative shape is preserved.
    ``PAPER``
        The paper's Table II scales (``N`` up to ``2*10^5``) — expect many
        minutes per experiment.
    """

    SMALL = "small"
    PAPER = "paper"

    @classmethod
    def from_environment(cls) -> "Scale":
        """``PAPER`` when ``REPRO_FULL_SCALE`` is set to a truthy value."""
        flag = os.environ.get("REPRO_FULL_SCALE", "").strip().lower()
        if flag in ("1", "true", "yes", "on", "paper", "full"):
            return cls.PAPER
        return cls.SMALL


@dataclass(frozen=True)
class Series:
    """One plotted line: a label plus aligned x/y arrays."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float))
        object.__setattr__(self, "y", np.asarray(self.y, dtype=float))
        if self.x.shape != self.y.shape or self.x.ndim != 1:
            raise ExperimentError(
                f"series {self.label!r}: x and y must be aligned 1-D arrays"
            )


@dataclass
class ExperimentResult:
    """The data behind one reproduced table or figure.

    Attributes
    ----------
    experiment_id:
        Registry id ("fig7", "table2", ...).
    title:
        Human-readable description of the artifact.
    x_label:
        Meaning of the swept quantity.
    panels:
        Mapping from panel name (for example "total revenue", "regret")
        to the series plotted in that panel.
    notes:
        Free-form remarks (scale used, observed crossovers, ...).
    """

    experiment_id: str
    title: str
    x_label: str
    panels: dict[str, list[Series]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, panel: str, series: Series) -> None:
        """Append one series to a panel (creating the panel on demand)."""
        self.panels.setdefault(panel, []).append(series)

    def panel(self, name: str) -> list[Series]:
        """The series of one panel.

        Raises
        ------
        ExperimentError
            If the panel does not exist.
        """
        if name not in self.panels:
            raise ExperimentError(
                f"experiment {self.experiment_id!r} has no panel {name!r}; "
                f"available: {sorted(self.panels)}"
            )
        return self.panels[name]

    def series(self, panel: str, label: str) -> Series:
        """One specific series of one panel.

        Raises
        ------
        ExperimentError
            If no series in the panel carries that label.
        """
        for candidate in self.panel(panel):
            if candidate.label == label:
                return candidate
        raise ExperimentError(
            f"panel {panel!r} has no series {label!r}; available: "
            f"{[s.label for s in self.panel(panel)]}"
        )

    def to_text(self) -> str:
        """Render all panels as aligned text tables."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for note in self.notes:
            lines.append(f"   note: {note}")
        for panel_name, series_list in self.panels.items():
            lines.append("")
            lines.append(f"-- {panel_name} (x = {self.x_label}) --")
            lines.append(_panel_table(series_list))
        return "\n".join(lines)


def _panel_table(series_list: list[Series]) -> str:
    """Align a panel's series into one table keyed by x value."""
    if not series_list:
        return "(empty panel)"
    xs = series_list[0].x
    header = ["x"] + [s.label for s in series_list]
    rows: list[list[str]] = []
    for idx, x in enumerate(xs):
        row = [f"{x:g}"]
        for series in series_list:
            if idx < series.y.size:
                row.append(f"{series.y[idx]:.4g}")
            else:
                row.append("-")
        rows.append(row)
    widths = [
        max(len(header[col]), *(len(r[col]) for r in rows))
        for col in range(len(header))
    ]
    out = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        out.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(out)


#: Runner signature: ``run(scale, seed) -> ExperimentResult``.
Runner = Callable[[Scale, int], ExperimentResult]

_REGISTRY: dict[str, tuple[str, Runner]] = {}


def register(experiment_id: str, title: str) -> Callable[[Runner], Runner]:
    """Class decorator registering an experiment runner under an id."""

    def decorator(runner: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ExperimentError(
                f"experiment id {experiment_id!r} registered twice"
            )
        _REGISTRY[experiment_id] = (title, runner)
        return runner

    return decorator


def list_experiments() -> list[tuple[str, str]]:
    """(id, title) of every registered experiment, sorted by id."""
    return sorted(
        (experiment_id, title)
        for experiment_id, (title, __) in _REGISTRY.items()
    )


def get_experiment(experiment_id: str) -> Runner:
    """The runner registered under ``experiment_id``.

    Raises
    ------
    ExperimentError
        For unknown ids.
    """
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str, scale: Scale | None = None,
                   seed: int = 0) -> ExperimentResult:
    """Run one experiment by id (scale defaults to the environment's)."""
    runner = get_experiment(experiment_id)
    if scale is None:
        scale = Scale.from_environment()
    return runner(scale, seed)
