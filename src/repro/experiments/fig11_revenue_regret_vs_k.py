"""Fig. 11 — total revenue and regret versus selected sellers ``K``.

Revenue grows with ``K`` (more sellers collect per round) but so does
regret — a larger selection compounds estimation error.  The learning
algorithms' regret grows much slower than ``random``'s.
"""

from __future__ import annotations

from repro.experiments.fig07_revenue_regret_vs_n import points_to_result
from repro.experiments.fig09_revenue_regret_vs_m import rounds_for_scale
from repro.experiments.registry import ExperimentResult, Scale, register
from repro.experiments.sweeps import run_parameter_sweep
from repro.sim.config import TABLE_II, SimulationConfig

__all__ = ["run", "selected_sweep_values"]


def selected_sweep_values() -> list[int]:
    """The Table II ``K`` sweep."""
    return list(TABLE_II["num_selected"]["values"])


@register("fig11", "total revenue and regret versus selected sellers K")
def run(scale: Scale = Scale.SMALL, seed: int = 0,
        sweep_values: list[int] | None = None,
        num_rounds: int | None = None,
        num_sellers: int = 300) -> ExperimentResult:
    """Run the Fig. 11 sweep (M=300, N fixed).

    ``sweep_values``, ``num_rounds``, and ``num_sellers`` override the
    scale-derived defaults (used by fast tests).
    """
    n = num_rounds if num_rounds is not None else rounds_for_scale(scale)
    values = sweep_values if sweep_values is not None else selected_sweep_values()
    config = SimulationConfig(num_sellers=num_sellers, num_selected=values[0],
                              num_pois=10, num_rounds=n, seed=seed)
    points = run_parameter_sweep(config, "num_selected", values)
    result = points_to_result(
        points, "fig11",
        f"total revenue and regret versus K (M=300, N={n})",
        "selected sellers K",
    )
    result.notes.append(f"scale={scale.value}, N={n}")
    return result
