"""Plotting-free rendering of experiment series.

Experiment results render to aligned value tables via
:meth:`~repro.experiments.registry.ExperimentResult.to_text`; this module
adds terminal-friendly *charts* so the paper's figure shapes can be
eyeballed without matplotlib:

* :func:`ascii_chart` — a multi-series scatter/line chart in a character
  grid;
* :func:`sparkline` — a one-line unicode profile of a series;
* :func:`render_experiment` — tables plus a chart per panel.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ExperimentError
from repro.experiments.registry import ExperimentResult, Series

__all__ = ["sparkline", "ascii_chart", "render_experiment"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"

#: Marker characters assigned to series in order.
_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode profile of a numeric series.

    Non-finite values render as spaces; a constant series renders at the
    middle level.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ExperimentError("cannot sparkline an empty series")
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        return " " * data.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    characters = []
    for value in data:
        if not math.isfinite(value):
            characters.append(" ")
        elif span == 0.0:
            characters.append(_SPARK_LEVELS[len(_SPARK_LEVELS) // 2])
        else:
            level = round((value - lo) / span * (len(_SPARK_LEVELS) - 1))
            characters.append(_SPARK_LEVELS[level])
    return "".join(characters)


def ascii_chart(series_list: list[Series], width: int = 64,
                height: int = 16) -> str:
    """A character-grid chart of several series on shared axes.

    Each series gets a marker (``o``, ``x``, ...); the legend, y-range
    and x-range are printed around the grid.

    Raises
    ------
    ExperimentError
        For an empty series list or non-positive dimensions.
    """
    if not series_list:
        raise ExperimentError("cannot chart an empty panel")
    if width < 8 or height < 4:
        raise ExperimentError("chart must be at least 8x4 characters")
    all_x = np.concatenate([s.x for s in series_list])
    all_y = np.concatenate([s.y for s in series_list])
    finite = np.isfinite(all_x) & np.isfinite(all_y)
    if not finite.any():
        raise ExperimentError("no finite points to chart")
    x_lo, x_hi = float(all_x[finite].min()), float(all_x[finite].max())
    y_lo, y_hi = float(all_y[finite].min()), float(all_y[finite].max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for __ in range(height)]
    for index, series in enumerate(series_list):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(series.x, series.y):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            column = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][column] = marker

    lines = []
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={series.label}"
        for i, series in enumerate(series_list)
    )
    lines.append(legend)
    lines.append(f"y: [{y_lo:g}, {y_hi:g}]")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"x: [{x_lo:g}, {x_hi:g}]")
    return "\n".join(lines)


def render_experiment(result: ExperimentResult, charts: bool = True,
                      width: int = 64, height: int = 14) -> str:
    """Tables plus (optionally) one ASCII chart per panel."""
    parts = [result.to_text()]
    if charts:
        for panel, series_list in result.panels.items():
            if not series_list:
                continue
            parts.append("")
            parts.append(f"-- {panel} (chart) --")
            parts.append(ascii_chart(series_list, width, height))
    return "\n".join(parts)
