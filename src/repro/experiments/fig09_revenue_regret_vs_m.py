"""Fig. 9 — total revenue and regret versus the number of sellers ``M``.

Revenue and regret are dominated by the ``K`` selected sellers, so both
stay roughly flat as the candidate pool grows; the learning algorithms
keep their advantage over ``random`` at every ``M``.
"""

from __future__ import annotations

from repro.experiments.fig07_revenue_regret_vs_n import points_to_result
from repro.experiments.registry import ExperimentResult, Scale, register
from repro.experiments.sweeps import run_parameter_sweep
from repro.sim.config import TABLE_II, SimulationConfig

__all__ = ["run", "seller_sweep_values", "rounds_for_scale"]


def seller_sweep_values() -> list[int]:
    """The Table II ``M`` sweep (same at both scales — M is cheap)."""
    return list(TABLE_II["num_sellers"]["values"])


def rounds_for_scale(scale: Scale) -> int:
    """The fixed ``N`` of the M/K sweeps (paper: 10^5)."""
    return TABLE_II["num_rounds"]["default"] if scale is Scale.PAPER else 2_000


@register("fig9", "total revenue and regret versus number of sellers M")
def run(scale: Scale = Scale.SMALL, seed: int = 0,
        sweep_values: list[int] | None = None,
        num_rounds: int | None = None) -> ExperimentResult:
    """Run the Fig. 9 sweep (K=10, N fixed).

    ``sweep_values`` and ``num_rounds`` override the scale-derived
    defaults (used by fast tests).
    """
    n = num_rounds if num_rounds is not None else rounds_for_scale(scale)
    values = sweep_values if sweep_values is not None else seller_sweep_values()
    config = SimulationConfig(num_sellers=values[0], num_selected=10,
                              num_pois=10, num_rounds=n, seed=seed)
    points = run_parameter_sweep(config, "num_sellers", values)
    result = points_to_result(
        points, "fig9",
        f"total revenue and regret versus M (K=10, N={n})",
        "number of sellers M",
    )
    result.notes.append(f"scale={scale.value}, N={n}")
    return result
