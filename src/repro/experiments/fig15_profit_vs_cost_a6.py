"""Fig. 15 — profits as seller 6's cost coefficient ``a_6`` grows.

The game re-equilibrates at every ``a_6``: PoC, PoP and PoS-6 fall
sharply near 0 and flatten out, while PoS-3 / PoS-8 *rise* (an expensive
rival means higher prices for everyone else) and then flatten.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.hs_setup import build_round_game, solve_round
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)

__all__ = ["run", "sweep_cost_a6", "SWEPT_SELLER", "TRACKED_SELLERS"]

#: The seller whose quadratic cost coefficient is swept.
SWEPT_SELLER = 6

#: Sellers whose profits are tracked.
TRACKED_SELLERS = (3, 6, 8)


def sweep_cost_a6(values: np.ndarray, seed: int = 0) -> dict[str, np.ndarray]:
    """Re-solve the round for each ``a_6``; returns profit and strategy series.

    Shared by Fig. 15 (profits) and Fig. 16 (strategies).
    """
    poc = np.empty(values.size)
    pop = np.empty(values.size)
    pos = {j: np.empty(values.size) for j in TRACKED_SELLERS}
    soc = np.empty(values.size)
    sop = np.empty(values.size)
    sos = {j: np.empty(values.size) for j in TRACKED_SELLERS}
    for idx, a6 in enumerate(values):
        setup = build_round_game(seed=seed,
                                 cost_a_override={SWEPT_SELLER: float(a6)})
        solved = solve_round(setup)
        poc[idx] = solved.consumer_profit
        pop[idx] = solved.platform_profit
        soc[idx] = solved.profile.service_price
        sop[idx] = solved.profile.collection_price
        for j in TRACKED_SELLERS:
            pos[j][idx] = solved.seller_profits[j]
            sos[j][idx] = solved.profile.sensing_times[j]
    return {
        "poc": poc, "pop": pop, "soc": soc, "sop": sop,
        **{f"pos_{j}": pos[j] for j in TRACKED_SELLERS},
        **{f"sos_{j}": sos[j] for j in TRACKED_SELLERS},
    }


@register("fig15", "profits versus seller 6's cost coefficient a_6")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Run the Fig. 15 sweep."""
    num_points = 26 if scale is Scale.SMALL else 101
    values = np.linspace(0.05, 5.0, num_points)
    series = sweep_cost_a6(values, seed)
    result = ExperimentResult(
        experiment_id="fig15",
        title="profits versus a_6 (seller 6's marginal cost)",
        x_label="cost coefficient a_6",
    )
    result.add_series("profits", Series("PoC", values, series["poc"]))
    result.add_series("profits", Series("PoP", values, series["pop"]))
    for j in TRACKED_SELLERS:
        result.add_series(
            "profits", Series(f"PoS-{j}", values, series[f"pos_{j}"])
        )
    result.notes.append(
        "PoC and PoS-6 decline sharply then flatten (paper shape); PoP is "
        "nearly flat under the derived Stage-2 formula — the paper's "
        "visible PoP decline reproduces only under its printed (sign-"
        "flipped) variant; see EXPERIMENTS.md."
    )
    return result
