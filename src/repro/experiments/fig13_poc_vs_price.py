"""Fig. 13 — profits versus the consumer's price ``p^J``.

Panel (a): PoC as ``p^J`` sweeps for ``omega`` in {600..1400}; each curve
is unimodal with its maximum at the SE price, and larger ``omega`` pushes
both the peak profit and the peak location up.

Panel (b): with ``omega = 1000``, PoC versus PoP and the profits of
sellers 3, 6, 8 — PoC peaks at the SE point while PoP and PoS(s) keep
increasing in ``p^J``.
"""

from __future__ import annotations

import numpy as np

from repro.core.incentive import ClosedFormStackelbergSolver
from repro.experiments.hs_setup import build_round_game
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.game.analysis import consumer_price_sweep

__all__ = ["run", "OMEGA_VALUES", "TRACKED_SELLERS"]

#: The paper's Table II omega sweep.
OMEGA_VALUES = (600.0, 800.0, 1_000.0, 1_200.0, 1_400.0)

#: Seller positions whose profits panel (b) tracks, as in the paper.
TRACKED_SELLERS = (3, 6, 8)


@register("fig13", "PoC / PoP / PoS(s) versus the consumer price p^J")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Run the Fig. 13 sweeps (scale only affects grid density)."""
    num_points = 81 if scale is Scale.SMALL else 401
    # Start above the degenerate low-price region where the platform's
    # best response clips at p = 0 and profits are boundary artifacts.
    prices = np.linspace(2.0, 40.0, num_points)
    cascade = ClosedFormStackelbergSolver().cascade
    result = ExperimentResult(
        experiment_id="fig13",
        title="profits versus consumer price p^J (single round, K=10)",
        x_label="service price p^J",
    )

    for omega in OMEGA_VALUES:
        setup = build_round_game(omega=omega, seed=seed)
        curves = consumer_price_sweep(setup.game, prices, cascade)
        result.add_series(
            "poc_by_omega",
            Series(label=f"PoC(omega={omega:g})", x=prices, y=curves.consumer),
        )
        result.notes.append(
            f"omega={omega:g}: SE at p^J={curves.argmax_consumer:.2f}, "
            f"peak PoC={curves.consumer.max():.1f}"
        )

    setup = build_round_game(omega=1_000.0, seed=seed)
    curves = consumer_price_sweep(setup.game, prices, cascade)
    result.add_series("profits", Series("PoC", prices, curves.consumer))
    result.add_series("profits", Series("PoP", prices, curves.platform))
    for position in TRACKED_SELLERS:
        result.add_series(
            "profits",
            Series(f"PoS-{position}", prices, curves.sellers[:, position]),
        )
    return result
