"""Shared sweep harnesses for the Fig. 7-12 experiments.

The revenue/regret/Delta-profit figures all follow the same pattern: for
each value of a swept parameter (``N``, ``M``, or ``K``), run the full
policy set on the same simulated instance and collect per-policy
aggregates.  This module provides that loop once.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.bandits.policies import (
    EpsilonFirstPolicy,
    OptimalPolicy,
    RandomPolicy,
    UCBPolicy,
)
from repro.exceptions import ExperimentError
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator
from repro.sim.results import PolicyComparison

__all__ = [
    "PAPER_POLICY_SET",
    "default_policies",
    "SweepPoint",
    "run_parameter_sweep",
]

#: Display names of the paper's compared algorithms, in plotting order.
PAPER_POLICY_SET = ("optimal", "CMAB-HS", "0.1-first", "0.5-first", "random")


def default_policies(expected_qualities: np.ndarray) -> list[SelectionPolicy]:
    """The paper's comparison set: optimal, CMAB-HS, eps-first, random."""
    return [
        OptimalPolicy(expected_qualities),
        UCBPolicy(),
        EpsilonFirstPolicy(0.1),
        EpsilonFirstPolicy(0.5),
        RandomPolicy(),
    ]


@dataclass(frozen=True)
class SweepPoint:
    """One swept parameter value with its policy comparison."""

    value: float
    comparison: PolicyComparison


def run_parameter_sweep(base_config: SimulationConfig, parameter: str,
                        values: Sequence,
                        policy_factory: Callable[
                            [np.ndarray], list[SelectionPolicy]
                        ] = default_policies) -> list[SweepPoint]:
    """Run the policy set for every value of one config parameter.

    Parameters
    ----------
    base_config:
        The configuration shared by all sweep points.
    parameter:
        Name of the :class:`SimulationConfig` field to sweep
        (for example ``"num_rounds"``, ``"num_sellers"``,
        ``"num_selected"``).
    values:
        The values to sweep over.
    policy_factory:
        Builds the policy list given the instance's true qualities
        (the omniscient baseline needs them).

    Notes
    -----
    Each sweep point re-derives the config, so instances with different
    ``num_sellers`` get independent populations (all from the same master
    seed); points differing only in ``num_rounds`` share the identical
    population and observation stream prefix.
    """
    if not values:
        raise ExperimentError("sweep values must be non-empty")
    if not hasattr(base_config, parameter):
        raise ExperimentError(
            f"SimulationConfig has no parameter {parameter!r}"
        )
    points: list[SweepPoint] = []
    for value in values:
        config = base_config.derive(**{parameter: value})
        simulator = TradingSimulator(config)
        policies = policy_factory(simulator.population.expected_qualities)
        comparison = simulator.compare(policies)
        points.append(SweepPoint(value=float(value), comparison=comparison))
    return points
