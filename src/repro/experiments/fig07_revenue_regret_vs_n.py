"""Fig. 7 — total revenue and regret versus the number of rounds ``N``.

All algorithms' revenues grow with ``N``; the learning algorithms
(CMAB-HS, eps-first) approach the omniscient optimum while ``random``
accumulates linear regret.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.experiments.sweeps import (
    PAPER_POLICY_SET,
    SweepPoint,
    run_parameter_sweep,
)
from repro.sim.config import TABLE_II, SimulationConfig

__all__ = ["run", "round_sweep_values", "base_config", "points_to_result"]


def round_sweep_values(scale: Scale) -> list[int]:
    """The swept ``N`` values (Table II at paper scale, 1/50 at small)."""
    paper_values = TABLE_II["num_rounds"]["values"]
    if scale is Scale.PAPER:
        return list(paper_values)
    return [max(value // 50, 50) for value in paper_values]


def base_config(scale: Scale, seed: int) -> SimulationConfig:
    """The shared M=300, K=10, L=10 configuration of Figs. 7-8."""
    return SimulationConfig(num_sellers=300, num_selected=10, num_pois=10,
                            num_rounds=100, seed=seed)


def points_to_result(points: list[SweepPoint], experiment_id: str,
                     title: str, x_label: str) -> ExperimentResult:
    """Revenue + regret panels from a policy sweep (Figs. 7, 9, 11)."""
    xs = np.array([point.value for point in points])
    result = ExperimentResult(
        experiment_id=experiment_id, title=title, x_label=x_label
    )
    for policy_name in PAPER_POLICY_SET:
        revenue = np.array([
            point.comparison[policy_name].total_realized_revenue
            for point in points
        ])
        regret = np.array([
            point.comparison[policy_name].final_regret for point in points
        ])
        result.add_series("total_revenue", Series(policy_name, xs, revenue))
        result.add_series("regret", Series(policy_name, xs, regret))
    return result


@register("fig7", "total revenue and regret versus total rounds N")
def run(scale: Scale = Scale.SMALL, seed: int = 0,
        sweep_values: list[int] | None = None,
        config: SimulationConfig | None = None) -> ExperimentResult:
    """Run the Fig. 7 sweep (M=300, K=10).

    ``sweep_values`` and ``config`` override the scale-derived defaults
    (used by fast tests).
    """
    values = sweep_values if sweep_values is not None else round_sweep_values(scale)
    points = run_parameter_sweep(
        config if config is not None else base_config(scale, seed),
        "num_rounds", values,
    )
    result = points_to_result(
        points, "fig7",
        "total revenue and regret versus N (M=300, K=10)",
        "total rounds N",
    )
    result.notes.append(f"scale={scale.value}, N values={values}")
    return result
