"""Fig. 17 — profits as the platform's cost coefficient ``theta`` grows.

Aggregation becomes more expensive, so every party's profit decreases
sharply at first and flattens out.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.hs_setup import build_round_game, solve_round
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)

__all__ = ["run", "sweep_theta", "TRACKED_SELLERS"]

#: Sellers whose profits/strategies are tracked (as in Figs. 13-16).
TRACKED_SELLERS = (3, 6, 8)


def sweep_theta(values: np.ndarray, seed: int = 0) -> dict[str, np.ndarray]:
    """Re-solve the round for each ``theta``; profit and strategy series.

    Shared by Fig. 17 (profits) and Fig. 18 (strategies).
    """
    poc = np.empty(values.size)
    pop = np.empty(values.size)
    pos = {j: np.empty(values.size) for j in TRACKED_SELLERS}
    soc = np.empty(values.size)
    sop = np.empty(values.size)
    sos = {j: np.empty(values.size) for j in TRACKED_SELLERS}
    for idx, theta in enumerate(values):
        setup = build_round_game(theta=float(theta), seed=seed)
        solved = solve_round(setup)
        poc[idx] = solved.consumer_profit
        pop[idx] = solved.platform_profit
        soc[idx] = solved.profile.service_price
        sop[idx] = solved.profile.collection_price
        for j in TRACKED_SELLERS:
            pos[j][idx] = solved.seller_profits[j]
            sos[j][idx] = solved.profile.sensing_times[j]
    return {
        "poc": poc, "pop": pop, "soc": soc, "sop": sop,
        **{f"pos_{j}": pos[j] for j in TRACKED_SELLERS},
        **{f"sos_{j}": sos[j] for j in TRACKED_SELLERS},
    }


@register("fig17", "profits versus the platform cost coefficient theta")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Run the Fig. 17 sweep over the Table II theta range."""
    num_points = 19 if scale is Scale.SMALL else 91
    values = np.linspace(0.1, 1.0, num_points)
    series = sweep_theta(values, seed)
    result = ExperimentResult(
        experiment_id="fig17",
        title="profits versus theta (platform aggregation cost)",
        x_label="cost coefficient theta",
    )
    result.add_series("profits", Series("PoC", values, series["poc"]))
    result.add_series("profits", Series("PoP", values, series["pop"]))
    for j in TRACKED_SELLERS:
        result.add_series(
            "profits", Series(f"PoS-{j}", values, series[f"pos_{j}"])
        )
    return result
