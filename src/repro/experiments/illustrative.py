"""The Section III-D illustrative example (Figs. 4-6).

Three sellers, four PoIs, ten rounds, ``K = 2`` selected per round: the
paper walks through the first few rounds by hand (initial explore-all at
``p^1* = p_max``, then UCB-ranked pairs with HS-game strategies).  This
driver runs the same miniature trading job through the real mechanism
and reports the per-round selections and strategies.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanism import CMABHSMechanism
from repro.entities.consumer import Consumer
from repro.entities.job import Job
from repro.entities.platform import Platform
from repro.entities.seller import SellerPopulation
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.quality.distributions import TruncatedGaussianQuality

__all__ = ["run", "build_example_mechanism", "EXAMPLE_QUALITIES"]

#: Expected qualities of the three example sellers.  The paper's Fig. 4
#: values are unreadable in the scan; these reproduce its observed sample
#: means (~0.64, ~0.65, ~0.57 after round 1).
EXAMPLE_QUALITIES = (0.65, 0.66, 0.58)

#: The example's system parameters: p_max = 5 and theta/lambda such that
#: the initial break-even service price is 7.5 (matching "p^{1*}=5,
#: p^{J,1*}=7.5" with three sellers at tau^0 = 1).
_EXAMPLE_THETA = 0.5
_EXAMPLE_LAMBDA = 1.0
_EXAMPLE_OMEGA = 100.0
_EXAMPLE_P_MAX = 5.0


def build_example_mechanism(seed: int = 0) -> CMABHSMechanism:
    """The 3-seller / 4-PoI / 10-round mechanism of Section III-D."""
    population = SellerPopulation.from_arrays(
        qualities=np.array(EXAMPLE_QUALITIES),
        a=np.array([0.3, 0.35, 0.25]),
        b=np.array([0.4, 0.3, 0.5]),
    )
    job = Job.simple(num_pois=4, num_rounds=10)
    platform = Platform.default(
        theta=_EXAMPLE_THETA, lam=_EXAMPLE_LAMBDA, price_max=_EXAMPLE_P_MAX
    )
    consumer = Consumer.default(omega=_EXAMPLE_OMEGA)
    model = TruncatedGaussianQuality(
        population.expected_qualities, sigma=0.15
    )
    return CMABHSMechanism(
        population, job, platform, consumer, k=2,
        quality_model=model, seed=seed,
    )


@register("example", "Section III-D walkthrough (3 sellers, 4 PoIs, 10 rounds)")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Run the miniature trading job and report every round."""
    mechanism = build_example_mechanism(seed)
    trading = mechanism.run()
    rounds = np.arange(trading.num_rounds, dtype=float)
    result = ExperimentResult(
        experiment_id="example",
        title="Sec. III-D illustrative data trading (M=3, L=4, N=10, K=2)",
        x_label="round t",
    )
    result.add_series(
        "strategies",
        Series("p^J*", rounds,
               np.array([r.service_price for r in trading.rounds])),
    )
    result.add_series(
        "strategies",
        Series("p*", rounds,
               np.array([r.collection_price for r in trading.rounds])),
    )
    result.add_series(
        "strategies",
        Series("total tau", rounds,
               np.array([r.total_sensing_time for r in trading.rounds])),
    )
    for seller in range(3):
        selected = np.array([
            1.0 if seller in r.selected else 0.0 for r in trading.rounds
        ])
        result.add_series(
            "selections", Series(f"seller {seller + 1}", rounds, selected)
        )
    selections = [
        "<" + ",".join(str(int(s) + 1) for s in r.selected) + ">"
        for r in trading.rounds
    ]
    result.notes.append("selection order: " + " ".join(selections))
    result.notes.append(
        f"initial round: p*={trading.rounds[0].collection_price:g}, "
        f"p^J*={trading.rounds[0].service_price:g} (break-even pricing)"
    )
    result.notes.append(
        f"final estimates: {np.round(trading.final_means, 3).tolist()} "
        f"(true: {list(EXAMPLE_QUALITIES)})"
    )
    return result
