"""Table II — the simulation settings, regenerated from the config.

A "run" of this experiment verifies that the library's defaults and
sweep grids are exactly the paper's and renders the table.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.sim.config import TABLE_II, SimulationConfig

__all__ = ["run", "format_table2"]


def format_table2() -> str:
    """Render Table II as text, defaults marked with ``*``."""
    lines = ["Parameter name                 | Values"]
    lines.append("-" * 72)

    def mark(values: list, default) -> str:
        return ", ".join(
            f"{v}*" if v == default else f"{v}" for v in values
        )

    rows = [
        ("number of rounds N",
         mark(TABLE_II["num_rounds"]["values"],
              TABLE_II["num_rounds"]["default"])),
        ("number of sellers M",
         mark(TABLE_II["num_sellers"]["values"],
              TABLE_II["num_sellers"]["default"])),
        ("number of selected sellers K",
         mark(TABLE_II["num_selected"]["values"],
              TABLE_II["num_selected"]["default"])),
        ("valuation parameter omega",
         mark(TABLE_II["omega"]["values"], TABLE_II["omega"]["default"])),
        ("cost parameter theta, lambda",
         f"{TABLE_II['theta']['range']} (default "
         f"{TABLE_II['theta']['default']}), {TABLE_II['lam']['range']} "
         f"(default {TABLE_II['lam']['default']})"),
        ("cost parameters a, b",
         f"{TABLE_II['a']['range']}, {TABLE_II['b']['range']}"),
    ]
    for name, values in rows:
        lines.append(f"{name:<30} | {values}")
    return "\n".join(lines)


@register("table2", "simulation settings (Table II)")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Verify the library defaults against Table II and render it."""
    default = SimulationConfig()
    checks = {
        "num_rounds": (default.num_rounds, TABLE_II["num_rounds"]["default"]),
        "num_sellers": (default.num_sellers,
                        TABLE_II["num_sellers"]["default"]),
        "num_selected": (default.num_selected,
                         TABLE_II["num_selected"]["default"]),
        "omega": (default.omega, TABLE_II["omega"]["default"]),
        "theta": (default.theta, TABLE_II["theta"]["default"]),
        "lam": (default.lam, TABLE_II["lam"]["default"]),
    }
    result = ExperimentResult(
        experiment_id="table2",
        title="simulation settings (Table II)",
        x_label="parameter index",
        notes=[format_table2()],
    )
    names = list(checks)
    xs = np.arange(len(names), dtype=float)
    result.add_series(
        "defaults_config",
        Series("configured",
               xs, np.array([checks[n][0] for n in names], dtype=float)),
    )
    result.add_series(
        "defaults_config",
        Series("paper",
               xs, np.array([checks[n][1] for n in names], dtype=float)),
    )
    mismatches = [
        name for name in names if checks[name][0] != checks[name][1]
    ]
    result.notes.append(
        "all defaults match Table II" if not mismatches
        else f"MISMATCHED defaults: {mismatches}"
    )
    return result
