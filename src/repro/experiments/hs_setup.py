"""Shared setup for the single-round HS-game experiments (Figs. 13-18).

The paper evaluates the Stackelberg game by "randomly select[ing] one
round" after qualities have converged, with ``K = 10`` selected sellers.
These helpers build that round's :class:`~repro.game.profits.GameInstance`
from the paper's parameter ranges, with the estimated qualities equal to
the true ones (the converged state), and solve it in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incentive import ClosedFormStackelbergSolver
from repro.exceptions import ExperimentError
from repro.game.profits import GameInstance
from repro.game.stackelberg import SolvedGame
from repro.sim.rng import seeded_generator

__all__ = ["RoundSetup", "build_round_game", "solve_round"]

#: Wide-open price bounds so the analytic sweeps never clip (the paper's
#: Fig. 13 sweeps p^J all the way to 40).
_OPEN_BOUNDS = (0.0, 10_000.0)


@dataclass(frozen=True)
class RoundSetup:
    """A single-round game plus the sampled seller parameters behind it."""

    game: GameInstance
    qualities: np.ndarray
    cost_a: np.ndarray
    cost_b: np.ndarray


def build_round_game(k: int = 10, omega: float = 1_000.0, theta: float = 0.1,
                     lam: float = 1.0, seed: int = 0,
                     cost_a_override: dict[int, float] | None = None,
                     ) -> RoundSetup:
    """One converged round with ``K`` sellers from the paper's ranges.

    Parameters
    ----------
    k:
        Number of selected sellers (the paper uses 10 for the HS figures).
    omega, theta, lam:
        Consumer/platform parameters for the round.
    seed:
        Seed for the seller parameters; the same seed reproduces the same
        sellers across figures, so "seller 6" means the same seller in
        Figs. 13-16.
    cost_a_override:
        Optional per-position replacement of the quadratic cost
        coefficient (Fig. 15/16 sweep seller 6's ``a_6``).
    """
    if k <= 0:
        raise ExperimentError(f"k must be positive, got {k}")
    rng = seeded_generator(seed)
    qualities = rng.uniform(0.3, 1.0, size=k)
    cost_a = rng.uniform(0.1, 0.5, size=k)
    cost_b = rng.uniform(0.1, 1.0, size=k)
    if cost_a_override:
        for position, value in cost_a_override.items():
            if not (0 <= position < k):
                raise ExperimentError(
                    f"cost_a_override position {position} out of range"
                )
            if value <= 0.0:
                raise ExperimentError(
                    f"cost_a_override value must be > 0, got {value}"
                )
            cost_a[position] = value
    game = GameInstance(
        qualities=qualities,
        cost_a=cost_a,
        cost_b=cost_b,
        theta=theta,
        lam=lam,
        omega=omega,
        service_price_bounds=_OPEN_BOUNDS,
        collection_price_bounds=_OPEN_BOUNDS,
    )
    return RoundSetup(game=game, qualities=qualities, cost_a=cost_a,
                      cost_b=cost_b)


def solve_round(setup: RoundSetup) -> SolvedGame:
    """Closed-form Stackelberg Equilibrium of the round."""
    return ClosedFormStackelbergSolver().solve(setup.game)
