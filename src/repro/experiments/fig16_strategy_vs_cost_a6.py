"""Fig. 16 — strategies as seller 6's cost coefficient ``a_6`` grows.

Mirror of Fig. 15 on the strategy side: SoC (``p^J*``) and SoP (``p*``)
*rise* with ``a_6`` (the leaders must pay more when a seller becomes
expensive) while SoS-6 (``tau_6*``) falls; SoS-3 / SoS-8 rise with the
higher collection price.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig15_profit_vs_cost_a6 import (
    TRACKED_SELLERS,
    sweep_cost_a6,
)
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)

__all__ = ["run"]


@register("fig16", "strategies versus seller 6's cost coefficient a_6")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Run the Fig. 16 sweep (same solve as Fig. 15, strategy panels)."""
    num_points = 26 if scale is Scale.SMALL else 101
    values = np.linspace(0.05, 5.0, num_points)
    series = sweep_cost_a6(values, seed)
    result = ExperimentResult(
        experiment_id="fig16",
        title="strategies versus a_6 (seller 6's marginal cost)",
        x_label="cost coefficient a_6",
    )
    result.add_series("prices", Series("SoC (p^J*)", values, series["soc"]))
    result.add_series("prices", Series("SoP (p*)", values, series["sop"]))
    for j in TRACKED_SELLERS:
        result.add_series(
            "sensing_times",
            Series(f"SoS-{j} (tau*)", values, series[f"sos_{j}"]),
        )
    return result
