"""Fig. 12 — average per-round profits versus selected sellers ``K``.

Average PoC and PoP stay roughly stable as ``K`` grows (panels a, b),
but the per-seller profit PoS(s) drops sharply (panel c): more sellers
split the reward and lower-quality sellers enter the selection.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig09_revenue_regret_vs_m import rounds_for_scale
from repro.experiments.fig11_revenue_regret_vs_k import selected_sweep_values
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.experiments.sweeps import PAPER_POLICY_SET, run_parameter_sweep
from repro.sim.config import SimulationConfig

__all__ = ["run"]


@register("fig12", "average PoC / PoP / PoS(s) per round versus K")
def run(scale: Scale = Scale.SMALL, seed: int = 0,
        sweep_values: list[int] | None = None,
        num_rounds: int | None = None,
        num_sellers: int = 300) -> ExperimentResult:
    """Run the Fig. 12 sweep (same instances as Fig. 11).

    ``sweep_values``, ``num_rounds``, and ``num_sellers`` override the
    scale-derived defaults (used by fast tests).
    """
    n = num_rounds if num_rounds is not None else rounds_for_scale(scale)
    values = sweep_values if sweep_values is not None else selected_sweep_values()
    config = SimulationConfig(num_sellers=num_sellers, num_selected=values[0],
                              num_pois=10, num_rounds=n, seed=seed)
    points = run_parameter_sweep(config, "num_selected", values)
    xs = np.array([point.value for point in points])
    result = ExperimentResult(
        experiment_id="fig12",
        title=f"average per-round profits versus K (M=300, N={n})",
        x_label="selected sellers K",
        notes=[f"scale={scale.value}, N={n}"],
    )
    for policy_name in PAPER_POLICY_SET:
        runs = [point.comparison[policy_name] for point in points]
        result.add_series(
            "avg_poc",
            Series(policy_name, xs,
                   np.array([r.mean_consumer_profit for r in runs])),
        )
        result.add_series(
            "avg_pop",
            Series(policy_name, xs,
                   np.array([r.mean_platform_profit for r in runs])),
        )
        result.add_series(
            "avg_pos",
            Series(policy_name, xs,
                   np.array([r.mean_seller_profit for r in runs])),
        )
    return result
