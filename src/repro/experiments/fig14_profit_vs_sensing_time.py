"""Fig. 14 — profits as seller 6 unilaterally deviates in sensing time.

With SoC and SoP fixed at their equilibrium values, seller 6's sensing
time is swept.  PoC and PoP are unimodal in it (each would have its own
preferred deviation), PoS-6 peaks exactly at the equilibrium time
(confirming the SE), and PoS-3 / PoS-8 do not move at all — a seller's
profit depends only on its own time.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.hs_setup import build_round_game, solve_round
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.game.analysis import seller_time_deviation_sweep

__all__ = ["run", "DEVIATING_SELLER", "TRACKED_SELLERS"]

#: The deviating seller position, matching the paper's "SoS-6".
DEVIATING_SELLER = 6

#: Sellers whose profits are tracked alongside the deviator.
TRACKED_SELLERS = (3, 6, 8)


@register("fig14", "profits versus seller 6's sensing-time deviation")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Run the Fig. 14 deviation sweep."""
    num_points = 61 if scale is Scale.SMALL else 301
    setup = build_round_game(seed=seed)
    solved = solve_round(setup)
    equilibrium_tau = float(
        solved.profile.sensing_times[DEVIATING_SELLER]
    )
    sweep = np.linspace(0.0, 3.0 * equilibrium_tau, num_points)
    curve = seller_time_deviation_sweep(
        setup.game, solved.profile, DEVIATING_SELLER, sweep
    )
    result = ExperimentResult(
        experiment_id="fig14",
        title="profits versus SoS-6 (unilateral sensing-time deviation)",
        x_label="seller 6 sensing time tau_6",
        notes=[
            f"equilibrium tau_6* = {equilibrium_tau:.4f}",
            f"PoS-6 maximised at tau_6 = "
            f"{float(sweep[int(np.argmax(curve.deviator_profit))]):.4f}",
        ],
    )
    result.add_series("profits", Series("PoC", sweep, curve.consumer))
    result.add_series("profits", Series("PoP", sweep, curve.platform))
    for position in TRACKED_SELLERS:
        result.add_series(
            "profits",
            Series(f"PoS-{position}", sweep, curve.sellers[:, position]),
        )
    return result
