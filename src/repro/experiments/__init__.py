"""Experiment drivers — one module per paper table/figure.

Importing this package registers every experiment; run them via::

    from repro.experiments import run_experiment, Scale
    result = run_experiment("fig7", Scale.SMALL)
    print(result.to_text())

or from the command line: ``python -m repro run fig7``.
"""

from repro.experiments import (  # imported for registration
    fig07_revenue_regret_vs_n,
    fig08_delta_profit_vs_n,
    fig09_revenue_regret_vs_m,
    fig10_delta_profit_vs_m,
    fig11_revenue_regret_vs_k,
    fig12_avg_profit_vs_k,
    fig13_poc_vs_price,
    fig14_profit_vs_sensing_time,
    fig15_profit_vs_cost_a6,
    fig16_strategy_vs_cost_a6,
    fig17_profit_vs_theta,
    fig18_strategy_vs_theta,
    illustrative,
    tables,
)
from repro.experiments.hs_setup import RoundSetup, build_round_game, solve_round
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.reporting import (
    ascii_chart,
    render_experiment,
    sparkline,
)
from repro.experiments.sweeps import (
    PAPER_POLICY_SET,
    SweepPoint,
    default_policies,
    run_parameter_sweep,
)

# Imported last (it depends on the registry above): registers the
# extension experiments (ext-drift, ext-market, ...).
import repro.extensions  # noqa: E402

__all__ = [
    "Scale",
    "Series",
    "ExperimentResult",
    "run_experiment",
    "get_experiment",
    "list_experiments",
    "PAPER_POLICY_SET",
    "default_policies",
    "run_parameter_sweep",
    "SweepPoint",
    "RoundSetup",
    "build_round_game",
    "solve_round",
    "sparkline",
    "ascii_chart",
    "render_experiment",
]
