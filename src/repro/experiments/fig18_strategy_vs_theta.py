"""Fig. 18 — strategies as the platform's cost coefficient ``theta`` grows.

The consumer compensates the costlier platform with a higher ``p^J``
(SoC rises); the platform protects its margin by lowering the sellers'
price ``p`` (SoP falls); sellers respond with shorter sensing times.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig17_profit_vs_theta import (
    TRACKED_SELLERS,
    sweep_theta,
)
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)

__all__ = ["run"]


@register("fig18", "strategies versus the platform cost coefficient theta")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Run the Fig. 18 sweep (same solve as Fig. 17, strategy panels)."""
    num_points = 19 if scale is Scale.SMALL else 91
    values = np.linspace(0.1, 1.0, num_points)
    series = sweep_theta(values, seed)
    result = ExperimentResult(
        experiment_id="fig18",
        title="strategies versus theta (platform aggregation cost)",
        x_label="cost coefficient theta",
    )
    result.add_series("prices", Series("SoC (p^J*)", values, series["soc"]))
    result.add_series("prices", Series("SoP (p*)", values, series["sop"]))
    for j in TRACKED_SELLERS:
        result.add_series(
            "sensing_times",
            Series(f"SoS-{j} (tau*)", values, series[f"sos_{j}"]),
        )
    return result
