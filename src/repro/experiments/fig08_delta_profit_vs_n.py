"""Fig. 8 — Delta-PoC / Delta-PoP / Delta-PoS(s) versus total rounds ``N``.

The Delta-metrics are the average per-round profit gaps to the omniscient
algorithm; for the learning algorithms they shrink towards zero as ``N``
grows (quality estimates converge), with CMAB-HS below the eps-first
variants and far below ``random``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig07_revenue_regret_vs_n import (
    base_config,
    round_sweep_values,
)
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.experiments.sweeps import (
    PAPER_POLICY_SET,
    SweepPoint,
    run_parameter_sweep,
)

__all__ = ["run", "delta_points_to_result", "COMPARED_POLICIES"]

#: Non-optimal policies the Delta-metrics are computed for.
COMPARED_POLICIES = tuple(
    name for name in PAPER_POLICY_SET if name != "optimal"
)

_PANEL_KEYS = ("delta_poc", "delta_pop", "delta_pos")


def delta_points_to_result(points: list[SweepPoint], experiment_id: str,
                           title: str, x_label: str) -> ExperimentResult:
    """Delta-profit panels from a policy sweep (Figs. 8 and 10)."""
    xs = np.array([point.value for point in points])
    result = ExperimentResult(
        experiment_id=experiment_id, title=title, x_label=x_label
    )
    for policy_name in COMPARED_POLICIES:
        deltas = [
            point.comparison.delta_profits(policy_name) for point in points
        ]
        for key in _PANEL_KEYS:
            values = np.array([delta[key] for delta in deltas])
            result.add_series(key, Series(policy_name, xs, values))
    return result


@register("fig8", "Delta-profits versus total rounds N")
def run(scale: Scale = Scale.SMALL, seed: int = 0,
        sweep_values: list[int] | None = None,
        config=None) -> ExperimentResult:
    """Run the Fig. 8 sweep (same instances as Fig. 7).

    ``sweep_values`` and ``config`` override the scale-derived defaults
    (used by fast tests).
    """
    values = sweep_values if sweep_values is not None else round_sweep_values(scale)
    points = run_parameter_sweep(
        config if config is not None else base_config(scale, seed),
        "num_rounds", values,
    )
    result = delta_points_to_result(
        points, "fig8",
        "Delta-PoC / Delta-PoP / Delta-PoS(s) versus N (M=300, K=10)",
        "total rounds N",
    )
    result.notes.append(f"scale={scale.value}, N values={values}")
    return result
