"""Incrementally maintained learning state for the vector backend.

:class:`VectorLearningState` is a drop-in
:class:`~repro.core.state.LearningState`: same constructor, same
accessors, same snapshot/restore format (checkpoints written by one
backend restore into the other).  The difference is purely mechanical —
instead of reconstructing the ``(M,)`` mean vector on every ``means``
access and re-deriving the seen mask on every ``ucb_values`` call, it
maintains three mirrors across updates:

* a float copy of the observation counts (so the fused UCB expression
  divides without a per-call ``astype``),
* the mean vector itself, patched in ``O(K)`` per update with the same
  ``sums[i] / counts[i]`` division the scalar property performs
  (bit-identical values, integers being exact in float64 far beyond
  any feasible observation count),
* the running total count.

``means`` returns a *read-only view* of the maintained buffer (the
scalar property returns a fresh array; every engine consumer only reads
it).  ``ucb_values`` returns a fresh writable vector, as callers mask
it in place.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import LearningState
from repro.exceptions import ConfigurationError
from repro.kernels.selection import ucb_scores

__all__ = ["VectorLearningState"]


# repro-lint: twin=repro.core.state.LearningState
class VectorLearningState(LearningState):
    """O(K)-per-round learning state, bit-identical to the scalar one."""

    #: Marker the selection fast paths dispatch on (``getattr`` keeps
    #: plain :class:`LearningState` instances valid without isinstance
    #: checks across package boundaries).
    vectorized = True

    def __init__(self, num_sellers: int, prior_mean: float = 0.0) -> None:
        super().__init__(num_sellers, prior_mean)
        self._counts_f = np.zeros(self._num_sellers)
        self._means = np.full(self._num_sellers, self._prior_mean)
        self._total = 0

    def _rebuild(self) -> None:
        """Recompute every mirror from the raw counts/sums arrays."""
        self._counts_f = self._counts.astype(float)
        means = np.full(self._num_sellers, self._prior_mean)
        seen = self._counts > 0
        means[seen] = self._sums[seen] / self._counts[seen]
        self._means = means
        self._total = int(self._counts.sum())

    # -- accessors -----------------------------------------------------------------

    @property
    def total_count(self) -> int:
        return self._total

    @property
    def means(self) -> np.ndarray:
        view = self._means.view()
        view.flags.writeable = False
        return view

    # -- updates -------------------------------------------------------------------

    def update(self, seller_indices: np.ndarray,
               observation_sums: np.ndarray,
               num_observations: int) -> None:
        super().update(seller_indices, observation_sums, num_observations)
        sellers = np.asarray(seller_indices, dtype=int)
        if sellers.size == 0:
            return
        self._total += int(num_observations) * sellers.size
        self._counts_f[sellers] = self._counts[sellers]
        # The same float64 / int64 division the scalar property applies
        # to seen sellers — the maintained means stay bit-identical.
        self._means[sellers] = self._sums[sellers] / self._counts[sellers]

    # -- UCB indices ---------------------------------------------------------------

    def exploration_bonuses(self, coefficient: float) -> np.ndarray:
        if coefficient <= 0.0:
            raise ConfigurationError(
                f"exploration coefficient must be positive, got {coefficient}"
            )
        if self._total <= 1:
            return np.full(self._num_sellers, np.inf)
        # The same scalar numerator divided by the same float64 counts
        # the masked scalar gather divides by; a zero count yields the
        # +inf bonus the scalar path assigns to unseen sellers.
        with np.errstate(divide="ignore"):
            return np.sqrt(
                coefficient * np.log(self._total) / self._counts_f
            )

    def ucb_values(self, coefficient: float) -> np.ndarray:
        return ucb_scores(self._counts_f, self._means, self._total,
                          coefficient)

    # -- maintenance ---------------------------------------------------------------

    def restore(self, snapshot: dict[str, np.ndarray]) -> None:
        super().restore(snapshot)
        self._rebuild()

    def reset(self) -> None:
        super().reset()
        self._rebuild()
