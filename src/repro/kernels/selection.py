"""Fused UCB indices and partition-based top-K selection.

The scalar reference path computes Eq. 19 in three ``O(M)`` passes with
a fresh mask and two fancy-indexed scatters
(:meth:`~repro.core.state.LearningState.ucb_values`), then ranks all
``M`` sellers with a stable ``O(M log M)`` argsort
(:func:`~repro.core.selection.top_k_indices`).  At ``M = 10^4`` the
argsort alone is ~800 µs per round — the dominant cost of the whole
round loop.  The kernels here produce *bit-identical* outputs from
dense full-array expressions and an ``O(M)`` value partition.

Bit-identity arguments (verified by the differential suite):

* ``coefficient * log(total) / counts`` evaluated over the full float
  count vector performs, element for element, the same IEEE-754
  divisions as the scalar path's masked gather — and division of a
  positive numerator by ``0.0`` yields the same ``+inf`` bonus the
  scalar path assigns to unseen sellers explicitly.
* The partition top-K selects exactly the indices the stable argsort
  prefix selects: every index with a score strictly above the k-th
  largest value, plus the *lowest* indices among those tied with it —
  which is precisely stable tie-breaking, returned in the same
  ascending order.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import top_k_indices
from repro.exceptions import ConfigurationError, SelectionError

__all__ = ["ucb_scores", "top_k_partition", "estimation_error"]

#: Mutation-testing hook: the equivalence suite sets this to a value
#: other than 1.0 (e.g. 1.01, a 1% bonus inflation) and asserts the
#: differential oracles *fail* — proving they would catch a real kernel
#: defect of that size.  At the default 1.0 no multiply is performed,
#: so the production path is untouched.
_MUTATION_SCALE = 1.0


# repro-lint: twin=repro.core.state.LearningState.ucb_values
def ucb_scores(counts: np.ndarray, means: np.ndarray, total: int,
               coefficient: float) -> np.ndarray:
    """The Eq.-19 index vector ``qhat_i`` for all ``M`` sellers at once.

    Parameters
    ----------
    counts:
        Float observation counts ``n_i``, shape ``(M,)`` (zeros allowed
        — those sellers get an infinite index, forcing exploration).
    means:
        Sample means ``qbar_i`` (the prior where unobserved), shape
        ``(M,)``.
    total:
        ``sum_j n_j``; with ``total <= 1`` every index is infinite,
        matching the scalar path's "no meaningful radius yet" rule.
    coefficient:
        The ``K+1`` confidence-width constant (must be positive).

    Returns
    -------
    numpy.ndarray
        A fresh writable ``(M,)`` vector, bit-identical to
        ``LearningState.ucb_values(coefficient)`` on the same state.
    """
    if coefficient <= 0.0:
        # Same exception type the scalar state raises, so a backend
        # switch never changes the error contract.
        raise ConfigurationError(
            f"exploration coefficient must be positive, got {coefficient}"
        )
    if total <= 1:
        return np.full(counts.size, np.inf)
    with np.errstate(divide="ignore"):
        scores = np.divide(coefficient * np.log(total), counts)
    np.sqrt(scores, out=scores)
    if _MUTATION_SCALE != 1.0:  # pragma: no cover - mutation hook
        scores *= _MUTATION_SCALE
    scores += means
    return scores


# repro-lint: twin=repro.core.selection.top_k_indices
def top_k_partition(scores: np.ndarray, k: int) -> np.ndarray:
    """Positions of the ``k`` largest scores via an ``O(M)`` partition.

    Bit-identical to :func:`~repro.core.selection.top_k_indices` on any
    NaN-free input (UCB indices never contain NaN): ties at the k-th
    largest value are broken by ascending index, infinite scores rank
    first, and the result is sorted ascending.  Inputs containing NaN
    fall back to the stable-argsort reference so the two paths cannot
    silently diverge.

    Raises
    ------
    SelectionError
        If ``k`` is not in ``[1, len(scores)]``.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1:
        raise SelectionError("scores must be a 1-D array")
    if not (1 <= k <= scores.size):
        raise SelectionError(
            f"cannot select k={k} sellers from {scores.size} candidates"
        )
    if k == scores.size:
        return np.arange(scores.size)
    kth = np.partition(scores, scores.size - k)[scores.size - k]
    # One O(M) scan for everything at or above the threshold; the
    # strict/tied split then runs on the (usually ~k-sized) candidates.
    candidates = np.flatnonzero(scores >= kth)
    candidate_scores = scores[candidates]
    winners = candidates[candidate_scores > kth]
    if winners.size < k:
        # Lowest indices among the scores tied with the k-th largest —
        # exactly the stable argsort's tie-breaking.
        ties = candidates[candidate_scores == kth][:k - winners.size]
        winners = np.concatenate((winners, ties))
        winners.sort()
    if winners.size != k:  # NaN present: partition ordering is undefined
        return top_k_indices(scores, k)
    return winners


# repro-lint: twin=repro.sim.rounds.estimation_error_scalar
def estimation_error(means: np.ndarray, qualities_truth: np.ndarray,
                     scratch: np.ndarray) -> float:
    """Mean absolute estimation error without temporary allocations.

    Bit-identical to ``float(np.abs(means - truth).mean())`` — the
    subtract/abs/mean sequence is unchanged, only the two ``O(M)``
    temporaries are replaced by the caller-owned ``scratch`` buffer.
    """
    np.subtract(means, qualities_truth, out=scratch)
    np.abs(scratch, out=scratch)
    # add.reduce is the same pairwise summation ndarray.mean() runs,
    # minus the reduction-machinery overhead — same bits, checked by
    # the differential suite every run.
    return float(np.add.reduce(scratch) / scratch.size)
