"""Vectorized market kernels (the ``backend="vector"`` hot path).

Array-math implementations of the round loop's hot operations, written
to be *provably equivalent* to the scalar reference path:

* :mod:`repro.kernels.selection` — the Eq.-19 UCB index vector for all
  ``M`` sellers in one fused expression, and a partition-based top-K
  that reproduces :func:`repro.core.selection.top_k_indices`'s
  stable tie-breaking bit for bit without the ``O(M log M)`` stable
  argsort.
* :mod:`repro.kernels.state` — :class:`VectorLearningState`, a
  drop-in :class:`~repro.core.state.LearningState` that maintains its
  mean and count buffers incrementally (``O(K)`` per update) instead
  of reconstructing them (``O(M)`` per access), with bit-identical
  values.
* :mod:`repro.kernels.batch` — the Theorems 14-16 ``A``/``B`` sums as
  masked reductions over an ``(markets, M)`` state matrix, the batched
  Stage 1-3 closed forms, and a batched Stage-3 golden-section search
  reusing :func:`repro.game.stackelberg.solve_stage3_batch`'s idiom.

Equivalence contract (enforced by ``repro verify --only kernels`` and
``tests/test_kernels_equivalence.py``):

* **bit-identity** — selections, learning-state values, ledgers, and
  every per-round metric series of the integrated engine/runtime
  backends, because the vector path performs the *same IEEE-754
  operations* on the same operands (see DESIGN.md §15 for the rules
  this requires);
* **≤1e-9 relative tolerance** — the batched ``(markets, M)``
  reductions against per-market compacted scalar solves, where the
  summation order legitimately differs.
"""

from repro.kernels.batch import (
    masked_stage_sums,
    solve_rounds_batch,
    stage3_golden_batch,
)
from repro.kernels.selection import (
    estimation_error,
    top_k_partition,
    ucb_scores,
)
from repro.kernels.state import VectorLearningState

__all__ = [
    "ucb_scores",
    "top_k_partition",
    "estimation_error",
    "VectorLearningState",
    "masked_stage_sums",
    "solve_rounds_batch",
    "stage3_golden_batch",
]
