"""Batched Theorems 14-16 over an ``(markets, M)`` state matrix.

The scalar closed forms in :mod:`repro.core.incentive` solve one round's
game from the *compacted* ``(K,)`` quality/cost vectors of that round's
selected sellers.  The kernels here solve ``R`` such games at once from
dense ``(R, M)`` parameter matrices and an ``(R, M)`` participation
mask — the layout a mean-field sweep or a multi-market runtime holds its
state in — without compacting each row first.

Equivalence is *tolerance-level* (``<= 1e-9`` relative), not bit-level:
a masked reduction over ``M`` slots and numpy's pairwise summation over
a compacted ``K``-vector add the same numbers in a different order, so
the last few ulps legitimately differ.  Everything downstream of the
sums (the Stage 1-2 closed forms, the candidate cascade) is the same
arithmetic as :func:`repro.core.incentive._solve_round_arrays`,
expression for expression.

One deliberate divergence: where the scalar path evaluates its
non-interior Stage-1 candidates from a python *set* (deduplicated,
hash-ordered) and keeps a strict-``>`` maximum, the batch path evaluates
a fixed candidate matrix in insertion order and takes the first maximum.
Both pick a profit-maximising candidate; when two distinct candidates
tie *exactly* they may pick different (equally optimal) prices.  The
differential suite therefore compares profits and prices at tolerance,
not candidate identity.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import GameError

__all__ = ["masked_stage_sums", "solve_rounds_batch", "stage3_golden_batch"]

#: Golden-section constants, shared with
#: :func:`repro.game.stackelberg.solve_stage3_batch` (same bracket decay,
#: same stopping width — the idiom is lifted verbatim).
_GOLDEN_ITERATIONS = 80
_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


def _as_state_matrices(qualities: np.ndarray, cost_a: np.ndarray,
                       cost_b: np.ndarray, mask: np.ndarray,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]:
    """Broadcast the per-seller parameters against the ``(R, M)`` mask."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise GameError("participation mask must be a 2-D (markets, M) array")
    qualities = np.broadcast_to(np.asarray(qualities, dtype=float), mask.shape)
    cost_a = np.broadcast_to(np.asarray(cost_a, dtype=float), mask.shape)
    cost_b = np.broadcast_to(np.asarray(cost_b, dtype=float), mask.shape)
    return qualities, cost_a, cost_b, mask


# repro-lint: twin=repro.core.incentive._solve_round_arrays
def masked_stage_sums(qualities: np.ndarray, cost_a: np.ndarray,
                      cost_b: np.ndarray, mask: np.ndarray,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The Theorem 15/16 reduced coefficients for ``R`` markets at once.

    Parameters
    ----------
    qualities, cost_a, cost_b:
        Per-seller parameters, shape ``(M,)`` or ``(R, M)`` (broadcast
        against the mask).  Masked-out entries are never read — zeros or
        stale values are fine.
    mask:
        Boolean ``(R, M)`` participation matrix; row ``r`` marks the
        sellers selected in market ``r``.  Every row must select at
        least one seller.

    Returns
    -------
    tuple
        ``(a_sums, b_sums, mean_qualities)``, each shape ``(R,)``:
        ``A_r = sum_{i in r} 1/(2*q_i*a_i)``,
        ``B_r = sum_{i in r} b_i/(2*a_i)``, and the per-market mean
        estimated quality ``qbar_r``.
    """
    qualities, cost_a, cost_b, mask = _as_state_matrices(
        qualities, cost_a, cost_b, mask)
    counts = mask.sum(axis=1)
    if np.any(counts == 0):
        raise GameError("every market row must select at least one seller")
    zeros = np.zeros(mask.shape)
    inv = np.divide(1.0, 2.0 * qualities * cost_a, out=zeros.copy(),
                    where=mask)
    offsets = np.divide(cost_b, 2.0 * cost_a, out=zeros.copy(), where=mask)
    a_sums = inv.sum(axis=1)
    b_sums = offsets.sum(axis=1)
    mean_qualities = np.where(mask, qualities, 0.0).sum(axis=1) / counts
    return a_sums, b_sums, mean_qualities


# repro-lint: twin=repro.core.incentive.solve_round_fast
def solve_rounds_batch(qualities: np.ndarray, cost_a: np.ndarray,
                       cost_b: np.ndarray, mask: np.ndarray,
                       theta: float, lam: float, omega: float,
                       service_price_bounds: tuple[float, float],
                       collection_price_bounds: tuple[float, float],
                       max_sensing_time: float = float("inf"),
                       paper_variant: bool = False,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]:
    """Stage 1-3 closed-form solves for ``R`` markets in one shot.

    The batched counterpart of
    :func:`repro.core.incentive.solve_round_fast`: the same Theorems
    14-16 interior formulas, the same bound-aware piecewise Stage-1
    candidate cascade, applied row-wise over an ``(R, M)`` state matrix.
    The game-level parameters (``theta``, ``lam``, ``omega``, the price
    bounds, ``T``) are shared across markets — the setting of a
    parameter sweep or a multi-market runtime under one config.

    Returns
    -------
    tuple
        ``(service_prices, collection_prices, sensing_times, interior)``
        with shapes ``(R,)``, ``(R,)``, ``(R, M)`` (zero where masked
        out), and a boolean ``(R,)`` flagging rows solved by the pure
        interior formulas (no bound clipped).
    """
    qualities, cost_a, cost_b, mask = _as_state_matrices(
        qualities, cost_a, cost_b, mask)
    a_sums, b_sums, q = masked_stage_sums(qualities, cost_a, cost_b, mask)
    inv = np.divide(1.0, 2.0 * qualities * cost_a,
                    out=np.zeros(mask.shape), where=mask)
    base = lam * a_sums - 2.0 * theta * a_sums * b_sums
    constant = base + b_sums if paper_variant else base - b_sums
    denominator = 2.0 * (1.0 + theta * a_sums)
    theta_c = a_sums / denominator
    lam_c = constant / denominator + b_sums
    delta = (q * lam_c - 2.0) ** 2 + 8.0 * theta_c * omega * q * q
    sqrt_delta = np.sqrt(delta)
    interior_service = (3.0 * q * lam_c + sqrt_delta - 2.0) / (4.0 * q * theta_c)
    svc_lo, svc_hi = service_price_bounds
    col_lo, col_hi = collection_price_bounds
    stage2_denominator = 2.0 * a_sums * (1.0 + theta * a_sums)

    def stage2_unclipped(service_prices: np.ndarray) -> np.ndarray:
        return (service_prices * a_sums - constant) / stage2_denominator

    def evaluate(service_prices: np.ndarray,
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Clipped cascade + consumer profit for one ``(R,)`` candidate."""
        prices = np.clip(stage2_unclipped(service_prices), col_lo, col_hi)
        taus = np.clip((prices[:, None] - qualities * cost_b) * inv,
                       0.0, max_sensing_time)
        totals = taus.sum(axis=1)
        profits = omega * np.log1p(q * totals) - service_prices * totals
        return prices, taus, profits

    service_clipped = np.clip(interior_service, svc_lo, svc_hi)
    collection_interior = stage2_unclipped(service_clipped)
    taus_interior = (collection_interior[:, None] - qualities * cost_b) * inv
    in_range = np.where(mask,
                        (taus_interior >= 0.0)
                        & (taus_interior <= max_sensing_time),
                        True)
    interior = (
        (svc_lo <= interior_service) & (interior_service <= svc_hi)
        & (col_lo <= collection_interior) & (collection_interior <= col_hi)
        & np.all(in_range, axis=1)
    )

    # The candidate columns mirror the scalar cascade's insertion order:
    # clipped interior, the two platform-bound kinks, then the consumer's
    # own endpoints.  np.argmax keeps the first of any exact profit tie.
    columns = [service_clipped]
    for bound in (col_lo, col_hi):
        kink = (stage2_denominator * bound + constant) / a_sums
        columns.append(np.clip(kink, svc_lo, svc_hi))
    columns.append(np.full(a_sums.shape, svc_lo))
    if math.isfinite(svc_hi):
        columns.append(np.full(a_sums.shape, svc_hi))

    best_profits = np.full(a_sums.shape, -np.inf)
    best_services = service_clipped.copy()
    best_prices = np.clip(collection_interior, col_lo, col_hi)
    best_taus = np.clip(taus_interior, 0.0, max_sensing_time)
    for candidate in columns:
        prices, taus, profits = evaluate(candidate)
        better = profits > best_profits
        best_profits = np.where(better, profits, best_profits)
        best_services = np.where(better, candidate, best_services)
        best_prices = np.where(better, prices, best_prices)
        best_taus = np.where(better[:, None], taus, best_taus)

    service_prices = np.where(interior, service_clipped, best_services)
    collection_prices = np.where(interior, collection_interior, best_prices)
    sensing_times = np.where(interior[:, None], taus_interior, best_taus)
    sensing_times = np.where(mask, sensing_times, 0.0)
    return service_prices, collection_prices, sensing_times, interior


# repro-lint: twin=repro.game.stackelberg.solve_stage3_batch
def stage3_golden_batch(collection_prices: np.ndarray,
                        qualities: np.ndarray, cost_a: np.ndarray,
                        cost_b: np.ndarray,
                        max_sensing_time: float = float("inf"),
                        mask: np.ndarray | None = None) -> np.ndarray:
    """Stage-3 numerical optima for per-market prices over ``(R, M)``.

    The same golden-section idiom as
    :func:`repro.game.stackelberg.solve_stage3_batch` (identical bracket
    construction, decay constant, iteration budget, and stopping width),
    generalised from one game's ``(P, K)`` price grid to ``R`` markets
    with one collection price each and dense ``(R, M)`` seller
    parameters.  Masked-out sellers keep a zero-width ``[0, 0]`` bracket
    and return ``tau = 0``.
    """
    prices = np.asarray(collection_prices, dtype=float)
    if prices.ndim != 1:
        raise GameError("collection_prices must be a 1-D (markets,) array")
    if mask is None:
        shape = np.broadcast_shapes(
            (prices.size, 1), np.asarray(qualities, dtype=float).shape)
        mask = np.ones((prices.size, shape[-1]), dtype=bool)
    q, a, b, mask = _as_state_matrices(qualities, cost_a, cost_b, mask)
    if mask.shape[0] != prices.size:
        raise GameError(
            f"mask has {mask.shape[0]} rows for {prices.size} prices"
        )
    p_col = prices[:, None]
    interior = np.divide(p_col - q * b, 2.0 * q * a,
                         out=np.zeros(mask.shape), where=mask)
    hi = np.maximum(2.0 * interior, 0.0) + 1.0
    if math.isfinite(max_sensing_time):
        hi = np.minimum(hi, max_sensing_time)
    hi = np.where(mask, hi, 0.0)
    lo = np.zeros(mask.shape)

    def profit(tau: np.ndarray) -> np.ndarray:
        return p_col * tau - (a * tau * tau + b * tau) * q

    x1 = hi - _INV_PHI * (hi - lo)
    x2 = lo + _INV_PHI * (hi - lo)
    f1, f2 = profit(x1), profit(x2)
    for __ in range(_GOLDEN_ITERATIONS):
        left = f1 < f2
        lo = np.where(left, x1, lo)
        hi = np.where(left, hi, x2)
        x1 = hi - _INV_PHI * (hi - lo)
        x2 = lo + _INV_PHI * (hi - lo)
        f1, f2 = profit(x1), profit(x2)
        if float(np.max(hi - lo)) < 1e-11:
            break
    return (lo + hi) / 2.0
