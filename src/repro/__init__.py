"""CMAB-HS: crowdsensing data trading via combinatorial multi-armed
bandits and a three-stage hierarchical Stackelberg game.

Reproduction of An, Xiao, Liu, Xie, Zhou — "Crowdsensing Data Trading
based on Combinatorial Multi-Armed Bandit and Stackelberg Game"
(ICDE 2021).

Quickstart::

    import numpy as np
    from repro import (
        CMABHSMechanism, Consumer, Job, Platform, SellerPopulation,
    )

    rng = np.random.default_rng(7)
    population = SellerPopulation.random(num_sellers=30, rng=rng)
    job = Job.simple(num_pois=10, num_rounds=500)
    mechanism = CMABHSMechanism(
        population, job, Platform.default(), Consumer.default(), k=5,
    )
    result = mechanism.run()
    print(result.realized_revenue, result.cumulative_regret)

Package map:

* :mod:`repro.core` — the CMAB-HS mechanism (Algorithm 1), closed-form
  equilibrium, regret bound, SE verification.
* :mod:`repro.entities` — consumer / platform / sellers / jobs.
* :mod:`repro.game` — Stackelberg profit functions and numerical solvers.
* :mod:`repro.bandits` — selection policies and a CMAB environment.
* :mod:`repro.quality` — quality observation models.
* :mod:`repro.data` — synthetic Chicago-style taxi-trace pipeline.
* :mod:`repro.sim` — simulation engine, configs, metrics.
* :mod:`repro.obs` — observability: structured tracing, metrics
  registry, logging setup, trace summaries.
* :mod:`repro.experiments` — drivers for every paper figure/table.
"""

from repro.bandits import (
    CMABEnvironment,
    EpsilonFirstPolicy,
    EpsilonGreedyPolicy,
    OptimalPolicy,
    RandomPolicy,
    SelectionPolicy,
    SlidingWindowUCBPolicy,
    ThompsonSamplingPolicy,
    UCBPolicy,
)
from repro.core import (
    ClosedFormStackelbergSolver,
    CMABHSMechanism,
    FormulaVariant,
    LearningState,
    RegretTracker,
    TradingResult,
    assert_equilibrium,
    gap_statistics,
    theorem19_bound,
    verify_equilibrium,
)
from repro.entities import (
    Consumer,
    Job,
    LogValuation,
    Platform,
    PoI,
    QuadraticAggregationCost,
    QuadraticSellerCost,
    Seller,
    SellerPopulation,
)
from repro.exceptions import (
    ConfigurationError,
    DataTraceError,
    EquilibriumViolationError,
    GameError,
    InfeasibleStrategyError,
    PersistenceError,
    ReproError,
    SelectionError,
)
from repro.faults import (
    FaultLog,
    FaultModel,
    FaultSpec,
    parse_fault_spec,
)
from repro.game import (
    GameInstance,
    NumericalStackelbergSolver,
    StrategyProfile,
)
from repro.obs import (
    JsonlSink,
    LoggingSink,
    MetricsRegistry,
    NullTracer,
    RingBufferSink,
    TraceEvent,
    Tracer,
    configure_logging,
    summarize_trace,
)
from repro.quality import (
    BernoulliQuality,
    BetaQuality,
    DeterministicQuality,
    DriftingQuality,
    PoiHeterogeneousQuality,
    QualityModel,
    TruncatedGaussianQuality,
    UniformQuality,
)
from repro.sim import (
    PolicyComparison,
    RunMetrics,
    SimulationConfig,
    TradingSimulator,
)
from repro.version import __version__

__all__ = [
    "__version__",
    # core
    "CMABHSMechanism",
    "TradingResult",
    "ClosedFormStackelbergSolver",
    "FormulaVariant",
    "LearningState",
    "RegretTracker",
    "gap_statistics",
    "theorem19_bound",
    "verify_equilibrium",
    "assert_equilibrium",
    # entities
    "Consumer",
    "Platform",
    "Seller",
    "SellerPopulation",
    "Job",
    "PoI",
    "QuadraticSellerCost",
    "QuadraticAggregationCost",
    "LogValuation",
    # game
    "GameInstance",
    "StrategyProfile",
    "NumericalStackelbergSolver",
    # bandits
    "SelectionPolicy",
    "UCBPolicy",
    "OptimalPolicy",
    "EpsilonFirstPolicy",
    "RandomPolicy",
    "EpsilonGreedyPolicy",
    "ThompsonSamplingPolicy",
    "SlidingWindowUCBPolicy",
    "CMABEnvironment",
    # quality
    "QualityModel",
    "TruncatedGaussianQuality",
    "BernoulliQuality",
    "BetaQuality",
    "UniformQuality",
    "DeterministicQuality",
    "DriftingQuality",
    "PoiHeterogeneousQuality",
    # sim
    "SimulationConfig",
    "TradingSimulator",
    "RunMetrics",
    "PolicyComparison",
    # faults
    "FaultSpec",
    "FaultModel",
    "FaultLog",
    "parse_fault_spec",
    # obs
    "Tracer",
    "NullTracer",
    "TraceEvent",
    "RingBufferSink",
    "JsonlSink",
    "LoggingSink",
    "MetricsRegistry",
    "configure_logging",
    "summarize_trace",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "GameError",
    "InfeasibleStrategyError",
    "EquilibriumViolationError",
    "SelectionError",
    "DataTraceError",
    "PersistenceError",
]
