"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A simulation, job, or mechanism was configured with invalid values.

    Raised eagerly at construction time (for example ``K > M``, a negative
    round count, or an empty PoI set) so that misconfiguration never
    surfaces as a confusing numerical failure deep inside a run.
    """


class GameError(ReproError):
    """The Stackelberg game could not be solved for the given inputs."""


class InfeasibleStrategyError(GameError):
    """A strategy profile violates its feasible region.

    For example a negative sensing time, or a unit price outside the
    ``[p_min, p_max]`` interval declared by the incentive mechanism.
    """


class EquilibriumViolationError(GameError):
    """A claimed Stackelberg Equilibrium failed verification.

    Raised by :func:`repro.core.equilibrium.assert_equilibrium` when a
    profitable unilateral deviation is found for some participant.
    """


class VerificationError(ReproError):
    """The verification subsystem found a correctness failure.

    Base class for every failure raised by :mod:`repro.verify` — a
    broken runtime invariant, a closed-form/numeric oracle disagreement,
    or golden-trace drift.
    """


class InvariantViolationError(VerificationError):
    """A per-round runtime invariant failed in a strict-mode run.

    Raised by the engine's ``strict`` mode when an
    :class:`~repro.verify.invariants.InvariantMonitor` predicate fails —
    for example a Stage-3 stationarity residual out of tolerance, a
    negative seller profit at equilibrium, or a learning-counter
    conservation mismatch.
    """


class GoldenMismatchError(VerificationError):
    """A golden-trace comparison found drift against the stored values."""


class SelectionError(ReproError):
    """Seller selection failed (for example fewer candidates than ``K``)."""


class DataTraceError(ReproError):
    """A data trace could not be generated, parsed, or interpreted."""


class PersistenceError(ReproError):
    """A persisted artefact could not be written, read, or validated.

    Raised when a results file, checkpoint, or sweep snapshot is
    truncated, fails schema validation, or lacks required fields —
    instead of surfacing a raw ``ValueError``/``KeyError`` from the
    underlying JSON/NPZ machinery.

    Beyond the message, the exception carries structured context so
    recovery layers (checkpoint rollback, quarantine, retry policies)
    and humans reading logs can see *which* artefact failed and *why*
    without parsing prose:

    Attributes
    ----------
    path:
        Filesystem path of the offending artefact, or ``None`` when the
        failure is not file-bound (for example an in-memory payload).
    schema_found / schema_expected:
        The schema version read from the artefact and the version this
        library reads, when the failure is a schema mismatch
        (``None`` otherwise).

    The triggering low-level cause (``json.JSONDecodeError``,
    ``zipfile.BadZipFile``, ...) travels as ``__cause__`` via the usual
    ``raise ... from err`` chaining and is appended to ``str()``.
    """

    def __init__(self, message: str, *, path: "str | None" = None,
                 schema_found: "int | None" = None,
                 schema_expected: "int | None" = None) -> None:
        super().__init__(message)
        self.path = path
        self.schema_found = schema_found
        self.schema_expected = schema_expected

    def __str__(self) -> str:
        parts = [super().__str__()]
        if self.path is not None and self.path not in parts[0]:
            parts.append(f"[path: {self.path}]")
        if self.schema_found is not None or self.schema_expected is not None:
            parts.append(
                f"[schema: found {self.schema_found}, "
                f"expected {self.schema_expected}]"
            )
        if self.__cause__ is not None:
            parts.append(
                f"[cause: {type(self.__cause__).__name__}: {self.__cause__}]"
            )
        return " ".join(parts)


class ExperimentError(ReproError):
    """An experiment driver was asked to run with invalid parameters."""


class DeadlineExceededError(ReproError):
    """A unit of work ran past its :class:`repro.resilience.Deadline`.

    Raised by the resilience policy engine when a guarded call exceeds
    its wall-clock budget, and by the parallel coordinator when a task
    blows through its per-task deadline more times than the retry
    policy allows.
    """


class RetryBudgetExceededError(ReproError):
    """A guarded operation failed on every attempt its policy allowed.

    The final underlying failure travels as ``__cause__``; the message
    records the attempt count and the policy that governed it.
    """


class GracefulShutdownInterrupt(ReproError):
    """A run was interrupted by a graceful-shutdown request.

    Raised at a round/seed boundary after in-flight work has been
    drained and a final resumable checkpoint has been written (when
    checkpointing is configured), so callers can exit cleanly and a
    later ``--resume`` continues bit-identically.
    """

    def __init__(self, message: str, *, checkpoint_path: "str | None" = None,
                 ) -> None:
        super().__init__(message)
        self.checkpoint_path = checkpoint_path


class ParallelExecutionError(ReproError):
    """A parallel batch could not be completed.

    Raised by the :mod:`repro.parallel` runtime when a task's runner
    raised inside a worker (the message carries the worker-side
    traceback), or when a task was lost to more worker crashes than
    ``max_task_retries`` allows.  Worker crashes within the retry
    budget are handled transparently and never surface as errors.
    """
