"""Deriving candidate sellers from a taxi-trip trace.

The paper: "we assume that the taxis which pick up or drop off passengers
at these points can complete the data collection job, which are regarded
as the data sellers ... we choose M taxis as satisfied sellers".

A taxi qualifies when it has at least ``min_poi_coverage`` of the PoIs
within ``radius_degrees`` of some pickup/dropoff of its trips.  The trace
carries no quality information (true of the real trace as well), so the
expected qualities and cost parameters are sampled exactly as in the
paper's evaluation settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.data.schema import TripRecord
from repro.entities.job import PoI
from repro.entities.seller import SellerPopulation
from repro.exceptions import DataTraceError

__all__ = ["TraceSellers", "qualified_taxis", "sellers_from_trace"]


@dataclass(frozen=True)
class TraceSellers:
    """Sellers derived from a trace plus the taxi ids behind them.

    Attributes
    ----------
    population:
        The seller population (index ``i`` is seller ``i``).
    taxi_ids:
        ``taxi_ids[i]`` is the trace taxi id realising seller ``i``.
    poi_coverage:
        ``poi_coverage[i]`` is how many of the job's PoIs taxi
        ``taxi_ids[i]`` visited in the trace.
    """

    population: SellerPopulation
    taxi_ids: np.ndarray
    poi_coverage: np.ndarray


def qualified_taxis(records: Sequence[TripRecord], pois: Sequence[PoI],
                    radius_degrees: float = 0.01,
                    min_poi_coverage: int = 1) -> dict[int, int]:
    """Taxis that can serve the job, mapped to their PoI coverage count.

    A taxi *covers* a PoI when any of its pickups or dropoffs falls within
    ``radius_degrees`` (Chebyshev distance, matching the grid cells used
    for PoI extraction) of the PoI.

    Returns
    -------
    dict
        ``{taxi_id: number_of_pois_covered}`` for every taxi covering at
        least ``min_poi_coverage`` PoIs, sorted by descending coverage.
    """
    if not records:
        raise DataTraceError("cannot derive sellers from an empty trace")
    if not pois:
        raise DataTraceError("cannot derive sellers without PoIs")
    if radius_degrees <= 0.0:
        raise DataTraceError(
            f"radius_degrees must be positive, got {radius_degrees}"
        )
    if min_poi_coverage < 1:
        raise DataTraceError(
            f"min_poi_coverage must be >= 1, got {min_poi_coverage}"
        )
    poi_coords = np.array([(p.latitude, p.longitude) for p in pois])
    coverage: dict[int, set[int]] = {}
    for record in records:
        for lat, lon in (
            (record.pickup_latitude, record.pickup_longitude),
            (record.dropoff_latitude, record.dropoff_longitude),
        ):
            distance = np.max(
                np.abs(poi_coords - np.array([lat, lon])), axis=1
            )
            near = np.nonzero(distance <= radius_degrees)[0]
            if near.size:
                coverage.setdefault(record.taxi_id, set()).update(
                    int(p) for p in near
                )
    qualified = {
        taxi: len(pois_seen)
        for taxi, pois_seen in coverage.items()
        if len(pois_seen) >= min_poi_coverage
    }
    return dict(
        sorted(qualified.items(), key=lambda item: (-item[1], item[0]))
    )


def sellers_from_trace(records: Sequence[TripRecord], pois: Sequence[PoI],
                       num_sellers: int, rng: np.random.Generator,
                       radius_degrees: float = 0.01,
                       min_poi_coverage: int = 1,
                       a_range: tuple[float, float] = (0.1, 0.5),
                       b_range: tuple[float, float] = (0.1, 1.0),
                       ) -> TraceSellers:
    """Derive ``M`` sellers from a trace, the paper's pipeline end to end.

    The ``M`` best-covering qualified taxis become sellers; expected
    qualities and cost parameters are sampled from the paper's ranges
    (qualities uniform on (0, 1], ``a`` on ``a_range``, ``b`` on
    ``b_range``).

    Raises
    ------
    DataTraceError
        If fewer than ``num_sellers`` taxis qualify.
    """
    if num_sellers <= 0:
        raise DataTraceError(
            f"num_sellers must be positive, got {num_sellers}"
        )
    qualified = qualified_taxis(records, pois, radius_degrees,
                                min_poi_coverage)
    if len(qualified) < num_sellers:
        raise DataTraceError(
            f"only {len(qualified)} taxis qualify; cannot pick "
            f"{num_sellers} sellers (relax radius_degrees or "
            "min_poi_coverage)"
        )
    chosen = list(qualified.items())[:num_sellers]
    taxi_ids = np.array([taxi for taxi, __ in chosen], dtype=np.int64)
    coverage = np.array([count for __, count in chosen], dtype=np.int64)
    population = SellerPopulation.random(
        num_sellers, rng, a_range=a_range, b_range=b_range
    )
    return TraceSellers(
        population=population,
        taxi_ids=taxi_ids,
        poi_coverage=coverage,
    )
