"""PoI extraction from a taxi-trip trace.

The paper: "we select some pick-up/drop-off points as the PoIs ... We
first choose L=10 locations".  We grid the city, count pickup and dropoff
events per cell, and return the ``L`` busiest cell centroids as PoIs.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

from repro.data.schema import TripRecord
from repro.entities.job import PoI
from repro.exceptions import DataTraceError

__all__ = ["extract_pois", "trip_endpoints"]


def trip_endpoints(records: Sequence[TripRecord]) -> np.ndarray:
    """All pickup and dropoff points of a trace, shape ``(2*num_trips, 2)``.

    Rows are (latitude, longitude); pickups come first, then dropoffs.
    """
    if not records:
        raise DataTraceError("cannot extract endpoints from an empty trace")
    pickups = np.array(
        [(r.pickup_latitude, r.pickup_longitude) for r in records]
    )
    dropoffs = np.array(
        [(r.dropoff_latitude, r.dropoff_longitude) for r in records]
    )
    return np.vstack([pickups, dropoffs])


def extract_pois(records: Sequence[TripRecord], num_pois: int,
                 cell_size_degrees: float = 0.01) -> list[PoI]:
    """The ``L`` busiest locations of a trace, as PoIs.

    Points are binned into ``cell_size_degrees`` grid cells; the ``L``
    cells with the most pickup+dropoff events become PoIs, positioned at
    the mean of their member points and weighted by their event count.

    Raises
    ------
    DataTraceError
        If the trace has fewer than ``num_pois`` distinct busy cells.
    """
    if num_pois <= 0:
        raise DataTraceError(f"num_pois must be positive, got {num_pois}")
    if cell_size_degrees <= 0.0:
        raise DataTraceError(
            f"cell_size_degrees must be positive, got {cell_size_degrees}"
        )
    points = trip_endpoints(records)
    cells = np.floor(points / cell_size_degrees).astype(np.int64)
    keys = [tuple(cell) for cell in cells]
    counts = Counter(keys)
    if len(counts) < num_pois:
        raise DataTraceError(
            f"trace yields only {len(counts)} distinct cells; "
            f"cannot extract {num_pois} PoIs"
        )
    busiest = [cell for cell, __ in counts.most_common(num_pois)]
    pois: list[PoI] = []
    keys_array = np.array(keys)
    for poi_id, cell in enumerate(busiest):
        member_mask = np.all(keys_array == np.array(cell), axis=1)
        centroid = points[member_mask].mean(axis=0)
        pois.append(
            PoI(
                poi_id=poi_id,
                latitude=float(centroid[0]),
                longitude=float(centroid[1]),
                weight=float(counts[cell]),
            )
        )
    return pois
