"""CSV persistence and filtering of taxi-trip traces."""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence

from repro.data.schema import CSV_HEADER, TripRecord
from repro.exceptions import DataTraceError

__all__ = ["save_trace", "load_trace", "filter_by_time", "filter_by_taxis"]


def save_trace(records: Iterable[TripRecord], path: str | os.PathLike) -> int:
    """Write a trace to a CSV file with header; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(",".join(CSV_HEADER) + "\n")
        for record in records:
            handle.write(record.to_csv_row() + "\n")
            count += 1
    return count


def load_trace(path: str | os.PathLike) -> list[TripRecord]:
    """Read a trace from a CSV file written by :func:`save_trace`.

    Raises
    ------
    DataTraceError
        If the file is empty, the header does not match, or any row is
        malformed.
    """
    records: list[TripRecord] = []
    with open(path, encoding="utf-8") as handle:
        header = handle.readline().strip()
        if not header:
            raise DataTraceError(f"trace file {path!s} is empty")
        if tuple(header.split(",")) != CSV_HEADER:
            raise DataTraceError(
                f"unexpected trace header {header!r} in {path!s}"
            )
        for line in handle:
            if line.strip():
                records.append(TripRecord.from_csv_row(line))
    return records


def filter_by_time(records: Sequence[TripRecord], start: float,
                   end: float) -> list[TripRecord]:
    """Records whose timestamp lies in ``[start, end)``."""
    if end <= start:
        raise DataTraceError(f"empty time window [{start}, {end})")
    return [r for r in records if start <= r.timestamp < end]


def filter_by_taxis(records: Sequence[TripRecord],
                    taxi_ids: Iterable[int]) -> list[TripRecord]:
    """Records belonging to the given taxis."""
    wanted = set(int(t) for t in taxi_ids)
    return [r for r in records if r.taxi_id in wanted]
