"""Taxi-trip trace substrate (synthetic Chicago-style generator).

The real Chicago Taxi Trips dump is not redistributable; this package
generates a statistically similar synthetic trace and implements the
paper's downstream pipeline on it: PoI extraction from the busiest
pickup/dropoff points and seller derivation from the taxis serving them.
"""

from repro.data.generator import TraceSpec, generate_trace
from repro.data.loader import (
    filter_by_taxis,
    filter_by_time,
    load_trace,
    save_trace,
)
from repro.data.poi import extract_pois, trip_endpoints
from repro.data.schema import CSV_HEADER, TripRecord
from repro.data.trace_sellers import (
    TraceSellers,
    qualified_taxis,
    sellers_from_trace,
)

__all__ = [
    "TripRecord",
    "CSV_HEADER",
    "TraceSpec",
    "generate_trace",
    "save_trace",
    "load_trace",
    "filter_by_time",
    "filter_by_taxis",
    "extract_pois",
    "trip_endpoints",
    "TraceSellers",
    "qualified_taxis",
    "sellers_from_trace",
]
