"""Synthetic Chicago-style taxi trip generator.

The paper's trace (Chicago Taxi Trips, 27 465 records, 300 taxis) is not
redistributable here, so this module generates a statistically similar
substitute exercising the identical downstream pipeline:

* a city modelled as a set of spatial *hotspots* (downtown, airport,
  neighbourhood centres) with Zipf-like popularity — taxi activity in
  real traces concentrates heavily on a few zones, which is exactly what
  makes "pick the busiest points as PoIs" meaningful;
* each trip picks an origin and destination hotspot by popularity, adds
  Gaussian scatter around the hotspot centre, and derives trip miles from
  the straight-line distance with multiplicative noise;
* each taxi works a random subset of days within the trace window and
  favours a taxi-specific subset of hotspots, so different taxis cover
  different PoIs (the trace-to-sellers step then finds which taxis can
  serve which PoIs).

See DESIGN.md ("deviations" #2) for why this substitution preserves the
paper's evaluation: qualities were never part of the real trace either.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.schema import TripRecord
from repro.exceptions import DataTraceError
from repro.sim.rng import seeded_generator

__all__ = ["TraceSpec", "generate_trace"]

#: Approximate miles per degree of latitude (Chicago's latitude).
_MILES_PER_DEGREE = 69.0


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of a synthetic trace.

    Defaults mirror the paper's dataset scale: 27 465 trips by 300 taxis.

    Attributes
    ----------
    num_trips:
        Total number of trip records.
    num_taxis:
        Number of distinct taxi ids.
    num_hotspots:
        Number of spatial activity centres.
    city_center:
        (latitude, longitude) of the synthetic city (defaults to Chicago).
    city_radius_degrees:
        Hotspots are placed within this radius of the centre.
    hotspot_scatter_degrees:
        Standard deviation of pickup/dropoff scatter around a hotspot.
    days:
        Length of the trace window in days.
    seed:
        Randomness seed — two specs with equal fields generate the
        identical trace.
    """

    num_trips: int = 27_465
    num_taxis: int = 300
    num_hotspots: int = 40
    city_center: tuple[float, float] = (41.88, -87.63)
    city_radius_degrees: float = 0.15
    hotspot_scatter_degrees: float = 0.004
    days: int = 30
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_trips <= 0:
            raise DataTraceError(f"num_trips must be positive, got {self.num_trips}")
        if self.num_taxis <= 0:
            raise DataTraceError(f"num_taxis must be positive, got {self.num_taxis}")
        if self.num_hotspots < 2:
            raise DataTraceError(
                f"need at least 2 hotspots, got {self.num_hotspots}"
            )
        if self.city_radius_degrees <= 0.0 or self.hotspot_scatter_degrees <= 0.0:
            raise DataTraceError("spatial scales must be positive")
        if self.days <= 0:
            raise DataTraceError(f"days must be positive, got {self.days}")


def _place_hotspots(spec: TraceSpec, rng: np.random.Generator) -> np.ndarray:
    """Hotspot centres, shape ``(H, 2)`` as (lat, lon) rows."""
    angles = rng.uniform(0.0, 2.0 * math.pi, size=spec.num_hotspots)
    # sqrt for uniform area density, then pull inward so the city has a core.
    radii = spec.city_radius_degrees * np.sqrt(
        rng.random(spec.num_hotspots)
    ) * rng.uniform(0.3, 1.0, size=spec.num_hotspots)
    lat = spec.city_center[0] + radii * np.sin(angles)
    lon = spec.city_center[1] + radii * np.cos(angles)
    return np.column_stack([lat, lon])


def _hotspot_popularity(num_hotspots: int) -> np.ndarray:
    """Zipf-like popularity weights, normalised to a distribution."""
    weights = 1.0 / np.arange(1, num_hotspots + 1, dtype=float)
    return weights / weights.sum()


def generate_trace(spec: TraceSpec | None = None) -> list[TripRecord]:
    """Generate a synthetic taxi-trip trace.

    Returns the records sorted by timestamp, like a real trace dump.

    Parameters
    ----------
    spec:
        Trace parameters; ``None`` uses the paper-scale defaults (27 465
        trips, 300 taxis — a few seconds of generation time).
    """
    spec = spec if spec is not None else TraceSpec()
    rng = seeded_generator(spec.seed)
    hotspots = _place_hotspots(spec, rng)
    popularity = _hotspot_popularity(spec.num_hotspots)

    # Each taxi favours a subset of hotspots (its "territory").
    territory_size = max(spec.num_hotspots // 3, 2)
    territories = np.empty((spec.num_taxis, territory_size), dtype=int)
    for taxi in range(spec.num_taxis):
        territories[taxi] = rng.choice(
            spec.num_hotspots, size=territory_size, replace=False, p=popularity
        )

    # Trip volume per taxi is skewed (full-time versus occasional drivers).
    taxi_weights = rng.gamma(shape=2.0, scale=1.0, size=spec.num_taxis)
    taxi_weights /= taxi_weights.sum()
    taxi_ids = rng.choice(spec.num_taxis, size=spec.num_trips, p=taxi_weights)

    window_seconds = spec.days * 86_400.0
    timestamps = np.sort(rng.uniform(0.0, window_seconds, size=spec.num_trips))

    records: list[TripRecord] = []
    scatter = spec.hotspot_scatter_degrees
    for trip in range(spec.num_trips):
        taxi = int(taxi_ids[trip])
        territory = territories[taxi]
        origin_idx, dest_idx = rng.choice(territory, size=2, replace=True)
        if origin_idx == dest_idx:
            dest_idx = int(territory[(int(np.where(territory == dest_idx)[0][0])
                                      + 1) % territory.size])
        origin = hotspots[origin_idx] + rng.normal(0.0, scatter, size=2)
        dest = hotspots[dest_idx] + rng.normal(0.0, scatter, size=2)
        distance_degrees = float(np.hypot(*(dest - origin)))
        miles = distance_degrees * _MILES_PER_DEGREE * rng.uniform(1.0, 1.4)
        records.append(
            TripRecord(
                taxi_id=taxi,
                timestamp=float(timestamps[trip]),
                trip_miles=miles,
                pickup_latitude=float(origin[0]),
                pickup_longitude=float(origin[1]),
                dropoff_latitude=float(dest[0]),
                dropoff_longitude=float(dest[1]),
            )
        )
    return records
