"""Record schema of the taxi-trip data trace.

The paper evaluates on the Chicago Taxi Trips trace, where "each entry of
the trace records the taxiID, timestamp, trip miles and the location of
picking up/dropping off passengers".  :class:`TripRecord` mirrors exactly
those fields; the synthetic generator and the CSV loader both speak it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import DataTraceError

__all__ = ["TripRecord", "CSV_HEADER"]

#: Column order used by the CSV loader/writer.
CSV_HEADER = (
    "taxi_id",
    "timestamp",
    "trip_miles",
    "pickup_latitude",
    "pickup_longitude",
    "dropoff_latitude",
    "dropoff_longitude",
)


@dataclass(frozen=True)
class TripRecord:
    """One taxi trip.

    Attributes
    ----------
    taxi_id:
        Identifier of the taxi (a candidate data seller).
    timestamp:
        Trip start time as a Unix timestamp (seconds).
    trip_miles:
        Length of the trip in miles.
    pickup_latitude, pickup_longitude:
        Where the passenger was picked up.
    dropoff_latitude, dropoff_longitude:
        Where the passenger was dropped off.
    """

    taxi_id: int
    timestamp: float
    trip_miles: float
    pickup_latitude: float
    pickup_longitude: float
    dropoff_latitude: float
    dropoff_longitude: float

    def __post_init__(self) -> None:
        if self.taxi_id < 0:
            raise DataTraceError(f"taxi_id must be >= 0, got {self.taxi_id}")
        for name in ("timestamp", "trip_miles", "pickup_latitude",
                     "pickup_longitude", "dropoff_latitude",
                     "dropoff_longitude"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise DataTraceError(f"{name} must be finite, got {value}")
        if self.trip_miles < 0.0:
            raise DataTraceError(
                f"trip_miles must be >= 0, got {self.trip_miles}"
            )

    def to_csv_row(self) -> str:
        """Serialise this record as one CSV line (no trailing newline)."""
        return (
            f"{self.taxi_id},{self.timestamp:.1f},{self.trip_miles:.3f},"
            f"{self.pickup_latitude:.6f},{self.pickup_longitude:.6f},"
            f"{self.dropoff_latitude:.6f},{self.dropoff_longitude:.6f}"
        )

    @classmethod
    def from_csv_row(cls, row: str) -> "TripRecord":
        """Parse one CSV line into a record.

        Raises
        ------
        DataTraceError
            If the line has the wrong arity or non-numeric fields.
        """
        parts = row.strip().split(",")
        if len(parts) != len(CSV_HEADER):
            raise DataTraceError(
                f"expected {len(CSV_HEADER)} fields, got {len(parts)}: {row!r}"
            )
        try:
            return cls(
                taxi_id=int(parts[0]),
                timestamp=float(parts[1]),
                trip_miles=float(parts[2]),
                pickup_latitude=float(parts[3]),
                pickup_longitude=float(parts[4]),
                dropoff_latitude=float(parts[5]),
                dropoff_longitude=float(parts[6]),
            )
        except ValueError as error:
            raise DataTraceError(f"malformed trace row {row!r}: {error}") from error
