"""Deterministic seed derivation for simulations.

Every run of the engine needs several independent randomness streams
(population sampling, observation noise, policy randomness).  Deriving
them all from one master seed via :class:`numpy.random.SeedSequence`
keeps runs exactly reproducible while guaranteeing stream independence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Named, reproducible random-generator streams from one master seed.

    Two factories built from the same seed hand out identical streams for
    identical names, regardless of request order.

    Parameters
    ----------
    master_seed:
        The simulation's master seed.
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)

    @property
    def master_seed(self) -> int:
        """The master seed this factory derives every stream from."""
        return self._master_seed

    def generator(self, *names: str | int) -> np.random.Generator:
        """A generator for the stream identified by the given name parts.

        Name parts are hashed into ``spawn_key`` material, so
        ``generator("population")`` and ``generator("observations", 3)``
        are independent streams with probability 1 - 2^-128.
        """
        key = [self._master_seed]
        for name in names:
            if isinstance(name, int):
                key.append(name & 0xFFFFFFFF)
            else:
                # Stable 32-bit hash of the string (Python's hash() is salted).
                value = 0
                for char in str(name):
                    value = (value * 131 + ord(char)) & 0xFFFFFFFF
                key.append(value)
        return np.random.default_rng(np.random.SeedSequence(key))
