"""Deterministic seed derivation for simulations.

Every run of the engine needs several independent randomness streams
(population sampling, observation noise, policy randomness).  Deriving
them all from one master seed via :class:`numpy.random.SeedSequence`
keeps runs exactly reproducible while guaranteeing stream independence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory", "seed_sequence", "seeded_generator"]

#: Entropy accepted by :func:`seeded_generator` / :func:`seed_sequence`:
#: a master seed, a (possibly spawned) seed sequence, or key material.
SeedLike = int | list[int] | np.random.SeedSequence


def seeded_generator(seed: SeedLike) -> np.random.Generator:
    """A generator explicitly seeded with ``seed``.

    This is the repo's sole sanctioned spelling of
    ``np.random.default_rng`` outside this module (the RL001 lint rule
    enforces it): funnelling every construction through here keeps the
    seeding discipline auditable in one place and makes an accidental
    *unseeded* generator impossible — ``seed`` is mandatory.  The
    produced stream is bit-identical to ``np.random.default_rng(seed)``.
    """
    if seed is None:  # belt-and-braces: refuse OS-entropy streams
        raise TypeError(
            "seeded_generator requires explicit entropy; an unseeded "
            "generator would break reproducibility"
        )
    return np.random.default_rng(seed)


def seed_sequence(entropy: SeedLike) -> np.random.SeedSequence:
    """An ``np.random.SeedSequence`` over explicit ``entropy``.

    Sanctioned spelling of ``np.random.SeedSequence`` outside this
    module, for call sites that spawn several independent child streams
    (pass the children to :func:`seeded_generator`).  Identical
    entropy produces identical spawns.
    """
    if entropy is None:
        raise TypeError(
            "seed_sequence requires explicit entropy; OS-entropy "
            "sequences would break reproducibility"
        )
    return np.random.SeedSequence(entropy)


class RngFactory:
    """Named, reproducible random-generator streams from one master seed.

    Two factories built from the same seed hand out identical streams for
    identical names, regardless of request order.

    Parameters
    ----------
    master_seed:
        The simulation's master seed.
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)

    @property
    def master_seed(self) -> int:
        """The master seed this factory derives every stream from."""
        return self._master_seed

    def generator(self, *names: str | int) -> np.random.Generator:
        """A generator for the stream identified by the given name parts.

        Name parts are hashed into ``spawn_key`` material, so
        ``generator("population")`` and ``generator("observations", 3)``
        are independent streams with probability 1 - 2^-128.
        """
        key = [self._master_seed]
        for name in names:
            if isinstance(name, int):
                key.append(name & 0xFFFFFFFF)
            else:
                # Stable 32-bit hash of the string (Python's hash() is salted).
                value = 0
                for char in str(name):
                    value = (value * 131 + ord(char)) & 0xFFFFFFFF
                key.append(value)
        return seeded_generator(seed_sequence(key))
