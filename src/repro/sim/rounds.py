"""The round bodies shared by the batch engine and the event runtime.

One trading round — selection already done — is the same computation
whether it is driven by :class:`~repro.sim.engine.TradingSimulator`'s
synchronous ``for t in range(n)`` loop or fired as a scheduled event by
:class:`~repro.runtime.MarketRuntime`'s discrete-event kernel.  This
module holds that computation exactly once, so "a static-population
runtime run reproduces the batch engine bit for bit" is true *by
construction* rather than by parallel maintenance of two copies.

Two bodies:

* :func:`play_clean_round` — the happy path (sample, learn, solve the
  three-stage game, settle, account profits);
* :func:`play_degraded_round` — the graceful-degradation path driven by
  a :class:`~repro.faults.RoundFaultPlan`.  The batch engine feeds it
  plans drawn by a :class:`~repro.faults.FaultModel`; the event runtime
  reuses the *same* machinery for organic churn by synthesising plans
  whose ``dropped`` set is the sellers that departed mid-round.

Both consume randomness only through the sampler handed to them, in a
fixed call order, so callers control bit-identity entirely through
stream construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.core.incentive import solve_round_fast
from repro.core.regret import RegretTracker
from repro.core.state import LearningState, observation_mask
from repro.faults import FaultKind, FaultLog, FaultModel, RoundFaultPlan
from repro.kernels.selection import estimation_error as _estimation_error
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import perf_counter
from repro.obs.tracer import Tracer
from repro.quality.sampler import QualitySampler

if TYPE_CHECKING:  # runtime import would cycle: repro.verify runs rounds
    from repro.verify.invariants import InvariantMonitor

__all__ = [
    "PRIOR_MEAN",
    "QUALITY_FLOOR",
    "SERIES_NAMES",
    "RoundContext",
    "play_clean_round",
    "play_faulty_round",
    "play_degraded_round",
]

#: Neutral estimate used for sellers that have never been observed when a
#: policy (for example ``random``) drags them into the game unseen.
PRIOR_MEAN = 0.5

#: Floor applied to estimated qualities entering the game (the closed
#: forms divide by ``qbar_i``).
QUALITY_FLOOR = 1e-6

#: Metric series written round-by-round (regret lives in the tracker).
SERIES_NAMES = (
    "realized", "expected", "consumer", "platform", "sellers_mean",
    "service", "collection", "totals", "estimation_error",
)


@dataclass
class RoundContext:
    """Everything a round body needs, bundled once per run.

    The batch engine builds one of these at the top of
    :meth:`~repro.sim.engine.TradingSimulator.run`; the event runtime
    holds one for the lifetime of the market.  All array members are
    the *live* run objects (the bodies mutate ``series``,
    ``selection_counts``, ``state``, ...), not copies.
    """

    state: LearningState
    tracker: RegretTracker
    policy: SelectionPolicy
    sampler: QualitySampler
    series: dict[str, np.ndarray]
    selection_counts: np.ndarray
    qualities_truth: np.ndarray
    cost_a_all: np.ndarray
    cost_b_all: np.ndarray
    num_pois: int
    theta: float
    lam: float
    omega: float
    svc_bounds: tuple[float, float]
    col_bounds: tuple[float, float]
    tau_max: float
    tau0: float
    tracer: Tracer
    metrics: MetricsRegistry
    monitor: "InvariantMonitor | None" = None
    #: Which hot-path implementation drives this run ("scalar" or
    #: "vector"); informational — the bodies branch on ``scratch``.
    backend: str = "scalar"
    #: Pre-allocated ``(M,)`` buffer the vector backend reuses for the
    #: per-round estimation-error reduction (``None`` on the scalar
    #: path, which allocates temporaries as it always has).
    scratch: np.ndarray | None = None


def estimation_error_scalar(means: np.ndarray,
                            qualities_truth: np.ndarray) -> float:
    """Allocation-naive mean absolute estimation error.

    The scalar twin of
    :func:`repro.kernels.selection.estimation_error`: the identical
    subtract/abs/mean sequence, with ordinary temporaries instead of a
    caller-owned scratch buffer, so the value is bit-identical across
    backends.
    """
    return float(np.abs(means - qualities_truth).mean())


def _estimation_error_of(ctx: RoundContext, state: LearningState) -> float:
    """Mean absolute estimation error, allocation-free when possible."""
    if ctx.scratch is not None:
        return _estimation_error(state.means, ctx.qualities_truth,
                                 ctx.scratch)
    return estimation_error_scalar(state.means, ctx.qualities_truth)


def play_clean_round(ctx: RoundContext, t: int, selected: np.ndarray,
                     explore_round: bool) -> None:
    """One happy-path round (the original engine, bit for bit)."""
    state, sampler, series = ctx.state, ctx.sampler, ctx.series
    num_pois = ctx.num_pois
    theta, lam, omega = ctx.theta, ctx.lam, ctx.omega
    svc_bounds, col_bounds = ctx.svc_bounds, ctx.col_bounds
    tr, reg = ctx.tracer, ctx.metrics
    cost_a = ctx.cost_a_all[selected]
    cost_b = ctx.cost_b_all[selected]
    if explore_round:
        # Algorithm 1 initial exploration: fixed time, break-even
        # price; profits are evaluated at the *post-collection*
        # estimates (the qualities are learned before settlement).
        observations = sampler.sample_round(selected, round_index=t)
        state.update(selected, observations.sums, num_pois)
        ctx.policy.observe(t, selected, observations.sums, num_pois)
        solve_start = perf_counter()
        means = state.means[selected]
        taus = np.full(selected.size, ctx.tau0)
        total = float(np.add.reduce(taus))
        p = col_bounds[1]
        aggregation = theta * total * total + lam * total
        p_j = min(max(p + aggregation / total, svc_bounds[0]),
                  svc_bounds[1])
    else:
        solve_start = perf_counter()
        means = state.means[selected]
        game_means = np.maximum(means, QUALITY_FLOOR)
        p_j, p, taus = solve_round_fast(
            game_means, cost_a, cost_b, theta, lam, omega,
            svc_bounds, col_bounds, ctx.tau_max,
        )
        total = float(np.add.reduce(taus))
        aggregation = theta * total * total + lam * total
    solve_duration = perf_counter() - solve_start
    reg.timer("engine.solve").observe(solve_duration)
    reg.gauge("service_price").set(p_j)
    reg.gauge("collection_price").set(p)
    if tr.enabled:
        tr.emit("equilibrium", round_index=t, service_price=float(p_j),
                collection_price=float(p), tau_total=total,
                explore=bool(explore_round), duration_s=solve_duration)
    if ctx.monitor is not None:
        # The game the solver actually solved uses the floored
        # estimates, so the invariants are checked against those.
        ctx.monitor.check_equilibrium(
            t, means if explore_round else game_means, cost_a, cost_b,
            theta, lam, omega, svc_bounds, col_bounds, ctx.tau_max,
            float(p_j), float(p), taus, bool(explore_round),
        )

    # add.reduce == the pairwise kernel behind sum()/mean(), minus the
    # per-call wrapper — same bits, and this body runs every round.
    mean_quality = float(np.add.reduce(means) / means.size)
    seller_profits = p * taus - (
        cost_a * taus * taus + cost_b * taus
    ) * means
    series["consumer"][t] = (
        omega * np.log1p(mean_quality * total) - p_j * total
    )
    series["platform"][t] = (p_j - p) * total - aggregation
    series["sellers_mean"][t] = float(
        np.add.reduce(seller_profits) / seller_profits.size
    )
    series["service"][t] = p_j
    series["collection"][t] = p
    series["totals"][t] = total

    if not explore_round:
        observations = sampler.sample_round(selected, round_index=t)
        state.update(selected, observations.sums, num_pois)
        ctx.policy.observe(t, selected, observations.sums, num_pois)
    ctx.tracker.record(selected)
    series["realized"][t] = observations.total
    series["expected"][t] = float(
        np.add.reduce(ctx.qualities_truth[selected])
    ) * num_pois
    series["estimation_error"][t] = _estimation_error_of(ctx, state)
    ctx.selection_counts[selected] += 1
    if tr.enabled:
        tr.emit("profits", round_index=t,
                consumer=float(series["consumer"][t]),
                platform=float(series["platform"][t]),
                sellers_mean=float(series["sellers_mean"][t]),
                realized=float(series["realized"][t]))


def play_faulty_round(ctx: RoundContext, t: int, selected: np.ndarray,
                      explore_round: bool, fault_model: FaultModel,
                      log: FaultLog | None) -> None:
    """One fault-injected round: draw the plan, log it, degrade.

    With an all-zero fault plan this produces bit-identical metrics to
    :func:`play_clean_round` (asserted by the test suite): the fault
    draws come from their own RNG stream, and every masked operation
    degenerates to the unmasked original.
    """
    plan = fault_model.plan_round(t, selected, ctx.num_pois)
    fault_model.log_plan(plan, log, tracer=ctx.tracer)
    ctx.metrics.counter("fault_events").inc(
        plan.dropped.size + plan.corrupted.size + plan.stalled.size
    )
    play_degraded_round(ctx, t, selected, explore_round, plan, log)


def play_degraded_round(ctx: RoundContext, t: int, selected: np.ndarray,
                        explore_round: bool, plan: RoundFaultPlan,
                        log: FaultLog | None) -> None:
    """One round degraded by an already-drawn :class:`RoundFaultPlan`.

    The plan's ``dropped`` sellers are removed from settlement (the
    game is re-solved on the survivors; an empty survivor set settles
    as a documented no-trade round), ``corrupted`` reports are
    quarantined by feasibility validation, and ``stalled`` reports miss
    revenue accounting but still reach the learner.  The event runtime
    calls this directly with synthesised churn plans (``dropped`` =
    sellers that departed between selection and settlement).
    """
    state, sampler, series = ctx.state, ctx.sampler, ctx.series
    num_pois = ctx.num_pois
    theta, lam, omega = ctx.theta, ctx.lam, ctx.omega
    svc_bounds, col_bounds = ctx.svc_bounds, ctx.col_bounds
    tr, reg = ctx.tracer, ctx.metrics
    participants = selected[~np.isin(selected, plan.dropped)]

    ctx.tracker.record(selected)
    ctx.selection_counts[selected] += 1
    series["expected"][t] = float(
        ctx.qualities_truth[selected].sum()
    ) * num_pois

    if participants.size == 0:
        # Documented fallback: every selected seller dropped out, so
        # the round settles with no trade at all — zero profits,
        # prices pinned to their lower bounds, nothing learned.
        if log is not None:
            log.record(t, FaultKind.NO_TRADE)
        reg.counter("no_trade_rounds").inc()
        if tr.enabled:
            tr.emit("fault", round_index=t,
                    fault=FaultKind.NO_TRADE.value)
        series["realized"][t] = 0.0
        series["consumer"][t] = 0.0
        series["platform"][t] = 0.0
        series["sellers_mean"][t] = 0.0
        series["service"][t] = svc_bounds[0]
        series["collection"][t] = col_bounds[0]
        series["totals"][t] = 0.0
        series["estimation_error"][t] = _estimation_error_of(ctx, state)
        return

    if participants.size < selected.size:
        if log is not None:
            log.record(t, FaultKind.DEGRADED,
                       value=float(participants.size))
        reg.counter("degraded_resolves").inc()
        if tr.enabled:
            tr.emit("fault", round_index=t,
                    fault=FaultKind.DEGRADED.value,
                    survivors=int(participants.size))

    cost_a = ctx.cost_a_all[participants]
    cost_b = ctx.cost_b_all[participants]
    delivered = None
    settle_mask = None

    def collect() -> None:
        """Sample, inject corruption, quarantine, and learn."""
        nonlocal delivered, settle_mask
        observations = sampler.sample_round(participants, round_index=t)
        delivered = observations.sums.copy()
        if plan.corrupted.size:
            position = {int(s): i for i, s in enumerate(participants)}
            for seller, garbage in zip(plan.corrupted,
                                       plan.corrupted_sums):
                delivered[position[int(seller)]] = garbage
        valid = observation_mask(delivered, num_pois)
        invalid_positions = np.flatnonzero(~valid)
        if invalid_positions.size:
            reg.counter("quarantined_reports").inc(
                int(invalid_positions.size)
            )
        for pos in invalid_positions:
            if log is not None:
                log.record(t, FaultKind.QUARANTINE,
                           int(participants[pos]),
                           float(delivered[pos]))
            if tr.enabled:
                tr.emit("fault", round_index=t,
                        fault=FaultKind.QUARANTINE.value,
                        seller=int(participants[pos]),
                        value=float(delivered[pos]))
        # Stalled reports arrive after settlement but still reach
        # the learner; quarantined ones reach neither.
        state.update(participants[valid], delivered[valid], num_pois)
        ctx.policy.observe(t, participants[valid], delivered[valid],
                           num_pois)
        settle_mask = valid & ~np.isin(participants, plan.stalled)

    if explore_round:
        collect()
        solve_start = perf_counter()
        means = state.means[participants]
        taus = np.full(participants.size, ctx.tau0)
        total = float(taus.sum())
        p = col_bounds[1]
        aggregation = theta * total * total + lam * total
        p_j = min(max(p + aggregation / total, svc_bounds[0]),
                  svc_bounds[1])
    else:
        # The game is (re-)solved on the survivors only — a degraded
        # set never raises, it just trades less.
        solve_start = perf_counter()
        means = state.means[participants]
        game_means = np.maximum(means, QUALITY_FLOOR)
        p_j, p, taus = solve_round_fast(
            game_means, cost_a, cost_b, theta, lam, omega,
            svc_bounds, col_bounds, ctx.tau_max,
        )
        total = float(np.add.reduce(taus))
        aggregation = theta * total * total + lam * total
    solve_duration = perf_counter() - solve_start
    reg.timer("engine.solve").observe(solve_duration)
    reg.gauge("service_price").set(p_j)
    reg.gauge("collection_price").set(p)
    if tr.enabled:
        tr.emit("equilibrium", round_index=t, service_price=float(p_j),
                collection_price=float(p), tau_total=total,
                explore=bool(explore_round), duration_s=solve_duration)
    if ctx.monitor is not None:
        # The game the solver actually solved uses the floored
        # estimates, so the invariants are checked against those.
        ctx.monitor.check_equilibrium(
            t, means if explore_round else game_means, cost_a, cost_b,
            theta, lam, omega, svc_bounds, col_bounds, ctx.tau_max,
            float(p_j), float(p), taus, bool(explore_round),
        )

    # add.reduce == the pairwise kernel behind sum()/mean(), minus the
    # per-call wrapper — same bits, and this body runs every round.
    mean_quality = float(np.add.reduce(means) / means.size)
    seller_profits = p * taus - (
        cost_a * taus * taus + cost_b * taus
    ) * means
    series["consumer"][t] = (
        omega * np.log1p(mean_quality * total) - p_j * total
    )
    series["platform"][t] = (p_j - p) * total - aggregation
    series["sellers_mean"][t] = float(
        np.add.reduce(seller_profits) / seller_profits.size
    )
    series["service"][t] = p_j
    series["collection"][t] = p
    series["totals"][t] = total

    if not explore_round:
        collect()
    series["realized"][t] = float(delivered[settle_mask].sum())
    series["estimation_error"][t] = _estimation_error_of(ctx, state)
    if tr.enabled:
        tr.emit("profits", round_index=t,
                consumer=float(series["consumer"][t]),
                platform=float(series["platform"][t]),
                sellers_mean=float(series["sellers_mean"][t]),
                realized=float(series["realized"][t]))
