"""Trading-simulation engine, configuration, metrics, and results."""

from repro.sim.config import TABLE_II, SimulationConfig
from repro.sim.engine import TradingSimulator, run_seed_comparison
from repro.sim.metrics import (
    delta_profit_series,
    moving_average,
    regret_growth_rate,
    revenue_share,
)
from repro.sim.persistence import (
    SWEEP_CHECKPOINT_SCHEMA_VERSION,
    experiment_result_from_dict,
    load_checkpoint,
    load_experiment_result,
    load_run_metrics,
    load_sweep_checkpoint,
    save_checkpoint,
    save_experiment_result,
    save_run_metrics,
    save_sweep_checkpoint,
)
from repro.sim.replication import (
    MetricSummary,
    ReplicationResult,
    replicate_comparison,
)
from repro.sim.results import PolicyComparison, RunMetrics
from repro.sim.rng import RngFactory

__all__ = [
    "SimulationConfig",
    "TABLE_II",
    "TradingSimulator",
    "run_seed_comparison",
    "RunMetrics",
    "PolicyComparison",
    "RngFactory",
    "delta_profit_series",
    "moving_average",
    "regret_growth_rate",
    "revenue_share",
    "save_run_metrics",
    "load_run_metrics",
    "save_experiment_result",
    "load_experiment_result",
    "save_checkpoint",
    "load_checkpoint",
    "save_sweep_checkpoint",
    "load_sweep_checkpoint",
    "SWEEP_CHECKPOINT_SCHEMA_VERSION",
    "experiment_result_from_dict",
    "MetricSummary",
    "ReplicationResult",
    "replicate_comparison",
]
