"""Aggregate metric helpers shared by the experiment drivers.

Thin, well-tested transformations from :class:`~repro.sim.results`
containers to the numbers the paper's figures plot.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.results import PolicyComparison, RunMetrics

__all__ = [
    "delta_profit_series",
    "moving_average",
    "regret_growth_rate",
    "revenue_share",
]


def delta_profit_series(comparison: PolicyComparison,
                        policy_name: str) -> dict[str, np.ndarray]:
    """Per-round profit gaps to the optimal run (cumulative averages).

    ``delta_poc[t]`` is the average per-round PoC difference over rounds
    ``0..t`` — the quantity Figs. 8 and 10 plot, which converges to 0 for
    learning policies as ``N`` grows.
    """
    run = comparison[policy_name]
    reference = comparison.optimal
    rounds = np.arange(1, run.num_rounds + 1, dtype=float)
    return {
        "delta_poc": np.cumsum(
            reference.consumer_profit - run.consumer_profit
        ) / rounds,
        "delta_pop": np.cumsum(
            reference.platform_profit - run.platform_profit
        ) / rounds,
        "delta_pos": np.cumsum(
            reference.seller_profit_mean - run.seller_profit_mean
        ) / rounds,
    }


def moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Simple trailing moving average (shorter head windows included)."""
    series = np.asarray(series, dtype=float)
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    if series.ndim != 1:
        raise ConfigurationError("series must be 1-D")
    cumulative = np.cumsum(series)
    result = np.empty_like(series)
    result[:window] = cumulative[:window] / np.arange(1, min(window, series.size) + 1)
    if series.size > window:
        result[window:] = (cumulative[window:] - cumulative[:-window]) / window
    return result


def regret_growth_rate(run: RunMetrics, tail_fraction: float = 0.25) -> float:
    """Average per-round regret growth over the last ``tail_fraction``.

    A sublinear-regret policy's tail rate is far below its overall
    average rate; a linear-regret policy's is about equal.  Used by the
    shape assertions on Fig. 7.
    """
    if not (0.0 < tail_fraction <= 1.0):
        raise ConfigurationError(
            f"tail_fraction must be in (0, 1], got {tail_fraction}"
        )
    n = run.num_rounds
    start = max(int(n * (1.0 - tail_fraction)), 1)
    if start >= n:
        start = n - 1
    span = n - start
    if span <= 0:
        return 0.0
    return float((run.regret[-1] - run.regret[start - 1]) / span)


def revenue_share(comparison: PolicyComparison,
                  policy_name: str) -> float:
    """A policy's total revenue as a fraction of the optimal run's."""
    optimal = comparison.optimal.total_realized_revenue
    if optimal <= 0.0:
        raise ConfigurationError("optimal run produced no revenue")
    return comparison[policy_name].total_realized_revenue / optimal
