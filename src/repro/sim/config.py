"""Simulation configuration with the paper's Table II defaults.

One :class:`SimulationConfig` captures every knob of a trading
simulation: problem sizes (``M``, ``K``, ``L``, ``N``), participant
parameters (``a``, ``b``, ``theta``, ``lambda``, ``omega``), quality
model, price bounds, and seeding.  :data:`TABLE_II` records the exact
sweep values the paper reports so every experiment can cite them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError

__all__ = ["SimulationConfig", "TABLE_II"]

#: The paper's Table II — parameter sweeps used in Section V.  Bold values
#: in the paper (the defaults) come first in each mapping entry's
#: ``default`` field.
TABLE_II: dict[str, dict] = {
    "num_rounds": {
        "values": [5_000, 40_000, 80_000, 100_000, 120_000, 160_000, 200_000],
        "default": 100_000,
    },
    "num_sellers": {
        "values": [50, 100, 150, 200, 250, 300],
        "default": 300,
    },
    "num_selected": {
        "values": [10, 20, 30, 40, 50, 60],
        "default": 10,
    },
    "omega": {
        "values": [600, 800, 1_000, 1_200, 1_400],
        "default": 1_000,
    },
    "theta": {"range": (0.1, 1.0), "default": 0.1},
    "lam": {"range": (0.5, 2.0), "default": 1.0},
    "a": {"range": (0.1, 0.5)},
    "b": {"range": (0.1, 1.0)},
    "num_pois": {"default": 10},
}


@dataclass(frozen=True)
class SimulationConfig:
    """All parameters of one trading simulation.

    Defaults are the paper's (Table II): ``M=300``, ``K=10``, ``L=10``,
    ``N=10^5``, ``theta=0.1``, ``lambda=1``, ``omega=1000``, qualities
    uniform on (0, 1] observed through a truncated Gaussian.

    Attributes
    ----------
    num_sellers:
        Population size ``M``.
    num_selected:
        Sellers selected per round ``K``.
    num_pois:
        PoIs per round ``L``.
    num_rounds:
        Trading rounds ``N``.
    theta, lam:
        Platform aggregation-cost parameters.
    omega:
        Consumer valuation parameter.
    a_range, b_range:
        Sampling ranges of the sellers' cost coefficients.
    quality_sigma:
        Noise level of the truncated-Gaussian observation model.
    service_price_bounds, collection_price_bounds:
        Feasible price intervals ``[p^J_min, p^J_max]`` / ``[p_min, p_max]``.
        The collection upper bound doubles as the initial-round price
        ``p_max`` (Algorithm 1, step 4).
    initial_sensing_time:
        The fixed ``tau^0`` of exploration rounds.
    max_sensing_time:
        The round duration ``T``; infinite by default (the paper's sweeps
        never bind it).
    seed:
        Master seed; the population and every run's observation noise are
        derived from it deterministically.
    """

    num_sellers: int = 300
    num_selected: int = 10
    num_pois: int = 10
    num_rounds: int = 100_000
    theta: float = 0.1
    lam: float = 1.0
    omega: float = 1_000.0
    a_range: tuple[float, float] = (0.1, 0.5)
    b_range: tuple[float, float] = (0.1, 1.0)
    quality_sigma: float = 0.1
    service_price_bounds: tuple[float, float] = (0.0, 1_000.0)
    collection_price_bounds: tuple[float, float] = (0.0, 5.0)
    initial_sensing_time: float = 1.0
    max_sensing_time: float = float("inf")
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_sellers <= 0:
            raise ConfigurationError(
                f"num_sellers must be positive, got {self.num_sellers}"
            )
        if not (1 <= self.num_selected <= self.num_sellers):
            raise ConfigurationError(
                f"num_selected must be in [1, {self.num_sellers}], "
                f"got {self.num_selected}"
            )
        if self.num_pois <= 0:
            raise ConfigurationError(
                f"num_pois must be positive, got {self.num_pois}"
            )
        if self.num_rounds <= 0:
            raise ConfigurationError(
                f"num_rounds must be positive, got {self.num_rounds}"
            )
        if not (math.isfinite(self.theta) and self.theta > 0.0):
            raise ConfigurationError(f"theta must be > 0, got {self.theta}")
        if not (math.isfinite(self.lam) and self.lam >= 0.0):
            raise ConfigurationError(f"lambda must be >= 0, got {self.lam}")
        if not (math.isfinite(self.omega) and self.omega > 1.0):
            raise ConfigurationError(f"omega must be > 1, got {self.omega}")
        for name, bounds in (("a_range", self.a_range),
                             ("b_range", self.b_range)):
            lo, hi = bounds
            if not (0.0 <= lo <= hi):
                raise ConfigurationError(
                    f"{name} must satisfy 0 <= lo <= hi, got {bounds}"
                )
        if self.a_range[0] <= 0.0:
            raise ConfigurationError(
                f"a_range lower bound must be > 0, got {self.a_range[0]}"
            )
        if self.quality_sigma <= 0.0:
            raise ConfigurationError(
                f"quality_sigma must be > 0, got {self.quality_sigma}"
            )
        for name, bounds in (
            ("service_price_bounds", self.service_price_bounds),
            ("collection_price_bounds", self.collection_price_bounds),
        ):
            lo, hi = bounds
            if not (0.0 <= lo < hi):
                raise ConfigurationError(
                    f"{name} must satisfy 0 <= lo < hi, got {bounds}"
                )
        if not (0.0 < self.initial_sensing_time <= self.max_sensing_time):
            raise ConfigurationError(
                "initial_sensing_time must be in (0, max_sensing_time]"
            )

    def derive(self, **overrides: object) -> "SimulationConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def exploration_coefficient(self) -> float:
        """The paper's UCB confidence constant ``K+1``."""
        return float(self.num_selected + 1)
