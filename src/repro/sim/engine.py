"""The trading-simulation engine.

Runs any :class:`~repro.bandits.base.SelectionPolicy` through the full
CDT pipeline — selection, the three-stage Stackelberg game (closed form),
data collection, quality learning — and records every metric the paper's
evaluation plots.  The engine is the workhorse behind every Fig. 7-12
experiment; Algorithm 1 itself is also available stand-alone as
:class:`~repro.core.mechanism.CMABHSMechanism` (the two agree round for
round when driven by the same seeds, which the integration tests assert).

Pricing rules per round:

* a round whose selection is *larger* than ``K`` (the CMAB-HS initial
  explore-all round) uses Algorithm 1's exploration pricing: sensing time
  fixed at ``tau^0``, sellers paid ``p_max``, consumer charged the
  platform's break-even price;
* every other round plays the closed-form game on the selected set, with
  never-observed sellers entering at the neutral prior estimate 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.core.incentive import solve_round_fast
from repro.core.regret import RegretTracker
from repro.core.state import LearningState
from repro.entities.seller import SellerPopulation
from repro.exceptions import ConfigurationError
from repro.quality.distributions import (
    QualityModel,
    TruncatedGaussianQuality,
)
from repro.quality.sampler import QualitySampler
from repro.sim.config import SimulationConfig
from repro.sim.results import PolicyComparison, RunMetrics
from repro.sim.rng import RngFactory

__all__ = ["TradingSimulator"]

#: Neutral estimate used for sellers that have never been observed when a
#: policy (for example ``random``) drags them into the game unseen.
_PRIOR_MEAN = 0.5

#: Floor applied to estimated qualities entering the game (the closed
#: forms divide by ``qbar_i``).
_QUALITY_FLOOR = 1e-6


class TradingSimulator:
    """Simulates data trading under one configuration.

    The seller population (qualities, cost parameters) is sampled once
    from the config's seed, so every policy run through the same
    simulator faces the identical instance, and observation noise uses a
    policy-independent stream (common random numbers).

    Parameters
    ----------
    config:
        The simulation parameters.
    population:
        Pre-built seller population; ``None`` (default) samples one with
        the paper's parameter ranges.
    quality_model:
        Pre-built observation model; ``None`` uses the truncated Gaussian
        with the config's ``quality_sigma``.
    """

    def __init__(self, config: SimulationConfig,
                 population: SellerPopulation | None = None,
                 quality_model: QualityModel | None = None) -> None:
        self._config = config
        self._factory = RngFactory(config.seed)
        if population is None:
            population = SellerPopulation.random(
                config.num_sellers,
                self._factory.generator("population"),
                a_range=config.a_range,
                b_range=config.b_range,
            )
        if len(population) != config.num_sellers:
            raise ConfigurationError(
                f"population has {len(population)} sellers but the config "
                f"says {config.num_sellers}"
            )
        self._population = population
        if quality_model is None:
            quality_model = TruncatedGaussianQuality(
                population.expected_qualities, sigma=config.quality_sigma
            )
        if quality_model.num_sellers != config.num_sellers:
            raise ConfigurationError(
                "quality model covers a different number of sellers than "
                "the config"
            )
        self._quality_model = quality_model

    @property
    def config(self) -> SimulationConfig:
        """The simulation configuration."""
        return self._config

    @property
    def population(self) -> SellerPopulation:
        """The sampled seller population (shared across policy runs)."""
        return self._population

    @property
    def quality_model(self) -> QualityModel:
        """The observation model (shared across policy runs)."""
        return self._quality_model

    # -- running -------------------------------------------------------------------

    def run(self, policy: SelectionPolicy,
            num_rounds: int | None = None) -> RunMetrics:
        """Run one policy for ``num_rounds`` rounds (default: config's N)."""
        cfg = self._config
        n = int(num_rounds) if num_rounds is not None else cfg.num_rounds
        if n <= 0:
            raise ConfigurationError(f"num_rounds must be positive, got {n}")
        m, k, num_pois = cfg.num_sellers, cfg.num_selected, cfg.num_pois
        population = self._population
        qualities_truth = population.expected_qualities
        cost_a_all = population.cost_a
        cost_b_all = population.cost_b

        sampler = QualitySampler(
            self._quality_model, num_pois,
            self._factory.generator("observations"),
        )
        policy_rng = self._factory.generator("policy", policy.name)
        state = LearningState(m, prior_mean=_PRIOR_MEAN)
        tracker = RegretTracker(qualities_truth, k, num_pois)
        policy.reset(m, k, n)

        realized = np.empty(n)
        expected = np.empty(n)
        consumer = np.empty(n)
        platform = np.empty(n)
        sellers_mean = np.empty(n)
        service = np.empty(n)
        collection = np.empty(n)
        totals = np.empty(n)
        estimation_error = np.empty(n)
        selection_counts = np.zeros(m, dtype=np.int64)

        theta, lam, omega = cfg.theta, cfg.lam, cfg.omega
        svc_bounds = cfg.service_price_bounds
        col_bounds = cfg.collection_price_bounds
        tau_max = cfg.max_sensing_time
        tau0 = cfg.initial_sensing_time

        for t in range(n):
            selected = policy.select(t, state, policy_rng)
            cost_a = cost_a_all[selected]
            cost_b = cost_b_all[selected]
            # Algorithm 1's exploration pricing applies whenever the whole
            # population is selected in round 0 — including the K == M
            # corner where "all sellers" and "top K" coincide.
            explore_round = selected.size > k or (
                t == 0 and selected.size == m
            )
            if explore_round:
                # Algorithm 1 initial exploration: fixed time, break-even
                # price; profits are evaluated at the *post-collection*
                # estimates (the qualities are learned before settlement).
                observations = sampler.sample_round(selected, round_index=t)
                state.update(selected, observations.sums, num_pois)
                policy.observe(t, selected, observations.sums, num_pois)
                means = state.means[selected]
                taus = np.full(selected.size, tau0)
                total = float(taus.sum())
                p = col_bounds[1]
                aggregation = theta * total * total + lam * total
                p_j = min(max(p + aggregation / total, svc_bounds[0]),
                          svc_bounds[1])
            else:
                means = state.means[selected]
                game_means = np.maximum(means, _QUALITY_FLOOR)
                p_j, p, taus = solve_round_fast(
                    game_means, cost_a, cost_b, theta, lam, omega,
                    svc_bounds, col_bounds, tau_max,
                )
                total = float(taus.sum())
                aggregation = theta * total * total + lam * total

            mean_quality = float(means.mean())
            seller_profits = p * taus - (
                cost_a * taus * taus + cost_b * taus
            ) * means
            consumer[t] = omega * np.log1p(mean_quality * total) - p_j * total
            platform[t] = (p_j - p) * total - aggregation
            sellers_mean[t] = float(seller_profits.mean())
            service[t] = p_j
            collection[t] = p
            totals[t] = total

            if not explore_round:
                observations = sampler.sample_round(selected, round_index=t)
                state.update(selected, observations.sums, num_pois)
                policy.observe(t, selected, observations.sums, num_pois)
            tracker.record(selected)
            realized[t] = observations.total
            expected[t] = float(qualities_truth[selected].sum()) * num_pois
            estimation_error[t] = float(
                np.abs(state.means - qualities_truth).mean()
            )
            selection_counts[selected] += 1

        return RunMetrics(
            policy_name=policy.name,
            realized_revenue=realized,
            expected_revenue=expected,
            regret=tracker.history,
            consumer_profit=consumer,
            platform_profit=platform,
            seller_profit_mean=sellers_mean,
            service_price=service,
            collection_price=collection,
            total_sensing_time=totals,
            selection_counts=selection_counts,
            estimation_error=estimation_error,
        )

    def compare(self, policies: list[SelectionPolicy],
                num_rounds: int | None = None) -> PolicyComparison:
        """Run several policies on this instance and group the results."""
        comparison = PolicyComparison()
        for policy in policies:
            comparison.add(self.run(policy, num_rounds))
        return comparison
