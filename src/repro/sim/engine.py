"""The trading-simulation engine.

Runs any :class:`~repro.bandits.base.SelectionPolicy` through the full
CDT pipeline — selection, the three-stage Stackelberg game (closed form),
data collection, quality learning — and records every metric the paper's
evaluation plots.  The engine is the workhorse behind every Fig. 7-12
experiment; Algorithm 1 itself is also available stand-alone as
:class:`~repro.core.mechanism.CMABHSMechanism` (the two agree round for
round when driven by the same seeds, which the integration tests assert).

Pricing rules per round:

* a round whose selection is *larger* than ``K`` (the CMAB-HS initial
  explore-all round) uses Algorithm 1's exploration pricing: sensing time
  fixed at ``tau^0``, sellers paid ``p_max``, consumer charged the
  platform's break-even price;
* every other round plays the closed-form game on the selected set, with
  never-observed sellers entering at the neutral prior estimate 0.5.

Fault tolerance (both opt-in; the clean path is bit-identical with them
off):

* **Fault injection** — pass a :class:`~repro.faults.FaultModel` and the
  run degrades gracefully instead of assuming every seller delivers:
  dropped sellers are removed from the round's settlement (the game is
  re-solved on the survivors; an empty survivor set settles as a
  documented no-trade round), corrupted reports are detected by
  feasibility validation and quarantined before they can poison
  ``qbar_i``, and stalled reports miss revenue accounting but still
  reach the learner.  Every event lands in the run's
  :class:`~repro.faults.FaultLog`.
* **Checkpoint/resume** — pass ``checkpoint_path``/``checkpoint_every``
  and the engine atomically persists its full mid-run state (learning
  state, RNG streams, partial metrics, fault log, policy private state)
  every few rounds; ``resume=True`` continues from the last checkpoint
  and produces metrics identical to an uninterrupted run.

Observability (also opt-in; see :mod:`repro.obs`): pass ``tracer`` and
every round emits structured events (selection with UCB indices, the
equilibrium ``<p^J*, p*, tau*>``, profits, faults, checkpoints); pass
``metrics`` and counters/gauges/histogram timers accumulate across the
run, with a snapshot embedded in each checkpoint so resumed runs carry
their telemetry forward.  Neither touches an RNG stream, so a traced
run is bit-identical to an untraced one.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.timing import perf_counter

if TYPE_CHECKING:  # runtime import would cycle: repro.verify runs this engine
    from repro.obs.profile import PhaseProfiler
    from repro.verify.invariants import InvariantMonitor

from repro.bandits.base import SelectionPolicy
from repro.core.regret import RegretTracker
from repro.core.state import LearningState
from repro.entities.seller import SellerPopulation
from repro.exceptions import (
    ConfigurationError,
    GracefulShutdownInterrupt,
    PersistenceError,
    ReproError,
)
from repro.faults import FaultLog, FaultModel, FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.quality.distributions import (
    QualityModel,
    TruncatedGaussianQuality,
)
from repro.quality.sampler import QualitySampler
from repro.resilience.policy import (
    NOOP_POLICY,
    ResiliencePolicy,
    execute_with_policy,
)
from repro.resilience.shutdown import NEVER_STOP, ShutdownSignal
from repro.sim.config import SimulationConfig
from repro.sim.persistence import (
    load_checkpoint,
    recover_checkpoint,
    save_checkpoint,
)
from repro.sim.results import PolicyComparison, RunMetrics
from repro.sim.rng import RngFactory
from repro.sim.rounds import (
    PRIOR_MEAN,
    QUALITY_FLOOR,
    SERIES_NAMES,
    RoundContext,
    play_clean_round,
    play_faulty_round,
)

__all__ = ["TradingSimulator", "run_seed_comparison"]

#: Builds fresh (stateful) per-seed policies from expected qualities.
PolicyFactory = Callable[[np.ndarray], "list[SelectionPolicy]"]

#: Neutral unobserved-seller estimate — canonical home is
#: :mod:`repro.sim.rounds`; kept here as the historical spelling.
_PRIOR_MEAN = PRIOR_MEAN

#: Floor applied to estimated qualities entering the game (see
#: :data:`repro.sim.rounds.QUALITY_FLOOR`).
_QUALITY_FLOOR = QUALITY_FLOOR

#: Metric series checkpointed/restored round-by-round (regret lives in
#: the tracker snapshot instead).
_SERIES_NAMES = SERIES_NAMES

#: Per-seller gauge name lists keyed by population size — building
#: 2M f-strings dominates the end-of-run metrics dump otherwise, and
#: the names are identical across runs of the same M.
_SELLER_GAUGE_KEYS: dict[int, tuple[list[str], list[str]]] = {}


def _seller_gauge_keys(m: int) -> tuple[list[str], list[str]]:
    """``(count_keys, mean_keys)`` gauge names for an M-seller run."""
    keys = _SELLER_GAUGE_KEYS.get(m)
    if keys is None:
        keys = _SELLER_GAUGE_KEYS[m] = (
            [f"seller.{seller}.n" for seller in range(m)],
            [f"seller.{seller}.qbar" for seller in range(m)],
        )
    return keys


def run_seed_comparison(base_config: SimulationConfig, seed: int,
                        policy_factory: "PolicyFactory",
                        fault_spec: FaultSpec | None = None,
                        *, tracer: Tracer | None = None,
                        metrics: MetricsRegistry | None = None,
                        profiler: "PhaseProfiler | None" = None,
                        ) -> dict[str, dict[str, float]]:
    """Run one replication seed end to end — the parallel worker entrypoint.

    A replication seed is a fully self-contained universe: the derived
    config's seed drives the population, observation noise, policy
    randomness, and fault schedule through its own
    :class:`~repro.sim.rng.RngFactory` streams, with no state shared
    across seeds.  That is what makes the multi-process sweep
    deterministic — this exact function runs unchanged inside
    :func:`~repro.sim.replication.replicate_comparison`'s serial loop
    and inside :mod:`repro.parallel` workers, and produces bit-identical
    metrics either way.

    Parameters
    ----------
    base_config:
        Shared sweep configuration; its ``seed`` field is overridden.
    seed:
        The replication seed to run.
    policy_factory:
        ``factory(expected_qualities) -> list[SelectionPolicy]`` building
        fresh (stateful) policies for this seed's instance.
    fault_spec:
        Optional fault-injection rates; the seed draws its own
        reproducible fault schedule.
    tracer / metrics / profiler:
        Optional observability objects; the seed is bracketed with
        ``seed_start`` / ``seed_end`` events, and a profiler
        accumulates the seed's active wall-clock and hot-path rates.

    Returns
    -------
    dict
        ``{policy_name: run.summary()}`` — the per-policy headline
        scalars of this seed (picklable, so workers can ship it home).
    """
    tr = tracer if tracer is not None else NULL_TRACER
    seed_start_time = perf_counter()
    if tr.enabled:
        tr.emit("seed_start", seed=seed)
    simulator = TradingSimulator(base_config.derive(seed=seed))
    policies = policy_factory(simulator.population.expected_qualities)
    fault_model = (simulator.fault_model(fault_spec)
                   if fault_spec is not None else None)
    comparison = simulator.compare(policies, fault_model=fault_model,
                                   tracer=tracer, metrics=metrics,
                                   profiler=profiler)
    summaries = {name: run.summary()
                 for name, run in comparison.runs.items()}
    if tr.enabled:
        tr.emit("seed_end", seed=seed,
                duration_s=perf_counter() - seed_start_time)
        tr.flush()
    return summaries


class TradingSimulator:
    """Simulates data trading under one configuration.

    The seller population (qualities, cost parameters) is sampled once
    from the config's seed, so every policy run through the same
    simulator faces the identical instance, and observation noise uses a
    policy-independent stream (common random numbers).

    Parameters
    ----------
    config:
        The simulation parameters.
    population:
        Pre-built seller population; ``None`` (default) samples one with
        the paper's parameter ranges.
    quality_model:
        Pre-built observation model; ``None`` uses the truncated Gaussian
        with the config's ``quality_sigma``.
    backend:
        ``"scalar"`` (default) plays rounds through the reference path;
        ``"vector"`` swaps in the :mod:`repro.kernels` hot path
        (incrementally maintained learning state, fused UCB indices,
        partition top-K).  The two produce bit-identical metrics,
        selections, and checkpoints on the same seed — asserted by
        ``repro verify --only kernels`` and the equivalence suite.
    """

    def __init__(self, config: SimulationConfig,
                 population: SellerPopulation | None = None,
                 quality_model: QualityModel | None = None, *,
                 backend: str = "scalar") -> None:
        if backend not in ("scalar", "vector"):
            raise ConfigurationError(
                f"backend must be 'scalar' or 'vector', got {backend!r}"
            )
        self._backend = backend
        self._config = config
        self._factory = RngFactory(config.seed)
        if population is None:
            population = SellerPopulation.random(
                config.num_sellers,
                self._factory.generator("population"),
                a_range=config.a_range,
                b_range=config.b_range,
            )
        if len(population) != config.num_sellers:
            raise ConfigurationError(
                f"population has {len(population)} sellers but the config "
                f"says {config.num_sellers}"
            )
        self._population = population
        if quality_model is None:
            quality_model = TruncatedGaussianQuality(
                population.expected_qualities, sigma=config.quality_sigma
            )
        if quality_model.num_sellers != config.num_sellers:
            raise ConfigurationError(
                "quality model covers a different number of sellers than "
                "the config"
            )
        self._quality_model = quality_model

    @property
    def config(self) -> SimulationConfig:
        """The simulation configuration."""
        return self._config

    @property
    def backend(self) -> str:
        """The round-loop implementation: ``"scalar"`` or ``"vector"``."""
        return self._backend

    @property
    def population(self) -> SellerPopulation:
        """The sampled seller population (shared across policy runs)."""
        return self._population

    @property
    def quality_model(self) -> QualityModel:
        """The observation model (shared across policy runs)."""
        return self._quality_model

    def fault_model(self, spec: FaultSpec) -> FaultModel:
        """A fault model bound to this simulator's seed and population.

        Fault draws use the factory's dedicated ``("faults", round)``
        streams, so enabling/disabling faults never perturbs the
        population, observation, or policy randomness.
        """
        return FaultModel(spec, self._factory, self._config.num_sellers)

    # -- running -------------------------------------------------------------------

    def run(self, policy: SelectionPolicy,
            num_rounds: int | None = None, *,
            fault_model: FaultModel | None = None,
            fault_log: FaultLog | None = None,
            checkpoint_path: str | os.PathLike | None = None,
            checkpoint_every: int = 0,
            resume: bool = False,
            strict: bool = False,
            shutdown: ShutdownSignal | None = None,
            resilience: ResiliencePolicy | None = None,
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None,
            profiler: "PhaseProfiler | None" = None) -> RunMetrics:
        """Run one policy for ``num_rounds`` rounds (default: config's N).

        Parameters
        ----------
        policy:
            The selection policy to drive.
        num_rounds:
            Round count override.
        fault_model:
            When given, seller failures are injected and the run
            degrades gracefully (see the module docstring).  ``None``
            keeps the exact clean-path behaviour.
        fault_log:
            Collector for injected events and platform reactions; a
            fresh log is used internally when omitted.
        checkpoint_path:
            File the engine checkpoints into (and resumes from).
        checkpoint_every:
            Checkpoint after every this-many completed rounds
            (0 disables periodic checkpointing).
        resume:
            Continue from ``checkpoint_path`` if it exists; a missing
            checkpoint file simply starts from round 0.
        strict:
            Check every round against the paper's analytic invariants
            (Stage-3 stationarity, leader first-order conditions,
            individual rationality, top-K selection correctness,
            observation-count conservation, UCB-index structure) and
            raise :class:`~repro.exceptions.InvariantViolationError` on
            the first failure.  The checks are read-only and draw no
            randomness, so a strict run produces bit-identical results
            to a default run on the same seed.
        shutdown:
            A :class:`~repro.resilience.ShutdownSignal` polled before
            every round; when it trips, the engine writes a final
            resumable checkpoint (when ``checkpoint_path`` is set and at
            least one round completed), emits a ``graceful_shutdown``
            event, and raises
            :class:`~repro.exceptions.GracefulShutdownInterrupt`.  A
            later ``resume=True`` run continues bit-identically.
        resilience:
            A :class:`~repro.resilience.ResiliencePolicy` governing
            checkpoint I/O: its retry policy guards every checkpoint
            write, ``checkpoint_generations`` keeps rollback targets on
            disk, and ``quarantine=True`` makes resume survive a
            corrupt checkpoint (quarantine + roll back to the newest
            valid generation, or start fresh) instead of raising.
            ``None`` is the no-op policy — behaviour (and the bytes of
            results) identical to pre-resilience runs.
        tracer:
            Structured-event tracer; ``None`` uses the zero-overhead
            :data:`~repro.obs.NULL_TRACER`.
        metrics:
            Metrics registry accumulating counters / gauges / timers
            across the run.  When given, each checkpoint embeds a
            snapshot (restored on resume) and the returned
            :class:`RunMetrics` carries a final snapshot in its
            ``telemetry`` field.
        profiler:
            A :class:`~repro.obs.PhaseProfiler` bracketing the run:
            active wall-clock, peak memory, and hot-path rates become
            available from ``profiler.report()`` afterwards.  The run's
            timers accumulate into ``metrics`` when that is also given,
            otherwise into the profiler's own registry.  ``None`` (the
            default) keeps the run bit-identical to pre-profiler
            behaviour.
        """
        if profiler is not None:
            # Re-enter with the profiler's registry as the metrics sink
            # so one code path does the work and the bracket is
            # exception-safe (a graceful shutdown still closes it).
            profiler.run_started()
            try:
                return self.run(
                    policy, num_rounds, fault_model=fault_model,
                    fault_log=fault_log, checkpoint_path=checkpoint_path,
                    checkpoint_every=checkpoint_every, resume=resume,
                    strict=strict, shutdown=shutdown,
                    resilience=resilience, tracer=tracer,
                    metrics=profiler.bind(metrics), profiler=None,
                )
            finally:
                profiler.run_finished(
                    policy=policy.name,
                    num_sellers=self._config.num_sellers,
                    num_selected=self._config.num_selected,
                    num_pois=self._config.num_pois,
                    seed=self._config.seed,
                )
        cfg = self._config
        n = int(num_rounds) if num_rounds is not None else cfg.num_rounds
        if n <= 0:
            raise ConfigurationError(f"num_rounds must be positive, got {n}")
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if (checkpoint_every or resume) and checkpoint_path is None:
            raise ConfigurationError(
                "checkpointing/resume requires checkpoint_path"
            )
        if fault_model is not None and fault_model.num_sellers != cfg.num_sellers:
            raise ConfigurationError(
                "fault model covers a different number of sellers than "
                "the config"
            )
        m, k, num_pois = cfg.num_sellers, cfg.num_selected, cfg.num_pois
        population = self._population
        qualities_truth = population.expected_qualities
        cost_a_all = population.cost_a
        cost_b_all = population.cost_b

        observation_rng = self._factory.generator("observations")
        sampler = QualitySampler(self._quality_model, num_pois,
                                 observation_rng)
        policy_rng = self._factory.generator("policy", policy.name)
        scratch: np.ndarray | None = None
        if self._backend == "vector":
            # Imported lazily to keep the scalar path free of any
            # kernels dependency at import time.
            from repro.kernels.state import VectorLearningState

            state: LearningState = VectorLearningState(
                m, prior_mean=_PRIOR_MEAN
            )
            scratch = np.empty(m)
        else:
            state = LearningState(m, prior_mean=_PRIOR_MEAN)
        tracker = RegretTracker(qualities_truth, k, num_pois)
        policy.reset(m, k, n)
        log = fault_log
        if log is None and fault_model is not None:
            log = FaultLog()

        series = {name: np.empty(n) for name in _SERIES_NAMES}
        selection_counts = np.zeros(m, dtype=np.int64)
        tr = tracer if tracer is not None else NULL_TRACER
        reg = metrics if metrics is not None else MetricsRegistry()
        stop = shutdown if shutdown is not None else NEVER_STOP
        res = resilience if resilience is not None else NOOP_POLICY

        monitor = None
        if strict:
            # Imported lazily: repro.verify runs this engine (the golden
            # store computes goldens through it), so a module-level
            # import would be circular.
            from repro.verify.invariants import InvariantMonitor

            monitor = InvariantMonitor(num_pois, tracer=tr)

        start_round = 0
        if resume and (os.path.exists(checkpoint_path) or res.quarantine):
            restore_start = perf_counter()
            start_round = self._restore_checkpoint(
                checkpoint_path, policy, n, state, tracker, series,
                selection_counts, policy_rng, observation_rng,
                fault_model, log, reg, metrics, resilience=res, tracer=tr,
            )
            if tr.enabled and start_round > 0:
                tr.emit("checkpoint", action="restored",
                        path=os.fspath(checkpoint_path),
                        next_round=start_round,
                        duration_s=perf_counter() - restore_start)

        ctx = RoundContext(
            state=state, tracker=tracker, policy=policy, sampler=sampler,
            series=series, selection_counts=selection_counts,
            qualities_truth=qualities_truth, cost_a_all=cost_a_all,
            cost_b_all=cost_b_all, num_pois=num_pois,
            theta=cfg.theta, lam=cfg.lam, omega=cfg.omega,
            svc_bounds=cfg.service_price_bounds,
            col_bounds=cfg.collection_price_bounds,
            tau_max=cfg.max_sensing_time, tau0=cfg.initial_sensing_time,
            tracer=tr, metrics=reg, monitor=monitor,
            backend=self._backend, scratch=scratch,
        )

        if tr.enabled:
            tr.emit("run_start", policy=policy.name, num_rounds=n,
                    start_round=start_round, seed=cfg.seed,
                    num_sellers=m, num_selected=k, num_pois=num_pois,
                    faults=fault_model is not None)
        run_start_time = perf_counter()

        for t in range(start_round, n):
            if stop.should_stop(t):
                self._graceful_shutdown(
                    t, start_round, checkpoint_path, policy, n, state,
                    tracker, series, selection_counts, policy_rng,
                    observation_rng, fault_model, log, reg, metrics,
                    res, tr,
                )
            round_start_time = perf_counter()
            if tr.enabled:
                tr.emit("round_start", round_index=t)
            selected = policy.select(t, state, policy_rng)
            selection_duration = perf_counter() - round_start_time
            reg.timer("engine.selection").observe(selection_duration)
            # Algorithm 1's exploration pricing applies whenever the whole
            # population is selected in round 0 — including the K == M
            # corner where "all sellers" and "top K" coincide.
            explore_round = selected.size > k or (
                t == 0 and selected.size == m
            )
            if tr.enabled:
                tr.emit("selection", round_index=t,
                        selected=selected,
                        explore=bool(explore_round),
                        ucb=self._ucb_of(policy, state, selected),
                        duration_s=selection_duration)
            if monitor is not None:
                monitor.check_selection(
                    t, selected, k, m, bool(explore_round),
                    ucb_values=getattr(policy, "last_ucb_values", None),
                )
            if fault_model is None:
                self._play_clean_round(ctx, t, selected, explore_round)
            else:
                self._play_faulty_round(ctx, t, selected, explore_round,
                                        fault_model, log)
            if monitor is not None:
                monitor.check_learning(
                    t, state, selection_counts,
                    clean=fault_model is None,
                    exploration_coefficient=getattr(
                        policy, "exploration_coefficient", None
                    ),
                )
            reg.counter("rounds").inc()
            reg.gauge("cumulative_regret").set(tracker.cumulative_regret)
            if (checkpoint_every and (t + 1) % checkpoint_every == 0
                    and (t + 1) < n):
                checkpoint_start = perf_counter()
                # Count the in-flight write first so the snapshot the
                # checkpoint embeds covers it (resume carries it over).
                reg.counter("checkpoint_writes").inc()
                self._write_checkpoint(
                    checkpoint_path, policy, n, t + 1, state, tracker,
                    series, selection_counts, policy_rng, observation_rng,
                    fault_model, log, reg, metrics, resilience=res,
                    tracer=tr,
                )
                if tr.enabled:
                    tr.emit("checkpoint", round_index=t, action="saved",
                            path=os.fspath(checkpoint_path),
                            next_round=t + 1,
                            duration_s=perf_counter() - checkpoint_start)
            reg.timer("engine.round").observe(
                perf_counter() - round_start_time
            )
            if tr.enabled:
                tr.emit("round_end", round_index=t,
                        duration_s=perf_counter() - round_start_time)

        if metrics is not None:
            # tolist() + one bulk update over pre-built key strings: a
            # per-seller get-or-create loop over numpy scalars costs
            # ~2.5x more at large M.
            count_keys, mean_keys = _seller_gauge_keys(m)
            reg.set_gauges(dict(zip(count_keys, state.counts.tolist())))
            reg.set_gauges(dict(zip(mean_keys, state.means.tolist())))
        if tr.enabled:
            tr.emit("run_end", policy=policy.name,
                    rounds_played=n - start_round,
                    total_revenue=float(series["realized"].sum()),
                    final_regret=tracker.cumulative_regret,
                    duration_s=perf_counter() - run_start_time)
            tr.flush()

        return RunMetrics(
            policy_name=policy.name,
            realized_revenue=series["realized"],
            expected_revenue=series["expected"],
            regret=tracker.history,
            consumer_profit=series["consumer"],
            platform_profit=series["platform"],
            seller_profit_mean=series["sellers_mean"],
            service_price=series["service"],
            collection_price=series["collection"],
            total_sensing_time=series["totals"],
            selection_counts=selection_counts,
            estimation_error=series["estimation_error"],
            telemetry=reg.snapshot() if metrics is not None else None,
        )

    @staticmethod
    def _ucb_of(policy: SelectionPolicy, state: LearningState,
                selected: np.ndarray) -> np.ndarray | None:
        """The selected sellers' UCB indices (Eq. 19), if computable.

        Prefers the vector the policy stashed during its own ``select``
        (free); falls back to a read-only recomputation for policies
        that expose an ``exploration_coefficient`` without stashing.
        Policies with neither (random, optimal, ...) yield ``None``.
        Unobserved sellers carry an infinite index.
        """
        stashed = getattr(policy, "last_ucb_values", None)
        if stashed is not None:
            return stashed[selected]
        coefficient = getattr(policy, "exploration_coefficient", None)
        if coefficient is None:
            return None
        try:
            return state.ucb_values(float(coefficient))[selected]
        except (ReproError, TypeError, ValueError):
            return None

    def compare(self, policies: list[SelectionPolicy],
                num_rounds: int | None = None, *,
                fault_model: FaultModel | None = None,
                strict: bool = False,
                tracer: Tracer | None = None,
                metrics: MetricsRegistry | None = None,
                profiler: "PhaseProfiler | None" = None,
                ) -> PolicyComparison:
        """Run several policies on this instance and group the results.

        With a fault model, every policy faces the *same* per-round,
        per-seller fault schedule (common random faults), keeping the
        comparison paired.  A shared ``tracer``/``metrics``/``profiler``
        observes every policy's run (events carry the policy name in
        their ``run_start`` bracket; metrics and profiled wall-clock
        accumulate across policies).
        """
        comparison = PolicyComparison()
        for policy in policies:
            comparison.add(
                self.run(policy, num_rounds, fault_model=fault_model,
                         strict=strict, tracer=tracer, metrics=metrics,
                         profiler=profiler)
            )
        return comparison

    # -- round bodies --------------------------------------------------------------

    def _play_clean_round(self, ctx: RoundContext, t: int,
                          selected: np.ndarray,
                          explore_round: bool) -> None:
        """One happy-path round (see :func:`repro.sim.rounds.play_clean_round`)."""
        play_clean_round(ctx, t, selected, explore_round)

    def _play_faulty_round(self, ctx: RoundContext, t: int,
                           selected: np.ndarray, explore_round: bool,
                           fault_model: FaultModel,
                           log: FaultLog | None) -> None:
        """One fault-injected round with graceful degradation.

        With an all-zero fault plan this produces bit-identical metrics
        to :meth:`_play_clean_round` (asserted by the test suite); see
        :func:`repro.sim.rounds.play_faulty_round`.
        """
        play_faulty_round(ctx, t, selected, explore_round, fault_model, log)

    # -- checkpointing -------------------------------------------------------------

    def _graceful_shutdown(self, t: int, start_round: int,
                           checkpoint_path: "str | os.PathLike | None",
                           policy: SelectionPolicy, n: int,
                           state: LearningState, tracker: RegretTracker,
                           series: dict[str, np.ndarray],
                           selection_counts: np.ndarray,
                           policy_rng: np.random.Generator,
                           observation_rng: np.random.Generator,
                           fault_model: FaultModel | None,
                           log: FaultLog | None, reg: MetricsRegistry,
                           metrics: MetricsRegistry | None,
                           res: ResiliencePolicy, tr: Tracer) -> None:
        """Stop cleanly before round ``t``: final checkpoint, then raise.

        The checkpoint (written only when a path is configured and at
        least one round has completed — ``next_round = 0`` is not a
        resumable state) makes the interruption lossless: ``resume=True``
        continues from exactly round ``t``.
        """
        final_path: str | None = None
        if checkpoint_path is not None and t > 0:
            reg.counter("checkpoint_writes").inc()
            self._write_checkpoint(
                checkpoint_path, policy, n, t, state, tracker, series,
                selection_counts, policy_rng, observation_rng,
                fault_model, log, reg, metrics, resilience=res, tracer=tr,
            )
            final_path = os.fspath(checkpoint_path)
        if tr.enabled:
            tr.emit("graceful_shutdown", round_index=t,
                    policy=policy.name,
                    rounds_completed=t - start_round,
                    checkpoint_path=final_path)
            tr.flush()
        raise GracefulShutdownInterrupt(
            f"run of policy {policy.name!r} stopped before round {t} "
            + (f"(resumable checkpoint: {final_path})" if final_path
               else "(no checkpoint written)"),
            checkpoint_path=final_path,
        )

    def _write_checkpoint(self, path: str | os.PathLike,
                          policy: SelectionPolicy, n: int, next_round: int,
                          state: LearningState, tracker: RegretTracker,
                          series: dict[str, np.ndarray],
                          selection_counts: np.ndarray,
                          policy_rng: np.random.Generator,
                          observation_rng: np.random.Generator,
                          fault_model: FaultModel | None,
                          log: FaultLog | None, reg: MetricsRegistry,
                          metrics: MetricsRegistry | None, *,
                          resilience: ResiliencePolicy = NOOP_POLICY,
                          tracer: Tracer = NULL_TRACER) -> None:
        tracker_snapshot = tracker.snapshot()
        meta = {
            "kind": "engine_run",
            "policy_name": policy.name,
            "seed": self._config.seed,
            "num_sellers": self._config.num_sellers,
            "num_selected": self._config.num_selected,
            "num_pois": self._config.num_pois,
            "num_rounds": n,
            "next_round": next_round,
            "tracker_cumulative": tracker_snapshot["cumulative"],
            "tracker_rounds": tracker_snapshot["rounds"],
            "tracker_expected_revenue": tracker_snapshot["expected_revenue"],
            "policy_rng_state": policy_rng.bit_generator.state,
            "observation_rng_state": observation_rng.bit_generator.state,
            "fault_spec": (fault_model.spec.to_dict()
                           if fault_model is not None else None),
        }
        # Telemetry rides along only when the caller attached a registry
        # — the checkpoint bytes of un-instrumented runs stay
        # deterministic (timer values are wall-clock and never are).
        if metrics is not None:
            meta["metrics_snapshot"] = reg.snapshot()
        state_snapshot = state.snapshot()
        arrays = {
            "state_counts": state_snapshot["counts"],
            "state_sums": state_snapshot["sums"],
            "regret_history": tracker_snapshot["history"],
            "selection_counts": selection_counts,
        }
        for name in _SERIES_NAMES:
            arrays[f"series_{name}"] = series[name][:next_round]
        if log is not None:
            for key, value in log.to_arrays().items():
                arrays[f"faultlog_{key}"] = value
        for key, value in policy.state_snapshot().items():
            arrays[f"policy__{key}"] = np.asarray(value)
        execute_with_policy(
            lambda: save_checkpoint(
                path, meta, arrays, metrics=reg,
                keep_generations=resilience.checkpoint_generations,
            ),
            resilience.retry, label="engine.checkpoint_write",
            deadline=resilience.deadline, tracer=tracer, metrics=reg,
        )

    def _restore_checkpoint(self, path: str | os.PathLike,
                            policy: SelectionPolicy, n: int,
                            state: LearningState, tracker: RegretTracker,
                            series: dict[str, np.ndarray],
                            selection_counts: np.ndarray,
                            policy_rng: np.random.Generator,
                            observation_rng: np.random.Generator,
                            fault_model: FaultModel | None,
                            log: FaultLog | None, reg: MetricsRegistry,
                            metrics: MetricsRegistry | None, *,
                            resilience: ResiliencePolicy = NOOP_POLICY,
                            tracer: Tracer = NULL_TRACER) -> int:
        if resilience.quarantine:
            recovered = recover_checkpoint(path, tracer=tracer,
                                           metrics=reg)
            if recovered is None:
                return 0  # nothing valid survived: start from round 0
            meta, arrays, __ = recovered
        else:
            meta, arrays = load_checkpoint(path, metrics=reg)
        expected_fingerprint = {
            "kind": "engine_run",
            "policy_name": policy.name,
            "seed": self._config.seed,
            "num_sellers": self._config.num_sellers,
            "num_selected": self._config.num_selected,
            "num_pois": self._config.num_pois,
            "num_rounds": n,
            "fault_spec": (fault_model.spec.to_dict()
                           if fault_model is not None else None),
        }
        for key, expected in expected_fingerprint.items():
            if meta.get(key) != expected:
                raise PersistenceError(
                    f"checkpoint {os.fspath(path)!s} does not match this "
                    f"run: {key} is {meta.get(key)!r}, expected {expected!r}"
                )
        try:
            next_round = int(meta["next_round"])
            state.restore({"counts": arrays["state_counts"],
                           "sums": arrays["state_sums"]})
            tracker.restore({
                "cumulative": meta["tracker_cumulative"],
                "rounds": meta["tracker_rounds"],
                "expected_revenue": meta["tracker_expected_revenue"],
                "history": arrays["regret_history"],
            })
            for name in _SERIES_NAMES:
                partial = arrays[f"series_{name}"]
                series[name][:partial.size] = partial
            selection_counts[:] = arrays["selection_counts"]
            policy_rng.bit_generator.state = meta["policy_rng_state"]
            observation_rng.bit_generator.state = meta["observation_rng_state"]
        except KeyError as error:
            raise PersistenceError(
                f"checkpoint {os.fspath(path)!s} is missing field "
                f"{error.args[0]!r}"
            ) from error
        if not (0 < next_round <= n):
            raise PersistenceError(
                f"checkpoint {os.fspath(path)!s} has next_round "
                f"{next_round}, outside (0, {n}]"
            )
        if log is not None and "faultlog_rounds" in arrays:
            log.restore_arrays({
                key: arrays[f"faultlog_{key}"]
                for key in ("rounds", "kinds", "sellers", "values")
            })
        policy_snapshot = {
            key[len("policy__"):]: value
            for key, value in arrays.items()
            if key.startswith("policy__")
        }
        policy.state_restore(policy_snapshot)
        # Resumed runs carry their telemetry forward: counters/timers
        # continue from the checkpointed snapshot instead of zero.
        if metrics is not None and meta.get("metrics_snapshot") is not None:
            metrics.restore(meta["metrics_snapshot"])
        return next_round
