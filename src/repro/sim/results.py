"""Result containers of trading simulations.

A :class:`RunMetrics` holds the per-round series of one policy's run; a
:class:`PolicyComparison` groups runs of several policies on the same
instance and computes the paper's Delta-metrics against the omniscient
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["RunMetrics", "PolicyComparison"]


@dataclass(frozen=True)
class RunMetrics:
    """Per-round series of one simulation run.

    All arrays have length ``N`` (the number of rounds).

    Attributes
    ----------
    policy_name:
        Display name of the policy.
    realized_revenue:
        Observed quality totals per round (Definition 8's revenue).
    expected_revenue:
        Ground-truth expected revenue per round (``L * sum q_i``).
    regret:
        *Cumulative* pseudo-regret after each round (Eq. 34).
    consumer_profit, platform_profit, seller_profit_mean:
        PoC, PoP, PoS(s) per round; PoS(s) is the mean profit per
        selected seller (DESIGN.md deviation #4).
    service_price, collection_price:
        SoC and SoP per round.
    total_sensing_time:
        Sum of the selected sellers' sensing times per round.
    selection_counts:
        How many times each seller was selected, shape ``(M,)``.
    estimation_error:
        Mean absolute quality-estimation error ``mean_i |qbar_i - q_i|``
        after each round (never-observed sellers count at their prior).
    telemetry:
        Snapshot of the run's :class:`~repro.obs.MetricsRegistry`
        (counters / gauges / timers) when one was attached to the run;
        ``None`` otherwise.  Purely informational: never part of the
        persisted series and never compared between runs.
    """

    policy_name: str
    realized_revenue: np.ndarray
    expected_revenue: np.ndarray
    regret: np.ndarray
    consumer_profit: np.ndarray
    platform_profit: np.ndarray
    seller_profit_mean: np.ndarray
    service_price: np.ndarray
    collection_price: np.ndarray
    total_sensing_time: np.ndarray
    selection_counts: np.ndarray
    estimation_error: np.ndarray
    telemetry: dict | None = None

    def __post_init__(self) -> None:
        n = self.realized_revenue.size
        for name in ("expected_revenue", "regret", "consumer_profit",
                     "platform_profit", "seller_profit_mean",
                     "service_price", "collection_price",
                     "total_sensing_time", "estimation_error"):
            if getattr(self, name).size != n:
                raise ConfigurationError(
                    f"series {name!r} has length {getattr(self, name).size}, "
                    f"expected {n}"
                )

    @property
    def num_rounds(self) -> int:
        """Number of rounds in the run."""
        return int(self.realized_revenue.size)

    @property
    def total_realized_revenue(self) -> float:
        """Total revenue over the whole run (the Fig. 7/9/11 y-axis)."""
        return float(self.realized_revenue.sum())

    @property
    def total_expected_revenue(self) -> float:
        """Total expected revenue over the whole run."""
        return float(self.expected_revenue.sum())

    @property
    def final_regret(self) -> float:
        """Cumulative pseudo-regret at the end of the run."""
        return float(self.regret[-1])

    @property
    def final_estimation_error(self) -> float:
        """Mean absolute quality-estimation error after the last round."""
        return float(self.estimation_error[-1])

    @property
    def mean_consumer_profit(self) -> float:
        """Average PoC per round."""
        return float(self.consumer_profit.mean())

    @property
    def mean_platform_profit(self) -> float:
        """Average PoP per round."""
        return float(self.platform_profit.mean())

    @property
    def mean_seller_profit(self) -> float:
        """Average PoS(s) per round."""
        return float(self.seller_profit_mean.mean())

    def summary(self) -> dict[str, float]:
        """The headline scalars of this run, keyed by metric name."""
        return {
            "total_revenue": self.total_realized_revenue,
            "expected_revenue": self.total_expected_revenue,
            "regret": self.final_regret,
            "mean_poc": self.mean_consumer_profit,
            "mean_pop": self.mean_platform_profit,
            "mean_pos": self.mean_seller_profit,
        }


@dataclass
class PolicyComparison:
    """Runs of several policies on the same simulated instance.

    Attributes
    ----------
    runs:
        Mapping from policy display name to its metrics.
    optimal_name:
        Which run is the omniscient reference for Delta-metrics.
    """

    runs: dict[str, RunMetrics] = field(default_factory=dict)
    optimal_name: str = "optimal"

    def add(self, metrics: RunMetrics) -> None:
        """Register one policy's run (name must be unique)."""
        if metrics.policy_name in self.runs:
            raise ConfigurationError(
                f"duplicate run for policy {metrics.policy_name!r}"
            )
        self.runs[metrics.policy_name] = metrics

    def __getitem__(self, policy_name: str) -> RunMetrics:
        return self.runs[policy_name]

    def __contains__(self, policy_name: str) -> bool:
        return policy_name in self.runs

    @property
    def optimal(self) -> RunMetrics:
        """The omniscient reference run.

        Raises
        ------
        ConfigurationError
            If no run named ``optimal_name`` was added.
        """
        if self.optimal_name not in self.runs:
            raise ConfigurationError(
                f"no {self.optimal_name!r} run registered for Delta-metrics"
            )
        return self.runs[self.optimal_name]

    def delta_profits(self, policy_name: str) -> dict[str, float]:
        """The paper's Delta-PoC / Delta-PoP / Delta-PoS(s) metrics.

        Defined as the *average per-round* profit difference between the
        optimal algorithm and the given one (Section V-B): positive when
        the policy under-performs the omniscient reference.
        """
        run = self.runs[policy_name]
        reference = self.optimal
        return {
            "delta_poc": reference.mean_consumer_profit - run.mean_consumer_profit,
            "delta_pop": reference.mean_platform_profit - run.mean_platform_profit,
            "delta_pos": reference.mean_seller_profit - run.mean_seller_profit,
        }

    def revenue_table(self) -> list[tuple[str, float, float]]:
        """(policy, total revenue, final regret) rows, insertion order."""
        return [
            (name, run.total_realized_revenue, run.final_regret)
            for name, run in self.runs.items()
        ]
