"""Saving and loading simulation results.

Long paper-scale sweeps are expensive; this module persists
:class:`~repro.sim.results.RunMetrics` and
:class:`~repro.experiments.registry.ExperimentResult` objects so they can
be regenerated once and analysed many times.  Two formats:

* **JSON** — self-describing, for experiment results (small series);
* **NPZ** — compact binary, for per-round run metrics (arrays of up to
  ``2*10^5`` entries).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.results import RunMetrics

__all__ = [
    "save_run_metrics",
    "load_run_metrics",
    "experiment_result_to_dict",
    "save_experiment_result",
    "load_experiment_result",
]

_RUN_SERIES_FIELDS = (
    "realized_revenue",
    "expected_revenue",
    "regret",
    "consumer_profit",
    "platform_profit",
    "seller_profit_mean",
    "service_price",
    "collection_price",
    "total_sensing_time",
    "selection_counts",
    "estimation_error",
)


def save_run_metrics(run: RunMetrics, path: str | os.PathLike) -> None:
    """Persist one run's per-round series as a compressed ``.npz``."""
    arrays = {name: getattr(run, name) for name in _RUN_SERIES_FIELDS}
    np.savez_compressed(
        path, policy_name=np.array(run.policy_name), **arrays
    )


def load_run_metrics(path: str | os.PathLike) -> RunMetrics:
    """Load a run previously saved by :func:`save_run_metrics`.

    Raises
    ------
    ConfigurationError
        If the file lacks any expected series.
    """
    with np.load(path, allow_pickle=False) as data:
        missing = [
            name for name in _RUN_SERIES_FIELDS + ("policy_name",)
            if name not in data
        ]
        if missing:
            raise ConfigurationError(
                f"run file {path!s} is missing series: {missing}"
            )
        return RunMetrics(
            policy_name=str(data["policy_name"]),
            **{name: data[name] for name in _RUN_SERIES_FIELDS},
        )


def experiment_result_to_dict(result) -> dict:
    """A JSON-serialisable dict of an experiment result."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "notes": list(result.notes),
        "panels": {
            panel: [
                {
                    "label": series.label,
                    "x": series.x.tolist(),
                    "y": series.y.tolist(),
                }
                for series in series_list
            ]
            for panel, series_list in result.panels.items()
        },
    }


def save_experiment_result(result, path: str | os.PathLike) -> None:
    """Persist an experiment result as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(experiment_result_to_dict(result), handle, indent=2)
        handle.write("\n")


def load_experiment_result(path: str | os.PathLike):
    """Load an experiment result saved by :func:`save_experiment_result`.

    Returns a :class:`~repro.experiments.registry.ExperimentResult`.

    Raises
    ------
    ConfigurationError
        If the JSON lacks the expected structure.
    """
    from repro.experiments.registry import ExperimentResult, Series

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    for key in ("experiment_id", "title", "x_label", "panels"):
        if key not in payload:
            raise ConfigurationError(
                f"experiment file {path!s} is missing key {key!r}"
            )
    result = ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        x_label=payload["x_label"],
        notes=list(payload.get("notes", [])),
    )
    for panel, series_list in payload["panels"].items():
        for series in series_list:
            result.add_series(
                panel,
                Series(
                    label=series["label"],
                    x=np.asarray(series["x"], dtype=float),
                    y=np.asarray(series["y"], dtype=float),
                ),
            )
    return result
