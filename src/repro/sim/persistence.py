"""Saving and loading simulation results — crash-safely.

Long paper-scale sweeps are expensive; this module persists
:class:`~repro.sim.results.RunMetrics`,
:class:`~repro.experiments.registry.ExperimentResult`, and mid-run
checkpoints so work survives crashes and can be analysed many times.
Formats:

* **JSON** — self-describing, for experiment results and sweep
  checkpoints (small series);
* **NPZ** — compact binary, for per-round run metrics and engine
  checkpoints (arrays of up to ``2*10^5`` entries).

Every write is **atomic**: content goes to a temp file in the target
directory which is then :func:`os.replace`-d over the destination, so a
crash mid-write never leaves a half-written file where a reader expects
a complete one.  Atomic writes are also **concurrency-safe**: each
write stages through its own :func:`tempfile.mkstemp` name, so many
processes (the parallel runtime's workers and coordinator) can write
checkpoints into one directory — or even race on the same destination
path — and every reader still sees some complete file.  Every file
carries a ``schema_version`` field, and all read paths convert
truncation / garbage / missing-field failures into
:class:`~repro.exceptions.PersistenceError` instead of leaking raw
``ValueError``/``KeyError``.

Every save/load entry point is wrapped with the observability layer's
:func:`~repro.obs.timed` decorator: pass ``metrics=<MetricsRegistry>``
and the call's duration lands in the ``persistence.*`` histogram
timers; omit it and the call is untouched.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import math
import os
import tempfile
import zipfile
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.exceptions import PersistenceError
from repro.obs.metrics import MetricsRegistry, timed
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.results import RunMetrics

if TYPE_CHECKING:  # runtime import would cycle: experiments imports sim
    from repro.experiments.registry import ExperimentResult

__all__ = [
    "RUN_SCHEMA_VERSION",
    "EXPERIMENT_SCHEMA_VERSION",
    "CHECKPOINT_SCHEMA_VERSION",
    "SWEEP_CHECKPOINT_SCHEMA_VERSION",
    "normalize_json_value",
    "denormalize_json_value",
    "atomic_write_bytes",
    "atomic_write_json",
    "save_run_metrics",
    "load_run_metrics",
    "experiment_result_to_dict",
    "experiment_result_from_dict",
    "save_experiment_result",
    "load_experiment_result",
    "save_checkpoint",
    "load_checkpoint",
    "save_sweep_checkpoint",
    "load_sweep_checkpoint",
    "quarantine_file",
    "recover_checkpoint",
    "recover_sweep_checkpoint",
]

#: Schema version written into every run-metrics NPZ.  Files without the
#: field are accepted as version-1 legacy output.
RUN_SCHEMA_VERSION = 1

#: Schema version written into every experiment-result JSON.
EXPERIMENT_SCHEMA_VERSION = 1

#: Schema version of engine checkpoints (no legacy grace: checkpoints
#: only ever existed with the field).
CHECKPOINT_SCHEMA_VERSION = 1

#: Schema version of replication-sweep checkpoints.  Version 2 replaced
#: the append-ordered ``samples`` lists with per-seed keyed
#: ``seed_samples`` / ``seed_durations`` maps, so sweeps whose seeds
#: complete out of order (the parallel runtime) checkpoint and resume
#: to bit-identical results, and resumed sweeps keep honest per-seed
#: wall-clock timing.
SWEEP_CHECKPOINT_SCHEMA_VERSION = 2

#: Prefix of the temp files backing atomic writes; a crash between
#: "temp written" and "replace" leaves one of these behind, which is
#: harmless (never loaded, overwritten-safe) and recognisable.
_TMP_PREFIX = ".tmp-"

#: Magic bytes opening the checksum footer appended to every NPZ this
#: library writes.  ZIP readers locate the archive from its
#: end-of-central-directory record by scanning backwards, so a short
#: trailing footer is invisible to them — but it lets our loader prove
#: the payload is exactly what was written (atomicity guarantees a
#: *complete* file, not an *unmodified* one: bit rot and hostile chaos
#: programs corrupt in place).  Footer layout: 8 magic bytes followed
#: by the 32-byte SHA-256 of everything before the footer.
_CHECKSUM_MAGIC = b"RPRSHA2\n"

_CHECKSUM_FOOTER_LEN = len(_CHECKSUM_MAGIC) + hashlib.sha256().digest_size

#: Suffix of the directory corrupt artefacts are moved into by
#: :func:`quarantine_file`: ``<path>.quarantine/`` next to the file.
QUARANTINE_SUFFIX = ".quarantine"

_RUN_SERIES_FIELDS = (
    "realized_revenue",
    "expected_revenue",
    "regret",
    "consumer_profit",
    "platform_profit",
    "seller_profit_mean",
    "service_price",
    "collection_price",
    "total_sensing_time",
    "selection_counts",
    "estimation_error",
)


# -- canonical JSON normalization ------------------------------------------------

#: Spellings used for non-finite floats in every JSON artefact this
#: library writes.  They match both what the stdlib ``json`` module
#: itself reads back and the spellings the trace serializer emits, so
#: persisted results, checkpoints, goldens, and traces all agree.
_NONFINITE_TOKENS = {"NaN": math.nan, "Infinity": math.inf,
                     "-Infinity": -math.inf}


def normalize_json_value(value: Any) -> Any:
    """One value in the library's canonical JSON form.

    The single normalization rule shared by every JSON writer (sweep
    checkpoints, experiment results, the verification golden store), so
    no two serializers can diverge on float formatting or NaN/inf
    handling:

    * numpy scalars become plain Python scalars, numpy arrays become
      (nested) lists;
    * non-finite floats become the sentinel strings ``"NaN"`` /
      ``"Infinity"`` / ``"-Infinity"`` (strict JSON has no spelling for
      them; :func:`denormalize_json_value` restores the floats);
    * finite floats stay Python floats — ``json`` serialises those with
      ``repr``, the shortest exact round-trip form;
    * dict keys are coerced to ``str``; tuples become lists.
    """
    kind = type(value)
    if kind is float:
        return value if math.isfinite(value) else _nonfinite_token(value)
    if kind in (int, str, bool, type(None)):
        return value
    if isinstance(value, dict):
        return {str(key): normalize_json_value(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [normalize_json_value(item) for item in value]
    if isinstance(value, np.ndarray):
        return normalize_json_value(value.tolist())
    if isinstance(value, np.generic):
        return normalize_json_value(value.item())
    if isinstance(value, float):  # float subclass
        value = float(value)
        return value if math.isfinite(value) else _nonfinite_token(value)
    return value


def _nonfinite_token(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    return "Infinity" if value > 0 else "-Infinity"


def denormalize_json_value(value: Any) -> Any:
    """Invert :func:`normalize_json_value` on a loaded JSON payload.

    Restores the non-finite sentinel strings to their float values.  Any
    other value (including ordinary strings) passes through unchanged,
    so applying this to a payload that never contained non-finite floats
    is the identity.
    """
    if type(value) is str:
        return _NONFINITE_TOKENS.get(value, value)
    if isinstance(value, dict):
        return {key: denormalize_json_value(item)
                for key, item in value.items()}
    if isinstance(value, list):
        return [denormalize_json_value(item) for item in value]
    return value


# -- atomic write primitives -----------------------------------------------------


def atomic_write_bytes(path: str | os.PathLike, payload: bytes) -> None:
    """Atomically replace ``path`` with ``payload``.

    The bytes are written to a temp file in the destination directory,
    fsynced, then :func:`os.replace`-d into place — a crash at any point
    leaves either the old complete file or the new complete file, never
    a truncated hybrid.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=_TMP_PREFIX, suffix=os.path.basename(path), dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp_path)
        raise


def atomic_write_json(path: str | os.PathLike, payload: dict) -> None:
    """Atomically write a dict as pretty-printed JSON.

    The payload is passed through :func:`normalize_json_value` first, so
    numpy values serialise as plain scalars/lists and non-finite floats
    take their canonical sentinel spellings; ``allow_nan=False`` then
    guarantees the file is *strict* JSON that any parser can read.
    """
    normalized = normalize_json_value(payload)
    encoded = json.dumps(normalized, indent=2,
                         allow_nan=False).encode("utf-8") + b"\n"
    atomic_write_bytes(path, encoded)


def _atomic_write_npz(path: str | os.PathLike,
                      arrays: dict[str, np.ndarray]) -> None:
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    payload = buffer.getvalue()
    footer = _CHECKSUM_MAGIC + hashlib.sha256(payload).digest()
    atomic_write_bytes(path, payload + footer)


def _json_checksum(payload: dict) -> str:
    """SHA-256 over the canonical compact serialization of ``payload``.

    Both writer and reader hash ``normalize_json_value``-d content with
    sorted keys and compact separators, so the digest is independent of
    indentation and key order — it certifies the *data*, not the bytes.
    """
    canonical = json.dumps(normalize_json_value(payload), sort_keys=True,
                           separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- guarded readers -------------------------------------------------------------


def _load_npz(path: str | os.PathLike, what: str) -> np.lib.npyio.NpzFile:
    """Open an NPZ, translating corruption into :class:`PersistenceError`.

    Files written by this library carry a trailing SHA-256 footer (see
    :data:`_CHECKSUM_MAGIC`), which is verified and stripped here; a
    digest mismatch means in-place corruption and raises.  Footer-less
    files (legacy output, NPZs from other tools) load unchanged.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        raise
    except OSError as error:
        raise PersistenceError(
            f"{what} {os.fspath(path)!s} is corrupt or unreadable: {error}",
            path=os.fspath(path),
        ) from error
    if (len(raw) >= _CHECKSUM_FOOTER_LEN
            and raw[-_CHECKSUM_FOOTER_LEN:].startswith(_CHECKSUM_MAGIC)):
        payload = raw[:-_CHECKSUM_FOOTER_LEN]
        recorded = raw[len(payload) + len(_CHECKSUM_MAGIC):]
        if hashlib.sha256(payload).digest() != recorded:
            raise PersistenceError(
                f"{what} {os.fspath(path)!s} failed its checksum — the "
                "file was modified or corrupted after it was written",
                path=os.fspath(path),
            )
        raw = payload
    try:
        return np.load(io.BytesIO(raw), allow_pickle=False)
    except (ValueError, OSError, zipfile.BadZipFile, EOFError) as error:
        raise PersistenceError(
            f"{what} {os.fspath(path)!s} is corrupt or unreadable: {error}",
            path=os.fspath(path),
        ) from error


def _load_json(path: str | os.PathLike, what: str) -> dict:
    """Read a JSON dict, translating corruption into :class:`PersistenceError`."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        raise PersistenceError(
            f"{what} {os.fspath(path)!s} is corrupt or unreadable: {error}",
            path=os.fspath(path),
        ) from error
    if not isinstance(payload, dict):
        raise PersistenceError(
            f"{what} {os.fspath(path)!s} does not hold a JSON object",
            path=os.fspath(path),
        )
    return payload


def _check_schema_version(found: int, expected: int,
                          path: str | os.PathLike, what: str) -> None:
    if int(found) != expected:
        raise PersistenceError(
            f"{what} {os.fspath(path)!s} has schema version {int(found)}, "
            f"but this library reads version {expected}",
            path=os.fspath(path), schema_found=int(found),
            schema_expected=expected,
        )


# -- run metrics (NPZ) -----------------------------------------------------------


@timed("persistence.save_run_metrics")
def save_run_metrics(run: RunMetrics, path: str | os.PathLike) -> None:
    """Persist one run's per-round series as a compressed ``.npz``.

    The write is atomic and stamps :data:`RUN_SCHEMA_VERSION`.
    """
    arrays = {name: getattr(run, name) for name in _RUN_SERIES_FIELDS}
    _atomic_write_npz(path, {
        "schema_version": np.array(RUN_SCHEMA_VERSION, dtype=np.int64),
        "policy_name": np.array(run.policy_name),
        **arrays,
    })


@timed("persistence.load_run_metrics")
def load_run_metrics(path: str | os.PathLike) -> RunMetrics:
    """Load a run previously saved by :func:`save_run_metrics`.

    Raises
    ------
    PersistenceError
        If the file is corrupt, carries an unsupported schema version,
        or lacks any expected series (the error names the missing
        fields).
    """
    with _load_npz(path, "run file") as data:
        if "schema_version" in data:
            _check_schema_version(int(data["schema_version"]),
                                  RUN_SCHEMA_VERSION, path, "run file")
        missing = [
            name for name in _RUN_SERIES_FIELDS + ("policy_name",)
            if name not in data
        ]
        if missing:
            raise PersistenceError(
                f"run file {path!s} is missing series: {missing}",
                path=os.fspath(path),
            )
        return RunMetrics(
            policy_name=str(data["policy_name"]),
            **{name: data[name] for name in _RUN_SERIES_FIELDS},
        )


# -- experiment results (JSON) ---------------------------------------------------


def experiment_result_to_dict(result: "ExperimentResult") -> dict:
    """A JSON-serialisable dict of an experiment result."""
    return {
        "schema_version": EXPERIMENT_SCHEMA_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "notes": list(result.notes),
        "panels": {
            panel: [
                {
                    "label": series.label,
                    "x": series.x.tolist(),
                    "y": series.y.tolist(),
                }
                for series in series_list
            ]
            for panel, series_list in result.panels.items()
        },
    }


def save_experiment_result(result: "ExperimentResult",
                           path: str | os.PathLike) -> None:
    """Persist an experiment result as pretty-printed JSON (atomically)."""
    atomic_write_json(path, experiment_result_to_dict(result))


def experiment_result_from_dict(payload: dict,
                                what: str = "experiment payload",
                                ) -> "ExperimentResult":
    """Rebuild an :class:`~repro.experiments.registry.ExperimentResult`.

    The inverse of :func:`experiment_result_to_dict` — also the bridge
    the parallel runtime uses to ship experiment results across process
    boundaries as plain JSON-serialisable dicts.

    Raises
    ------
    PersistenceError
        If the payload has an unsupported schema version or lacks the
        expected structure (the error names the missing key).
    """
    from repro.experiments.registry import ExperimentResult, Series

    if "schema_version" in payload:
        found = int(payload["schema_version"])
        if found != EXPERIMENT_SCHEMA_VERSION:
            raise PersistenceError(
                f"{what} has schema version {found}, but this library "
                f"reads version {EXPERIMENT_SCHEMA_VERSION}"
            )
    for key in ("experiment_id", "title", "x_label", "panels"):
        if key not in payload:
            raise PersistenceError(
                f"{what} is missing key {key!r}"
            )
    result = ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        x_label=payload["x_label"],
        notes=list(payload.get("notes", [])),
    )
    try:
        for panel, series_list in payload["panels"].items():
            for series in series_list:
                result.add_series(
                    panel,
                    Series(
                        label=series["label"],
                        x=np.asarray(series["x"], dtype=float),
                        y=np.asarray(series["y"], dtype=float),
                    ),
                )
    except (KeyError, TypeError, ValueError) as error:
        raise PersistenceError(
            f"{what} has a malformed panel series: {error}"
        ) from error
    return result


def load_experiment_result(path: str | os.PathLike) -> "ExperimentResult":
    """Load an experiment result saved by :func:`save_experiment_result`.

    Returns a :class:`~repro.experiments.registry.ExperimentResult`.

    Raises
    ------
    PersistenceError
        If the JSON is corrupt, has an unsupported schema version, or
        lacks the expected structure (the error names the missing key).
    """
    payload = _load_json(path, "experiment file")
    return experiment_result_from_dict(
        payload, what=f"experiment file {os.fspath(path)!s}"
    )


# -- checkpoints -----------------------------------------------------------------


def _generation_path(path: str, generation: int) -> str:
    """Where generation ``k`` of checkpoint ``path`` lives (``k >= 1``)."""
    return f"{path}.gen-{generation}"


def _rotate_generations(path: str | os.PathLike, keep: int) -> None:
    """Shift ``path`` and its ``.gen-k`` siblings one generation older.

    After rotation the destination ``path`` is free for a fresh write,
    the previous file survives as ``.gen-1``, and anything older than
    ``keep - 1`` prior generations has been dropped.  Each shift is a
    single :func:`os.replace`, so a crash mid-rotation loses at most
    ordering depth, never the newest checkpoint.
    """
    path = os.fspath(path)
    if keep <= 1 or not os.path.exists(path):
        return
    oldest = _generation_path(path, keep - 1)
    with contextlib.suppress(FileNotFoundError):
        os.unlink(oldest)
    for generation in range(keep - 2, 0, -1):
        source = _generation_path(path, generation)
        if os.path.exists(source):
            os.replace(source, _generation_path(path, generation + 1))
    os.replace(path, _generation_path(path, 1))


@timed("persistence.save_checkpoint")
def save_checkpoint(path: str | os.PathLike, meta: dict,
                    arrays: dict[str, np.ndarray], *,
                    keep_generations: int = 1) -> None:
    """Atomically persist an engine checkpoint (metadata + arrays).

    ``meta`` must be JSON-serialisable; it is stamped with
    :data:`CHECKPOINT_SCHEMA_VERSION` and stored alongside the arrays in
    one NPZ, so a checkpoint is a single crash-safe file.

    With ``keep_generations > 1`` the previous checkpoint is rotated to
    ``<path>.gen-1`` (and older generations shifted down, keeping at
    most ``keep_generations`` files) before the new one lands — the
    rollback targets :func:`recover_checkpoint` falls back to when the
    newest file turns out corrupt.
    """
    if "schema_version" in arrays or "checkpoint_meta" in arrays:
        raise PersistenceError(
            "'schema_version' and 'checkpoint_meta' are reserved "
            "checkpoint field names"
        )
    stamped = dict(meta)
    stamped["schema_version"] = CHECKPOINT_SCHEMA_VERSION
    _rotate_generations(path, keep_generations)
    _atomic_write_npz(path, {
        "checkpoint_meta": np.array(json.dumps(stamped)),
        **arrays,
    })


@timed("persistence.load_checkpoint")
def load_checkpoint(path: str | os.PathLike) -> tuple[dict, dict[str, np.ndarray]]:
    """Load a checkpoint saved by :func:`save_checkpoint`.

    Returns ``(meta, arrays)`` with the schema-version stamp already
    validated and removed from ``meta``.

    Raises
    ------
    PersistenceError
        If the file is corrupt, not a checkpoint, or carries an
        unsupported schema version.
    """
    with _load_npz(path, "checkpoint") as data:
        if "checkpoint_meta" not in data:
            raise PersistenceError(
                f"checkpoint {os.fspath(path)!s} has no metadata record "
                "(not a checkpoint file?)",
                path=os.fspath(path),
            )
        try:
            meta = json.loads(str(data["checkpoint_meta"]))
        except json.JSONDecodeError as error:
            raise PersistenceError(
                f"checkpoint {os.fspath(path)!s} has corrupt metadata: "
                f"{error}",
                path=os.fspath(path),
            ) from error
        if not isinstance(meta, dict) or "schema_version" not in meta:
            raise PersistenceError(
                f"checkpoint {os.fspath(path)!s} metadata lacks a "
                "schema_version",
                path=os.fspath(path),
            )
        _check_schema_version(meta.pop("schema_version"),
                              CHECKPOINT_SCHEMA_VERSION, path, "checkpoint")
        arrays = {
            name: data[name] for name in data.files
            if name != "checkpoint_meta"
        }
    return meta, arrays


@timed("persistence.save_sweep_checkpoint")
def save_sweep_checkpoint(path: str | os.PathLike, payload: dict, *,
                          keep_generations: int = 1) -> None:
    """Atomically persist a replication-sweep checkpoint as JSON.

    The payload is stamped with a ``checksum`` field — the SHA-256 of
    its canonical serialization — so in-place corruption that still
    parses as JSON is detected on load.  ``keep_generations`` works as
    in :func:`save_checkpoint`.
    """
    stamped = dict(payload)
    stamped["schema_version"] = SWEEP_CHECKPOINT_SCHEMA_VERSION
    stamped["checksum"] = _json_checksum(stamped)
    _rotate_generations(path, keep_generations)
    atomic_write_json(path, stamped)


@timed("persistence.load_sweep_checkpoint")
def load_sweep_checkpoint(path: str | os.PathLike) -> dict:
    """Load a sweep checkpoint saved by :func:`save_sweep_checkpoint`.

    Raises
    ------
    PersistenceError
        If the file is corrupt or carries an unsupported schema version
        (including version-1 sweep checkpoints, whose append-ordered
        sample lists cannot express out-of-order parallel completion).
    """
    raw = _load_json(path, "sweep checkpoint")
    recorded = raw.pop("checksum", None)
    if recorded is not None and recorded != _json_checksum(raw):
        raise PersistenceError(
            f"sweep checkpoint {os.fspath(path)!s} failed its checksum — "
            "the file was modified or corrupted after it was written",
            path=os.fspath(path),
        )
    payload = denormalize_json_value(raw)
    if "schema_version" not in payload:
        raise PersistenceError(
            f"sweep checkpoint {os.fspath(path)!s} lacks a schema_version",
            path=os.fspath(path),
        )
    _check_schema_version(payload.pop("schema_version"),
                          SWEEP_CHECKPOINT_SCHEMA_VERSION, path,
                          "sweep checkpoint")
    return payload


# -- quarantine & rollback -------------------------------------------------------


def quarantine_file(path: str | os.PathLike) -> str:
    """Move a corrupt artefact into its ``*.quarantine/`` directory.

    The file is preserved for post-mortem under
    ``<path>.quarantine/<basename>`` (a numeric suffix disambiguates
    repeat offenders), clearing the original path so recovery can
    rewrite it.  Returns the quarantine destination.
    """
    path = os.fspath(path)
    quarantine_dir = path + QUARANTINE_SUFFIX
    os.makedirs(quarantine_dir, exist_ok=True)
    base = os.path.basename(path)
    destination = os.path.join(quarantine_dir, base)
    suffix = 0
    while os.path.exists(destination):
        suffix += 1
        destination = os.path.join(quarantine_dir, f"{base}.{suffix}")
    os.replace(path, destination)
    return destination


def _recover_generations(
    path: str | os.PathLike,
    load: Any,
    what: str,
    *,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
) -> tuple[Any, str] | None:
    """Walk ``path``, ``path.gen-1``, ... until one loads cleanly.

    Corrupt candidates are quarantined (with a ``checkpoint_quarantined``
    trace event and a ``resilience.checkpoints_quarantined`` count) and
    the walk falls back to the next-older generation.  Returns
    ``(loaded, actual_path)`` for the newest valid generation, or
    ``None`` when no generation survives — the caller starts fresh.
    """
    path = os.fspath(path)
    tr = tracer if tracer is not None else NULL_TRACER
    candidates = [path]
    generation = 1
    while os.path.exists(_generation_path(path, generation)):
        candidates.append(_generation_path(path, generation))
        generation += 1
    for candidate in candidates:
        try:
            loaded = load(candidate)
        except FileNotFoundError:
            continue
        except PersistenceError as error:
            quarantined_to = quarantine_file(candidate)
            if metrics is not None:
                metrics.counter("resilience.checkpoints_quarantined").inc()
            if tr.enabled:
                tr.emit("checkpoint_quarantined", path=candidate,
                        quarantined_to=quarantined_to, what=what,
                        error=f"{type(error).__name__}: {error}")
            continue
        return loaded, candidate
    return None


def recover_checkpoint(
    path: str | os.PathLike,
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[dict, dict[str, np.ndarray], str] | None:
    """Load the newest valid generation of an engine checkpoint.

    The resilient counterpart of :func:`load_checkpoint`: instead of
    raising on a corrupt/truncated/schema-mismatched file, it
    quarantines the offender and rolls back through ``.gen-k``
    siblings.  Returns ``(meta, arrays, actual_path)`` — ``actual_path``
    names the generation that satisfied the load — or ``None`` when no
    valid generation exists (resume from scratch).

    (Timed by hand rather than with :func:`~repro.obs.timed`: the
    decorator consumes the ``metrics`` keyword, and this function needs
    the registry itself for the quarantine counter.)
    """
    timer = (metrics.time("persistence.recover_checkpoint")
             if metrics is not None else contextlib.nullcontext())
    with timer:
        recovered = _recover_generations(path, load_checkpoint,
                                         "checkpoint", tracer=tracer,
                                         metrics=metrics)
    if recovered is None:
        return None
    (meta, arrays), actual_path = recovered
    return meta, arrays, actual_path


def recover_sweep_checkpoint(
    path: str | os.PathLike,
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[dict, str] | None:
    """Load the newest valid generation of a sweep checkpoint.

    The resilient counterpart of :func:`load_sweep_checkpoint`, with
    the same quarantine-and-roll-back semantics as
    :func:`recover_checkpoint`.  Returns ``(payload, actual_path)`` or
    ``None`` when no valid generation exists.
    """
    timer = (metrics.time("persistence.recover_sweep_checkpoint")
             if metrics is not None else contextlib.nullcontext())
    with timer:
        recovered = _recover_generations(path, load_sweep_checkpoint,
                                         "sweep checkpoint", tracer=tracer,
                                         metrics=metrics)
    if recovered is None:
        return None
    payload, actual_path = recovered
    return payload, actual_path
