"""Multi-seed replication of policy comparisons.

The paper reports single runs; this harness repeats a comparison over
independent seeds (fresh population, fresh observation noise) and
aggregates mean / standard deviation / standard error per metric — the
difference between "we observed X once" and "X holds with seed-to-seed
spread s".

The sweep is crash-safe: pass ``checkpoint_path`` and each completed
seed's samples (and wall-clock duration) are atomically snapshotted, so
an interrupted sweep resumed with ``resume=True`` skips finished seeds
and produces metrics identical to an uninterrupted run (each seed is
fully self-contained, deriving its population, noise, and faults from
its own seed).

The sweep is also **parallel**: pass ``workers=N`` and the remaining
seeds are sharded across a crash-tolerant process pool
(:class:`~repro.parallel.ParallelExecutor`).  Because every seed is a
self-contained RNG universe and the final aggregation always folds
samples in ascending seed order, the parallel result is bit-identical
to the serial one — for any worker count, chunk size, completion
order, or crash/re-queue schedule (the determinism test suite asserts
exactly this).  Checkpointing keeps working: the coordinator snapshots
after every completed seed, whichever worker finished it.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.timing import perf_counter

if TYPE_CHECKING:  # runtime import would cycle: parallel workers run this
    from repro.obs.profile import PhaseProfiler
    from repro.parallel.worker import WorkerContext

from repro.bandits.base import SelectionPolicy
from repro.exceptions import (
    ConfigurationError,
    GracefulShutdownInterrupt,
    PersistenceError,
)
from repro.faults import FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.policy import (
    NOOP_POLICY,
    ResiliencePolicy,
    execute_with_policy,
)
from repro.resilience.shutdown import NEVER_STOP, ShutdownSignal
from repro.resilience.watchdog import WatchdogConfig
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_seed_comparison
from repro.sim.persistence import (
    load_sweep_checkpoint,
    recover_sweep_checkpoint,
    save_sweep_checkpoint,
)

__all__ = ["MetricSummary", "ReplicationResult", "replicate_comparison"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread / extremes of one metric across seeds.

    ``std`` is the seed-to-seed sample standard deviation; ``stderr``
    is the standard error of the mean (``std / sqrt(n)``).  With a
    single seed neither is estimable, so ``std`` reports ``0.0`` (no
    observed spread) while ``stderr`` is ``nan`` — tables render it as
    ``n/a`` so single-seed sweeps are visibly unreliable instead of
    silently looking exact.
    """

    mean: float
    std: float
    minimum: float
    maximum: float
    num_seeds: int
    stderr: float = float("nan")

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "MetricSummary":
        """Summarise a list of per-seed samples."""
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ConfigurationError("cannot summarise zero samples")
        std = float(values.std(ddof=1)) if values.size > 1 else 0.0
        return cls(
            mean=float(values.mean()),
            std=std,
            minimum=float(values.min()),
            maximum=float(values.max()),
            num_seeds=int(values.size),
            stderr=(std / math.sqrt(values.size) if values.size > 1
                    else float("nan")),
        )

    def format(self) -> str:
        """Human-readable ``mean +/- std`` rendering."""
        return f"{self.mean:.4g} +/- {self.std:.2g}"

    def format_stderr(self) -> str:
        """``mean +/- stderr`` rendering; honest about single seeds."""
        if self.num_seeds < 2:
            return f"{self.mean:.4g} +/- n/a"
        return f"{self.mean:.4g} +/- {self.stderr:.2g}"


#: Metrics aggregated per policy, keyed by the RunMetrics summary names.
_METRIC_KEYS = (
    "total_revenue", "expected_revenue", "regret",
    "mean_poc", "mean_pop", "mean_pos",
)


@dataclass
class ReplicationResult:
    """Aggregated metrics of a replicated comparison.

    Attributes
    ----------
    summaries:
        ``summaries[policy][metric]`` -> :class:`MetricSummary`.
    seeds:
        The seeds that were run.
    seed_durations:
        Wall-clock seconds each seed took, keyed by seed.  Durations of
        seeds completed before a crash survive in the checkpoint, so a
        resumed sweep still reports honest cumulative timing.
    """

    summaries: dict[str, dict[str, MetricSummary]]
    seeds: list[int]
    seed_durations: dict[int, float] = field(default_factory=dict)

    def policy_names(self) -> list[str]:
        """Policies in insertion order."""
        return list(self.summaries)

    @property
    def cumulative_seed_time(self) -> float:
        """Total wall-clock seconds spent inside seeds, across resumes.

        For a parallel sweep this is the *work* time (the sum over
        workers), which can exceed the sweep's elapsed wall-clock time.
        """
        return float(sum(self.seed_durations.values()))

    def metric(self, policy: str, metric: str) -> MetricSummary:
        """One policy's summary of one metric.

        Raises
        ------
        ConfigurationError
            For unknown policy or metric names.
        """
        if policy not in self.summaries:
            raise ConfigurationError(
                f"no replicated runs for policy {policy!r}"
            )
        if metric not in self.summaries[policy]:
            raise ConfigurationError(
                f"unknown metric {metric!r}; known: {_METRIC_KEYS}"
            )
        return self.summaries[policy][metric]

    def separation(self, better: str, worse: str,
                   metric: str = "total_revenue") -> float:
        """How many pooled standard deviations separate two policies.

        Positive when ``better``'s mean exceeds ``worse``'s; large values
        mean the ordering is stable across seeds.  Returns ``inf`` when
        both policies are deterministic across seeds (zero spread).
        """
        a = self.metric(better, metric)
        b = self.metric(worse, metric)
        pooled = float(np.hypot(a.std, b.std))
        difference = a.mean - b.mean
        if pooled == 0.0:
            return float("inf") if difference > 0 else -float("inf")
        return difference / pooled

    def to_table(self) -> str:
        """All policies x headline metrics as an aligned text table.

        Cells show ``mean +/- standard error`` (``n/a`` for single-seed
        sweeps, whose uncertainty is unknown, not zero).
        """
        headers = ["policy", "revenue", "regret", "PoC/round", "PoS/round"]
        rows = []
        for policy in self.policy_names():
            rows.append([
                policy,
                self.metric(policy, "total_revenue").format_stderr(),
                self.metric(policy, "regret").format_stderr(),
                self.metric(policy, "mean_poc").format_stderr(),
                self.metric(policy, "mean_pos").format_stderr(),
            ])
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        lines.append(
            f"(mean +/- standard error of the mean over "
            f"{len(self.seeds)} seed{'s' if len(self.seeds) != 1 else ''})"
        )
        return "\n".join(lines)


def _sweep_fingerprint(base_config: SimulationConfig, num_seeds: int,
                       first_seed: int,
                       fault_spec: FaultSpec | None) -> dict:
    """What a sweep checkpoint must match to be resumable.

    The worker count is deliberately absent: a sweep checkpointed
    serially may resume with ``workers=8`` (and vice versa) — the
    result is identical either way.
    """
    return {
        "num_sellers": base_config.num_sellers,
        "num_selected": base_config.num_selected,
        "num_pois": base_config.num_pois,
        "num_rounds": base_config.num_rounds,
        "num_seeds": num_seeds,
        "first_seed": first_seed,
        "fault_spec": (fault_spec.to_dict()
                       if fault_spec is not None else None),
    }


class _SeedRunner:
    """Worker-side runner: one seed in, per-policy summaries out.

    Defined at module level so it stays picklable under the ``spawn``
    start method (under the default ``fork`` the instance is simply
    inherited); the policy factory it carries only needs to be
    picklable when ``spawn`` is used.
    """

    def __init__(self, base_config: SimulationConfig,
                 policy_factory: Callable[[np.ndarray],
                                          list[SelectionPolicy]],
                 fault_spec: FaultSpec | None,
                 want_metrics: bool) -> None:
        self._base_config = base_config
        self._policy_factory = policy_factory
        self._fault_spec = fault_spec
        self._want_metrics = want_metrics

    def __call__(self, seed: int, context: "WorkerContext") -> dict:
        # Thread the worker-local observability through exactly as the
        # serial path threads the caller's: engine metrics only when
        # the caller attached a registry, tracing only when traced.
        return run_seed_comparison(
            self._base_config, seed, self._policy_factory,
            self._fault_spec,
            tracer=context.tracer if context.tracer.enabled else None,
            metrics=context.metrics if self._want_metrics else None,
        )


def _load_resume_state(checkpoint_path: str | os.PathLike,
                       fingerprint: dict, *,
                       resilience: ResiliencePolicy = NOOP_POLICY,
                       tracer: Tracer = NULL_TRACER,
                       metrics: MetricsRegistry | None = None) -> tuple[
        dict[int, dict], dict[int, float]]:
    """Completed per-seed samples and durations from a checkpoint.

    With quarantine enabled the newest *valid* generation wins (corrupt
    files are moved aside; see
    :func:`~repro.sim.persistence.recover_sweep_checkpoint`) and a sweep
    with no salvageable checkpoint simply starts fresh.  A fingerprint
    mismatch still raises either way: a healthy checkpoint from a
    different sweep is a configuration error, not corruption.
    """
    if resilience.quarantine:
        recovered = recover_sweep_checkpoint(checkpoint_path,
                                             tracer=tracer,
                                             metrics=metrics)
        if recovered is None:
            return {}, {}
        payload, __ = recovered
    else:
        payload = load_sweep_checkpoint(checkpoint_path)
    if payload.get("kind") != "replication_sweep":
        raise PersistenceError(
            f"{os.fspath(checkpoint_path)!s} is not a replication-sweep "
            "checkpoint"
        )
    if payload.get("fingerprint") != fingerprint:
        raise PersistenceError(
            f"sweep checkpoint {os.fspath(checkpoint_path)!s} was "
            "written by a different sweep configuration: "
            f"{payload.get('fingerprint')!r} != {fingerprint!r}"
        )
    try:
        per_seed = {
            int(seed): {
                str(policy): {str(key): float(value)
                              for key, value in metric_values.items()}
                for policy, metric_values in policies.items()
            }
            for seed, policies in payload.get("seed_samples", {}).items()
        }
        durations = {
            int(seed): float(duration)
            for seed, duration in payload.get("seed_durations", {}).items()
        }
    except (TypeError, ValueError, AttributeError) as error:
        raise PersistenceError(
            f"sweep checkpoint {os.fspath(checkpoint_path)!s} has "
            f"malformed per-seed records: {error}"
        ) from error
    return per_seed, durations


def _save_sweep_state(checkpoint_path: str | os.PathLike,
                      fingerprint: dict,
                      per_seed: dict[int, dict],
                      durations: dict[int, float],
                      metrics: MetricsRegistry,
                      keep_generations: int = 1) -> None:
    """Atomically snapshot the sweep's completed seeds."""
    save_sweep_checkpoint(checkpoint_path, {
        "kind": "replication_sweep",
        "fingerprint": fingerprint,
        "completed_seeds": sorted(per_seed),
        "seed_samples": {
            str(seed): per_seed[seed] for seed in sorted(per_seed)
        },
        "seed_durations": {
            str(seed): durations[seed] for seed in sorted(durations)
        },
    }, metrics=metrics, keep_generations=keep_generations)


def _stop_sweep_gracefully(checkpoint_path: str | os.PathLike | None,
                           completed: int, total: int,
                           tracer: Tracer) -> None:
    """Abandon the sweep at a seed boundary, pointing at the checkpoint.

    No extra write is needed: the sweep checkpoint (when one is
    configured) is already current, having been snapshotted after every
    completed seed.
    """
    path = (os.fspath(checkpoint_path)
            if checkpoint_path is not None else None)
    if tracer.enabled:
        tracer.emit("graceful_shutdown", scope="replication",
                    seeds_completed=completed, seeds_total=total,
                    checkpoint_path=path)
        tracer.flush()
    raise GracefulShutdownInterrupt(
        f"replication sweep stopped after {completed} of {total} "
        f"seeds; resume from the checkpoint to finish",
        checkpoint_path=path,
    )


def replicate_comparison(
    base_config: SimulationConfig,
    policy_factory: Callable[[np.ndarray], list[SelectionPolicy]],
    num_seeds: int = 5,
    first_seed: int = 0,
    *,
    fault_spec: FaultSpec | None = None,
    checkpoint_path: str | os.PathLike | None = None,
    resume: bool = False,
    workers: int = 1,
    chunk_size: int | None = None,
    max_task_retries: int = 2,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    shutdown: ShutdownSignal | None = None,
    resilience: ResiliencePolicy | None = None,
    watchdog: WatchdogConfig | None = None,
    profiler: "PhaseProfiler | None" = None,
) -> ReplicationResult:
    """Run the comparison under ``num_seeds`` independent seeds.

    Parameters
    ----------
    base_config:
        The shared configuration; its ``seed`` field is overridden per
        replication.
    policy_factory:
        Builds a fresh policy list from the instance's true qualities
        (fresh because policies are stateful).
    num_seeds:
        Number of independent replications.
    first_seed:
        Seeds used are ``first_seed .. first_seed + num_seeds - 1``.
    fault_spec:
        When given, every seed's runs inject faults with these rates
        (each seed draws its own reproducible fault schedule).
    checkpoint_path:
        JSON file the sweep snapshots into after each completed seed
        (atomic write; survives crashes).
    resume:
        Continue from ``checkpoint_path`` if it exists, skipping seeds
        already completed; the result is identical to an uninterrupted
        sweep.  A missing checkpoint file simply starts fresh.
    workers:
        Process count for the sweep.  ``1`` (default) runs serially in
        this process; ``N > 1`` shards the remaining seeds across a
        crash-tolerant pool with results bit-identical to serial (each
        seed is a self-contained RNG universe, and aggregation always
        folds samples in ascending seed order).  A worker killed
        mid-seed is replaced and the seed re-queued.
    chunk_size:
        Seeds per worker dispatch (parallel only); ``None`` balances
        automatically.
    max_task_retries:
        How many worker crashes one seed may survive before the sweep
        fails (parallel only).
    tracer:
        Optional :class:`~repro.obs.Tracer`; the sweep brackets each
        replication with ``seed_start`` / ``seed_end`` events and the
        per-run events flow through it as well.  With ``workers > 1``
        the events are captured worker-locally, replayed into this
        tracer tagged ``worker=<id>``, and framed by
        ``worker_started`` / ``worker_task_done`` / ``worker_crashed``
        lifecycle events.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` accumulating the
        sweep's counters (``seeds_completed``, ``seeds_skipped``) and
        the per-seed ``replication.seed`` timer alongside the run-level
        telemetry (worker-local registries are merged in when
        ``workers > 1``).
    shutdown:
        Optional cooperative stop signal, polled at **seed boundaries**
        with the number of seeds completed so far (including resumed
        ones).  When it fires the sweep emits a ``graceful_shutdown``
        event and raises :class:`GracefulShutdownInterrupt` carrying
        the checkpoint path — the checkpoint already holds every
        completed seed, so ``resume=True`` finishes the sweep exactly.
    resilience:
        Optional :class:`~repro.resilience.ResiliencePolicy` governing
        the sweep's checkpoint I/O: its retry policy and deadline guard
        each checkpoint write, ``checkpoint_generations`` keeps rotated
        siblings, and ``quarantine`` makes resume roll back past
        corrupt checkpoints instead of failing.  Its deadline also arms
        the parallel pool's per-task watchdog (one seed per task) when
        no explicit ``watchdog`` is given.  The default is a no-op:
        behaviour is byte-identical to pre-resilience sweeps.
    watchdog:
        Optional :class:`~repro.resilience.WatchdogConfig` for the
        parallel pool, overriding the one derived from ``resilience``.
        Ignored when ``workers == 1``.
    profiler:
        Optional :class:`~repro.obs.PhaseProfiler` bracketing the whole
        sweep: ``profiler.report()`` afterwards carries the sweep's
        active wall-clock, peak memory, per-phase self times, and
        hot-path rates (rounds/sec across all seeds; for parallel
        sweeps the worker registries merge back in, so phase totals
        cover every worker's rounds while rates stay relative to the
        coordinator's wall-clock).  ``None`` (the default) keeps the
        sweep byte-identical to unprofiled behaviour.

    Raises
    ------
    PersistenceError
        If a resume checkpoint belongs to a different sweep
        configuration.
    ParallelExecutionError
        If a worker raised, or a seed exceeded its crash-retry budget.
    GracefulShutdownInterrupt
        If ``shutdown`` fired at a seed boundary.
    """
    if profiler is not None:
        # Re-enter with the profiler's registry as the metrics sink so
        # one code path does the work and the bracket closes even when
        # the sweep raises (graceful shutdown, worker failures).
        profiler.run_started()
        try:
            return replicate_comparison(
                base_config, policy_factory, num_seeds, first_seed,
                fault_spec=fault_spec, checkpoint_path=checkpoint_path,
                resume=resume, workers=workers, chunk_size=chunk_size,
                max_task_retries=max_task_retries, tracer=tracer,
                metrics=profiler.bind(metrics), shutdown=shutdown,
                resilience=resilience, watchdog=watchdog, profiler=None,
            )
        finally:
            profiler.run_finished(
                num_seeds=num_seeds, first_seed=first_seed,
                workers=workers,
                num_sellers=base_config.num_sellers,
                num_selected=base_config.num_selected,
                num_rounds=base_config.num_rounds,
            )
    if num_seeds <= 0:
        raise ConfigurationError(
            f"num_seeds must be positive, got {num_seeds}"
        )
    if workers <= 0:
        raise ConfigurationError(
            f"workers must be positive, got {workers}"
        )
    if resume and checkpoint_path is None:
        raise ConfigurationError("resume requires checkpoint_path")
    tr = tracer if tracer is not None else NULL_TRACER
    reg = metrics if metrics is not None else MetricsRegistry()
    stop = shutdown if shutdown is not None else NEVER_STOP
    res = resilience if resilience is not None else NOOP_POLICY
    if watchdog is None and res.deadline.enabled:
        watchdog = WatchdogConfig(task_timeout_s=res.deadline.timeout_s)
    fingerprint = _sweep_fingerprint(base_config, num_seeds, first_seed,
                                     fault_spec)
    per_seed: dict[int, dict] = {}
    durations: dict[int, float] = {}
    if (resume and checkpoint_path is not None
            and (os.path.exists(checkpoint_path) or res.quarantine)):
        per_seed, durations = _load_resume_state(
            checkpoint_path, fingerprint,
            resilience=res, tracer=tr, metrics=reg,
        )
    seeds = list(range(first_seed, first_seed + num_seeds))
    remaining = []
    for seed in seeds:
        if seed in per_seed:
            reg.counter("seeds_skipped").inc()
        else:
            remaining.append(seed)

    def complete_seed(seed: int, summaries: dict, duration: float) -> None:
        per_seed[seed] = summaries
        durations[seed] = duration
        if checkpoint_path is not None:
            execute_with_policy(
                lambda: _save_sweep_state(
                    checkpoint_path, fingerprint, per_seed, durations,
                    reg, keep_generations=res.checkpoint_generations,
                ),
                res.retry,
                label="replication.checkpoint_write",
                deadline=res.deadline,
                tracer=tr,
                metrics=reg,
            )
        reg.counter("seeds_completed").inc()
        reg.timer("replication.seed").observe(duration)

    if workers > 1 and remaining:
        # Deferred import: repro.parallel depends on repro.obs, and the
        # serial path must stay importable without it in the loop.
        from repro.parallel import ParallelExecutor

        if stop.should_stop(len(per_seed)):
            _stop_sweep_gracefully(checkpoint_path, len(per_seed),
                                   num_seeds, tr)
        runner = _SeedRunner(base_config, policy_factory, fault_spec,
                             want_metrics=metrics is not None)
        executor = ParallelExecutor(
            runner,
            workers=min(workers, len(remaining)),
            chunk_size=chunk_size,
            max_task_retries=max_task_retries,
            retry_policy=res.retry if not res.retry.is_noop else None,
            watchdog=watchdog,
            tracer=tr if tr.enabled else None,
            metrics=reg,
        )
        # Closing the generator mid-stream (the graceful-shutdown path)
        # runs the executor's finally-block teardown: in-flight seeds on
        # other workers are lost, but every *completed* seed is already
        # in the checkpoint, so a resume finishes the sweep exactly.
        results = executor.as_completed(remaining)
        for result in results:
            complete_seed(remaining[result.task_id], result.value,
                          result.duration_s)
            if stop.should_stop(len(per_seed)) and len(per_seed) < num_seeds:
                results.close()
                _stop_sweep_gracefully(checkpoint_path, len(per_seed),
                                       num_seeds, tr)
        if tr.enabled:
            tr.flush()
    else:
        for seed in remaining:
            if stop.should_stop(len(per_seed)):
                _stop_sweep_gracefully(checkpoint_path, len(per_seed),
                                       num_seeds, tr)
            seed_start = perf_counter()
            summaries = run_seed_comparison(
                base_config, seed, policy_factory, fault_spec,
                tracer=tracer, metrics=metrics,
            )
            complete_seed(seed, summaries, perf_counter() - seed_start)

    # Fold per-seed samples in ascending seed order — the one canonical
    # order — so serial, parallel, resumed, and crash-recovered sweeps
    # aggregate the exact same float sequence.
    samples: dict[str, dict[str, list[float]]] = {}
    for seed in seeds:
        for policy, summary in per_seed[seed].items():
            bucket = samples.setdefault(
                policy, {key: [] for key in _METRIC_KEYS}
            )
            for key in _METRIC_KEYS:
                bucket[key].append(summary[key])
    summaries = {
        policy: {
            key: MetricSummary.from_samples(values)
            for key, values in metric_samples.items()
        }
        for policy, metric_samples in samples.items()
    }
    return ReplicationResult(summaries=summaries, seeds=seeds,
                             seed_durations=dict(durations))
