"""Multi-seed replication of policy comparisons.

The paper reports single runs; this harness repeats a comparison over
independent seeds (fresh population, fresh observation noise) and
aggregates mean and standard deviation per metric — the difference
between "we observed X once" and "X holds with seed-to-seed spread s".

The sweep is crash-safe: pass ``checkpoint_path`` and each completed
seed's samples are atomically snapshotted, so an interrupted sweep
resumed with ``resume=True`` skips finished seeds and produces metrics
identical to an uninterrupted run (each seed is fully self-contained,
deriving its population, noise, and faults from its own seed).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.exceptions import ConfigurationError, PersistenceError
from repro.faults import FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator
from repro.sim.persistence import (
    load_sweep_checkpoint,
    save_sweep_checkpoint,
)

__all__ = ["MetricSummary", "ReplicationResult", "replicate_comparison"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean / standard deviation / extremes of one metric across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    num_seeds: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "MetricSummary":
        """Summarise a list of per-seed samples."""
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ConfigurationError("cannot summarise zero samples")
        return cls(
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            minimum=float(values.min()),
            maximum=float(values.max()),
            num_seeds=int(values.size),
        )

    def format(self) -> str:
        """Human-readable ``mean +/- std`` rendering."""
        return f"{self.mean:.4g} +/- {self.std:.2g}"


#: Metrics aggregated per policy, keyed by the RunMetrics summary names.
_METRIC_KEYS = (
    "total_revenue", "expected_revenue", "regret",
    "mean_poc", "mean_pop", "mean_pos",
)


@dataclass
class ReplicationResult:
    """Aggregated metrics of a replicated comparison.

    Attributes
    ----------
    summaries:
        ``summaries[policy][metric]`` -> :class:`MetricSummary`.
    seeds:
        The seeds that were run.
    """

    summaries: dict[str, dict[str, MetricSummary]]
    seeds: list[int]

    def policy_names(self) -> list[str]:
        """Policies in insertion order."""
        return list(self.summaries)

    def metric(self, policy: str, metric: str) -> MetricSummary:
        """One policy's summary of one metric.

        Raises
        ------
        ConfigurationError
            For unknown policy or metric names.
        """
        if policy not in self.summaries:
            raise ConfigurationError(
                f"no replicated runs for policy {policy!r}"
            )
        if metric not in self.summaries[policy]:
            raise ConfigurationError(
                f"unknown metric {metric!r}; known: {_METRIC_KEYS}"
            )
        return self.summaries[policy][metric]

    def separation(self, better: str, worse: str,
                   metric: str = "total_revenue") -> float:
        """How many pooled standard deviations separate two policies.

        Positive when ``better``'s mean exceeds ``worse``'s; large values
        mean the ordering is stable across seeds.  Returns ``inf`` when
        both policies are deterministic across seeds (zero spread).
        """
        a = self.metric(better, metric)
        b = self.metric(worse, metric)
        pooled = float(np.hypot(a.std, b.std))
        difference = a.mean - b.mean
        if pooled == 0.0:
            return float("inf") if difference > 0 else -float("inf")
        return difference / pooled

    def to_table(self) -> str:
        """All policies x headline metrics as an aligned text table."""
        headers = ["policy", "revenue", "regret", "PoC/round", "PoS/round"]
        rows = []
        for policy in self.policy_names():
            rows.append([
                policy,
                self.metric(policy, "total_revenue").format(),
                self.metric(policy, "regret").format(),
                self.metric(policy, "mean_poc").format(),
                self.metric(policy, "mean_pos").format(),
            ])
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _sweep_fingerprint(base_config: SimulationConfig, num_seeds: int,
                       first_seed: int,
                       fault_spec: FaultSpec | None) -> dict:
    """What a sweep checkpoint must match to be resumable."""
    return {
        "num_sellers": base_config.num_sellers,
        "num_selected": base_config.num_selected,
        "num_pois": base_config.num_pois,
        "num_rounds": base_config.num_rounds,
        "num_seeds": num_seeds,
        "first_seed": first_seed,
        "fault_spec": (fault_spec.to_dict()
                       if fault_spec is not None else None),
    }


def replicate_comparison(
    base_config: SimulationConfig,
    policy_factory: Callable[[np.ndarray], list[SelectionPolicy]],
    num_seeds: int = 5,
    first_seed: int = 0,
    *,
    fault_spec: FaultSpec | None = None,
    checkpoint_path: str | os.PathLike | None = None,
    resume: bool = False,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> ReplicationResult:
    """Run the comparison under ``num_seeds`` independent seeds.

    Parameters
    ----------
    base_config:
        The shared configuration; its ``seed`` field is overridden per
        replication.
    policy_factory:
        Builds a fresh policy list from the instance's true qualities
        (fresh because policies are stateful).
    num_seeds:
        Number of independent replications.
    first_seed:
        Seeds used are ``first_seed .. first_seed + num_seeds - 1``.
    fault_spec:
        When given, every seed's runs inject faults with these rates
        (each seed draws its own reproducible fault schedule).
    checkpoint_path:
        JSON file the sweep snapshots into after each completed seed
        (atomic write; survives crashes).
    resume:
        Continue from ``checkpoint_path`` if it exists, skipping seeds
        already completed; the result is identical to an uninterrupted
        sweep.  A missing checkpoint file simply starts fresh.
    tracer:
        Optional :class:`~repro.obs.Tracer`; the sweep brackets each
        replication with ``seed_start`` / ``seed_end`` events and the
        per-run events flow through it as well.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` accumulating the
        sweep's counters (``seeds_completed``, ``seeds_skipped``) and
        the per-seed ``replication.seed`` timer alongside the run-level
        telemetry.

    Raises
    ------
    PersistenceError
        If a resume checkpoint belongs to a different sweep
        configuration.
    """
    if num_seeds <= 0:
        raise ConfigurationError(
            f"num_seeds must be positive, got {num_seeds}"
        )
    if resume and checkpoint_path is None:
        raise ConfigurationError("resume requires checkpoint_path")
    tr = tracer if tracer is not None else NULL_TRACER
    reg = metrics if metrics is not None else MetricsRegistry()
    fingerprint = _sweep_fingerprint(base_config, num_seeds, first_seed,
                                     fault_spec)
    samples: dict[str, dict[str, list[float]]] = {}
    completed: list[int] = []
    if (resume and checkpoint_path is not None
            and os.path.exists(checkpoint_path)):
        payload = load_sweep_checkpoint(checkpoint_path)
        if payload.get("kind") != "replication_sweep":
            raise PersistenceError(
                f"{os.fspath(checkpoint_path)!s} is not a replication-sweep "
                "checkpoint"
            )
        if payload.get("fingerprint") != fingerprint:
            raise PersistenceError(
                f"sweep checkpoint {os.fspath(checkpoint_path)!s} was "
                "written by a different sweep configuration: "
                f"{payload.get('fingerprint')!r} != {fingerprint!r}"
            )
        completed = [int(seed) for seed in payload.get("completed_seeds", [])]
        samples = {
            policy: {key: list(values) for key, values in metrics.items()}
            for policy, metrics in payload.get("samples", {}).items()
        }
    seeds = list(range(first_seed, first_seed + num_seeds))
    for seed in seeds:
        if seed in completed:
            reg.counter("seeds_skipped").inc()
            continue
        seed_start = perf_counter()
        if tr.enabled:
            tr.emit("seed_start", seed=seed,
                    num_seeds=num_seeds, first_seed=first_seed)
        simulator = TradingSimulator(base_config.derive(seed=seed))
        policies = policy_factory(
            simulator.population.expected_qualities
        )
        fault_model = (simulator.fault_model(fault_spec)
                       if fault_spec is not None else None)
        comparison = simulator.compare(policies, fault_model=fault_model,
                                       tracer=tracer, metrics=metrics)
        for name, run in comparison.runs.items():
            bucket = samples.setdefault(
                name, {key: [] for key in _METRIC_KEYS}
            )
            for key, value in run.summary().items():
                bucket[key].append(value)
        completed.append(seed)
        if checkpoint_path is not None:
            save_sweep_checkpoint(checkpoint_path, {
                "kind": "replication_sweep",
                "fingerprint": fingerprint,
                "completed_seeds": completed,
                "samples": samples,
            }, metrics=reg)
        reg.counter("seeds_completed").inc()
        reg.timer("replication.seed").observe(perf_counter() - seed_start)
        if tr.enabled:
            tr.emit("seed_end", seed=seed,
                    duration_s=perf_counter() - seed_start)
            tr.flush()
    summaries = {
        policy: {
            key: MetricSummary.from_samples(values)
            for key, values in metrics.items()
        }
        for policy, metrics in samples.items()
    }
    return ReplicationResult(summaries=summaries, seeds=seeds)
