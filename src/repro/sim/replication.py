"""Multi-seed replication of policy comparisons.

The paper reports single runs; this harness repeats a comparison over
independent seeds (fresh population, fresh observation noise) and
aggregates mean and standard deviation per metric — the difference
between "we observed X once" and "X holds with seed-to-seed spread s".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.exceptions import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator

__all__ = ["MetricSummary", "ReplicationResult", "replicate_comparison"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean / standard deviation / extremes of one metric across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    num_seeds: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "MetricSummary":
        """Summarise a list of per-seed samples."""
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ConfigurationError("cannot summarise zero samples")
        return cls(
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            minimum=float(values.min()),
            maximum=float(values.max()),
            num_seeds=int(values.size),
        )

    def format(self) -> str:
        """Human-readable ``mean +/- std`` rendering."""
        return f"{self.mean:.4g} +/- {self.std:.2g}"


#: Metrics aggregated per policy, keyed by the RunMetrics summary names.
_METRIC_KEYS = (
    "total_revenue", "expected_revenue", "regret",
    "mean_poc", "mean_pop", "mean_pos",
)


@dataclass
class ReplicationResult:
    """Aggregated metrics of a replicated comparison.

    Attributes
    ----------
    summaries:
        ``summaries[policy][metric]`` -> :class:`MetricSummary`.
    seeds:
        The seeds that were run.
    """

    summaries: dict[str, dict[str, MetricSummary]]
    seeds: list[int]

    def policy_names(self) -> list[str]:
        """Policies in insertion order."""
        return list(self.summaries)

    def metric(self, policy: str, metric: str) -> MetricSummary:
        """One policy's summary of one metric.

        Raises
        ------
        ConfigurationError
            For unknown policy or metric names.
        """
        if policy not in self.summaries:
            raise ConfigurationError(
                f"no replicated runs for policy {policy!r}"
            )
        if metric not in self.summaries[policy]:
            raise ConfigurationError(
                f"unknown metric {metric!r}; known: {_METRIC_KEYS}"
            )
        return self.summaries[policy][metric]

    def separation(self, better: str, worse: str,
                   metric: str = "total_revenue") -> float:
        """How many pooled standard deviations separate two policies.

        Positive when ``better``'s mean exceeds ``worse``'s; large values
        mean the ordering is stable across seeds.  Returns ``inf`` when
        both policies are deterministic across seeds (zero spread).
        """
        a = self.metric(better, metric)
        b = self.metric(worse, metric)
        pooled = float(np.hypot(a.std, b.std))
        difference = a.mean - b.mean
        if pooled == 0.0:
            return float("inf") if difference > 0 else -float("inf")
        return difference / pooled

    def to_table(self) -> str:
        """All policies x headline metrics as an aligned text table."""
        headers = ["policy", "revenue", "regret", "PoC/round", "PoS/round"]
        rows = []
        for policy in self.policy_names():
            rows.append([
                policy,
                self.metric(policy, "total_revenue").format(),
                self.metric(policy, "regret").format(),
                self.metric(policy, "mean_poc").format(),
                self.metric(policy, "mean_pos").format(),
            ])
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def replicate_comparison(
    base_config: SimulationConfig,
    policy_factory: Callable[[np.ndarray], list[SelectionPolicy]],
    num_seeds: int = 5,
    first_seed: int = 0,
) -> ReplicationResult:
    """Run the comparison under ``num_seeds`` independent seeds.

    Parameters
    ----------
    base_config:
        The shared configuration; its ``seed`` field is overridden per
        replication.
    policy_factory:
        Builds a fresh policy list from the instance's true qualities
        (fresh because policies are stateful).
    num_seeds:
        Number of independent replications.
    first_seed:
        Seeds used are ``first_seed .. first_seed + num_seeds - 1``.
    """
    if num_seeds <= 0:
        raise ConfigurationError(
            f"num_seeds must be positive, got {num_seeds}"
        )
    samples: dict[str, dict[str, list[float]]] = {}
    seeds = list(range(first_seed, first_seed + num_seeds))
    for seed in seeds:
        simulator = TradingSimulator(base_config.derive(seed=seed))
        policies = policy_factory(
            simulator.population.expected_qualities
        )
        comparison = simulator.compare(policies)
        for name, run in comparison.runs.items():
            bucket = samples.setdefault(
                name, {key: [] for key in _METRIC_KEYS}
            )
            for key, value in run.summary().items():
                bucket[key].append(value)
    summaries = {
        policy: {
            key: MetricSummary.from_samples(values)
            for key, values in metrics.items()
        }
        for policy, metrics in samples.items()
    }
    return ReplicationResult(summaries=summaries, seeds=seeds)
