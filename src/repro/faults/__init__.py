"""Reproducible fault injection: seller dropout, corruption, stalls.

The fault-tolerance layer of the trading runtime.  A
:class:`FaultSpec` declares per-round failure probabilities, a
:class:`FaultModel` turns them into seed-driven per-round plans, and a
:class:`FaultLog` records every injected event and every platform-side
reaction (quarantines, degraded re-solves, no-trade fallbacks) for
audit and testing.
"""

from repro.faults.log import FaultEvent, FaultKind, FaultLog
from repro.faults.model import (
    FaultModel,
    FaultSpec,
    RoundFaultPlan,
    parse_fault_spec,
)

__all__ = [
    "FaultSpec",
    "FaultModel",
    "RoundFaultPlan",
    "FaultLog",
    "FaultEvent",
    "FaultKind",
    "parse_fault_spec",
]
