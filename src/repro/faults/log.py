"""Structured record of every fault-related event in a run.

A :class:`FaultLog` is the audit trail of a fault-injected simulation:
each injected failure (dropout, corruption, stall), each platform-side
reaction (quarantine, degraded game re-solve, no-trade fallback) is
appended as one :class:`FaultEvent`.  The log is append-only during a
run and serialisable to plain arrays so checkpoints can carry it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["FaultKind", "FaultEvent", "FaultLog"]


class FaultKind(str, Enum):
    """Every event category a :class:`FaultLog` can record.

    Injected failures:

    * ``DROPOUT`` — a selected seller returned no observation at all;
    * ``CORRUPTION`` — a seller's report was replaced with garbage
      (NaN, negative, or out-of-range values);
    * ``STALL`` — a seller responded after the settlement deadline, so
      its data missed revenue accounting but still reached the learner.

    Platform reactions:

    * ``QUARANTINE`` — the platform's validation detected an invalid
      report and excluded it from the quality-learning update;
    * ``DEGRADED`` — the round's Stackelberg game was re-solved on a
      survivor set smaller than the selected set;
    * ``NO_TRADE`` — every selected seller failed, so the round settled
      with no trade at all (the documented empty-set fallback).
    """

    DROPOUT = "dropout"
    CORRUPTION = "corruption"
    STALL = "stall"
    QUARANTINE = "quarantine"
    DEGRADED = "degraded"
    NO_TRADE = "no_trade"


#: Stable integer codes used when a log round-trips through an NPZ
#: checkpoint (insertion order of :class:`FaultKind` is the code).
_KIND_CODES = {kind: code for code, kind in enumerate(FaultKind)}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


@dataclass(frozen=True)
class FaultEvent:
    """One fault-related event.

    Attributes
    ----------
    round_index:
        0-based round the event happened in.
    kind:
        The event category.
    seller:
        The affected seller index, or ``-1`` for round-level events
        (``DEGRADED``, ``NO_TRADE``).
    value:
        Free-slot detail: the corrupted report value for ``CORRUPTION``
        / ``QUARANTINE`` events, the survivor count for ``DEGRADED``,
        ``0.0`` otherwise.
    """

    round_index: int
    kind: FaultKind
    seller: int = -1
    value: float = 0.0


class FaultLog:
    """Append-only, serialisable log of fault events."""

    def __init__(self) -> None:
        self._events: list[FaultEvent] = []

    # -- recording -----------------------------------------------------------------

    def record(self, round_index: int, kind: FaultKind, seller: int = -1,
               value: float = 0.0) -> None:
        """Append one event."""
        self._events.append(
            FaultEvent(int(round_index), FaultKind(kind), int(seller),
                       float(value))
        )

    # -- queries -------------------------------------------------------------------

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """All events in insertion (chronological) order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def count(self, kind: FaultKind) -> int:
        """Number of events of one kind."""
        kind = FaultKind(kind)
        return sum(1 for event in self._events if event.kind is kind)

    def events_in_round(self, round_index: int) -> list[FaultEvent]:
        """Every event of one round, in order."""
        return [e for e in self._events if e.round_index == round_index]

    def sellers_hit(self, kind: FaultKind,
                    round_index: int | None = None) -> list[int]:
        """Seller indices affected by one kind (optionally one round)."""
        kind = FaultKind(kind)
        return [
            e.seller for e in self._events
            if e.kind is kind
            and (round_index is None or e.round_index == round_index)
        ]

    def summary(self) -> dict[str, int]:
        """Event counts keyed by kind value (only non-zero kinds)."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    # -- (de)serialisation, for checkpoints ------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The log as four aligned plain arrays (checkpoint payload)."""
        return {
            "rounds": np.array([e.round_index for e in self._events],
                               dtype=np.int64),
            "kinds": np.array([_KIND_CODES[e.kind] for e in self._events],
                              dtype=np.int64),
            "sellers": np.array([e.seller for e in self._events],
                                dtype=np.int64),
            "values": np.array([e.value for e in self._events], dtype=float),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "FaultLog":
        """Rebuild a log serialised by :meth:`to_arrays`."""
        log = cls()
        try:
            rounds = np.asarray(arrays["rounds"], dtype=np.int64)
            kinds = np.asarray(arrays["kinds"], dtype=np.int64)
            sellers = np.asarray(arrays["sellers"], dtype=np.int64)
            values = np.asarray(arrays["values"], dtype=float)
        except KeyError as error:
            raise ConfigurationError(
                f"fault-log arrays are missing field {error.args[0]!r}"
            ) from error
        if not (rounds.size == kinds.size == sellers.size == values.size):
            raise ConfigurationError("fault-log arrays are misaligned")
        for r, c, s, v in zip(rounds, kinds, sellers, values):
            if int(c) not in _CODE_KINDS:
                raise ConfigurationError(f"unknown fault-kind code {int(c)}")
            log._events.append(
                FaultEvent(int(r), _CODE_KINDS[int(c)], int(s), float(v))
            )
        return log

    def restore_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        """Replace this log's contents with serialised events (resume)."""
        self._events = list(FaultLog.from_arrays(arrays)._events)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"FaultLog({self.summary()!r})"
