"""Seed-driven fault injection for trading simulations.

Real crowdsensing fleets are not the paper's happy path: sellers drop
out mid-round, return garbage readings, or report after the settlement
deadline.  A :class:`FaultModel` injects exactly those failures into a
run in a *reproducible* way — every round's faults are drawn from a
dedicated :class:`~repro.sim.rng.RngFactory` stream keyed by the round
index, so

* the same seed always yields the same fault schedule,
* fault draws never perturb the population / observation / policy
  streams (a zero-rate fault model is bit-identical to no fault model),
* a resumed run replays the identical schedule without having to replay
  earlier rounds (no sequential RNG state to restore).

Faults are assigned per seller per round with a single uniform draw
partitioned by rate: dropout takes precedence over corruption, which
takes precedence over stalling, and a seller suffers at most one fault
per round.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.faults.log import FaultKind, FaultLog

if TYPE_CHECKING:  # avoid a runtime repro.sim <-> repro.faults cycle
    from repro.sim.rng import RngFactory

__all__ = ["FaultSpec", "RoundFaultPlan", "FaultModel", "parse_fault_spec"]


@dataclass(frozen=True)
class FaultSpec:
    """Per-round, per-seller fault probabilities.

    Attributes
    ----------
    dropout_rate:
        Probability a selected seller returns nothing at all.
    corruption_rate:
        Probability a seller's report is replaced with garbage (NaN,
        negative, or impossibly large values).
    stall_rate:
        Probability a seller's report arrives after settlement: it
        misses the round's revenue accounting but still reaches the
        quality learner.
    """

    dropout_rate: float = 0.0
    corruption_rate: float = 0.0
    stall_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("dropout_rate", "corruption_rate", "stall_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.dropout_rate + self.corruption_rate + self.stall_rate > 1.0:
            raise ConfigurationError(
                "fault rates must sum to at most 1 (each seller suffers at "
                "most one fault per round)"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault has positive probability."""
        return (self.dropout_rate > 0.0 or self.corruption_rate > 0.0
                or self.stall_rate > 0.0)

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form (checkpoint fingerprints)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Rebuild a spec serialised by :meth:`to_dict`."""
        try:
            return cls(
                dropout_rate=float(payload["dropout_rate"]),
                corruption_rate=float(payload["corruption_rate"]),
                stall_rate=float(payload["stall_rate"]),
            )
        except KeyError as error:
            raise ConfigurationError(
                f"fault-spec dict is missing field {error.args[0]!r}"
            ) from error

    @classmethod
    def random(cls, rng: np.random.Generator) -> "FaultSpec":
        """A random mild spec drawn from ``rng`` (chaos drills).

        Rates are rounded to three decimals so the spec survives a
        JSON checkpoint-fingerprint round trip exactly, and kept mild
        (summing to well under 1) so every round still settles trades.
        """
        return cls(
            dropout_rate=round(float(rng.uniform(0.0, 0.2)), 3),
            corruption_rate=round(float(rng.uniform(0.0, 0.1)), 3),
            stall_rate=round(float(rng.uniform(0.0, 0.1)), 3),
        )


#: Aliases accepted by :func:`parse_fault_spec`.
_SPEC_KEYS = {
    "dropout": "dropout_rate",
    "drop": "dropout_rate",
    "corrupt": "corruption_rate",
    "corruption": "corruption_rate",
    "stall": "stall_rate",
}


def parse_fault_spec(text: str | None) -> FaultSpec | None:
    """Parse a CLI-style fault spec like ``"dropout=0.2,corrupt=0.05"``.

    Accepted keys: ``dropout``/``drop``, ``corrupt``/``corruption``,
    ``stall``.  ``None``, the empty string, ``"none"``, and ``"off"``
    all mean *no fault injection* and return ``None``.

    Raises
    ------
    ConfigurationError
        On unknown keys, malformed entries, or invalid rates.
    """
    if text is None:
        return None
    text = text.strip()
    if text == "" or text.lower() in ("none", "off"):
        return None
    rates: dict[str, float] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        key, sep, raw = entry.partition("=")
        key = key.strip().lower()
        if not sep or key not in _SPEC_KEYS:
            known = ", ".join(sorted(set(_SPEC_KEYS)))
            raise ConfigurationError(
                f"bad fault-spec entry {entry!r}; expected key=rate with "
                f"key one of: {known}"
            )
        field = _SPEC_KEYS[key]
        if field in rates:
            raise ConfigurationError(f"duplicate fault-spec key {key!r}")
        try:
            rates[field] = float(raw)
        except ValueError as error:
            raise ConfigurationError(
                f"fault rate for {key!r} is not a number: {raw!r}"
            ) from error
    return FaultSpec(**rates)


@dataclass(frozen=True)
class RoundFaultPlan:
    """The faults injected into one round.

    All seller arrays hold population-level indices (not positions in
    the selected set) and are disjoint.

    Attributes
    ----------
    round_index:
        The round this plan applies to.
    dropped:
        Sellers that return no observation.
    corrupted:
        Sellers whose reports are replaced with garbage.
    corrupted_sums:
        The garbage per-seller observation sums, aligned with
        ``corrupted``.
    stalled:
        Sellers whose reports arrive after settlement.
    """

    round_index: int
    dropped: np.ndarray
    corrupted: np.ndarray
    corrupted_sums: np.ndarray
    stalled: np.ndarray

    @property
    def is_clean(self) -> bool:
        """Whether this round carries no fault at all."""
        return (self.dropped.size == 0 and self.corrupted.size == 0
                and self.stalled.size == 0)


class FaultModel:
    """Draws reproducible per-round fault plans for a population.

    Parameters
    ----------
    spec:
        The fault probabilities.
    factory:
        The simulation's RNG factory; fault draws use the dedicated
        ``("faults", round)`` streams, independent of every other
        stream the run consumes.
    num_sellers:
        Population size ``M`` — draws are made for *every* seller each
        round (then restricted to the selected set), so the schedule is
        identical across policies selecting different sets (common
        random faults).
    """

    def __init__(self, spec: FaultSpec, factory: RngFactory,
                 num_sellers: int) -> None:
        if num_sellers <= 0:
            raise ConfigurationError(
                f"num_sellers must be positive, got {num_sellers}"
            )
        self._spec = spec
        self._factory = factory
        self._num_sellers = int(num_sellers)

    @property
    def spec(self) -> FaultSpec:
        """The fault probabilities this model injects."""
        return self._spec

    @property
    def num_sellers(self) -> int:
        """Population size the per-round draws cover."""
        return self._num_sellers

    def plan_round(self, round_index: int, selected: np.ndarray,
                   num_observations: int) -> RoundFaultPlan:
        """The fault plan of one round, restricted to the selected set.

        Parameters
        ----------
        round_index:
            0-based round number (keys the RNG stream).
        selected:
            Population indices of the sellers selected this round.
        num_observations:
            Observations per seller per round (``L``); corrupted sums
            are drawn out of the feasible ``[0, L]`` range (or NaN /
            negative) so validation can detect them.

        Raises
        ------
        ConfigurationError
            If a selected index falls outside the population.
        """
        selected = np.asarray(selected, dtype=int)
        if selected.size and (selected.min() < 0
                              or selected.max() >= self._num_sellers):
            raise ConfigurationError("selected seller index out of range")
        rng = self._factory.generator("faults", int(round_index))
        uniforms = rng.random(self._num_sellers)
        corrupt_mode = rng.random(self._num_sellers)
        corrupt_magnitude = rng.random(self._num_sellers)

        d = self._spec.dropout_rate
        c = self._spec.corruption_rate
        s = self._spec.stall_rate
        u = uniforms[selected]
        dropped = selected[u < d]
        corrupted = selected[(u >= d) & (u < d + c)]
        stalled = selected[(u >= d + c) & (u < d + c + s)]

        # Three garbage flavours, all caught by the feasibility check
        # "finite and within [0, L]": NaN, negative, and larger than the
        # L-observation maximum.
        mode = corrupt_mode[corrupted]
        magnitude = corrupt_magnitude[corrupted]
        sums = np.empty(corrupted.size)
        sums[mode < 1.0 / 3.0] = np.nan
        negative = (mode >= 1.0 / 3.0) & (mode < 2.0 / 3.0)
        sums[negative] = -1.0 - 4.0 * magnitude[negative]
        oversized = mode >= 2.0 / 3.0
        sums[oversized] = num_observations * (1.5 + 8.5 * magnitude[oversized])

        return RoundFaultPlan(
            round_index=int(round_index),
            dropped=dropped,
            corrupted=corrupted,
            corrupted_sums=sums,
            stalled=stalled,
        )

    def log_plan(self, plan: RoundFaultPlan, log: FaultLog | None,
                 tracer=None) -> None:
        """Record a plan's injected events (helper shared by runners).

        ``tracer`` may be a :class:`repro.obs.Tracer`; each injected
        failure is then also emitted as a structured ``fault`` trace
        event (kind value, seller, corrupted value where applicable).
        """
        traced = tracer is not None and tracer.enabled
        if log is None and not traced:
            return
        for seller in plan.dropped:
            if log is not None:
                log.record(plan.round_index, FaultKind.DROPOUT, int(seller))
            if traced:
                tracer.emit("fault", round_index=plan.round_index,
                            fault=FaultKind.DROPOUT.value,
                            seller=int(seller))
        for seller, value in zip(plan.corrupted, plan.corrupted_sums):
            if log is not None:
                log.record(plan.round_index, FaultKind.CORRUPTION,
                           int(seller), float(value))
            if traced:
                tracer.emit("fault", round_index=plan.round_index,
                            fault=FaultKind.CORRUPTION.value,
                            seller=int(seller), value=float(value))
        for seller in plan.stalled:
            if log is not None:
                log.record(plan.round_index, FaultKind.STALL, int(seller))
            if traced:
                tracer.emit("fault", round_index=plan.round_index,
                            fault=FaultKind.STALL.value, seller=int(seller))
