"""Sensing-quality observation models and samplers.

The platform never sees a seller's expected quality ``q_i``; it only sees
noisy per-PoI observations ``q_{i,l}^t``.  This package supplies the
observation distributions (truncated Gaussian by default, per the paper's
evaluation section) and the per-round sampling machinery.
"""

from repro.quality.drift import SinusoidalDrift
from repro.quality.distributions import (
    BernoulliQuality,
    BetaQuality,
    DeterministicQuality,
    DriftingQuality,
    PoiHeterogeneousQuality,
    QualityModel,
    TruncatedGaussianQuality,
    UniformQuality,
    make_quality_model,
)
from repro.quality.sampler import QualitySampler, RoundObservations

__all__ = [
    "QualityModel",
    "TruncatedGaussianQuality",
    "BernoulliQuality",
    "BetaQuality",
    "UniformQuality",
    "DeterministicQuality",
    "DriftingQuality",
    "PoiHeterogeneousQuality",
    "make_quality_model",
    "SinusoidalDrift",
    "QualitySampler",
    "RoundObservations",
]
