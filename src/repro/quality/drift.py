"""Seeded sinusoidal drift — the shared non-stationarity primitive.

Two parts of the codebase perturb a base quantity with a seeded
sinusoid: :class:`~repro.quality.distributions.DriftingQuality` drifts
seller quality means over rounds (the Definition-3 remark taken to
non-stationary means, used by the ``ext-drift`` experiment in
:mod:`repro.extensions.nonstationary`), and the event runtime's
:mod:`repro.runtime.arrivals` modulates seller arrival intensity over
the trading day.  Both speak this one helper so the waveform, the
phase-seeding discipline, and the clipping behaviour cannot diverge.

The waveform is::

    offset(t) = amplitude * sin(2*pi*t/period + phase)

with phases drawn once from a dedicated seed — never from a run's
population/observation/policy streams, so enabling drift perturbs
nothing else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["SinusoidalDrift"]


@dataclass(frozen=True)
class SinusoidalDrift:
    """One sinusoidal drift envelope: amplitude, period (in rounds).

    Attributes
    ----------
    amplitude:
        Peak offset applied to the base quantity (``>= 0``).
    period:
        Full oscillation length measured in rounds (``> 0``).
    """

    amplitude: float
    period: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.amplitude) and self.amplitude >= 0.0):
            raise ConfigurationError(
                f"drift amplitude must be finite and >= 0, "
                f"got {self.amplitude}"
            )
        if not (math.isfinite(self.period) and self.period > 0.0):
            raise ConfigurationError(
                f"drift period must be finite and positive, "
                f"got {self.period}"
            )

    def seeded_phases(self, phase_seed: int, count: int) -> np.ndarray:
        """``count`` per-entity phases in ``[0, 2*pi)`` from a dedicated seed.

        The phases are the only randomness drift consumes; drawing them
        from their own seed keeps every other stream of a run intact.
        """
        if count <= 0:
            raise ConfigurationError(
                f"phase count must be positive, got {count}"
            )
        # Call-time import: a top-level one would cycle via repro.sim.
        from repro.sim.rng import seeded_generator

        phase_rng = seeded_generator(phase_seed)
        result: np.ndarray = phase_rng.uniform(0.0, 2.0 * math.pi,
                                               size=count)
        return result

    def offsets_at(self, t: float, phases: np.ndarray) -> np.ndarray:
        """The per-entity offsets at round ``t`` (no clipping)."""
        angle = 2.0 * math.pi * t / self.period + phases
        return self.amplitude * np.sin(angle)

    def drifted_means(self, means: np.ndarray, t: float,
                      phases: np.ndarray) -> np.ndarray:
        """``clip(means + offset(t), 0, 1)`` — drifting quality means."""
        drifted = means + self.offsets_at(t, phases)
        return np.clip(drifted, 0.0, 1.0)

    def modulated_rate(self, base_rate: float, t: float,
                       phase: float = 0.0) -> float:
        """A probability ``base_rate`` modulated at round ``t``.

        The sinusoidal offset is added and the result clipped back into
        ``[0, 1]`` so it stays a valid per-round probability — the
        arrival-intensity curve of the event runtime's churn process.
        """
        angle = 2.0 * math.pi * t / self.period + phase
        rate = base_rate + self.amplitude * math.sin(angle)
        return min(max(rate, 0.0), 1.0)
