"""Round-level quality sampling helpers.

Wraps a :class:`~repro.quality.distributions.QualityModel` with the
bookkeeping a trading round needs: draw one observation per (selected
seller, PoI) pair and summarise them the way the learning state consumes
them (per-seller sums and counts, Eqs. 17-18 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.quality.distributions import DriftingQuality, QualityModel

__all__ = ["RoundObservations", "QualitySampler"]


@dataclass(frozen=True)
class RoundObservations:
    """Quality observations gathered in one trading round.

    Attributes
    ----------
    seller_indices:
        The sellers that collected data this round, shape ``(K,)``.
    per_poi:
        Observation matrix of shape ``(K, L)``: entry ``(j, l)`` is
        ``q_{i_j, l}^t``.
    sums:
        Row sums of ``per_poi`` — the quantity added to each seller's
        running total in Eq. (18).
    num_pois:
        The number of PoIs ``L`` (each selection is learned ``L`` times,
        Eq. 17).
    """

    seller_indices: np.ndarray
    per_poi: np.ndarray
    sums: np.ndarray
    num_pois: int

    @property
    def per_seller_means(self) -> np.ndarray:
        """Mean observed quality of each selected seller this round."""
        return self.sums / float(self.num_pois)

    @property
    def total(self) -> float:
        """Total observed quality this round (the realised CMAB revenue)."""
        return float(self.sums.sum())


class QualitySampler:
    """Draws per-round quality observations from a quality model.

    Parameters
    ----------
    model:
        The observation model shared by all sellers.
    num_pois:
        Number of PoIs ``L`` in the job; every selected seller produces one
        observation per PoI per round (Definition 3).
    rng:
        Source of randomness.  Pass a seeded generator for reproducible
        simulations.
    """

    def __init__(self, model: QualityModel, num_pois: int,
                 rng: np.random.Generator) -> None:
        if num_pois <= 0:
            raise ConfigurationError(f"num_pois must be positive, got {num_pois}")
        self._model = model
        self._num_pois = int(num_pois)
        self._rng = rng

    @property
    def model(self) -> QualityModel:
        """The underlying observation model."""
        return self._model

    @property
    def num_pois(self) -> int:
        """Number of PoIs ``L`` observed per selected seller per round."""
        return self._num_pois

    def sample_round(self, seller_indices: np.ndarray,
                     round_index: int | None = None) -> RoundObservations:
        """Draw the observations for one round of data collection.

        Parameters
        ----------
        seller_indices:
            Indices of the sellers selected this round.
        round_index:
            0-based round number; forwarded to non-stationary models so
            their instantaneous means can drift.
        """
        seller_indices = np.asarray(seller_indices, dtype=int)
        if round_index is not None and isinstance(self._model, DriftingQuality):
            self._model.set_round(round_index)
        per_poi = self._model.observe(self._rng, seller_indices, self._num_pois)
        return RoundObservations(
            seller_indices=seller_indices,
            per_poi=per_poi,
            sums=per_poi.sum(axis=1),
            num_pois=self._num_pois,
        )
