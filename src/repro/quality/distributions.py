"""Sensing-quality observation models.

The paper (Definition 3) models each seller ``i`` as having a fixed but
*unknown* expected sensing quality ``q_i in [0, 1]``.  When a selected
seller collects data at a PoI, the platform observes a noisy per-PoI
quality ``q_{i,l}^t in [0, 1]`` drawn from an unknown distribution whose
mean is ``q_i``.  The evaluation section states: *"we randomly generate
the expected quality from [0, 1] and then adopt truncated Gaussian
distribution to generate sellers' observed qualities."*

This module provides that truncated-Gaussian model plus several
alternatives (Bernoulli, Beta, Uniform, and a deterministic model for
tests), all behind a single :class:`QualityModel` interface.  Every model
guarantees observations in ``[0, 1]`` so the Chernoff-Hoeffding analysis
behind the regret bound (Lemma 17) applies.

Observations are drawn in bulk with NumPy so that simulating ``10^5``
rounds stays fast.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.quality.drift import SinusoidalDrift

__all__ = [
    "QualityModel",
    "TruncatedGaussianQuality",
    "BernoulliQuality",
    "BetaQuality",
    "UniformQuality",
    "DeterministicQuality",
    "DriftingQuality",
    "PoiHeterogeneousQuality",
    "make_quality_model",
]


def _validate_means(means: np.ndarray) -> np.ndarray:
    means = np.asarray(means, dtype=float)
    if means.ndim != 1:
        raise ConfigurationError(
            f"expected a 1-D array of expected qualities, got shape {means.shape}"
        )
    if means.size == 0:
        raise ConfigurationError("expected qualities must be non-empty")
    if np.any(~np.isfinite(means)):
        raise ConfigurationError("expected qualities must be finite")
    if np.any(means < 0.0) or np.any(means > 1.0):
        raise ConfigurationError(
            "expected qualities must lie in [0, 1]; "
            f"got min={means.min():.4f}, max={means.max():.4f}"
        )
    return means


class QualityModel(abc.ABC):
    """Generates per-PoI quality observations for a population of sellers.

    Parameters
    ----------
    means:
        Array of shape ``(M,)`` with each seller's expected quality
        ``q_i in [0, 1]``.

    Notes
    -----
    Subclasses implement :meth:`_draw` which returns raw observations; the
    public :meth:`observe` clips to ``[0, 1]`` defensively and exposes a
    uniform API.  The *effective mean* of the observation distribution may
    differ slightly from ``q_i`` for truncated models; use
    :meth:`effective_means` when an exact ground truth is required (for
    example when computing pseudo-regret).
    """

    def __init__(self, means: np.ndarray) -> None:
        self._means = _validate_means(means)

    @property
    def num_sellers(self) -> int:
        """Number of sellers covered by this model."""
        return int(self._means.size)

    @property
    def means(self) -> np.ndarray:
        """The configured expected qualities ``q_i`` (read-only view)."""
        view = self._means.view()
        view.flags.writeable = False
        return view

    def effective_means(self, num_samples: int = 200_000,
                        seed: int = 0) -> np.ndarray:
        """Monte-Carlo estimate of the true observation means.

        For models whose draws are exactly mean-``q_i`` (Bernoulli, Beta,
        Uniform, Deterministic) subclasses override this with the exact
        value.  The default estimates by sampling, which is adequate for
        regret accounting in experiments.
        """
        # Imported at call time: repro.sim (transitively) imports this
        # module, so a top-level import would be circular.
        from repro.sim.rng import seeded_generator

        rng = seeded_generator(seed)
        sellers = np.arange(self.num_sellers)
        draws = self.observe(rng, np.repeat(sellers, num_samples // 100),
                             num_pois=100)
        return draws.reshape(self.num_sellers, -1).mean(axis=1)

    def observe(self, rng: np.random.Generator, seller_indices: np.ndarray,
                num_pois: int) -> np.ndarray:
        """Draw quality observations for the given sellers.

        Parameters
        ----------
        rng:
            NumPy random generator supplying the randomness.
        seller_indices:
            Integer array of shape ``(S,)`` naming the sellers observed.
        num_pois:
            Number of PoIs ``L``; each seller yields ``L`` observations.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(S, L)`` with observations in ``[0, 1]``.
        """
        seller_indices = np.asarray(seller_indices, dtype=int)
        if seller_indices.ndim != 1:
            raise ConfigurationError("seller_indices must be 1-D")
        if num_pois <= 0:
            raise ConfigurationError(f"num_pois must be positive, got {num_pois}")
        if seller_indices.size and (
            seller_indices.min() < 0 or seller_indices.max() >= self.num_sellers
        ):
            raise ConfigurationError(
                "seller index out of range for this quality model"
            )
        raw = self._draw(rng, seller_indices, num_pois)
        return np.clip(raw, 0.0, 1.0)

    @abc.abstractmethod
    def _draw(self, rng: np.random.Generator, seller_indices: np.ndarray,
              num_pois: int) -> np.ndarray:
        """Return raw observations of shape ``(S, L)``."""


class TruncatedGaussianQuality(QualityModel):
    """Truncated Gaussian observations — the paper's default model.

    Observations are ``N(q_i, sigma^2)`` truncated (by rejection-free
    clipping) to ``[0, 1]``.  The paper does not state ``sigma``; we default
    to ``0.1``, small enough that clipping bias is negligible for interior
    means, and expose it as a parameter.
    """

    def __init__(self, means: np.ndarray, sigma: float = 0.1) -> None:
        super().__init__(means)
        if not (math.isfinite(sigma) and sigma > 0.0):
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self._sigma = float(sigma)

    @property
    def sigma(self) -> float:
        """Standard deviation of the pre-truncation Gaussian."""
        return self._sigma

    def _draw(self, rng: np.random.Generator, seller_indices: np.ndarray,
              num_pois: int) -> np.ndarray:
        mu = self._means[seller_indices][:, None]
        noise = rng.normal(0.0, self._sigma, size=(seller_indices.size, num_pois))
        return mu + noise


class BernoulliQuality(QualityModel):
    """Bernoulli observations: quality is 1 w.p. ``q_i`` else 0.

    Exactly mean-``q_i``, maximal variance for a ``[0, 1]``-supported
    distribution — useful to stress-test the learning policies.
    """

    def effective_means(self, num_samples: int = 0, seed: int = 0) -> np.ndarray:
        return self._means.copy()

    def _draw(self, rng: np.random.Generator, seller_indices: np.ndarray,
              num_pois: int) -> np.ndarray:
        p = self._means[seller_indices][:, None]
        return (rng.random((seller_indices.size, num_pois)) < p).astype(float)


class BetaQuality(QualityModel):
    """Beta-distributed observations with mean ``q_i``.

    Parameterised by a concentration ``kappa > 0``:
    ``alpha = q_i * kappa``, ``beta = (1 - q_i) * kappa``.  Means of 0 or 1
    degenerate to point masses.
    """

    def __init__(self, means: np.ndarray, concentration: float = 20.0) -> None:
        super().__init__(means)
        if not (math.isfinite(concentration) and concentration > 0.0):
            raise ConfigurationError(
                f"concentration must be positive, got {concentration}"
            )
        self._kappa = float(concentration)

    @property
    def concentration(self) -> float:
        """The Beta concentration parameter ``alpha + beta``."""
        return self._kappa

    def effective_means(self, num_samples: int = 0, seed: int = 0) -> np.ndarray:
        return self._means.copy()

    def _draw(self, rng: np.random.Generator, seller_indices: np.ndarray,
              num_pois: int) -> np.ndarray:
        mu = self._means[seller_indices][:, None]
        mu = np.broadcast_to(mu, (seller_indices.size, num_pois))
        out = np.empty_like(mu)
        interior = (mu > 0.0) & (mu < 1.0)
        alpha = np.where(interior, mu * self._kappa, 1.0)
        beta = np.where(interior, (1.0 - mu) * self._kappa, 1.0)
        out = np.where(interior, rng.beta(alpha, beta), mu)
        return out


class UniformQuality(QualityModel):
    """Uniform observations on ``[q_i - width/2, q_i + width/2]`` clipped.

    Clipping skews the mean near the boundaries; use interior means when an
    unbiased model is needed.
    """

    def __init__(self, means: np.ndarray, width: float = 0.2) -> None:
        super().__init__(means)
        if not (math.isfinite(width) and width > 0.0):
            raise ConfigurationError(f"width must be positive, got {width}")
        self._width = float(width)

    @property
    def width(self) -> float:
        """Support width of the pre-clipping uniform distribution."""
        return self._width

    def _draw(self, rng: np.random.Generator, seller_indices: np.ndarray,
              num_pois: int) -> np.ndarray:
        mu = self._means[seller_indices][:, None]
        half = self._width / 2.0
        offsets = rng.uniform(
            -half, half, size=(seller_indices.size, num_pois)
        )
        return mu + offsets


class DeterministicQuality(QualityModel):
    """Noise-free observations: every draw equals ``q_i`` exactly.

    Useful in tests where learning should converge after a single
    observation, and in analytic experiments (Figs. 13-18) where the game
    is evaluated at known qualities.
    """

    def effective_means(self, num_samples: int = 0, seed: int = 0) -> np.ndarray:
        return self._means.copy()

    def _draw(self, rng: np.random.Generator, seller_indices: np.ndarray,
              num_pois: int) -> np.ndarray:
        mu = self._means[seller_indices][:, None]
        return np.broadcast_to(mu, (seller_indices.size, num_pois)).copy()


class DriftingQuality(QualityModel):
    """Non-stationary qualities: means drift sinusoidally over rounds.

    Implements the Definition-3 *remark* that exogenous factors (personal
    willingness, sensing context, daily routine) perturb the observed
    quality.  Each seller's instantaneous mean is::

        q_i(t) = clip(q_i + amplitude * sin(2*pi*t/period + phi_i), 0, 1)

    with a per-seller random phase ``phi_i``.  The waveform and phase
    seeding live in the shared
    :class:`~repro.quality.drift.SinusoidalDrift` helper — the same
    primitive the event runtime's arrival process modulates churn with.
    The current round must be advanced by the caller via
    :meth:`set_round`.  Used by the sliding-window-UCB extension
    experiments.
    """

    def __init__(self, means: np.ndarray, amplitude: float = 0.2,
                 period: float = 2_000.0, phase_seed: int = 7,
                 sigma: float = 0.1) -> None:
        super().__init__(means)
        if not (0.0 <= amplitude <= 0.5):
            raise ConfigurationError(
                f"amplitude must be in [0, 0.5], got {amplitude}"
            )
        if period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if sigma <= 0.0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self._drift = SinusoidalDrift(float(amplitude), float(period))
        self._phase_seed = int(phase_seed)
        self._sigma = float(sigma)
        self._phases = self._drift.seeded_phases(phase_seed,
                                                 self.num_sellers)
        self._round = 0

    @classmethod
    def from_drift(cls, means: np.ndarray, drift: SinusoidalDrift,
                   phase_seed: int = 7,
                   sigma: float = 0.1) -> "DriftingQuality":
        """Build from a shared :class:`~repro.quality.drift.SinusoidalDrift`.

        The preferred spelling for callers that already hold a drift
        envelope (the ``ext-drift`` experiment, runtime churn configs):
        one object carries the waveform to every site that uses it.
        """
        return cls(means, amplitude=drift.amplitude, period=drift.period,
                   phase_seed=phase_seed, sigma=sigma)

    @property
    def amplitude(self) -> float:
        """Drift amplitude applied to every seller's mean."""
        return self._drift.amplitude

    @property
    def period(self) -> float:
        """Drift period measured in rounds."""
        return self._drift.period

    def set_round(self, t: int) -> None:
        """Advance the model to round ``t`` (0-based)."""
        if t < 0:
            raise ConfigurationError(f"round index must be >= 0, got {t}")
        self._round = int(t)

    def means_at(self, t: int) -> np.ndarray:
        """Instantaneous means at round ``t`` (clipped to ``[0, 1]``)."""
        return self._drift.drifted_means(self._means, t, self._phases)

    def _draw(self, rng: np.random.Generator, seller_indices: np.ndarray,
              num_pois: int) -> np.ndarray:
        mu = self.means_at(self._round)[seller_indices][:, None]
        noise = rng.normal(0.0, self._sigma, size=(seller_indices.size, num_pois))
        return mu + noise


class PoiHeterogeneousQuality(QualityModel):
    """Per-PoI quality offsets — the Definition-3 remark, literally.

    The paper: *"for task l' != l, q_{i,l'} may not be equal to
    q_{i,l}"* — the device fixes the expected quality ``q_i``, but the
    place (distance, angle) shifts each observation.  This model gives
    every (seller, PoI) pair a fixed offset drawn once from
    ``N(0, poi_sigma^2)`` and adds per-observation Gaussian noise on
    top.  The per-seller mean across PoIs stays ``~q_i``, so CMAB-HS's
    per-seller learning remains well-posed; the ablation benches check
    its performance is robust to this heterogeneity.

    Parameters
    ----------
    means:
        Expected qualities ``q_i``.
    num_pois:
        Number of PoIs ``L`` the offsets are materialised for;
        :meth:`observe` must be called with the same ``num_pois``.
    poi_sigma:
        Standard deviation of the per-(seller, PoI) offsets.
    sigma:
        Per-observation noise level.
    offset_seed:
        Seed fixing the offset matrix.
    """

    def __init__(self, means: np.ndarray, num_pois: int,
                 poi_sigma: float = 0.1, sigma: float = 0.05,
                 offset_seed: int = 0) -> None:
        super().__init__(means)
        if num_pois <= 0:
            raise ConfigurationError(
                f"num_pois must be positive, got {num_pois}"
            )
        if poi_sigma < 0.0 or sigma <= 0.0:
            raise ConfigurationError(
                "poi_sigma must be >= 0 and sigma > 0"
            )
        self._num_pois = int(num_pois)
        self._sigma = float(sigma)
        # Call-time import: a top-level one would cycle via repro.sim.
        from repro.sim.rng import seeded_generator

        offset_rng = seeded_generator(offset_seed)
        raw = offset_rng.normal(0.0, poi_sigma,
                                size=(self.num_sellers, self._num_pois))
        # Centre each seller's offsets so the per-seller mean stays q_i.
        self._offsets = raw - raw.mean(axis=1, keepdims=True)

    @property
    def poi_offsets(self) -> np.ndarray:
        """The fixed per-(seller, PoI) offsets (read-only view)."""
        view = self._offsets.view()
        view.flags.writeable = False
        return view

    def poi_means(self, seller: int) -> np.ndarray:
        """The seller's per-PoI expected qualities (clipped to [0, 1])."""
        return np.clip(self._means[seller] + self._offsets[seller],
                       0.0, 1.0)

    def _draw(self, rng: np.random.Generator, seller_indices: np.ndarray,
              num_pois: int) -> np.ndarray:
        if num_pois != self._num_pois:
            raise ConfigurationError(
                f"model materialised offsets for {self._num_pois} PoIs "
                f"but was asked to observe {num_pois}"
            )
        mu = (self._means[seller_indices][:, None]
              + self._offsets[seller_indices])
        noise = rng.normal(0.0, self._sigma,
                           size=(seller_indices.size, num_pois))
        return mu + noise


_MODEL_FACTORIES = {
    "truncated_gaussian": TruncatedGaussianQuality,
    "bernoulli": BernoulliQuality,
    "beta": BetaQuality,
    "uniform": UniformQuality,
    "deterministic": DeterministicQuality,
    "drifting": DriftingQuality,
    "poi_heterogeneous": PoiHeterogeneousQuality,
}


def make_quality_model(name: str, means: np.ndarray, **kwargs: float) -> QualityModel:
    """Construct a quality model by name.

    Parameters
    ----------
    name:
        One of ``"truncated_gaussian"`` (paper default), ``"bernoulli"``,
        ``"beta"``, ``"uniform"``, ``"deterministic"``, ``"drifting"``.
    means:
        Expected qualities ``q_i`` of each seller.
    **kwargs:
        Model-specific parameters (for example ``sigma`` for the truncated
        Gaussian).

    Raises
    ------
    ConfigurationError
        If ``name`` is not a known model.
    """
    try:
        factory = _MODEL_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_MODEL_FACTORIES))
        raise ConfigurationError(
            f"unknown quality model {name!r}; expected one of: {known}"
        ) from None
    return factory(means, **kwargs)
