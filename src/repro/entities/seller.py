"""Data sellers and seller populations.

A seller (Definition 3) is a mobile user with a sensing device whose
expected quality ``q_i`` is unknown to the platform.  The seller behaves
strategically only through its sensing time: given the platform's unit
data-collection price it plays the Stage-3 best response of the
hierarchical Stackelberg game (Theorem 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.entities.costs import QuadraticSellerCost
from repro.exceptions import ConfigurationError

__all__ = ["Seller", "SellerPopulation"]


@dataclass(frozen=True)
class Seller:
    """One data seller.

    Attributes
    ----------
    seller_id:
        Stable identifier (index into the population, or a taxi id when
        derived from a trace).
    expected_quality:
        The *ground-truth* expected sensing quality ``q_i in (0, 1]``.
        Hidden from the platform; used only by the environment and by the
        ``optimal`` baseline.
    cost:
        The seller's quadratic cost function (Eq. 6).
    """

    seller_id: int
    expected_quality: float
    cost: QuadraticSellerCost

    def __post_init__(self) -> None:
        if not (math.isfinite(self.expected_quality)
                and 0.0 < self.expected_quality <= 1.0):
            raise ConfigurationError(
                f"expected_quality must be in (0, 1], got {self.expected_quality}"
            )

    def profit(self, price: float, sensing_time: float,
               estimated_quality: float) -> float:
        """Seller profit ``Psi_i = p*tau_i - C_i(tau_i, qbar_i)`` (Eq. 5).

        ``estimated_quality`` is the platform's current estimate
        ``qbar_i^t``; the paper evaluates the cost at the *estimated*
        quality because it is the value all parties contract on.
        """
        return float(price) * float(sensing_time) - self.cost(
            sensing_time, estimated_quality
        )

    def best_response(self, price: float, estimated_quality: float) -> float:
        """Stage-3 optimal sensing time ``tau_i*`` (Theorem 14, Eq. 20)."""
        return self.cost.optimal_sensing_time(price, estimated_quality)


class SellerPopulation:
    """An ordered collection of sellers with vectorised parameter access.

    The simulation engine works on NumPy arrays; this class keeps the
    object-per-seller view (nice for examples and tests) and the array view
    (fast for ``10^5``-round runs) consistent.

    Parameters
    ----------
    sellers:
        The sellers, in index order (``sellers[i].seller_id`` need not be
        ``i``; selection operates on positions).
    """

    def __init__(self, sellers: list[Seller]) -> None:
        if not sellers:
            raise ConfigurationError("a seller population cannot be empty")
        self._sellers = list(sellers)
        self._qualities = np.array(
            [s.expected_quality for s in self._sellers], dtype=float
        )
        self._a = np.array([s.cost.a for s in self._sellers], dtype=float)
        self._b = np.array([s.cost.b for s in self._sellers], dtype=float)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._sellers)

    def __getitem__(self, index: int) -> Seller:
        return self._sellers[index]

    def __iter__(self):
        return iter(self._sellers)

    # -- vectorised views ---------------------------------------------------

    @property
    def expected_qualities(self) -> np.ndarray:
        """Ground-truth expected qualities ``q_i`` (read-only view)."""
        view = self._qualities.view()
        view.flags.writeable = False
        return view

    @property
    def cost_a(self) -> np.ndarray:
        """Quadratic cost coefficients ``a_i`` (read-only view)."""
        view = self._a.view()
        view.flags.writeable = False
        return view

    @property
    def cost_b(self) -> np.ndarray:
        """Linear cost coefficients ``b_i`` (read-only view)."""
        view = self._b.view()
        view.flags.writeable = False
        return view

    def top_k_by_quality(self, k: int) -> np.ndarray:
        """Indices of the ``k`` sellers with the highest expected quality.

        This is the omniscient selection the ``optimal`` baseline uses and
        the reference set ``S*`` in the regret definition (Eq. 34).  Ties
        are broken by ascending index, matching ``numpy.argsort`` stability.
        """
        if not (1 <= k <= len(self)):
            raise ConfigurationError(
                f"k must be in [1, {len(self)}], got {k}"
            )
        order = np.argsort(-self._qualities, kind="stable")
        return np.sort(order[:k])

    # -- constructors ---------------------------------------------------------

    @classmethod
    def random(cls, num_sellers: int, rng: np.random.Generator,
               a_range: tuple[float, float] = (0.1, 0.5),
               b_range: tuple[float, float] = (0.1, 1.0),
               quality_range: tuple[float, float] = (0.0, 1.0)) -> "SellerPopulation":
        """Sample a population with the paper's parameter ranges.

        Expected qualities are uniform on ``quality_range`` (paper:
        ``[0, 1]``) but floored at a small positive value because the
        closed-form best responses divide by ``qbar_i`` — a literally
        zero-quality seller has no interior optimum.

        Parameters
        ----------
        num_sellers:
            Population size ``M``.
        rng:
            Randomness source.
        a_range, b_range:
            Uniform sampling ranges for the cost coefficients; defaults are
            the paper's ``[0.1, 0.5]`` and ``[0.1, 1]``.
        quality_range:
            Uniform sampling range for expected qualities.
        """
        if num_sellers <= 0:
            raise ConfigurationError(
                f"num_sellers must be positive, got {num_sellers}"
            )
        lo, hi = quality_range
        if not (0.0 <= lo < hi <= 1.0):
            raise ConfigurationError(
                f"quality_range must satisfy 0 <= lo < hi <= 1, got {quality_range}"
            )
        min_quality = 1e-3
        qualities = rng.uniform(max(lo, min_quality), hi, size=num_sellers)
        a_values = rng.uniform(*a_range, size=num_sellers)
        b_values = rng.uniform(*b_range, size=num_sellers)
        sellers = [
            Seller(
                seller_id=i,
                expected_quality=float(qualities[i]),
                cost=QuadraticSellerCost(a=float(a_values[i]), b=float(b_values[i])),
            )
            for i in range(num_sellers)
        ]
        return cls(sellers)

    @classmethod
    def from_arrays(cls, qualities: np.ndarray, a: np.ndarray,
                    b: np.ndarray) -> "SellerPopulation":
        """Build a population from parallel parameter arrays."""
        qualities = np.asarray(qualities, dtype=float)
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if not (qualities.shape == a.shape == b.shape) or qualities.ndim != 1:
            raise ConfigurationError(
                "qualities, a, b must be 1-D arrays of equal length"
            )
        sellers = [
            Seller(
                seller_id=i,
                expected_quality=float(qualities[i]),
                cost=QuadraticSellerCost(a=float(a[i]), b=float(b[i])),
            )
            for i in range(qualities.size)
        ]
        return cls(sellers)
