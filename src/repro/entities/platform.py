"""The data-trading platform (broker).

The platform (Definition 2) receives the consumer's job, selects sellers,
aggregates data, and — as the Stage-2 leader of the hierarchical
Stackelberg game — sets the unit data-collection price ``p`` paid to
sellers, within ``[p_min, p_max]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.entities.costs import QuadraticAggregationCost
from repro.exceptions import ConfigurationError

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """The broker between the consumer and the sellers.

    Attributes
    ----------
    aggregation_cost:
        The quadratic aggregation cost ``C^J`` (Eq. 8).
    price_min, price_max:
        Bounds of the unit data-collection price ``p`` (Definition 5).
    """

    aggregation_cost: QuadraticAggregationCost
    price_min: float = 0.0
    price_max: float = 1_000.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.price_min) and math.isfinite(self.price_max)):
            raise ConfigurationError("platform price bounds must be finite")
        if self.price_min < 0.0:
            raise ConfigurationError(
                f"price_min must be >= 0, got {self.price_min}"
            )
        if self.price_max <= self.price_min:
            raise ConfigurationError(
                f"price_max ({self.price_max}) must exceed price_min "
                f"({self.price_min})"
            )

    def clip_price(self, price: float) -> float:
        """Project a candidate price onto ``[price_min, price_max]``."""
        return min(max(float(price), self.price_min), self.price_max)

    def profit(self, service_price: float, collection_price: float,
               sensing_times: np.ndarray | float) -> float:
        """Platform profit ``Omega`` (Eq. 7).

        ``Omega = p^J * total_tau - p * total_tau - C^J(tau)`` — revenue
        from the consumer, minus payments to sellers, minus the
        aggregation cost.

        Parameters
        ----------
        service_price:
            The consumer's unit data-service price ``p^J``.
        collection_price:
            The platform's unit data-collection price ``p``.
        sensing_times:
            Sensing times of the selected sellers (vector or total).
        """
        total = float(np.sum(sensing_times))
        revenue = float(service_price) * total
        payments = float(collection_price) * total
        return revenue - payments - self.aggregation_cost(total)

    @classmethod
    def default(cls, theta: float = 0.1, lam: float = 1.0,
                price_min: float = 0.0, price_max: float = 1_000.0) -> "Platform":
        """A platform with the paper's default cost parameters."""
        return cls(
            aggregation_cost=QuadraticAggregationCost(theta=theta, lam=lam),
            price_min=price_min,
            price_max=price_max,
        )
