"""The data consumer.

The consumer (Definition 1) requests statistics over the job's PoIs and —
as the Stage-1 leader of the hierarchical Stackelberg game — sets the unit
data-service price ``p^J`` within ``[p^J_min, p^J_max]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.entities.costs import LogValuation
from repro.exceptions import ConfigurationError

__all__ = ["Consumer"]


@dataclass(frozen=True)
class Consumer:
    """The data-service requester at the top of the Stackelberg hierarchy.

    Attributes
    ----------
    valuation:
        The logarithmic valuation ``phi`` (Eq. 10).
    price_min, price_max:
        Bounds of the unit data-service price ``p^J`` (Definition 5).
    """

    valuation: LogValuation
    price_min: float = 0.0
    price_max: float = 1_000.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.price_min) and math.isfinite(self.price_max)):
            raise ConfigurationError("consumer price bounds must be finite")
        if self.price_min < 0.0:
            raise ConfigurationError(
                f"price_min must be >= 0, got {self.price_min}"
            )
        if self.price_max <= self.price_min:
            raise ConfigurationError(
                f"price_max ({self.price_max}) must exceed price_min "
                f"({self.price_min})"
            )

    def clip_price(self, price: float) -> float:
        """Project a candidate price onto ``[price_min, price_max]``."""
        return min(max(float(price), self.price_min), self.price_max)

    def profit(self, service_price: float, sensing_times: np.ndarray | float,
               mean_quality: float) -> float:
        """Consumer profit ``Phi`` (Eq. 9).

        ``Phi = phi(tau, qbar) - p^J * total_tau`` — the valuation of the
        received statistics minus the total reward paid out.

        Parameters
        ----------
        service_price:
            The unit data-service price ``p^J``.
        sensing_times:
            Sensing times of the selected sellers (vector or total).
        mean_quality:
            Mean estimated quality ``qbar^t`` of the selected sellers.
        """
        total = float(np.sum(sensing_times))
        return self.valuation(total, mean_quality) - float(service_price) * total

    @classmethod
    def default(cls, omega: float = 1_000.0, price_min: float = 0.0,
                price_max: float = 1_000.0) -> "Consumer":
        """A consumer with the paper's default valuation parameter."""
        return cls(
            valuation=LogValuation(omega=omega),
            price_min=price_min,
            price_max=price_max,
        )
